// Benchmarks regenerating the paper's tables and figures as testing.B
// benchmarks, one per experiment. Each iteration runs the experiment at a
// reduced but structurally identical scale; ns/op is wall-clock simulation
// cost, while the reported custom metrics carry the simulated results.
//
// Run with:
//
//	go test -bench=. -benchmem
//
// For paper-scale output use cmd/semperos-bench instead.
package semperos_test

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/trace"
	"repro/internal/workload"
)

// BenchmarkTable3ExchangeRevoke regenerates Table 3: runtimes of capability
// exchange and revocation, group-local and group-spanning, SemperOS vs M3.
func BenchmarkTable3ExchangeRevoke(b *testing.B) {
	var r bench.Table3Result
	for i := 0; i < b.N; i++ {
		r = bench.Table3(bench.Options{})
	}
	b.ReportMetric(float64(r.ExchangeLocal), "exch-local-cycles")
	b.ReportMetric(float64(r.ExchangeSpanning), "exch-span-cycles")
	b.ReportMetric(float64(r.RevokeLocal), "revoke-local-cycles")
	b.ReportMetric(float64(r.RevokeSpanning), "revoke-span-cycles")
	b.ReportMetric(float64(r.M3Exchange), "m3-exch-cycles")
	b.ReportMetric(float64(r.M3Revoke), "m3-revoke-cycles")
}

// BenchmarkFig4ChainRevocation regenerates Figure 4 (chains up to 40).
func BenchmarkFig4ChainRevocation(b *testing.B) {
	var r bench.Fig4Result
	for i := 0; i < b.N; i++ {
		r = bench.Fig4(bench.Options{}, 40)
	}
	last := len(r.Lengths) - 1
	b.ReportMetric(float64(r.LocalSemperOS[last].Cycles), "local-cycles")
	b.ReportMetric(float64(r.SpanningChain[last].Cycles), "spanning-cycles")
	b.ReportMetric(float64(r.LocalM3[last].Cycles), "m3-cycles")
}

// BenchmarkFig5TreeRevocation regenerates Figure 5 (trees up to 64 children).
func BenchmarkFig5TreeRevocation(b *testing.B) {
	var r bench.Fig5Result
	for i := 0; i < b.N; i++ {
		r = bench.Fig5(bench.Options{}, 64)
	}
	last := len(r.Counts) - 1
	for _, s := range r.Series {
		if s.ExtraKernels == 0 {
			b.ReportMetric(float64(s.Points[last].Cycles), "local-cycles")
		}
		if s.ExtraKernels == 12 {
			b.ReportMetric(float64(s.Points[last].Cycles), "12kernel-cycles")
		}
	}
}

// BenchmarkTable4CapabilityOperations regenerates Table 4 at quick scale.
func BenchmarkTable4CapabilityOperations(b *testing.B) {
	var r bench.Table4Result
	for i := 0; i < b.N; i++ {
		r = bench.Table4(bench.Quick())
	}
	for _, row := range r.Rows {
		b.ReportMetric(row.RateN, row.Name+"-ops/s")
	}
}

// benchEfficiency measures parallel efficiency of one app at quick scale.
func benchEfficiency(b *testing.B, name string) {
	tr := trace.ByName(name)
	var eff float64
	for i := 0; i < b.N; i++ {
		e, _, _, err := workload.ParallelEfficiency(workload.Config{
			Kernels: 4, Services: 4, Instances: 32, Trace: tr,
		})
		if err != nil {
			b.Fatal(err)
		}
		eff = e
	}
	b.ReportMetric(eff*100, "efficiency-%")
}

// BenchmarkFig6ParallelEfficiency* regenerate Figure 6's per-application
// parallel efficiency (quick scale: 32 instances, 4 kernels + 4 services).
func BenchmarkFig6ParallelEfficiencyTar(b *testing.B)      { benchEfficiency(b, "tar") }
func BenchmarkFig6ParallelEfficiencyUntar(b *testing.B)    { benchEfficiency(b, "untar") }
func BenchmarkFig6ParallelEfficiencyFind(b *testing.B)     { benchEfficiency(b, "find") }
func BenchmarkFig6ParallelEfficiencySQLite(b *testing.B)   { benchEfficiency(b, "sqlite") }
func BenchmarkFig6ParallelEfficiencyLevelDB(b *testing.B)  { benchEfficiency(b, "leveldb") }
func BenchmarkFig6ParallelEfficiencyPostMark(b *testing.B) { benchEfficiency(b, "postmark") }

// BenchmarkFig7ServiceDependence regenerates Figure 7's effect at quick
// scale: SQLite efficiency with few vs many services.
func BenchmarkFig7ServiceDependence(b *testing.B) {
	tr := trace.SQLite()
	var few, many float64
	for i := 0; i < b.N; i++ {
		f, _, _, err := workload.ParallelEfficiency(workload.Config{Kernels: 8, Services: 1, Instances: 48, Trace: tr})
		if err != nil {
			b.Fatal(err)
		}
		m, _, _, err := workload.ParallelEfficiency(workload.Config{Kernels: 8, Services: 8, Instances: 48, Trace: tr})
		if err != nil {
			b.Fatal(err)
		}
		few, many = f, m
	}
	b.ReportMetric(few*100, "1svc-efficiency-%")
	b.ReportMetric(many*100, "8svc-efficiency-%")
}

// BenchmarkFig8KernelDependence regenerates Figure 8's effect at quick
// scale: PostMark efficiency with few vs many kernels.
func BenchmarkFig8KernelDependence(b *testing.B) {
	tr := trace.PostMark()
	var few, many float64
	for i := 0; i < b.N; i++ {
		f, _, _, err := workload.ParallelEfficiency(workload.Config{Kernels: 1, Services: 8, Instances: 48, Trace: tr})
		if err != nil {
			b.Fatal(err)
		}
		m, _, _, err := workload.ParallelEfficiency(workload.Config{Kernels: 8, Services: 8, Instances: 48, Trace: tr})
		if err != nil {
			b.Fatal(err)
		}
		few, many = f, m
	}
	b.ReportMetric(few*100, "1kernel-efficiency-%")
	b.ReportMetric(many*100, "8kernel-efficiency-%")
}

// BenchmarkFig9SystemEfficiency regenerates Figure 9's metric at quick
// scale: system efficiency (OS PEs count as zero) for PostMark.
func BenchmarkFig9SystemEfficiency(b *testing.B) {
	tr := trace.PostMark()
	var sysEff float64
	for i := 0; i < b.N; i++ {
		eff, _, _, err := workload.ParallelEfficiency(workload.Config{Kernels: 4, Services: 4, Instances: 56, Trace: tr})
		if err != nil {
			b.Fatal(err)
		}
		sysEff = workload.SystemEfficiency(eff, 4, 4, 56)
	}
	b.ReportMetric(sysEff*100, "system-efficiency-%")
}

// BenchmarkFig10Nginx regenerates Figure 10's metric at quick scale:
// aggregate webserver requests per second.
func BenchmarkFig10Nginx(b *testing.B) {
	var rps float64
	for i := 0; i < b.N; i++ {
		r, err := workload.RunNginx(workload.NginxConfig{
			Kernels: 4, Services: 4, Servers: 8, Duration: 6_000_000,
		})
		if err != nil {
			b.Fatal(err)
		}
		rps = r.RequestsPerSecond()
	}
	b.ReportMetric(rps, "req/s")
}
