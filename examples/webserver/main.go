// Webserver: the paper's §5.3.3 server scenario in miniature. Webserver
// VPEs serve a static file from m3fs; load-generator VPEs — standing in
// for network interfaces — fire requests at them over direct DTU channels
// (established once via the capability system, then kernel-free).
package main

import (
	"fmt"

	"repro"
	"repro/internal/core"
	"repro/internal/m3fs"
	"repro/internal/sim"
)

const (
	servers  = 4
	requests = 200 // per load generator
)

func main() {
	sys := semperos.MustNew(semperos.Config{Kernels: 2, UserPEs: 1 + 2*servers})
	defer sys.Close()
	pes := sys.UserPEs()

	// The filesystem holding the document root.
	fsReady := sim.NewFuture[*m3fs.FS](sys.Eng)
	if _, err := sys.SpawnOn(pes[0], "m3fs", m3fs.Program(m3fs.Config{}, func(fs *m3fs.FS) {
		fs.MustCreate("/index.html", 8<<10)
	}, fsReady)); err != nil {
		panic(err)
	}

	type gate struct {
		vpe *semperos.VPE
		sel semperos.Selector
	}
	gates := make([]*sim.Future[gate], servers)
	served := make([]int, servers)

	for i := 0; i < servers; i++ {
		i := i
		gates[i] = sim.NewFuture[gate](sys.Eng)
		if _, err := sys.SpawnOn(pes[1+i], fmt.Sprintf("httpd%d", i), func(v *semperos.VPE, p *semperos.Proc) {
			fsReady.Wait(p)
			client, err := m3fs.Dial(p, v, "m3fs")
			if err != nil {
				panic(err)
			}
			// Receive gate for HTTP requests.
			sel, err := v.CreateRgate(p, 11, 0)
			if err != nil {
				panic(err)
			}
			gates[i].Complete(gate{vpe: v, sel: sel})
			for {
				m := v.DTU().Wait(p, 11)
				// Per-request file work, as a real server trace does:
				// stat + open + read + close.
				if _, err := client.Stat(p, "/index.html"); err != nil {
					panic(err)
				}
				f, err := client.Open(p, "/index.html", false, false)
				if err != nil {
					panic(err)
				}
				if _, err := f.Read(p, 8<<10); err != nil {
					panic(err)
				}
				if err := f.Close(p, false); err != nil {
					panic(err)
				}
				served[i]++
				v.DTU().Reply(m, "HTTP/1.1 200 OK", 128)
			}
		}); err != nil {
			panic(err)
		}
	}

	// Load generators: obtain a send capability from the server's receive
	// gate (connection establishment, paper Fig. 3), then hammer it.
	var done sim.WaitGroup
	done.Add(servers)
	for i := 0; i < servers; i++ {
		i := i
		if _, err := sys.SpawnOn(pes[1+servers+i], fmt.Sprintf("nic%d", i), func(v *semperos.VPE, p *semperos.Proc) {
			g := gates[i].Wait(p)
			sendSel, err := v.ObtainFrom(p, g.vpe.ID, g.sel)
			if err != nil {
				panic(err)
			}
			if err := v.Activate(p, sendSel, 12); err != nil {
				panic(err)
			}
			for r := 0; r < requests; r++ {
				if err := v.DTU().Send(12, "GET /index.html", 256, 3, 0); err != nil {
					panic(err)
				}
				m := v.DTU().Wait(p, 3)
				v.DTU().Ack(m)
			}
			done.Done()
		}); err != nil {
			panic(err)
		}
	}

	// Run until all load generators finish.
	waiter := sys.Eng.Spawn("main", func(p *semperos.Proc) { done.Wait(p) })
	_ = waiter
	sys.Run()

	total := 0
	for i, n := range served {
		fmt.Printf("httpd%d served %d requests\n", i, n)
		total += n
	}
	secs := float64(sys.Now()) / core.CyclesPerSecond
	fmt.Printf("\n%d requests in %.3f ms simulated time = %.0f requests/s aggregate\n",
		total, secs*1000, float64(total)/secs)
}
