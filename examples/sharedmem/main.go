// Sharedmem: a producer shares one memory region with many consumers spread
// over several PE groups — the capability tree grows one child per
// consumer — and then revokes the whole tree with a single operation (the
// paper's Figure 5 scenario: parallel tree revocation across kernels).
package main

import (
	"fmt"

	"repro"
	"repro/internal/sim"
)

const consumers = 12

func main() {
	// Four kernels; the producer sits in group 0, consumers round-robin
	// over all groups.
	sys := semperos.MustNew(semperos.Config{Kernels: 4, UserPEs: consumers + 4})
	defer sys.Close()
	pes := sys.UserPEs()

	ready := sim.NewFuture[semperos.Selector](sys.Eng)
	var attached sim.WaitGroup
	attached.Add(consumers)

	producer, err := sys.SpawnOn(pes[0], "producer", func(v *semperos.VPE, p *semperos.Proc) {
		sel, err := v.AllocMem(p, 64<<10, semperos.PermRW)
		if err != nil {
			panic(err)
		}
		fmt.Printf("[%7d cyc] producer: shared 64 KiB region ready\n", p.Now())
		ready.Complete(sel)

		attached.Wait(p)
		fmt.Printf("[%7d cyc] producer: %d consumers attached; revoking\n", p.Now(), consumers)
		t0 := p.Now()
		if err := v.Revoke(p, sel); err != nil {
			panic(err)
		}
		fmt.Printf("[%7d cyc] producer: tree revoked in %d cycles (%.2f µs)\n",
			p.Now(), p.Now()-t0, float64(p.Now()-t0)/2000)
	})
	if err != nil {
		panic(err)
	}

	for i := 0; i < consumers; i++ {
		i := i
		if _, err := sys.SpawnOn(pes[1+i], fmt.Sprintf("consumer%d", i), func(v *semperos.VPE, p *semperos.Proc) {
			sel := ready.Wait(p)
			mine, err := v.ObtainFrom(p, producer.ID, sel)
			if err != nil {
				panic(err)
			}
			if err := v.Activate(p, mine, 10); err != nil {
				panic(err)
			}
			fmt.Printf("[%7d cyc] consumer%d (kernel %d): attached via capability %d\n",
				p.Now(), i, v.Kernel().ID(), mine)
			attached.Done()
		}); err != nil {
			panic(err)
		}
	}

	sys.Run()

	// After revocation, no memory capabilities survive anywhere.
	var left int
	for k := 0; k < sys.Kernels(); k++ {
		left += sys.Kernel(k).Store().Len()
	}
	fmt.Printf("\ncapabilities left in all mapping databases: %d (only VPE self-caps)\n", left)
	var ikc uint64
	for k := 0; k < sys.Kernels(); k++ {
		ikc += sys.Kernel(k).Stats().IKCSent
	}
	fmt.Printf("inter-kernel calls exchanged: %d\n", ikc)
}
