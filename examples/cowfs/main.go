// Cowfs: a copy-on-write filesystem built on fast revocation — the paper's
// §3 motivating design: "When an application performs a write it receives a
// mapping to its own copy of data and access to the original data has to be
// revoked. In a capability system with slow revocation it is questionable
// whether an efficient implementation of a copy-on-write filesystem is
// possible."
//
// The service hands out read capabilities to a shared block. When a client
// asks for write access, the service copies the block, revokes every
// outstanding read capability (recursively, across PE groups) and hands the
// writer a capability to the private copy.
package main

import (
	"fmt"

	"repro"
	"repro/internal/sim"
)

// Protocol messages.
type reqWrite struct{ Block int }

// cowService implements the copy-on-write policy.
type cowService struct {
	v        *semperos.VPE
	blockSel semperos.Selector // capability of the current shared block
	gen      int               // block generation, bumped on every write
}

func main() {
	sys := semperos.MustNew(semperos.Config{Kernels: 2, UserPEs: 6, MemBytes: 8 << 20})
	defer sys.Close()
	pes := sys.UserPEs()

	svcReady := sim.NewFuture[struct{}](sys.Eng)
	readersDone := sim.NewFuture[struct{}](sys.Eng)

	// The copy-on-write filesystem service (PE group 0).
	if _, err := sys.SpawnOn(pes[0], "cowfs", func(v *semperos.VPE, p *semperos.Proc) {
		svc := &cowService{v: v}
		var err error
		svc.blockSel, err = v.AllocMem(p, 4096, semperos.PermRW)
		if err != nil {
			panic(err)
		}
		err = v.RegisterService(p, "cowfs", semperos.ServiceHandlers{
			Open: func(p *semperos.Proc, clientVPE int, args any) semperos.SvcResult {
				return semperos.SvcResult{Ident: uint64(clientVPE)}
			},
			// Obtain: hand out a read-only child of the current block.
			Obtain: func(p *semperos.Proc, ident uint64, args any) semperos.SvcResult {
				return semperos.SvcResult{SrcSel: svc.blockSel, Reply: svc.gen}
			},
			// Request: a write triggers copy-on-write.
			Request: func(p *semperos.Proc, ident uint64, args any) any {
				if _, ok := args.(reqWrite); !ok {
					return semperos.ErrDenied
				}
				// 1. Allocate the private copy (the "write side").
				copySel, err := v.AllocMem(p, 4096, semperos.PermRW)
				if err != nil {
					panic(err)
				}
				// 2. Revoke every capability handed out for the old block:
				// one recursive revoke, possibly spanning kernels.
				t0 := p.Now()
				if err := v.Revoke(p, svc.blockSel); err != nil {
					panic(err)
				}
				took := p.Now() - t0
				svc.blockSel = copySel
				svc.gen++
				fmt.Printf("[%7d cyc] cowfs: write -> revoked all readers in %d cycles (%.2f µs), generation %d\n",
					p.Now(), took, float64(took)/2000, svc.gen)
				return svc.gen
			},
		})
		if err != nil {
			panic(err)
		}
		svcReady.Complete(struct{}{})
		v.ServeLoop(p)
	}); err != nil {
		panic(err)
	}

	// Readers in the other PE group obtain read capabilities.
	var attached sim.WaitGroup
	attached.Add(3)
	for i := 0; i < 3; i++ {
		i := i
		if _, err := sys.SpawnOn(pes[3+i], fmt.Sprintf("reader%d", i), func(v *semperos.VPE, p *semperos.Proc) {
			svcReady.Wait(p)
			sess, err := v.CreateSession(p, "cowfs", nil)
			if err != nil {
				panic(err)
			}
			sel, gen, err := sess.Obtain(p, nil)
			if err != nil {
				panic(err)
			}
			fmt.Printf("[%7d cyc] reader%d: mapped block generation %v via capability %d\n",
				p.Now(), i, gen, sel)
			attached.Done()
			readersDone.Wait(p)
			// After the writer's copy-on-write, our capability is gone:
			// activating it must fail.
			if err := v.Activate(p, sel, 10); err == nil {
				panic("stale read capability survived copy-on-write")
			}
			fmt.Printf("[%7d cyc] reader%d: old mapping correctly dead after write\n", p.Now(), i)
		}); err != nil {
			panic(err)
		}
	}

	// The writer triggers copy-on-write.
	if _, err := sys.SpawnOn(pes[1], "writer", func(v *semperos.VPE, p *semperos.Proc) {
		svcReady.Wait(p)
		attached.Wait(p)
		sess, err := v.CreateSession(p, "cowfs", nil)
		if err != nil {
			panic(err)
		}
		gen, err := sess.Call(p, reqWrite{Block: 0})
		if err != nil {
			panic(err)
		}
		// Obtain the fresh private copy.
		sel, _, err := sess.Obtain(p, nil)
		if err != nil {
			panic(err)
		}
		fmt.Printf("[%7d cyc] writer: owns private copy (generation %v) via capability %d\n",
			p.Now(), gen, sel)
		readersDone.Complete(struct{}{})
	}); err != nil {
		panic(err)
	}

	sys.Run()
	fmt.Println("\ncopy-on-write via recursive revocation: done")
}
