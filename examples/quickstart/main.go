// Quickstart: boot a two-kernel SemperOS machine, let one application
// obtain a memory capability from another across PE-group boundaries (the
// distributed obtain protocol), use it for real data transfer through the
// DTU, and finally revoke it recursively.
package main

import (
	"fmt"

	"repro"
	"repro/internal/sim"
)

func main() {
	// Two kernels, four user PEs: PEs 2,3 belong to kernel 0 and PEs 4,5 to
	// kernel 1, so the two applications below live in different PE groups.
	sys := semperos.MustNew(semperos.Config{Kernels: 2, UserPEs: 4})
	defer sys.Close()

	ready := sim.NewFuture[semperos.Selector](sys.Eng)
	done := sim.NewFuture[struct{}](sys.Eng)

	owner, err := sys.SpawnOn(2, "owner", func(v *semperos.VPE, p *semperos.Proc) {
		// Allocate 4 KiB of global memory; the kernel hands back a root
		// memory capability.
		sel, err := v.AllocMem(p, 4096, semperos.PermRW)
		if err != nil {
			panic(err)
		}
		fmt.Printf("[%6d cyc] owner: allocated memory, capability %d\n", p.Now(), sel)

		// Write a message through our own DTU memory endpoint.
		if err := v.Activate(p, sel, 10); err != nil {
			panic(err)
		}
		if err := v.DTU().WriteMem(p, 10, 0, []byte("hello from PE2")); err != nil {
			panic(err)
		}
		ready.Complete(sel)

		// Wait for the peer, then revoke: the peer's derived capability
		// dies with ours, and its endpoint is invalidated.
		done.Wait(p)
		if err := v.Revoke(p, sel); err != nil {
			panic(err)
		}
		fmt.Printf("[%6d cyc] owner: revoked the capability tree\n", p.Now())
	})
	if err != nil {
		panic(err)
	}

	if _, err := sys.SpawnOn(4, "reader", func(v *semperos.VPE, p *semperos.Proc) {
		sel := ready.Wait(p)
		// Group-spanning obtain: our kernel (1) runs the distributed
		// protocol with the owner's kernel (0).
		mine, err := v.ObtainFrom(p, owner.ID, sel)
		if err != nil {
			panic(err)
		}
		fmt.Printf("[%6d cyc] reader: obtained capability %d across groups\n", p.Now(), mine)

		if err := v.Activate(p, mine, 10); err != nil {
			panic(err)
		}
		buf, err := v.DTU().ReadMem(p, 10, 0, 14)
		if err != nil {
			panic(err)
		}
		fmt.Printf("[%6d cyc] reader: read %q through the DTU\n", p.Now(), buf)
		done.Complete(struct{}{})
	}); err != nil {
		panic(err)
	}

	sys.Run()

	k0, k1 := sys.Kernel(0).Stats(), sys.Kernel(1).Stats()
	fmt.Printf("\nkernel 0: %d syscalls, %d inter-kernel calls sent\n", k0.Syscalls, k0.IKCSent)
	fmt.Printf("kernel 1: %d syscalls, %d inter-kernel calls sent\n", k1.Syscalls, k1.IKCSent)
	fmt.Printf("caps created: %d, deleted: %d\n", k0.CapsCreated+k1.CapsCreated, k0.CapsDeleted+k1.CapsDeleted)
}
