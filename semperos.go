// Package semperos is a Go reproduction of "SemperOS: A Distributed
// Capability System" (Hille, Asmussen, Bhatotia, Härtig — USENIX ATC 2019).
//
// SemperOS is a multikernel microkernel OS for large non-cache-coherent
// manycore machines: several microkernels, each owning a group of
// processing elements (PEs), cooperate through inter-kernel calls to
// provide one system-wide distributed capability space. This package is the
// public facade over the full implementation:
//
//   - internal/sim — deterministic discrete-event simulation engine
//   - internal/noc — 2D-mesh network-on-chip
//   - internal/dtu — per-PE data transfer units (NoC-level isolation)
//   - internal/ddl — distributed data lookup (capability addressing)
//   - internal/cap — capability trees / mapping database
//   - internal/core — the SemperOS multikernel (the paper's contribution)
//   - internal/m3 — single-kernel M3 baseline
//   - internal/m3fs — the in-memory filesystem service
//   - internal/trace, internal/workload, internal/bench — evaluation
//
// A minimal session looks like:
//
//	sys := semperos.MustNew(semperos.Config{Kernels: 2, UserPEs: 4})
//	defer sys.Close()
//	owner, _ := sys.Spawn("owner", func(v *semperos.VPE, p *semperos.Proc) {
//	    sel, _ := v.AllocMem(p, 4096, semperos.PermRW)
//	    // ... share sel with other VPEs, revoke it later ...
//	})
//	sys.Run()
//
// See the examples directory for complete programs and DESIGN.md for the
// architecture and experiment index.
package semperos

import (
	"repro/internal/cap"
	"repro/internal/core"
	"repro/internal/dtu"
	"repro/internal/sim"
)

// Re-exported core types: the public API of the system.
type (
	// Config describes a SemperOS machine (kernels, user PEs, memory).
	Config = core.Config
	// System is a booted machine.
	System = core.System
	// Kernel is one SemperOS microkernel.
	Kernel = core.Kernel
	// VPE is a virtual PE: the unit of execution, owning a capability space.
	VPE = core.VPE
	// Program is the code a VPE runs.
	Program = core.Program
	// Proc is a cooperative simulation process.
	Proc = sim.Proc
	// Session is a client connection to a service.
	Session = core.Session
	// ServiceHandlers are the callbacks a service implements.
	ServiceHandlers = core.ServiceHandlers
	// SvcResult is a service's answer to a kernel query.
	SvcResult = core.SvcResult
	// ExchangeQuery asks a VPE for consent to a capability exchange.
	ExchangeQuery = core.ExchangeQuery
	// ExchangeAnswer is the VPE's verdict.
	ExchangeAnswer = core.ExchangeAnswer
	// Selector names a capability within a VPE's capability space.
	Selector = cap.Selector
	// Perm is a permission bit set.
	Perm = dtu.Perm
	// CostModel holds the calibrated cycle costs.
	CostModel = core.CostModel
	// IKCBatching configures the unified inter-kernel transport: which
	// operation families batch their requests into coalesced
	// per-destination envelopes, and when the queues flush.
	IKCBatching = core.IKCBatching
	// Errno is the system's error code space.
	Errno = core.Errno
	// Time is a point in simulated time (cycles at 2 GHz).
	Time = sim.Time
	// Duration is a span of simulated time (cycles).
	Duration = sim.Duration
)

// Permission bits.
const (
	PermR  = dtu.PermR
	PermW  = dtu.PermW
	PermX  = dtu.PermX
	PermRW = dtu.PermRW
)

// Architectural limits (paper §5.1).
const (
	MaxKernels      = core.MaxKernels
	MaxPEsPerKernel = core.MaxPEsPerKernel
	MaxInflight     = core.MaxInflight
)

// Common error codes.
const (
	OK              = core.OK
	ErrNoSuchCap    = core.ErrNoSuchCap
	ErrDenied       = core.ErrDenied
	ErrInRevocation = core.ErrInRevocation
	ErrVPEGone      = core.ErrVPEGone
	ErrNoService    = core.ErrNoService
)

// New builds and boots a machine.
func New(cfg Config) (*System, error) { return core.NewSystem(cfg) }

// MustNew is New for constant configurations; it panics on error.
func MustNew(cfg Config) *System { return core.MustNew(cfg) }

// DefaultCostModel returns the calibrated cost model used by the
// experiments (see DESIGN.md for the calibration targets).
func DefaultCostModel() CostModel { return core.DefaultCostModel() }
