package core

import (
	"repro/internal/cap"
	"repro/internal/ddl"
	"repro/internal/dtu"
)

// Kernel DTU endpoint layout. User-PE endpoints live in vpe.go; these are
// the receive endpoints every kernel configures at boot (endpoints 0 and 1
// are left unconfigured so the kernel layout cannot be confused with the
// user layout, whose syscall channel occupies them).
const (
	// kernelSyscallEP0 is the first of the SyscallRecvEPs syscall receive
	// endpoints (kernelSyscallEP0 .. kernelSyscallEP0+SyscallRecvEPs-1);
	// a VPE's syscall send endpoint targets one of them by PE number.
	kernelSyscallEP0 = 2
	// ikcBatchEP receives coalesced request envelopes (ikcBatch). Its slot
	// budget covers the in-flight bound of every peer: one envelope is one
	// wire message and occupies one slot, mirroring the guarantee the
	// in-flight accounting gives direct sends.
	ikcBatchEP = kernelSyscallEP0 + SyscallRecvEPs
	// ikcReplyEP receives coalesced reply envelopes. The demux frees each
	// carried message as it completes the matching pending future, so the
	// shared slot is released within the delivery event itself.
	ikcReplyEP = ikcBatchEP + 1
)

// Errno is the error code space shared by system calls and inter-kernel
// calls.
type Errno uint8

// Error codes.
const (
	OK Errno = iota
	ErrNoSuchCap
	ErrDenied
	ErrInRevocation
	ErrVPEGone
	ErrNoService
	ErrBadArgs
	ErrOutOfMem
	ErrExists
	// ErrPeerDead is the degraded-mode answer for requests to a kernel
	// that exhausted its retry budget (see reliability.go): the future
	// completes with this error instead of hanging.
	ErrPeerDead
)

func (e Errno) Error() string {
	switch e {
	case OK:
		return "ok"
	case ErrNoSuchCap:
		return "no such capability"
	case ErrDenied:
		return "denied"
	case ErrInRevocation:
		return "capability is being revoked"
	case ErrVPEGone:
		return "VPE has exited"
	case ErrNoService:
		return "no such service"
	case ErrBadArgs:
		return "bad arguments"
	case ErrOutOfMem:
		return "out of memory"
	case ErrExists:
		return "already exists"
	case ErrPeerDead:
		return "peer kernel dead"
	default:
		return "unknown error"
	}
}

// Err converts an Errno into an error (nil for OK).
func (e Errno) Err() error {
	if e == OK {
		return nil
	}
	return e
}

// sysKind enumerates the system calls.
type sysKind uint8

const (
	sysAllocMem sysKind = iota
	sysDeriveMem
	sysObtainFrom
	sysDelegateTo
	sysRevoke
	sysCreateRgate
	sysCreateSession
	sysObtainSess
	sysDelegateSess
	sysActivate
	sysRegisterService
	sysExit
	sysNoop
)

func (k sysKind) String() string {
	names := [...]string{
		"allocmem", "derivemem", "obtainfrom", "delegateto", "revoke",
		"creatergate", "createsession", "obtainsess", "delegatesess",
		"activate", "registerservice", "exit", "noop",
	}
	if int(k) < len(names) {
		return names[k]
	}
	return "unknown"
}

// sysRequest is the payload of a syscall message from a VPE to its kernel.
type sysRequest struct {
	Kind sysKind
	VPE  int // issuing VPE

	Sel       cap.Selector // primary capability selector
	TargetVPE int          // peer VPE for direct exchanges
	TargetSel cap.Selector // peer selector for direct exchanges
	Size      uint64       // allocation size / derive length
	Off       uint64       // derive offset
	EP        int          // endpoint index for activate / rgate
	Perm      dtu.Perm
	Name      string // service name
	Args      any    // opaque protocol arguments (service-defined)
}

// sysReply is the payload of a syscall reply.
type sysReply struct {
	Err  Errno
	Sel  cap.Selector
	Args any
}

// ikcKind enumerates the inter-kernel calls. They fall into the paper's
// three functional groups: startup/shutdown (handled at boot in this
// implementation), service connections (ikcSession, ikcObtainSess,
// ikcDelegateSess) and capability exchange/revocation (the rest).
type ikcKind uint8

const (
	ikcObtain ikcKind = iota
	ikcDelegate
	ikcDelegateAck
	ikcRevoke
	ikcRevokeReply // carried as a reply, listed for stats symmetry
	ikcUnlinkChild
	ikcSession
	ikcObtainSess
	ikcDelegateSess
	ikcRevokeBatch
	// ikcSvcLookup resolves a service name at its directory home kernel
	// (rounds mode, see service.go): the reply carries the owning kernel and
	// capability key, which the requester caches.
	ikcSvcLookup
	// ikcSvcRegister publishes a service registration to the name's
	// directory home kernel (rounds mode); the home detects duplicates.
	ikcSvcRegister
	// ikcDRAMRefill asks kernel 0 to carve a span out of the central DRAM
	// pool when a kernel's pre-carved quota runs dry (rounds mode).
	ikcDRAMRefill
	// ikcRejoin is the recovery handshake: a kernel that crashed and came
	// back broadcasts it (with its bumped incarnation number) so every peer
	// clears its dead verdict and discards state keyed by the dead
	// incarnation (rejoin.go).
	ikcRejoin
)

func (k ikcKind) String() string {
	names := [...]string{
		"obtain", "delegate", "delegate-ack", "revoke", "revoke-reply",
		"unlink-child", "session", "obtain-sess", "delegate-sess",
		"revoke-batch", "svc-lookup", "svc-register", "dram-refill",
		"rejoin",
	}
	if int(k) < len(names) {
		return names[k]
	}
	return "unknown"
}

// ikcRequest is the payload of an inter-kernel request message.
type ikcRequest struct {
	Seq  uint64
	From int // sender kernel id
	// Inc is the sender's incarnation number at stamp time. A receiver
	// running the reliable layer rejects requests from an incarnation older
	// than the one it has observed — a stale retransmit from before the
	// sender's crash — and implicitly admits a newer one (rejoin.go).
	Inc  uint32
	Kind ikcKind

	Key    ddl.Key      // primary capability (owner side)
	Keys   []ddl.Key    // batched revocation targets (ikcRevokeBatch)
	Child  ddl.Key      // child capability key (acks, unlinks, revokes)
	VPE    int          // VPE the operation acts for
	Sel    cap.Selector // selector at the owner side (direct exchange)
	Perm   dtu.Perm
	Ident  uint64 // session identifier for session-scoped calls
	Ok     bool   // delegate-ack verdict
	Object cap.Object
	Name   string // service name (ikcSvcLookup, ikcSvcRegister)
	Args   any

	// ChildPE/ChildVPE/ChildObj are the requester-minted child identity;
	// the owner composes the final child key from them once the object type
	// is known, so both kernels agree on the key with one round trip.
	ChildPE  int
	ChildVPE int
	ChildObj uint64
}

// ikcBatch is the unified transport's aggregation envelope: N requests of
// one kind from one kernel to another, travelling as one DTU wire message
// (the requests are the items of a single coalesced vector — one NoC
// transfer, one receive slot, one delivery event and one kernel-thread
// pickup at the destination). The sender's flush assembles it from a
// per-destination queue (transport.go, flushLocked) and the receiver
// reassembles it from the delivered vector (ikc.go, recvBatch), which also
// verifies the one-kind invariant. The requests keep their individual
// sequence numbers, so each is answered by its own reply; only the request
// direction is coalesced.
type ikcBatch struct {
	From int
	Kind ikcKind
	Reqs []*ikcRequest
}

// items lays the envelope out as the coalesced DTU vector it travels in.
func (b *ikcBatch) items() []dtu.VecItem {
	items := make([]dtu.VecItem, len(b.Reqs))
	for i, r := range b.Reqs {
		items[i] = dtu.VecItem{Payload: r, Size: ikcBatchedReqBytes}
	}
	return items
}

// ikcReply is the payload of an inter-kernel reply message. Replies are
// matched to their request by sequence number. A reply either travels as
// its own wire message (the unbatched transport) or rides a reply
// envelope: the sink (transport.go, flushReplies) coalesces the replies
// queued for one destination kernel into a single vectored DTU transfer
// into the destination's ikcReplyEP, where recvReplyVec demuxes them — in
// enqueue order — into the pending per-request futures.
type ikcReply struct {
	Seq  uint64
	From int
	// Inc echoes the request's incarnation stamp, so a requester that
	// crashed and recovered in between rejects the late reply — it answers
	// a question asked by the dead incarnation (rejoin.go).
	Inc uint32
	Err Errno

	Key    ddl.Key
	Object cap.Object
	Perm   dtu.Perm
	Ident  uint64
	Args   any
}

// ExchangeQuery is delivered to a VPE when another VPE wants to exchange a
// capability with it (paper Fig. 3, steps A.2/B.3: the kernel asks the
// other party for consent).
type ExchangeQuery struct {
	// Obtain is true for an obtain (the peer takes a capability from this
	// VPE), false for a delegate (the peer pushes one to this VPE).
	Obtain bool
	// PeerVPE is the global id of the initiating VPE.
	PeerVPE int
	// Sel is the local selector involved (source for obtain).
	Sel cap.Selector
}

// ExchangeAnswer is the VPE's verdict on an ExchangeQuery.
type ExchangeAnswer struct {
	Accept bool
}
