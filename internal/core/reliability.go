package core

import "repro/internal/sim"

// Reliable IKC mode. The baseline inter-kernel protocol assumes the
// lossless fabric the paper assumes: a dropped message hangs its future
// and a stray reply panics. When a fault plan is attached
// (Config.Faults) — or Config.Reliability is set explicitly — every
// kernel runs this layer on top of the unchanged request/reply protocol:
//
//   - Sender: every wire transmission (direct request or coalesced
//     envelope) is tracked with a retransmission timer. On expiry the
//     still-unanswered requests are re-sent, the timeout doubles (capped
//     at RTOMax), and after MaxRetries expiries the destination kernel is
//     declared dead: all its outstanding futures complete with
//     ErrPeerDead, new requests to it fail fast, and the service
//     directory stops routing to it (service.go). Death is a per-observer
//     verdict — each kernel judges its peers from its own traffic only.
//   - Receiver: requests are deduplicated by (sender, sequence number),
//     so a retransmitted request whose original made it through dispatches
//     exactly once; the reply is cached (bounded FIFO, ReplyCache entries
//     per peer) and replayed for duplicates whose reply was the lost
//     message. Late or duplicate replies at the requester are counted
//     (LateReplies), never fatal.
//   - Credits: in reliable mode the sender's in-flight credit returns
//     when the transmission resolves (all replies in, or the peer
//     declared dead) instead of at receiver pickup — a lost request must
//     not leak the credit, and retransmits reuse the original's slot so
//     the receiver's bounded slot budget still holds.
//
// With neither Faults nor Reliability configured none of this code runs
// and the event trace is byte-identical to the baseline.

// Reliability tunes the reliable IKC mode. The zero value of each field
// selects its default.
type Reliability struct {
	// RTOBase is the initial retransmission timeout per transmission.
	RTOBase sim.Duration
	// RTOMax caps the exponential backoff.
	RTOMax sim.Duration
	// MaxRetries is the retry budget per transmission; one more expiry
	// declares the destination dead.
	MaxRetries int
	// ReplyCache bounds the per-peer reply-retransmission cache.
	ReplyCache int
}

// Reliable-mode defaults. The base timeout must comfortably exceed a
// loaded round trip (compose + NoC + dispatch queueing + handler work,
// which can itself block on nested round trips); 30µs (60k cycles at
// 2GHz) keeps spurious retransmits rare at the sweep's contention levels
// while recovering losses long before the makespan scale.
const (
	DefaultRTOBase    sim.Duration = 60_000
	DefaultRTOMax     sim.Duration = 960_000
	DefaultMaxRetries              = 8
	DefaultReplyCache              = 128
)

func (r Reliability) withDefaults() Reliability {
	if r.RTOBase == 0 {
		r.RTOBase = DefaultRTOBase
	}
	if r.RTOMax == 0 {
		r.RTOMax = DefaultRTOMax
	}
	if r.RTOMax < r.RTOBase {
		r.RTOMax = r.RTOBase
	}
	if r.MaxRetries == 0 {
		r.MaxRetries = DefaultMaxRetries
	}
	if r.ReplyCache == 0 {
		r.ReplyCache = DefaultReplyCache
	}
	return r
}

// xmitState tracks one wire transmission — a direct request or a
// coalesced envelope of several — until every carried request is answered
// or the destination is declared dead.
type xmitState struct {
	dst       int
	kind      ikcKind
	env       bool // envelope (vectored) vs direct send
	reqs      []*ikcRequest
	remaining int
	tries     int
	rto       sim.Duration
	firstSent sim.Time
	retried   bool
	done      bool
}

type dedupState uint8

const (
	dedupInProgress dedupState = iota
	dedupDone
)

type dedupEntry struct {
	state dedupState
	rep   *ikcReply
}

// peerDedup is the receiver-side duplicate filter for one sending peer:
// every dispatched sequence number, with the reply cached once it exists.
// doneOrder drives FIFO eviction of completed entries beyond ReplyCache;
// in-progress entries are never evicted (their reply is still owed).
type peerDedup struct {
	entries   map[uint64]*dedupEntry
	doneOrder []uint64
}

// relState is one kernel's half of the reliable layer.
type relState struct {
	k   *Kernel
	cfg Reliability
	// bySeq maps every unanswered sequence number to its transmission.
	bySeq map[uint64]*xmitState
	// byDst lists the live transmissions per destination in first-send
	// order (a slice, not a map: dead-peer aborts must complete futures
	// in a deterministic order).
	byDst map[int][]*xmitState
	dedup map[int]*peerDedup
	// dead is this kernel's own verdict on its peers; sticky until the peer
	// rejoins with a newer incarnation (admitIncarnation).
	dead map[int]bool
	// peerInc is the highest incarnation number observed per peer; a
	// missing entry means the boot incarnation 1. Requests stamped with an
	// older incarnation are stale retransmits from before the peer's crash
	// and are rejected; a newer stamp admits the rejoined peer.
	peerInc map[int]uint32
}

func newRelState(k *Kernel, cfg Reliability) *relState {
	return &relState{
		k:       k,
		cfg:     cfg,
		bySeq:   make(map[uint64]*xmitState),
		byDst:   make(map[int][]*xmitState),
		dedup:   make(map[int]*peerDedup),
		dead:    make(map[int]bool),
		peerInc: make(map[int]uint32),
	}
}

// incOf returns the highest incarnation observed for a peer.
func (rt *relState) incOf(from int) uint32 {
	if inc, ok := rt.peerInc[from]; ok {
		return inc
	}
	return 1
}

// reliable reports whether this kernel runs the reliable IKC layer.
func (k *Kernel) reliable() bool { return k.rt != nil }

// peerDead reports whether this kernel has declared dst dead.
func (k *Kernel) peerDead(dst int) bool { return k.rt != nil && k.rt.dead[dst] }

// failFast completes a freshly minted request's future with ErrPeerDead
// without ever putting it on the wire.
func (rt *relState) failFast(seq uint64, dst int) {
	k := rt.k
	k.stats.FailFast++
	fut := k.pending[seq]
	delete(k.pending, seq)
	if fut != nil {
		fut.Complete(&ikcReply{Seq: seq, From: dst, Err: ErrPeerDead})
	}
}

// track registers a transmission that just left on the wire and arms its
// retransmission timer.
func (rt *relState) track(dst int, reqs []*ikcRequest, env bool, kind ikcKind) {
	xm := &xmitState{
		dst:       dst,
		kind:      kind,
		env:       env,
		reqs:      reqs,
		remaining: len(reqs),
		rto:       rt.cfg.RTOBase,
		firstSent: rt.k.dom.Now(),
	}
	for _, r := range reqs {
		rt.bySeq[r.Seq] = xm
	}
	rt.byDst[dst] = append(rt.byDst[dst], xm)
	rt.arm(xm)
}

func (rt *relState) arm(xm *xmitState) {
	rt.k.dom.Schedule(xm.rto, func() { rt.expire(xm) })
}

// onReply marks seq answered. When the last request of its transmission
// resolves, the transmission completes: the in-flight credit returns and
// a retransmitted transmission records its recovery latency.
func (rt *relState) onReply(seq uint64) {
	xm := rt.bySeq[seq]
	if xm == nil {
		return
	}
	delete(rt.bySeq, seq)
	xm.remaining--
	if xm.remaining > 0 || xm.done {
		return
	}
	xm.done = true
	rt.unlink(xm)
	k := rt.k
	if xm.retried {
		k.stats.Recovered++
		k.stats.RecoveryCycles += k.dom.Now() - xm.firstSent
	}
	k.inflightTo(xm.dst).Release()
}

// expire is the retransmission timer (event context). Still-unanswered
// requests of the transmission are re-sent with doubled timeout; past the
// retry budget the destination is declared dead instead.
func (rt *relState) expire(xm *xmitState) {
	if xm.done {
		return
	}
	k := rt.k
	if rt.dead[xm.dst] {
		rt.unlink(xm)
		rt.abort(xm)
		return
	}
	if xm.tries >= rt.cfg.MaxRetries {
		rt.markDead(xm.dst)
		return
	}
	xm.tries++
	xm.retried = true
	xm.rto = min(xm.rto*2, rt.cfg.RTOMax)
	// Only requests this transmission still owns are re-sent: a request
	// answered (or aborted) since the last send left bySeq.
	live := make([]*ikcRequest, 0, len(xm.reqs))
	for _, r := range xm.reqs {
		if rt.bySeq[r.Seq] == xm {
			live = append(live, r)
		}
	}
	if len(live) == 0 {
		return
	}
	k.stats.Retransmits++
	k.stats.Busy += k.sys.Cost.IKCCompose
	dk := k.sys.kernels[xm.dst]
	k.dom.Schedule(k.sys.Cost.IKCCompose, func() {
		if xm.done || rt.dead[xm.dst] {
			return
		}
		// No new in-flight credit: the retransmit reuses the original's
		// slot (the receiver either lost the original or will dedup this
		// copy, so its slot budget is respected either way).
		if xm.env {
			env := &ikcBatch{From: k.id, Kind: xm.kind, Reqs: live}
			must(k.dtu.SendVecTo(dk.pe, ikcBatchEP, env.items()))
		} else {
			for _, req := range live {
				req := req
				k.sys.Net.Send(k.pe, dk.pe, ikcMsgBytes, func() { dk.recvRequest(req) })
			}
		}
	})
	rt.arm(xm)
}

// markDead is the degradation step: dst exhausted its retry budget, so
// this kernel stops talking to it. Every outstanding transmission aborts,
// completing its futures with ErrPeerDead in first-send order.
func (rt *relState) markDead(dst int) {
	if rt.dead[dst] {
		return
	}
	rt.dead[dst] = true
	rt.k.stats.DeadPeers++
	xms := rt.byDst[dst]
	delete(rt.byDst, dst)
	for _, xm := range xms {
		if !xm.done {
			rt.abort(xm)
		}
	}
}

// abort completes a transmission's unanswered futures with ErrPeerDead
// and returns its in-flight credit. The caller has already unlinked xm
// from byDst (or is draining the whole destination).
func (rt *relState) abort(xm *xmitState) {
	xm.done = true
	k := rt.k
	for _, req := range xm.reqs {
		if rt.bySeq[req.Seq] != xm {
			continue
		}
		delete(rt.bySeq, req.Seq)
		fut := k.pending[req.Seq]
		delete(k.pending, req.Seq)
		if fut != nil {
			fut.Complete(&ikcReply{Seq: req.Seq, From: xm.dst, Err: ErrPeerDead})
		}
	}
	k.inflightTo(xm.dst).Release()
}

// unlink removes xm from its destination's live list.
func (rt *relState) unlink(xm *xmitState) {
	xms := rt.byDst[xm.dst]
	for i, x := range xms {
		if x == xm {
			rt.byDst[xm.dst] = append(xms[:i], xms[i+1:]...)
			return
		}
	}
}

func (rt *relState) peer(src int) *peerDedup {
	pd := rt.dedup[src]
	if pd == nil {
		pd = &peerDedup{entries: make(map[uint64]*dedupEntry)}
		rt.dedup[src] = pd
	}
	return pd
}

// dedupCheck runs before dispatching a received request: true means
// dispatch it, false means it is a duplicate — suppressed, and if its
// reply is already cached, answered by replaying that reply (the original
// reply was evidently the lost message).
func (k *Kernel) dedupCheck(req *ikcRequest) bool {
	if k.rt == nil {
		return true
	}
	pd := k.rt.peer(req.From)
	if e := pd.entries[req.Seq]; e != nil {
		k.stats.DupSuppressed++
		if e.state == dedupDone && e.rep != nil {
			k.stats.ReplayedReplies++
			src := k.sys.kernels[req.From]
			rep := e.rep
			k.sys.Net.Send(k.pe, src.pe, ikcRepBytes, func() { src.recvReply(rep) })
		}
		return false
	}
	pd.entries[req.Seq] = &dedupEntry{state: dedupInProgress}
	return true
}

// cacheReply records the reply for (from, seq) so a duplicate of the
// request can be answered by replay. Completed entries beyond the cache
// bound evict FIFO; with MaxInflight bounding concurrent requests per
// pair, a duplicate arriving after its entry's eviction would require a
// retransmit delayed past ReplyCache newer completions — out of scope by
// design (the sweep's timeouts resolve far sooner).
func (k *Kernel) cacheReply(from int, seq uint64, rep *ikcReply) {
	if k.rt == nil {
		return
	}
	pd := k.rt.peer(from)
	e := pd.entries[seq]
	if e == nil {
		e = &dedupEntry{}
		pd.entries[seq] = e
	}
	e.state = dedupDone
	e.rep = rep
	pd.doneOrder = append(pd.doneOrder, seq)
	for len(pd.doneOrder) > k.rt.cfg.ReplyCache {
		delete(pd.entries, pd.doneOrder[0])
		pd.doneOrder = pd.doneOrder[1:]
	}
}
