package core

import (
	"repro/internal/cap"
	"repro/internal/ddl"
	"repro/internal/dtu"
	"repro/internal/sim"
)

// handleSyscall runs on a syscall-pool thread with the CPU held. It decodes
// the request, executes the handler and replies to the VPE through the DTU
// (freeing the syscall slot and returning the VPE's credit).
func (k *Kernel) handleSyscall(p *sim.Proc, m *dtu.Message) {
	req := m.Payload.(*sysRequest)
	k.stats.Syscalls++
	k.exec(p, k.sys.Cost.SyscallDispatch)

	var rep *sysReply
	switch req.Kind {
	case sysAllocMem:
		rep = k.sysAllocMem(p, req)
	case sysDeriveMem:
		rep = k.sysDeriveMem(p, req)
	case sysObtainFrom:
		rep = k.sysObtainFrom(p, req)
	case sysDelegateTo:
		rep = k.sysDelegateTo(p, req)
	case sysRevoke:
		rep = k.sysRevoke(p, req)
	case sysCreateRgate:
		rep = k.sysCreateRgate(p, req)
	case sysCreateSession:
		rep = k.sysCreateSession(p, req)
	case sysObtainSess:
		rep = k.sysObtainSess(p, req)
	case sysDelegateSess:
		rep = k.sysDelegateSess(p, req)
	case sysActivate:
		rep = k.sysActivate(p, req)
	case sysRegisterService:
		rep = k.sysRegisterService(p, req)
	case sysExit:
		rep = k.sysExit(p, req)
	case sysNoop:
		rep = &sysReply{}
	default:
		rep = &sysReply{Err: ErrBadArgs}
	}

	k.exec(p, k.sys.Cost.SyscallReply)
	k.dtu.Reply(m, rep, syscallRepBytes)
}

// insertCap stores a freshly created capability, charging creation and
// linking costs.
func (k *Kernel) insertCap(p *sim.Proc, c *cap.Capability) {
	k.exec(p, k.sys.Cost.CapCreate+k.sys.Cost.CapLink)
	k.store.Insert(c)
	k.stats.CapsCreated++
}

// lookupSel finds a VPE's capability and charges lookup plus DDL-decoding
// cost (SemperOS references capabilities by DDL key rather than pointer;
// the decode is the overhead measured in Table 3).
func (k *Kernel) lookupSel(p *sim.Proc, vpe int, sel cap.Selector) *cap.Capability {
	k.exec(p, k.sys.Cost.CapLookup+k.sys.Cost.DDLDecode)
	return k.store.LookupSel(vpe, sel)
}

func (k *Kernel) sysAllocMem(p *sim.Proc, req *sysRequest) *sysReply {
	var pe int
	var off uint64
	if k.sys.rounds {
		// Rounds mode: allocate from the kernel's pre-carved quota (a refill
		// round trip to kernel 0 when dry); the shared allocator would be a
		// cross-domain mutation.
		var errno Errno
		pe, off, errno = k.allocDRAMRounds(p, req.Size)
		if errno != OK {
			return &sysReply{Err: errno}
		}
	} else {
		var err error
		pe, off, err = k.sys.allocDRAM(req.Size)
		if err != nil {
			return &sysReply{Err: ErrOutOfMem}
		}
	}
	v := k.vpeOf(req.VPE)
	if v == nil {
		return &sysReply{Err: ErrVPEGone}
	}
	c := &cap.Capability{
		Key:    k.mintKey(v.PE, v.ID, ddl.TypeMem),
		Owner:  v.ID,
		Sel:    k.store.AllocSel(v.ID),
		Object: &cap.MemObject{PE: pe, Off: off, Size: req.Size, Perm: req.Perm},
		Perm:   req.Perm,
	}
	k.insertCap(p, c)
	return &sysReply{Sel: c.Sel}
}

func (k *Kernel) sysDeriveMem(p *sim.Proc, req *sysRequest) *sysReply {
	parent := k.lookupSel(p, req.VPE, req.Sel)
	if parent == nil {
		return &sysReply{Err: ErrNoSuchCap}
	}
	if parent.Marked {
		return &sysReply{Err: ErrInRevocation}
	}
	mo, ok := parent.Object.(*cap.MemObject)
	if !ok {
		return &sysReply{Err: ErrBadArgs}
	}
	if req.Off+req.Size > mo.Size {
		return &sysReply{Err: ErrBadArgs}
	}
	if req.Perm&^parent.Perm != 0 {
		return &sysReply{Err: ErrDenied}
	}
	v := k.vpeOf(req.VPE)
	if v == nil {
		return &sysReply{Err: ErrVPEGone}
	}
	k.stats.Obtains++ // a derive is a local exchange with oneself
	child := &cap.Capability{
		Key:    k.mintKey(v.PE, v.ID, ddl.TypeMem),
		Owner:  v.ID,
		Sel:    k.store.AllocSel(v.ID),
		Object: &cap.MemObject{PE: mo.PE, Off: mo.Off + req.Off, Size: req.Size, Perm: req.Perm},
		Perm:   req.Perm,
		Parent: parent.Key,
	}
	parent.AddChild(child.Key)
	k.exec(p, k.sys.Cost.CapLink)
	k.insertCap(p, child)
	return &sysReply{Sel: child.Sel}
}

func (k *Kernel) sysCreateRgate(p *sim.Proc, req *sysRequest) *sysReply {
	v := k.vpeOf(req.VPE)
	if v == nil {
		return &sysReply{Err: ErrVPEGone}
	}
	slots := int(req.Size)
	if slots <= 0 || slots > dtu.DefaultSlots {
		slots = dtu.DefaultSlots
	}
	k.exec(p, k.sys.Cost.EPConfig)
	if err := v.dtu.ConfigureRecv(k.dtu, req.EP, slots, nil); err != nil {
		return &sysReply{Err: ErrBadArgs}
	}
	c := &cap.Capability{
		Key:    k.mintKey(v.PE, v.ID, ddl.TypeRecv),
		Owner:  v.ID,
		Sel:    k.store.AllocSel(v.ID),
		Object: &cap.RecvObject{PE: v.PE, EP: req.EP, Slots: slots},
		Perm:   dtu.PermRW,
	}
	k.insertCap(p, c)
	return &sysReply{Sel: c.Sel}
}

func (k *Kernel) sysActivate(p *sim.Proc, req *sysRequest) *sysReply {
	v := k.vpeOf(req.VPE)
	if v == nil {
		return &sysReply{Err: ErrVPEGone}
	}
	c := k.lookupSel(p, req.VPE, req.Sel)
	if c == nil {
		return &sysReply{Err: ErrNoSuchCap}
	}
	if c.Marked {
		return &sysReply{Err: ErrInRevocation}
	}
	k.exec(p, k.sys.Cost.EPConfig)
	// Capture the capability's payload before the round trip below releases
	// the CPU: the DTU is configured from the state observed at lookup time,
	// and the slab slot may be recycled while this thread is parked.
	object, perm := c.Object, c.Perm
	// Configuring a remote DTU costs a NoC round trip.
	rt := k.sys.Net.Latency(k.pe, v.PE, 32) + k.sys.Net.Latency(v.PE, k.pe, 16)
	k.releaseCPU()
	p.Sleep(rt)
	k.acquireCPU(p)
	switch obj := object.(type) {
	case *cap.MemObject:
		must(v.dtu.ConfigureMem(k.dtu, req.EP, obj.PE, obj.Off, obj.Size, perm&obj.Perm))
	case *cap.SendObject:
		must(v.dtu.ConfigureSend(k.dtu, req.EP, obj.DstPE, obj.DstEP, obj.Credits, obj.Label))
	default:
		return &sysReply{Err: ErrBadArgs}
	}
	if v.activeEPs == nil {
		v.activeEPs = make(map[int]cap.Selector)
	}
	v.activeEPs[req.EP] = req.Sel
	return &sysReply{}
}

// sysExit revokes all capabilities of the exiting VPE. Roots owned by the
// VPE are revoked recursively; capabilities obtained from others are
// unlinked from their parents.
func (k *Kernel) sysExit(p *sim.Proc, req *sysRequest) *sysReply {
	v := k.vpeOf(req.VPE)
	if v == nil {
		return &sysReply{Err: ErrVPEGone}
	}
	v.exited = true
	for {
		caps := k.store.VPECaps(req.VPE)
		if len(caps) == 0 {
			break
		}
		revoked := false
		for _, c := range caps {
			if c.Marked {
				continue
			}
			k.revokeSubtree(p, c)
			revoked = true
			break // the store changed; re-list
		}
		if !revoked {
			break // everything left is already in revocation
		}
	}
	k.sys.peToVPE[v.PE] = nil
	return &sysReply{}
}
