package core

import (
	"repro/internal/cap"
	"repro/internal/ddl"
	"repro/internal/sim"
)

// Distributed revocation (paper §4.3.3, Algorithm 1). Revocation runs in
// two phases, similar to mark-and-sweep:
//
//  1. Mark: walk the capability tree, mark local capabilities and send
//     inter-kernel revoke requests for remote children, counting
//     outstanding replies.
//  2. Sweep: when the last outstanding reply arrives, delete the local
//     subtree and notify the initiator (wake the syscall thread) or reply
//     to the requesting kernel.
//
// Incoming revoke requests are handled by at most RevokeThreads kernel
// threads, and those threads never pause waiting for replies — completion
// is continuation-based — so malicious applications cannot exhaust the
// kernel's thread pool with deep cross-kernel capability chains (the DoS
// defense of §4.3.3). Marked capabilities immediately refuse further
// exchanges, preventing "pointless" exchanges, and a second revocation
// reaching an already-marked capability joins the running one instead of
// acknowledging an incomplete revoke.
type revState struct {
	root *cap.Capability
	// outstanding counts unanswered revoke requests (plus dependencies on
	// overlapping local revocations).
	outstanding int
	// sending is true during the mark phase; completion is deferred until
	// it ends, so an early reply cannot trigger a premature sweep.
	sending bool
	done    bool
	// marked are the keys marked under this state, for map cleanup.
	marked []ddl.Key
	// waiters run (on the finishing proc, CPU held) after the sweep.
	waiters []func(p *sim.Proc)
}

// sysRevoke is the syscall entry point.
func (k *Kernel) sysRevoke(p *sim.Proc, req *sysRequest) *sysReply {
	c := k.lookupSel(p, req.VPE, req.Sel)
	if c == nil {
		return &sysReply{Err: ErrNoSuchCap}
	}
	k.stats.Revokes++
	k.revokeSubtree(p, c)
	return &sysReply{}
}

// revokeSubtree revokes the subtree rooted at c and blocks until the
// revocation is complete everywhere — the paper's semantics: a completed
// revoke is indeed completed (no "Incomplete" acknowledgements).
func (k *Kernel) revokeSubtree(p *sim.Proc, c *cap.Capability) {
	if c.Marked {
		// Join the revocation already running for this capability.
		rs, ok := k.revocations.Get(c.Key)
		if !ok {
			return // already swept
		}
		fut := sim.NewFuture[struct{}](k.sys.Eng)
		rs.waiters = append(rs.waiters, func(*sim.Proc) { fut.Complete(struct{}{}) })
		blockOn(k, p, fut)
		return
	}
	rs := &revState{root: c, sending: true}
	parentKey := c.Parent
	k.revokeChildren(p, c, rs)
	k.xport.flushRevokes(p, rs)
	rs.sending = false
	// Unlink the root from its parent (the parent survives this revoke).
	if parentKey != 0 {
		k.exec(p, k.sys.Cost.DDLDecode)
		if owner := k.member.KernelOfKey(parentKey); owner == k.id {
			if parent := k.store.Lookup(parentKey); parent != nil && !parent.Marked {
				parent.RemoveChild(c.Key)
				k.exec(p, k.sys.Cost.CapLink)
			}
		} else {
			k.notifyUnlink(p, owner, parentKey, c.Key)
		}
	}
	if rs.outstanding == 0 {
		k.finishRevocation(p, rs)
		return
	}
	fut := sim.NewFuture[struct{}](k.sys.Eng)
	rs.waiters = append(rs.waiters, func(*sim.Proc) { fut.Complete(struct{}{}) })
	blockOn(k, p, fut)
}

// revokeChildren is phase one: mark the local subtree and fan out
// inter-kernel requests for remote children (Algorithm 1,
// revoke_children).
func (k *Kernel) revokeChildren(p *sim.Proc, c *cap.Capability, rs *revState) {
	c.Marked = true
	k.revocations.Put(c.Key, rs)
	rs.marked = append(rs.marked, c.Key)
	k.exec(p, k.sys.Cost.RevokeMark)

	// Snapshot the child list: the recursion below reaches preemption
	// points, and c's children may change while this thread is parked.
	children := c.AppendChildren(nil)
	for _, childKey := range children {
		k.exec(p, k.sys.Cost.DDLDecode)
		owner := k.member.KernelOfKey(childKey)
		if owner == k.id {
			child := k.store.Lookup(childKey)
			if child == nil {
				continue // already revoked (e.g. overlapping sweep)
			}
			if child.Marked {
				// Overlapping revocation: our subtree is complete only when
				// that one is. Count it like an outstanding reply.
				other, _ := k.revocations.Get(childKey)
				if other != nil && other != rs {
					rs.outstanding++
					other.waiters = append(other.waiters, func(p2 *sim.Proc) {
						k.revokeReplyArrived(p2, rs)
					})
				}
				continue
			}
			k.revokeChildren(p, child, rs)
		} else if k.xport.pol.Revoke {
			// Batched revocation: queue the remote child on the unified
			// transport; the barrier flush at the end of the mark walk
			// sends one batched request per owning kernel (transport.go,
			// flushRevokes) — the paper's §5.2 message-batching proposal.
			k.xport.queueRevoke(owner, childKey, rs)
		} else {
			rs.outstanding++
			k.sendRevokeRequest(p, owner, childKey, rs)
		}
	}
}

// sendRevokeRequest fires an inter-kernel revoke request without blocking
// on the reply; the reply decrements the outstanding counter and may
// trigger the sweep (Algorithm 1, receive_revoke_reply).
func (k *Kernel) sendRevokeRequest(p *sim.Proc, dst int, key ddl.Key, rs *revState) {
	fut := k.ikSend(p, dst, &ikcRequest{Kind: ikcRevoke, Key: key})
	fut.OnComplete(func(rep *ikcReply) {
		// Event context: hand completion to a kernel thread. An unreachable
		// owner is recorded for replay at its rejoin — the local subtree
		// (including the link to this child) is deleted regardless, so the
		// recorded fix is the only remaining route to the remote state.
		k.recordOrphanFix(orphanFix{dst: dst, kind: ikcRevoke, key: key}, rep)
		k.compSubmit(rs)
	})
}

// compSubmit schedules completion processing of one revoke reply on the
// kernel CPU.
func (k *Kernel) compSubmit(rs *revState) {
	k.compPool().submit(func(p *sim.Proc) {
		k.acquireCPU(p)
		k.revokeReplyArrived(p, rs)
		k.releaseCPU()
	})
}

// compPool lazily creates the completion pool ("main loop" processing of
// revoke replies).
func (k *Kernel) compPool() *pool {
	if k.completionPool == nil {
		k.completionPool = newPool(k, "cmp", 1)
	}
	return k.completionPool
}

// revokeReplyArrived accounts one completed child revocation and sweeps if
// it was the last.
func (k *Kernel) revokeReplyArrived(p *sim.Proc, rs *revState) {
	rs.outstanding--
	if rs.outstanding < 0 {
		panic("core: negative outstanding revoke count")
	}
	if rs.outstanding == 0 && !rs.sending && !rs.done {
		k.finishRevocation(p, rs)
	}
}

// finishRevocation is phase two: delete the local subtree and run the
// waiters (waking the initiating syscall thread and/or replying to
// requesting kernels).
func (k *Kernel) finishRevocation(p *sim.Proc, rs *revState) {
	if rs.done {
		return
	}
	rs.done = true
	k.deleteTree(p, rs.root, rs)
	for _, key := range rs.marked {
		if cur, _ := k.revocations.Get(key); cur == rs {
			k.revocations.Delete(key)
		}
	}
	waiters := rs.waiters
	rs.waiters = nil
	for _, w := range waiters {
		w(p)
	}
}

// deleteTree removes the local capabilities of rs's subtree. Children
// handled by other kernels (or by overlapping local revocations) are
// deleted by their respective owners.
func (k *Kernel) deleteTree(p *sim.Proc, c *cap.Capability, rs *revState) {
	if k.store.Lookup(c.Key) == nil {
		return
	}
	c.ForEachChild(func(childKey ddl.Key) {
		if k.member.KernelOfKey(childKey) != k.id {
			return
		}
		if cur, _ := k.revocations.Get(childKey); cur != rs {
			return // owned by an overlapping revocation
		}
		if child := k.store.Lookup(childKey); child != nil {
			k.deleteTree(p, child, rs)
		}
	})
	k.exec(p, k.sys.Cost.RevokeDelete)
	// Invalidate any user endpoint configured from this capability so the
	// resource becomes inaccessible (enforcement). Must precede Remove: the
	// store recycles the slab slot, so c's fields are gone afterwards.
	k.invalidateEPs(c)
	k.store.Remove(c.Key)
	k.stats.CapsDeleted++
}

// handleRevokeReq processes an incoming revoke request (Algorithm 1,
// receive_revoke_request). It runs on one of the (at most two) revoke
// threads and never pauses for replies: if remote children remain, it
// registers a continuation and returns nil, keeping the thread count
// fixed; the continuation answers later via ikReplyAsync.
func (k *Kernel) handleRevokeReq(p *sim.Proc, req *ikcRequest) *ikcReply {
	k.exec(p, k.sys.Cost.CapLookup+k.sys.Cost.DDLDecode)
	c := k.store.Lookup(req.Key)
	if c == nil {
		// Already revoked; confirm (idempotent).
		k.revokeUnseen(req.Key)
		return &ikcReply{}
	}
	if c.Marked {
		// Join the running revocation; reply when it completes. Replying
		// now would acknowledge an incomplete revoke ("Incomplete").
		rs, ok := k.revocations.Get(req.Key)
		if !ok {
			return &ikcReply{}
		}
		rs.waiters = append(rs.waiters, func(p2 *sim.Proc) {
			k.ikReplyAsync(req, &ikcReply{})
		})
		return nil
	}
	rs := &revState{root: c, sending: true}
	k.revokeChildren(p, c, rs)
	k.xport.flushRevokes(p, rs)
	rs.sending = false
	if rs.outstanding == 0 {
		k.finishRevocation(p, rs)
		return &ikcReply{}
	}
	rs.waiters = append(rs.waiters, func(p2 *sim.Proc) {
		k.ikReplyAsync(req, &ikcReply{})
	})
	return nil
}

// handleRevokeBatchReq processes a batched revoke request: each key is
// revoked like a single ikcRevoke target; the reply leaves once every
// key's subtree is gone. Like single revokes, the handler never pauses for
// remote children — completion is continuation-based.
func (k *Kernel) handleRevokeBatchReq(p *sim.Proc, req *ikcRequest) *ikcReply {
	outstanding := 0
	done := false
	finish := func() {
		k.ikReplyAsync(req, &ikcReply{})
	}
	for _, key := range req.Keys {
		k.exec(p, k.sys.Cost.CapLookup+k.sys.Cost.DDLDecode)
		c := k.store.Lookup(key)
		if c == nil {
			k.revokeUnseen(key)
			continue // already revoked
		}
		if c.Marked {
			if rs, ok := k.revocations.Get(key); ok {
				outstanding++
				rs.waiters = append(rs.waiters, func(*sim.Proc) {
					outstanding--
					if outstanding == 0 && done {
						finish()
					}
				})
			}
			continue
		}
		rs := &revState{root: c, sending: true}
		k.revokeChildren(p, c, rs)
		k.xport.flushRevokes(p, rs)
		rs.sending = false
		if rs.outstanding == 0 {
			k.finishRevocation(p, rs)
			continue
		}
		outstanding++
		rs.waiters = append(rs.waiters, func(*sim.Proc) {
			outstanding--
			if outstanding == 0 && done {
				finish()
			}
		})
	}
	done = true
	if outstanding == 0 {
		return &ikcReply{}
	}
	return nil
}

// revokeUnseen runs when a revoke request targets a key this kernel has
// never inserted. Usually the subtree was simply revoked already and the
// confirmation is idempotent — but the key may also name a spanning
// exchange whose reply is still in flight: the owner linked the child
// before the reply reached us, and once we confirm "already revoked" it
// deletes the parent. The late reply must then discard the child, so
// tombstone a matching in-flight obtain; a matching pending delegation is
// dropped outright — its acknowledgement resolves to ErrNoSuchCap at the
// delegator, which unlinks the child there (exchange.go).
func (k *Kernel) revokeUnseen(key ddl.Key) {
	if po, ok := k.inflightObtains[exchangeID(key.PE(), key.VPE(), key.Object())]; ok && !po.revoked {
		po.revoked = true
		k.stats.RevokedInFlight++
	}
	if _, ok := k.pendingDelegations.Get(key); ok {
		k.pendingDelegations.Delete(key)
		k.stats.RevokedInFlight++
	}
}

// invalidateEPs resets user DTU endpoints configured from a revoked
// capability. The scan is bookkeeping-free: we only reset endpoints of the
// owner VPE whose configuration matches the capability's object.
func (k *Kernel) invalidateEPs(c *cap.Capability) {
	v := k.vpeOf(c.Owner)
	if v == nil {
		return
	}
	if _, ok := c.Object.(*cap.MemObject); ok {
		for ep := vpeFirstMemEP; ep <= vpeLastMemEP; ep++ {
			if act, used := v.activeEPs[ep]; used && act == c.Sel {
				_ = v.dtu.Invalidate(k.dtu, ep)
				delete(v.activeEPs, ep)
			}
		}
	}
}
