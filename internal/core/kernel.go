package core

import (
	"fmt"

	"repro/internal/cap"
	"repro/internal/ddl"
	"repro/internal/dtu"
	"repro/internal/sim"
)

// KernelStats counts per-kernel activity. Busy is the accumulated CPU time
// of the kernel PE, which divided by elapsed time gives its utilization.
type KernelStats struct {
	Syscalls      uint64
	IKCSent       uint64 // request-direction wire messages sent (an envelope counts once)
	IKCReceived   uint64 // request-direction wire messages received
	IKCBatched    uint64 // requests that travelled inside a coalesced envelope
	IKCBatches    uint64 // coalesced request envelopes sent
	IKCRepSent    uint64 // reply-direction wire messages sent (an envelope counts once)
	IKCRepBatched uint64 // replies that travelled inside a coalesced envelope
	IKCRepBatches uint64 // coalesced reply envelopes sent
	Obtains       uint64
	Delegates     uint64
	Revokes       uint64
	Sessions      uint64
	CapsCreated   uint64
	CapsDeleted   uint64
	Orphans       uint64
	Busy          sim.Duration

	// Reliable-mode counters (reliability.go); all zero with faults off.
	Retransmits     uint64       // wire transmissions re-sent after a timeout
	DupSuppressed   uint64       // received requests suppressed as duplicates
	ReplayedReplies uint64       // cached replies replayed for duplicates
	LateReplies     uint64       // replies for unknown (already resolved) seqs
	FailFast        uint64       // requests failed immediately: peer already dead
	DeadPeers       uint64       // peers this kernel declared dead
	Recovered       uint64       // transmissions that completed after a retry
	RecoveryCycles  sim.Duration // summed first-send→completion time of recovered transmissions
	RevokedInFlight uint64       // spanning exchanges killed by a revoke racing their reply

	// Crash-recovery counters (rejoin.go); all zero without a RecoverAt.
	Rejoins          uint64       // rejoin handshakes completed as the recovering kernel
	RejoinCycles     sim.Duration // summed recovery-start→handshake-completion time
	StaleIncarnation uint64       // envelopes rejected: sent by or to a dead incarnation
}

func (a *KernelStats) add(b KernelStats) {
	a.Syscalls += b.Syscalls
	a.IKCSent += b.IKCSent
	a.IKCReceived += b.IKCReceived
	a.IKCBatched += b.IKCBatched
	a.IKCBatches += b.IKCBatches
	a.IKCRepSent += b.IKCRepSent
	a.IKCRepBatched += b.IKCRepBatched
	a.IKCRepBatches += b.IKCRepBatches
	a.Obtains += b.Obtains
	a.Delegates += b.Delegates
	a.Revokes += b.Revokes
	a.Sessions += b.Sessions
	a.CapsCreated += b.CapsCreated
	a.CapsDeleted += b.CapsDeleted
	a.Orphans += b.Orphans
	a.Busy += b.Busy
	a.Retransmits += b.Retransmits
	a.DupSuppressed += b.DupSuppressed
	a.ReplayedReplies += b.ReplayedReplies
	a.LateReplies += b.LateReplies
	a.FailFast += b.FailFast
	a.DeadPeers += b.DeadPeers
	a.Recovered += b.Recovered
	a.RecoveryCycles += b.RecoveryCycles
	a.RevokedInFlight += b.RevokedInFlight
	a.Rejoins += b.Rejoins
	a.RejoinCycles += b.RejoinCycles
	a.StaleIncarnation += b.StaleIncarnation
}

// CapOps returns the number of capability-modifying and session operations,
// the metric reported in the paper's Table 4.
func (s KernelStats) CapOps() uint64 {
	return s.Obtains + s.Delegates + s.Revokes + s.Sessions
}

// Kernel is one SemperOS microkernel, running on its dedicated kernel PE
// and managing the capabilities of its PE group.
//
// The kernel is cooperatively multithreaded: its work runs in sim.Procs
// that all contend for a single CPU token (the kernel PE has one core), and
// release it only at preemption points — exactly the paper's §4.2 design.
// The thread pool is bounded by Equation 1: V_group syscall threads plus
// K_max * M_inflight inter-kernel threads (with at most two of the latter
// budget used for incoming revoke requests).
type Kernel struct {
	id     int
	pe     int
	sys    *System
	dom    *sim.Domain // event domain this kernel's procs run on
	dtu    *dtu.DTU
	store  *cap.Store
	gen    *ddl.Generator
	member *ddl.Membership
	group  []int // user PEs of this group

	cpu  *sim.Semaphore // the kernel PE's single core
	link *sim.Semaphore // the group's shared mesh-region bandwidth

	syscallPool    *pool
	ikcPool        *pool
	revokePool     *pool
	completionPool *pool // revoke-reply processing ("main loop" work)

	// xport is the unified IKC transport: per-destination aggregation
	// queues and the batching policy (transport.go).
	xport *transport

	// rt is the reliable-IKC state (retransmission tracking, receiver
	// dedup, dead-peer verdicts); nil in the baseline lossless mode.
	rt *relState

	// incarnation numbers this kernel's lifetimes, starting at 1 and
	// bumped at every scripted recovery (rejoin.go). It stamps outgoing
	// IKC envelopes so peers can tell a live request from a dead
	// incarnation's retransmit.
	incarnation uint32

	// orphanFixes records cross-kernel tree-maintenance operations that
	// failed with ErrPeerDead, replayed when the peer rejoins (rejoin.go).
	orphanFixes []orphanFix

	// inflight limits unprocessed requests per destination kernel,
	// indexed densely by kernel id (entries created lazily).
	inflight []*sim.Semaphore
	pending  map[uint64]*sim.Future[*ikcReply]
	seq      uint64

	// pendingDelegations holds capabilities created by the delegate
	// two-way handshake that await the originator's acknowledgement.
	pendingDelegations ddl.KeyMap[*cap.Capability]

	// inflightObtains tracks spanning obtains between the moment their
	// child identity is agreed (the request leaves) and the moment the
	// reply is consumed, keyed by exchangeID. A revoke reaching this kernel
	// for a key it has never inserted tombstones a matching entry so a
	// late or replayed reply cannot resurrect the revoked child
	// (exchange.go, revoke.go).
	inflightObtains map[uint64]*inflightObtain

	// revocations maps every marked capability to the state of the
	// revocation that marked it (paper Algorithm 1).
	revocations ddl.KeyMap[*revState]

	// Rounds-mode partitioned state (all nil/empty in merged mode, where
	// System.services and System.dramNext stay authoritative):
	//
	// svcOwn holds the services this kernel registered (it is their owner
	// and serves their sessions). svcDir is the directory slice this kernel
	// is home for — service names hash to a home kernel, which answers
	// ikcSvcLookup queries and filters dead owners. svcCache caches remote
	// lookups (read-mostly: service locations never move once registered).
	svcOwn   map[string]*serviceEntry
	svcDir   map[string]svcLoc
	svcCache map[string]svcLoc

	// dramSpans is the kernel's pre-carved DRAM quota (system.go,
	// carveDRAMQuota), refilled from kernel 0's central pool via
	// ikcDRAMRefill when exhausted. dramRR round-robins across spans.
	dramSpans []dramSpan
	dramRR    int

	stats KernelStats
}

// svcLoc is a directory-resident service location: the owning kernel and the
// service's capability key. It is the payload of ikcSvcLookup replies.
type svcLoc struct {
	kernel int
	key    ddl.Key
}

func newKernel(s *System, id int) *Kernel {
	k := &Kernel{
		id:              id,
		pe:              id,
		incarnation:     1,
		sys:             s,
		dom:             s.domainOfKernel(id),
		dtu:             s.Fab.DTU(id),
		store:           cap.NewStore(),
		gen:             ddl.NewGenerator(),
		member:          s.member.Clone(),
		cpu:             sim.NewSemaphore(s.Eng, 1),
		link:            sim.NewSemaphore(s.Eng, 1),
		inflight:        make([]*sim.Semaphore, s.cfg.Kernels),
		pending:         make(map[uint64]*sim.Future[*ikcReply]),
		inflightObtains: make(map[uint64]*inflightObtain),
	}
	if s.rounds {
		k.svcOwn = make(map[string]*serviceEntry)
		k.svcDir = make(map[string]svcLoc)
		k.svcCache = make(map[string]svcLoc)
	}
	for _, pe := range s.userPEs {
		if s.member.KernelOf(pe) == id {
			k.group = append(k.group, pe)
		}
	}
	k.syscallPool = newPool(k, "sys", max(len(k.group), 1))
	k.ikcPool = newPool(k, "ikc", k.ikcWindow())
	k.revokePool = newPool(k, "rev", RevokeThreads)
	k.xport = newTransport(k, s.cfg.batchingPolicy())
	if s.rel != nil {
		k.rt = newRelState(k, *s.rel)
	}
	// Configure the kernel DTU's syscall receive endpoints; messages are
	// dispatched to the syscall pool.
	for ep := kernelSyscallEP0; ep < kernelSyscallEP0+SyscallRecvEPs; ep++ {
		if err := k.dtu.ConfigureRecv(k.dtu, ep, dtu.DefaultSlots, k.onSyscallMsg); err != nil {
			panic(err)
		}
	}
	// The coalesced request-envelope endpoint. One envelope is one wire
	// message and occupies one slot, so the in-flight bound per peer sizes
	// the budget.
	must(k.dtu.ConfigureRecvVec(k.dtu, ikcBatchEP, k.ikcWindow(), k.recvBatch))
	// The coalesced reply-envelope endpoint. The demux frees every carried
	// message within the delivery event, so occupancy is transient; the
	// budget mirrors the batch endpoint's for symmetry.
	must(k.dtu.ConfigureRecvVec(k.dtu, ikcReplyEP, k.ikcWindow(), k.recvReplyVec))
	return k
}

// ikcWindow is the total inter-kernel in-flight budget this kernel must be
// able to absorb: every peer may have MaxInflight requests outstanding. For
// configurations within the architectural limit this is the historical
// MaxKernels*MaxInflight constant; relaxed-limit scale runs grow it with the
// actual kernel count.
func (k *Kernel) ikcWindow() int {
	return max(MaxKernels, k.sys.cfg.Kernels) * MaxInflight
}

// ID returns the kernel's id.
func (k *Kernel) ID() int { return k.id }

// PE returns the kernel PE.
func (k *Kernel) PE() int { return k.pe }

// Group returns the user PEs managed by this kernel.
func (k *Kernel) Group() []int { return k.group }

// Stats returns a snapshot of the kernel's counters.
func (k *Kernel) Stats() KernelStats { return k.stats }

// Incarnation returns the kernel's current incarnation number: 1 unless it
// crashed and recovered (rejoin.go bumps it at every scripted recovery).
func (k *Kernel) Incarnation() uint32 { return k.incarnation }

// Store exposes the mapping database for tests and diagnostics.
func (k *Kernel) Store() *cap.Store { return k.store }

// ThreadPoolSize returns the bound of Equation 1:
// V_group + K_max * M_inflight.
func (k *Kernel) ThreadPoolSize() int {
	return len(k.group) + k.ikcWindow()
}

// exec charges d cycles of kernel CPU time. The caller must hold the CPU
// token.
func (k *Kernel) exec(p *sim.Proc, d sim.Duration) {
	k.stats.Busy += d
	p.Sleep(d)
}

// acquireCPU / releaseCPU bracket kernel work; release happens at
// preemption points (waiting for an inter-kernel reply, a VPE consent
// answer, or a service answer).
func (k *Kernel) acquireCPU(p *sim.Proc) { k.cpu.Acquire(p) }
func (k *Kernel) releaseCPU()            { k.cpu.Release() }

// blockOn waits for a future at a preemption point: the CPU is released
// while parked and re-acquired afterwards.
func blockOn[T any](k *Kernel, p *sim.Proc, fut *sim.Future[T]) T {
	k.releaseCPU()
	v := fut.Wait(p)
	k.acquireCPU(p)
	return v
}

// pool is a lazily grown, bounded worker pool of kernel threads. Jobs are
// closures run on cooperative procs.
type pool struct {
	k       *Kernel
	name    string
	max     int
	spawned int
	q       *sim.Queue[func(p *sim.Proc)]
}

func newPool(k *Kernel, name string, max int) *pool {
	return &pool{k: k, name: name, max: max, q: sim.NewQueue[func(p *sim.Proc)](k.sys.Eng)}
}

// submit enqueues a job, spawning a worker if none is idle and the pool
// limit permits. If the pool is saturated the job waits in the queue — the
// kernel's defense against request floods (paper §4.2).
func (pl *pool) submit(job func(p *sim.Proc)) {
	if pl.q.Waiters() == 0 && pl.spawned < pl.max {
		pl.spawned++
		name := fmt.Sprintf("k%d/%s%d", pl.k.id, pl.name, pl.spawned)
		pl.k.dom.Spawn(name, func(p *sim.Proc) {
			for {
				j := pl.q.Pop(p)
				j(p)
			}
		})
	}
	pl.q.Push(job)
}

// onSyscallMsg is the DTU handler for the kernel's syscall endpoints.
func (k *Kernel) onSyscallMsg(m *dtu.Message) {
	k.syscallPool.submit(func(p *sim.Proc) {
		k.acquireCPU(p)
		k.handleSyscall(p, m)
		k.releaseCPU()
	})
}

// createVPE registers a VPE with its group kernel, configures its DTU and
// starts the program. The setup costs kernel time, so spawning many VPEs
// serializes at their group kernels (visible in the application benchmarks
// as startup cost).
func (k *Kernel) createVPE(v *VPE) {
	k.syscallPool.submit(func(p *sim.Proc) {
		k.acquireCPU(p)
		k.exec(p, k.sys.Cost.VPECreate)
		// Syscall channel: user EP 0 sends to one of the kernel's syscall
		// endpoints; one credit models the single outstanding syscall.
		sysEP := kernelSyscallEP0 + (v.PE % SyscallRecvEPs)
		must(v.dtu.ConfigureSend(k.dtu, vpeSyscallSendEP, k.pe, sysEP, 1, uint64(v.ID)))
		must(v.dtu.ConfigureRecv(k.dtu, vpeSyscallReplyEP, 2, nil))
		must(v.dtu.ConfigureRecv(k.dtu, vpeServiceReplyEP, 2, nil))
		v.dtu.Downgrade()
		// The VPE's root capability: control over itself.
		vcap := &cap.Capability{
			Key:    k.gen.Next(v.PE, v.ID, ddl.TypeVPE),
			Owner:  v.ID,
			Sel:    k.store.AllocSel(v.ID),
			Object: &cap.VPEObject{VPE: v.ID, PE: v.PE},
			Perm:   dtu.PermRW,
		}
		k.store.Insert(vcap)
		k.stats.CapsCreated++
		v.selfSel = vcap.Sel
		k.releaseCPU()
		v.start()
	})
}

// vpeOf returns the VPE for a global id if it is local to this kernel.
func (k *Kernel) vpeOf(id int) *VPE {
	if id < 0 || id >= len(k.sys.vpes) {
		return nil
	}
	v := k.sys.vpes[id]
	if v == nil || v.kernel != k {
		return nil
	}
	return v
}

// askVPE queries a local VPE for consent to a capability exchange (paper
// Fig. 3 steps A.2/A.3). The kernel releases its CPU while the query
// travels to the user PE and back.
func (k *Kernel) askVPE(p *sim.Proc, v *VPE, q ExchangeQuery) bool {
	fut := sim.NewFuture[bool](k.sys.Eng)
	cost := k.sys.Cost
	k.sys.Net.Send(k.pe, v.PE, vpeQueryBytes, func() {
		// The VPE's exchange handler answers after its decision time. The
		// delay runs on the kernel's own domain (the VPE shares it), which
		// merged mode executes identically to an engine-level schedule.
		ans := v.answerExchange(q)
		k.dom.Schedule(cost.VPEAccept, func() {
			k.sys.Net.Send(v.PE, k.pe, 16, func() { fut.Complete(ans.Accept) })
		})
	})
	return blockOn(k, p, fut)
}

// mintKey creates a fresh DDL key whose partition belongs to this kernel.
func (k *Kernel) mintKey(creatorPE, creatorVPE int, typ ddl.Type) ddl.Key {
	return k.gen.Next(creatorPE, creatorVPE, typ)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
