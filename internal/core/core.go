package core
