package core

import (
	"fmt"
	"testing"

	"repro/internal/cap"
	"repro/internal/dtu"
	"repro/internal/sim"
)

// Isolated-rounds kernel-model tests. The rounds runtime's debug guard is
// structural: Domain.Post panics on any cross-domain edge shorter than the
// engine lookahead, and Engine.Schedule panics outside any domain while
// rounds are in flight. Driving the capability protocols to completion under
// SimModeRounds therefore IS the assertion that no zero-lookahead
// cross-domain edge survives in the kernel model — any such edge panics the
// run instead of silently collapsing the round structure.

// newRoundsSystem builds a rounds-mode machine (one event domain per kernel).
func newRoundsSystem(t *testing.T, kernels, userPEs int) *System {
	t.Helper()
	s := MustNew(Config{Kernels: kernels, UserPEs: userPEs, SimMode: SimModeRounds})
	t.Cleanup(s.Close)
	return s
}

// TestRoundsGuardExchange drives a spanning capability exchange through the
// isolated-rounds runtime: owner and requester sit in different kernel
// groups, so the obtain crosses domains — every leg must carry NoC latency
// or the Post guard panics.
func TestRoundsGuardExchange(t *testing.T) {
	s := newRoundsSystem(t, 2, 4)
	if s.Eng.Domains() != 2 {
		t.Fatalf("domains = %d, want one per kernel", s.Eng.Domains())
	}
	ready := sim.NewFuture[cap.Selector](s.Eng)
	var obtained bool
	owner, err := s.SpawnOn(s.UserPEs()[0], "owner", func(v *VPE, p *sim.Proc) {
		sel, err := v.AllocMem(p, 4096, dtu.PermRW)
		if err != nil {
			t.Errorf("owner alloc: %v", err)
			return
		}
		ready.CompleteFrom(p, sel)
	})
	if err != nil {
		t.Fatal(err)
	}
	// The last user PE belongs to the last kernel's group.
	reqPE := s.UserPEs()[len(s.UserPEs())-1]
	if s.KernelOfPE(reqPE).ID() == 0 {
		t.Fatal("requester not in a remote group; test would not span kernels")
	}
	if _, err := s.SpawnOn(reqPE, "requester", func(v *VPE, p *sim.Proc) {
		sel := ready.Wait(p)
		if _, err := v.ObtainFrom(p, owner.ID, sel); err != nil {
			t.Errorf("obtain: %v", err)
			return
		}
		obtained = true
	}); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if !obtained {
		t.Fatal("spanning obtain did not complete under rounds")
	}
	checkAllInvariants(t, s)
}

// TestRoundsGuardTreeRevoke builds a root capability with children obtained
// from every kernel group and revokes it — the revocation fan-out and the
// in-flight credit returns are all cross-domain under rounds.
func TestRoundsGuardTreeRevoke(t *testing.T) {
	const kernels = 4
	s := newRoundsSystem(t, kernels, kernels*2)
	byGroup := make(map[int][]int)
	for _, pe := range s.UserPEs() {
		g := s.KernelOfPE(pe).ID()
		byGroup[g] = append(byGroup[g], pe)
	}
	ready := sim.NewFuture[cap.Selector](s.Eng)
	var wg sim.WaitGroup
	wg.Bind(s.Eng)
	wg.Add(kernels - 1)
	var revoked bool
	root, err := s.SpawnOn(byGroup[0][0], "root", func(v *VPE, p *sim.Proc) {
		sel, err := v.AllocMem(p, 4096, dtu.PermRW)
		if err != nil {
			t.Errorf("root alloc: %v", err)
			return
		}
		ready.CompleteFrom(p, sel)
		wg.Wait(p)
		if err := v.Revoke(p, sel); err != nil {
			t.Errorf("revoke: %v", err)
			return
		}
		revoked = true
	})
	if err != nil {
		t.Fatal(err)
	}
	for g := 1; g < kernels; g++ {
		if _, err := s.SpawnOn(byGroup[g][0], fmt.Sprintf("kid%d", g), func(v *VPE, p *sim.Proc) {
			sel := ready.Wait(p)
			if _, err := v.ObtainFrom(p, root.ID, sel); err != nil {
				t.Errorf("obtain: %v", err)
				return
			}
			wg.DoneFrom(p)
		}); err != nil {
			t.Fatal(err)
		}
	}
	s.Run()
	if !revoked {
		t.Fatal("spanning tree revoke did not complete under rounds")
	}
	checkAllInvariants(t, s)
}

// TestRoundsPartitionedDirectory registers a service in one kernel group and
// opens sessions from every other group: the lookups travel to the name's
// home kernel as IKC queries, get cached, and still resolve correctly.
func TestRoundsPartitionedDirectory(t *testing.T) {
	const kernels = 3
	s := newRoundsSystem(t, kernels, kernels*2)
	byGroup := make(map[int][]int)
	for _, pe := range s.UserPEs() {
		g := s.KernelOfPE(pe).ID()
		byGroup[g] = append(byGroup[g], pe)
	}
	svcReady := sim.NewFuture[struct{}](s.Eng)
	if _, err := s.SpawnOn(byGroup[0][0], "svc", func(v *VPE, p *sim.Proc) {
		sel, err := v.AllocMem(p, 4096, dtu.PermRW)
		if err != nil {
			t.Errorf("svc alloc: %v", err)
			return
		}
		err = v.RegisterService(p, "echo", ServiceHandlers{
			Open: func(p *sim.Proc, clientVPE int, args any) SvcResult {
				return SvcResult{Ident: 7}
			},
			Obtain: func(p *sim.Proc, ident uint64, args any) SvcResult {
				return SvcResult{SrcSel: sel}
			},
		})
		if err != nil {
			t.Errorf("register: %v", err)
			return
		}
		svcReady.CompleteFrom(p, struct{}{})
		v.ServeLoop(p)
	}); err != nil {
		t.Fatal(err)
	}
	sessions := make([]bool, kernels-1)
	for g := 1; g < kernels; g++ {
		g := g
		if _, err := s.SpawnOn(byGroup[g][0], fmt.Sprintf("client%d", g), func(v *VPE, p *sim.Proc) {
			svcReady.Wait(p)
			sess, err := v.CreateSession(p, "echo", nil)
			if err != nil {
				t.Errorf("client %d session: %v", g, err)
				return
			}
			if _, _, err := sess.Obtain(p, nil); err != nil {
				t.Errorf("client %d obtain: %v", g, err)
				return
			}
			// A second session exercises the registrar/cache hit path.
			if _, err := v.CreateSession(p, "echo", nil); err != nil {
				t.Errorf("client %d second session: %v", g, err)
				return
			}
			sessions[g-1] = true
		}); err != nil {
			t.Fatal(err)
		}
	}
	s.Run()
	for g := 1; g < kernels; g++ {
		if !sessions[g-1] {
			t.Errorf("client in group %d did not finish its sessions", g)
		}
	}
	// An unknown name must miss through the same partitioned path.
	s2 := newRoundsSystem(t, 2, 2)
	var missErr error
	if _, err := s2.SpawnOn(s2.UserPEs()[1], "misser", func(v *VPE, p *sim.Proc) {
		_, missErr = v.CreateSession(p, "no-such-service", nil)
	}); err != nil {
		t.Fatal(err)
	}
	s2.Run()
	if missErr == nil {
		t.Fatal("unknown service resolved under the partitioned directory")
	}
}

// TestRoundsDRAMRefill exhausts a kernel's pre-carved DRAM quota so its next
// allocation needs an IKC refill from kernel 0, and verifies both the refill
// and that allocations keep succeeding afterwards.
func TestRoundsDRAMRefill(t *testing.T) {
	// 32 KiB per mem PE: the carve splits the lower 16 KiB into 8 KiB per
	// kernel, so three 4 KiB allocations overflow kernel 1's quota.
	s := MustNew(Config{Kernels: 2, UserPEs: 4, MemPEs: 1, MemBytes: 32 << 10, SimMode: SimModeRounds})
	defer s.Close()
	var pe int
	for _, u := range s.UserPEs() {
		if s.KernelOfPE(u).ID() == 1 {
			pe = u
			break
		}
	}
	spansBefore := len(s.kernels[1].dramSpans)
	var allocs int
	if _, err := s.SpawnOn(pe, "hog", func(v *VPE, p *sim.Proc) {
		for i := 0; i < 3; i++ {
			if _, err := v.AllocMem(p, 4096, dtu.PermRW); err != nil {
				t.Errorf("alloc %d: %v", i, err)
				return
			}
			allocs++
		}
	}); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if allocs != 3 {
		t.Fatalf("completed %d allocations, want 3", allocs)
	}
	if got := len(s.kernels[1].dramSpans); got <= spansBefore {
		t.Fatalf("kernel 1 has %d DRAM spans, want a refill beyond the initial %d", got, spansBefore)
	}
	if sent := s.kernels[1].Stats().IKCSent; sent == 0 {
		t.Fatal("refill produced no inter-kernel message")
	}
}

// benchFanout builds an exchange fan-out (one owner, one obtainer per other
// kernel group) in the given mode and runs it to completion.
func benchFanout(b *testing.B, kernels int, simMode string) {
	b.Helper()
	s := MustNew(Config{Kernels: kernels, UserPEs: kernels * 2, SimMode: simMode, SimWorkers: 1})
	defer s.Close()
	byGroup := make(map[int][]int)
	for _, pe := range s.UserPEs() {
		g := s.KernelOfPE(pe).ID()
		byGroup[g] = append(byGroup[g], pe)
	}
	ready := sim.NewFuture[cap.Selector](s.Eng)
	owner, err := s.SpawnOn(byGroup[0][0], "owner", func(v *VPE, p *sim.Proc) {
		sel, err := v.AllocMem(p, 4096, dtu.PermRW)
		if err != nil {
			b.Errorf("alloc: %v", err)
			return
		}
		ready.CompleteFrom(p, sel)
	})
	if err != nil {
		b.Fatal(err)
	}
	for g := 1; g < kernels; g++ {
		if _, err := s.SpawnOn(byGroup[g][0], fmt.Sprintf("c%d", g), func(v *VPE, p *sim.Proc) {
			sel := ready.Wait(p)
			if _, err := v.ObtainFrom(p, owner.ID, sel); err != nil {
				b.Errorf("obtain: %v", err)
			}
		}); err != nil {
			b.Fatal(err)
		}
	}
	s.Run()
}

// BenchmarkKernelRounds compares a small multi-kernel exchange fan-out on
// the isolated-rounds runtime against the same fan-out on the merged loop
// (allocs/op and wall-clock; the CI sim-bench smoke tracks both).
func BenchmarkKernelRounds(b *testing.B) {
	for _, mode := range []string{SimModeRounds, SimModeMerged} {
		b.Run(mode, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				benchFanout(b, 4, mode)
			}
		})
	}
}
