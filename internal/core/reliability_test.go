package core

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/cap"
	"repro/internal/dtu"
	"repro/internal/fault"
	"repro/internal/sim"
)

// reliableFanout spawns a root with one memory capability and n clients
// spread over the machine's kernels, each obtaining it once. Obtain errors
// are collected, not fatal — under fault injection they are data.
func reliableFanout(t *testing.T, cfg Config, n int) (*System, []error) {
	t.Helper()
	s := MustNew(cfg)
	t.Cleanup(s.Close)
	ready := sim.NewFuture[cap.Selector](s.Eng)
	var wg sim.WaitGroup
	wg.Add(n)
	errs := make([]error, n)
	root, err := s.SpawnOn(s.userPEs[0], "root", func(v *VPE, p *sim.Proc) {
		sel, err := v.AllocMem(p, 4096, dtu.PermRW)
		if err != nil {
			t.Errorf("alloc: %v", err)
			return
		}
		ready.Complete(sel)
		wg.Wait(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		i := i
		if _, err := s.SpawnOn(s.userPEs[1+i], fmt.Sprintf("c%d", i), func(v *VPE, p *sim.Proc) {
			sel := ready.Wait(p)
			_, errs[i] = v.ObtainFrom(p, root.ID, sel)
			wg.Done()
		}); err != nil {
			t.Fatal(err)
		}
	}
	s.Run()
	return s, errs
}

// TestReliableModeLossless: the reliability layer on a lossless fabric is
// pure bookkeeping — every operation succeeds and no reliability event
// (retransmit, dedup, late reply, death) ever fires at this scale.
func TestReliableModeLossless(t *testing.T) {
	const kids = 12
	s, errs := reliableFanout(t, Config{Kernels: 4, UserPEs: kids + 7, Reliability: &Reliability{}}, kids)
	for i, err := range errs {
		if err != nil {
			t.Errorf("client %d: %v", i, err)
		}
	}
	st := s.TotalStats()
	if st.Retransmits != 0 || st.DupSuppressed != 0 || st.LateReplies != 0 ||
		st.FailFast != 0 || st.DeadPeers != 0 || st.Recovered != 0 {
		t.Errorf("reliability events on a lossless idle-enough fabric: %+v", st)
	}
	if lost := s.Net.Stats().Lost; lost != 0 {
		t.Errorf("Lost = %d on a lossless fabric", lost)
	}
	checkAllInvariants(t, s)
}

// TestReliableRecoversFromDrops: with a lossy, duplicating, jittery fabric
// every obtain still succeeds — retransmission recovers the losses and
// dedup absorbs the duplicates.
func TestReliableRecoversFromDrops(t *testing.T) {
	const kids = 24
	plan := &fault.Plan{Seed: 11, Drop: 0.10, Dup: 0.05, Jitter: 200}
	s, errs := reliableFanout(t, Config{Kernels: 4, UserPEs: kids + 7, Faults: plan}, kids)
	for i, err := range errs {
		if err != nil {
			t.Errorf("client %d: %v", i, err)
		}
	}
	fs := s.FaultStats()
	if fs.Inspected == 0 {
		t.Fatalf("injector saw no kernel-link traffic")
	}
	if fs.Dropped == 0 {
		t.Fatalf("plan dropped nothing (Inspected=%d); pick a hotter seed", fs.Inspected)
	}
	st := s.TotalStats()
	if st.Retransmits == 0 {
		t.Errorf("drops occurred (%d) but nothing was retransmitted", fs.Dropped)
	}
	if got := s.Net.Stats().Lost; got < fs.Dropped {
		t.Errorf("Net lost %d < injector dropped %d", got, fs.Dropped)
	}
	checkAllInvariants(t, s)
}

// TestFaultyRunDeterministic: the same seed reproduces a faulty run
// exactly — kernel stats, injector stats and event counts all match.
func TestFaultyRunDeterministic(t *testing.T) {
	run := func() (KernelStats, fault.Stats, uint64) {
		const kids = 16
		plan := &fault.Plan{Seed: 17, Drop: 0.10, Dup: 0.05, Jitter: 300}
		s, _ := reliableFanout(t, Config{Kernels: 4, UserPEs: kids + 7, Faults: plan}, kids)
		return s.TotalStats(), s.FaultStats(), s.Net.Stats().Lost
	}
	st1, fs1, lost1 := run()
	st2, fs2, lost2 := run()
	if st1 != st2 {
		t.Errorf("kernel stats differ across identical faulty runs:\n%+v\n%+v", st1, st2)
	}
	if fs1 != fs2 {
		t.Errorf("injector stats differ across identical faulty runs:\n%+v\n%+v", fs1, fs2)
	}
	if lost1 != lost2 {
		t.Errorf("lost counts differ: %d vs %d", lost1, lost2)
	}
}

// TestDeadKernelFailFast: a kernel whose links are dead from the start
// cannot reach the capability owner; its clients' operations must resolve
// to ErrPeerDead — promptly for requests minted after the death verdict —
// and the run must terminate (no hung futures).
func TestDeadKernelFailFast(t *testing.T) {
	// Kernel 1 crashes before any traffic; aggressive timeouts keep the
	// death verdict quick.
	plan := &fault.Plan{Seed: 1, Kernels: []fault.KernelFault{{Kernel: 1, CrashAt: 1}}}
	rel := &Reliability{RTOBase: 2_000, MaxRetries: 2}
	s := MustNew(Config{Kernels: 2, UserPEs: 8, Faults: plan, Reliability: rel})
	t.Cleanup(s.Close)

	// Root lives in kernel 0's group; the client in kernel 1's.
	var rootPE, clientPE int
	for _, pe := range s.userPEs {
		if s.KernelOfPE(pe).ID() == 0 && rootPE == 0 {
			rootPE = pe
		}
		if s.KernelOfPE(pe).ID() == 1 && clientPE == 0 {
			clientPE = pe
		}
	}
	ready := sim.NewFuture[cap.Selector](s.Eng)
	var done sim.WaitGroup
	done.Add(1)
	var err1, err2 error
	var rootDone, clientDone bool
	root, err := s.SpawnOn(rootPE, "root", func(v *VPE, p *sim.Proc) {
		sel, err := v.AllocMem(p, 4096, dtu.PermRW)
		if err != nil {
			t.Errorf("alloc: %v", err)
			return
		}
		ready.Complete(sel)
		done.Wait(p)
		rootDone = true
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.SpawnOn(clientPE, "client", func(v *VPE, p *sim.Proc) {
		sel := ready.Wait(p)
		_, err1 = v.ObtainFrom(p, root.ID, sel)
		// The second attempt runs after the death verdict: it must fail
		// fast, without burning another retry ladder.
		_, err2 = v.ObtainFrom(p, root.ID, sel)
		done.Done()
		clientDone = true
	}); err != nil {
		t.Fatal(err)
	}
	s.Run() // must terminate — a hung future would park the procs forever

	if err1 == nil || err2 == nil {
		t.Fatalf("obtains across a dead link succeeded: err1=%v err2=%v", err1, err2)
	}
	if !errors.Is(err1, error(ErrPeerDead)) {
		t.Errorf("err1 = %v, want ErrPeerDead", err1)
	}
	if !errors.Is(err2, error(ErrPeerDead)) {
		t.Errorf("err2 = %v, want ErrPeerDead", err2)
	}
	st := s.TotalStats()
	if st.DeadPeers == 0 {
		t.Errorf("no kernel declared its peer dead: %+v", st)
	}
	if st.FailFast == 0 {
		t.Errorf("post-death request did not fail fast: %+v", st)
	}
	// The kernels keep their worker procs parked by design; the hung-future
	// check is that both user programs ran to completion.
	if !rootDone || !clientDone {
		t.Errorf("user procs wedged: rootDone=%v clientDone=%v", rootDone, clientDone)
	}
}

// TestBaselineHasNoReliabilityState: without Faults or Reliability the
// reliable layer must not exist at all — its state is nil and its
// counters stay zero, preserving the byte-identical baseline.
func TestBaselineHasNoReliabilityState(t *testing.T) {
	const kids = 8
	s, errs := reliableFanout(t, Config{Kernels: 4, UserPEs: kids + 7}, kids)
	for i, err := range errs {
		if err != nil {
			t.Errorf("client %d: %v", i, err)
		}
	}
	for ki := 0; ki < s.Kernels(); ki++ {
		if s.Kernel(ki).rt != nil {
			t.Errorf("kernel %d has reliability state without Faults/Reliability", ki)
		}
	}
	st := s.TotalStats()
	if st.Retransmits+st.DupSuppressed+st.ReplayedReplies+st.LateReplies+
		st.FailFast+st.DeadPeers+st.Recovered != 0 {
		t.Errorf("baseline run counted reliability events: %+v", st)
	}
}
