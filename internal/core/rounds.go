package core

import (
	"repro/internal/ddl"
	"repro/internal/sim"
)

// Rounds-mode partitioned kernel state (Config.SimMode == "rounds").
//
// The merged kernel model keeps two pieces of genuinely shared state — the
// service directory (System.services) and the DRAM allocator
// (System.dramNext) — that any kernel mutates instantly from its own event
// context. That is fine in merged execution, where one goroutine runs
// everything in global order, but it pins the model off the isolated-rounds
// runtime: an isolated domain may only touch its own state, and every
// cross-domain interaction must cost at least the engine lookahead.
//
// This file partitions both:
//
//   - Service directory: every name hashes to a *home* kernel (svcHome).
//     The registering kernel keeps the authoritative entry (Kernel.svcOwn,
//     it owns the service and serves its sessions) and publishes the
//     location to the home first — the home's directory slice
//     (Kernel.svcDir) is the single authority on duplicates and answers
//     ikcSvcLookup queries, filtering owners this kernel has declared dead
//     (degraded mode). Requesters cache resolved locations
//     (Kernel.svcCache); the cache is read-mostly sound because a service
//     location never moves once registered.
//
//   - DRAM: System construction pre-carves the lower half of every memory
//     PE into equal per-kernel quota spans (Kernel.dramSpans); the upper
//     half stays a central pool owned by kernel 0, which grants
//     ikcDRAMRefill requests in dramRefillChunk units when a kernel's quota
//     runs dry.
//
// Both protocols ride the ordinary IKC machinery, so remote lookups,
// registrations and refills cost real NoC latency, in-flight credits and
// kernel CPU time — the cross-domain edges the rounds runtime requires, and
// the reason rounds-mode metrics legitimately drift from the merged
// baseline.

// dramRefillChunk is the granularity of central-pool refill grants: a dry
// kernel asks for at least this much, amortizing the round trip to kernel 0
// over many subsequent local allocations.
const dramRefillChunk = 1 << 20

// svcHome returns the kernel whose directory slice holds a service name
// (FNV-1a over the name, modulo the kernel count).
func (s *System) svcHome(name string) int {
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= 16777619
	}
	return int(h % uint32(len(s.kernels)))
}

// publishService announces a freshly minted service to the name's home
// kernel, which detects duplicates. Remote homes cost an IKC round trip.
func (k *Kernel) publishService(p *sim.Proc, name string, key ddl.Key) Errno {
	if home := k.sys.svcHome(name); home != k.id {
		k.exec(p, k.sys.Cost.IKCMarshal)
		return k.ikCall(p, home, &ikcRequest{Kind: ikcSvcRegister, Name: name, Key: key}).Err
	}
	if _, dup := k.svcDir[name]; dup {
		return ErrExists
	}
	k.svcDir[name] = svcLoc{kernel: k.id, key: key}
	return OK
}

// handleSvcRegister runs at the name's home kernel: record the location in
// this kernel's directory slice, rejecting duplicates.
func (k *Kernel) handleSvcRegister(p *sim.Proc, req *ikcRequest) *ikcReply {
	k.exec(p, k.sys.Cost.DDLDecode)
	if _, dup := k.svcDir[req.Name]; dup {
		return &ikcReply{Err: ErrExists}
	}
	k.svcDir[req.Name] = svcLoc{kernel: req.From, key: req.Key}
	return &ikcReply{}
}

// resolveService locates a service by name: own registrations and the local
// directory slice answer immediately, a cached location is reused, anything
// else asks the name's home kernel (an IKC round trip) and caches the
// answer. Dead owners are filtered wherever the verdict is known.
func (k *Kernel) resolveService(p *sim.Proc, name string) (svcLoc, Errno) {
	if e := k.svcOwn[name]; e != nil {
		return svcLoc{kernel: k.id, key: e.key}, OK
	}
	if k.sys.svcHome(name) == k.id {
		loc, ok := k.svcDir[name]
		if !ok || k.peerDead(loc.kernel) {
			return svcLoc{}, ErrNoService
		}
		return loc, OK
	}
	if loc, ok := k.svcCache[name]; ok {
		if k.peerDead(loc.kernel) {
			return svcLoc{}, ErrNoService
		}
		return loc, OK
	}
	k.exec(p, k.sys.Cost.IKCMarshal)
	rep := k.ikCall(p, k.sys.svcHome(name), &ikcRequest{Kind: ikcSvcLookup, Name: name})
	if rep.Err != OK {
		return svcLoc{}, rep.Err
	}
	loc := rep.Args.(svcLoc)
	k.svcCache[name] = loc
	return loc, OK
}

// handleSvcLookup runs at the name's home kernel: answer with the recorded
// location, filtering owners the home has declared dead (degraded mode — the
// paper's directory keeps routing decisions at the authority).
func (k *Kernel) handleSvcLookup(p *sim.Proc, req *ikcRequest) *ikcReply {
	k.exec(p, k.sys.Cost.DDLDecode)
	loc, ok := k.svcDir[req.Name]
	if !ok || k.peerDead(loc.kernel) {
		return &ikcReply{Err: ErrNoService}
	}
	return &ikcReply{Args: loc}
}

// serviceLocal resolves a service this kernel owns: the partitioned svcOwn
// slice in rounds mode, the shared directory otherwise.
func (k *Kernel) serviceLocal(name string) *serviceEntry {
	if k.sys.rounds {
		return k.svcOwn[name]
	}
	return k.sys.service(name)
}

// allocDRAMRounds serves an allocation from the kernel's pre-carved DRAM
// quota, round-robining across its spans. When every span is dry it refills
// from the central pool — kernel 0 carves directly (it owns the pool),
// everyone else pays an ikcDRAMRefill round trip — and retries. The retry
// loop terminates: each refill adds a span that fits the request, or the
// central pool is exhausted and the allocation fails.
func (k *Kernel) allocDRAMRounds(p *sim.Proc, size uint64) (pe int, off uint64, errno Errno) {
	for {
		for try := 0; try < len(k.dramSpans); try++ {
			i := (k.dramRR + try) % len(k.dramSpans)
			sp := &k.dramSpans[i]
			if sp.used+size <= sp.len {
				pe, off = sp.pe, sp.off+sp.used
				sp.used += size
				k.dramRR = (i + 1) % len(k.dramSpans)
				return pe, off, OK
			}
		}
		if k.id == 0 {
			sp, ok := k.sys.carveRefill(size)
			if !ok {
				return 0, 0, ErrOutOfMem
			}
			k.dramSpans = append(k.dramSpans, sp)
			continue
		}
		k.exec(p, k.sys.Cost.IKCMarshal)
		rep := k.ikCall(p, 0, &ikcRequest{Kind: ikcDRAMRefill, Args: size})
		if rep.Err != OK {
			return 0, 0, rep.Err
		}
		k.dramSpans = append(k.dramSpans, rep.Args.(dramSpan))
	}
}

// carveRefill grants a refill for a request of the given size: a
// dramRefillChunk-sized span when the pool allows the amortization, the
// exact size as a last resort.
func (s *System) carveRefill(size uint64) (dramSpan, bool) {
	want := max(size, dramRefillChunk)
	sp, ok := s.carveCentral(want)
	if !ok && want > size {
		sp, ok = s.carveCentral(size)
	}
	return sp, ok
}

// handleDRAMRefill runs at kernel 0: carve a span out of the central pool
// for the requesting kernel's quota.
func (k *Kernel) handleDRAMRefill(p *sim.Proc, req *ikcRequest) *ikcReply {
	if k.id != 0 {
		return &ikcReply{Err: ErrBadArgs}
	}
	k.exec(p, k.sys.Cost.DDLDecode)
	sp, ok := k.sys.carveRefill(req.Args.(uint64))
	if !ok {
		return &ikcReply{Err: ErrOutOfMem}
	}
	return &ikcReply{Args: sp}
}
