package core

import (
	"errors"
	"testing"

	"repro/internal/cap"
	"repro/internal/dtu"
	"repro/internal/fault"
	"repro/internal/sim"
)

// sleepUntil parks the proc until the given absolute simulation time (a
// no-op when that time has already passed — sim.Time is unsigned, so the
// comparison must precede the subtraction).
func sleepUntil(p *sim.Proc, t sim.Time) {
	if now := p.Now(); t > now {
		p.Sleep(t - now)
	}
}

// TestKernelRejoin: a kernel crashes at boot and recovers mid-run. Cross-
// kernel operations during the blackhole window fail with ErrPeerDead; the
// same operation after the rejoin handshake succeeds, the recovered kernel
// runs as a new incarnation, and no capability state leaks.
func TestKernelRejoin(t *testing.T) {
	plan := &fault.Plan{Seed: 1, Kernels: []fault.KernelFault{
		{Kernel: 1, CrashAt: 1, RecoverAt: 1_000_000},
	}}
	rel := &Reliability{RTOBase: 2_000, MaxRetries: 2}
	s := MustNew(Config{Kernels: 2, UserPEs: 8, Faults: plan, Reliability: rel})
	t.Cleanup(s.Close)

	var rootPE, clientPE int
	for _, pe := range s.userPEs {
		if s.KernelOfPE(pe).ID() == 0 && rootPE == 0 {
			rootPE = pe
		}
		if s.KernelOfPE(pe).ID() == 1 && clientPE == 0 {
			clientPE = pe
		}
	}
	ready := sim.NewFuture[cap.Selector](s.Eng)
	var done sim.WaitGroup
	done.Add(1)
	var errCrashed, errRecovered error
	root, err := s.SpawnOn(rootPE, "root", func(v *VPE, p *sim.Proc) {
		sel, err := v.AllocMem(p, 4096, dtu.PermRW)
		if err != nil {
			t.Errorf("alloc: %v", err)
			return
		}
		ready.Complete(sel)
		done.Wait(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.SpawnOn(clientPE, "client", func(v *VPE, p *sim.Proc) {
		sel := ready.Wait(p)
		// Kernel 1 is crashed: the spanning obtain must resolve to
		// ErrPeerDead, not hang.
		_, errCrashed = v.ObtainFrom(p, root.ID, sel)
		// Well past RecoverAt the rejoin handshake has run; the same obtain
		// must now succeed against the new incarnation.
		sleepUntil(p, 1_500_000)
		_, errRecovered = v.ObtainFrom(p, root.ID, sel)
		done.Done()
	}); err != nil {
		t.Fatal(err)
	}
	s.Run()

	if !errors.Is(errCrashed, error(ErrPeerDead)) {
		t.Errorf("obtain during crash window = %v, want ErrPeerDead", errCrashed)
	}
	if errRecovered != nil {
		t.Errorf("obtain after recovery failed: %v", errRecovered)
	}
	if inc := s.Kernel(1).Incarnation(); inc != 2 {
		t.Errorf("recovered kernel incarnation = %d, want 2", inc)
	}
	if inc := s.Kernel(0).Incarnation(); inc != 1 {
		t.Errorf("surviving kernel incarnation = %d, want 1", inc)
	}
	st1 := s.Kernel(1).Stats()
	if st1.Rejoins != 1 {
		t.Errorf("Rejoins = %d, want 1", st1.Rejoins)
	}
	if st1.RejoinCycles == 0 {
		t.Errorf("rejoin recorded no cycles")
	}
	if s.TotalStats().DeadPeers == 0 {
		t.Errorf("crash window produced no death verdict")
	}
	checkAllInvariants(t, s)
	checkNoLeaks(t, s)
}

// TestRejoinReplaysOrphanedRevocation: a revocation races the crash — the
// local parent is deleted but the remote child is unreachable, orphaning
// authority on the crashed kernel. The recorded fix must be replayed at
// rejoin so the orphan is revoked on the new incarnation.
func TestRejoinReplaysOrphanedRevocation(t *testing.T) {
	plan := &fault.Plan{Seed: 3, Kernels: []fault.KernelFault{
		{Kernel: 1, CrashAt: 200_000, RecoverAt: 800_000},
	}}
	rel := &Reliability{RTOBase: 2_000, MaxRetries: 2}
	s := MustNew(Config{Kernels: 2, UserPEs: 8, Faults: plan, Reliability: rel})
	t.Cleanup(s.Close)

	var rootPE, clientPE int
	for _, pe := range s.userPEs {
		if s.KernelOfPE(pe).ID() == 0 && rootPE == 0 {
			rootPE = pe
		}
		if s.KernelOfPE(pe).ID() == 1 && clientPE == 0 {
			clientPE = pe
		}
	}
	ready := sim.NewFuture[cap.Selector](s.Eng)
	obtained := sim.NewFuture[struct{}](s.Eng)
	var clientID int
	root, err := s.SpawnOn(rootPE, "root", func(v *VPE, p *sim.Proc) {
		sel, err := v.AllocMem(p, 4096, dtu.PermRW)
		if err != nil {
			t.Errorf("alloc: %v", err)
			return
		}
		ready.Complete(sel)
		obtained.Wait(p)
		// Revoke mid-blackhole: the remote-child revocation fails with
		// ErrPeerDead and is recorded as an orphan fix.
		sleepUntil(p, 300_000)
		if err := v.Revoke(p, sel); err != nil {
			t.Errorf("revoke: %v", err)
		}
		// Stay alive past the rejoin so the replay drains before Run ends.
		sleepUntil(p, 1_400_000)
	})
	if err != nil {
		t.Fatal(err)
	}
	client, err := s.SpawnOn(clientPE, "client", func(v *VPE, p *sim.Proc) {
		sel := ready.Wait(p)
		if _, err := v.ObtainFrom(p, root.ID, sel); err != nil {
			t.Errorf("pre-crash obtain: %v", err)
		}
		obtained.Complete(struct{}{})
	})
	if err != nil {
		t.Fatal(err)
	}
	clientID = client.ID
	s.Run()

	if got := ownedMemCaps(s, clientID); got != 0 {
		t.Errorf("client still owns %d memory caps after replayed revocation", got)
	}
	if st := s.Kernel(1).Stats(); st.Rejoins != 1 {
		t.Errorf("Rejoins = %d, want 1", st.Rejoins)
	}
	checkAllInvariants(t, s)
	checkNoLeaks(t, s)
}

// TestRejoinDeterministic: a lossy run with a crash+recover window in the
// middle reproduces exactly under the same seed — rejoin bookkeeping,
// orphan replay and stale-incarnation rejections included.
func TestRejoinDeterministic(t *testing.T) {
	run := func() (KernelStats, fault.Stats, uint64) {
		const kids = 16
		plan := &fault.Plan{Seed: 23, Drop: 0.08, Kernels: []fault.KernelFault{
			{Kernel: 1, CrashAt: 30_000, RecoverAt: 400_000},
		}}
		s, _ := reliableFanout(t, Config{Kernels: 4, UserPEs: kids + 7, Faults: plan}, kids)
		if got := s.Kernel(1).Stats().Rejoins; got != 1 {
			t.Errorf("Rejoins = %d, want 1", got)
		}
		checkAllInvariants(t, s)
		checkNoLeaks(t, s)
		return s.TotalStats(), s.FaultStats(), s.Net.Stats().Lost
	}
	st1, fs1, lost1 := run()
	st2, fs2, lost2 := run()
	if st1 != st2 {
		t.Errorf("kernel stats differ across identical crash+recover runs:\n%+v\n%+v", st1, st2)
	}
	if fs1 != fs2 {
		t.Errorf("injector stats differ across identical crash+recover runs:\n%+v\n%+v", fs1, fs2)
	}
	if lost1 != lost2 {
		t.Errorf("lost counts differ: %d vs %d", lost1, lost2)
	}
}
