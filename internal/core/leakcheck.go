package core

import (
	"fmt"

	"repro/internal/cap"
	"repro/internal/ddl"
)

// CheckLeaks audits the quiesced machine for capability and DDL state that
// outlived its owner — the leak classes the crash-recovery protocol
// (rejoin.go) exists to prevent. Call it only after the simulation has
// drained (no events left): mid-run, handshakes and revocations are
// legitimately in flight. deadKernels lists kernels that crashed and never
// recovered; state only they could clean up is excused.
//
// Checked, per live kernel:
//
//   - Pending delegation-handshake entries: at quiescence every handshake
//     has been acknowledged or aborted, so a surviving entry is a leaked
//     capability-to-be whose ack is never coming.
//   - Dangling cross-kernel child links: a capability listing a child that
//     the child's (live) owner kernel does not hold — the lost-reply
//     phantom of a spanning exchange, or a lost unlink notification.
//   - Orphaned capabilities: a capability whose (live-kernel) parent is
//     gone, or whose parent no longer links it — authority that survived
//     its delegator, the leak a revocation storm provokes.
//   - Unreplayed orphan fixes aimed at live kernels: a recorded fix whose
//     target rejoined should have been replayed and discharged.
//
// The return value lists every violation (empty means clean), so tests can
// report all findings at once instead of failing on the first.
func (s *System) CheckLeaks(deadKernels ...int) []string {
	dead := make(map[int]bool, len(deadKernels))
	for _, k := range deadKernels {
		dead[k] = true
	}
	var problems []string
	for _, k := range s.kernels {
		if dead[k.id] {
			continue
		}
		k.pendingDelegations.Range(func(key ddl.Key, _ *cap.Capability) bool {
			// An entry whose minted child lives on a dead kernel is stuck by
			// the crash itself — the ack died with the peer — and is excused.
			if !dead[k.member.KernelOfKey(key)] {
				problems = append(problems,
					fmt.Sprintf("kernel %d: pending delegation %v never acknowledged", k.id, key))
			}
			return true
		})
		for _, f := range k.orphanFixes {
			if !dead[f.dst] {
				problems = append(problems,
					fmt.Sprintf("kernel %d: unreplayed orphan fix (%v key %v) for live kernel %d", k.id, f.kind, f.key, f.dst))
			}
		}
		for _, key := range k.store.Keys() {
			c := k.store.Lookup(key)
			if c == nil {
				continue
			}
			c.ForEachChild(func(ck ddl.Key) {
				owner := k.member.KernelOfKey(ck)
				if owner == k.id || dead[owner] {
					return // local links are covered by CheckLocalInvariants
				}
				if s.kernels[owner].store.Lookup(ck) == nil {
					problems = append(problems,
						fmt.Sprintf("kernel %d: %v links child %v that kernel %d does not hold", k.id, key, ck, owner))
				}
			})
			if c.Parent == 0 {
				continue
			}
			powner := k.member.KernelOfKey(c.Parent)
			if powner == k.id || dead[powner] {
				continue
			}
			parent := s.kernels[powner].store.Lookup(c.Parent)
			switch {
			case parent == nil:
				problems = append(problems,
					fmt.Sprintf("kernel %d: %v orphaned — parent %v gone at kernel %d", k.id, key, c.Parent, powner))
			case !parent.HasChild(key):
				problems = append(problems,
					fmt.Sprintf("kernel %d: %v unlinked — parent %v at kernel %d lacks the child link", k.id, key, c.Parent, powner))
			}
		}
	}
	return problems
}
