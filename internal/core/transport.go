package core

import (
	"fmt"

	"repro/internal/ddl"
	"repro/internal/dtu"
	"repro/internal/sim"
)

// The unified IKC transport (paper §4.3 + the §5.2 message-batching
// proposal, generalized). The paper implements batching only for tree
// revocation; related capability systems make aggregation a property of the
// transport instead, so every inter-kernel operation can ride it. This file
// hoists that idea out of revoke.go and makes the transport symmetric: each
// kernel owns per-(destination, request-kind) aggregation queues for the
// request direction AND per-(destination, class) reply queues for the reply
// direction, under one configurable policy that decides which operation
// families are batched and when queues flush:
//
//   - inline, when a queue reaches MaxBatch (the enqueuing thread holds the
//     CPU and composes the envelope itself);
//   - for request queues, after the adaptive flush window closes: a timer
//     armed when a queue goes non-empty hands the flush to the kernel's
//     "xmit" proc, since every enqueuer is parked on its reply by then;
//   - at protocol barriers: the revocation mark phase flushes its request
//     queues before the walk ends, preserving Algorithm 1's accounting, and
//     every request dispatch ends by flushing the reply queue feeding that
//     request's sender (flushBatchReplies) — the reply direction needs no
//     timer at all, because a reply cannot outlive the dispatch that
//     produced it.
//
// A flushed batch travels as one DTU message — dtu.SendVecTo coalesces the
// requests (or replies) into a single NoC transfer occupying a single
// receive slot and raising a single delivery event. Request envelopes are
// picked up by one kernel thread (recvBatch); reply envelopes are demuxed
// in event context (recvReplyVec) into the per-request futures, exactly
// like direct replies. So where PR 3 still answered an envelope of N
// requests with N wire messages, the sink now answers it with one.
//
// Correctness of the flush points: delaying a request or reply by at most
// the flush window is equivalent to a slower NoC — every protocol in
// exchange.go/service.go validates state at the receiver when the request
// is dispatched and re-validates at the sender when the reply arrives, so
// no handler depends on a bound for message latency. Ordering between
// dependent messages is preserved *explicitly* by the sink rather than
// implicitly by send order: replies flush in enqueue order within an
// envelope and are demuxed in that order, and a reply to a request that
// arrived in an envelope leaves no later than the envelope's dispatch
// barrier. Dependent sends (the delegate ack, the orphan unlink) are only
// issued by the requester after the reply they depend on has been demuxed,
// and the NoC delivers per-(src,dst) FIFO for direct and coalesced
// transfers alike — so the delegate two-phase handshake observes the same
// order it did with per-request replies.

// IKCBatching configures the unified transport. The zero value disables
// all batching (every request is a direct send, bit-identical to the
// pre-transport behavior). An enabled family batches both directions:
// requests into per-(destination, kind) envelopes and their replies into
// per-(destination, class) envelopes.
type IKCBatching struct {
	// Exchange batches group-spanning capability exchange requests
	// (obtain, delegate) per destination kernel (§4.3.2).
	Exchange bool
	// ServiceQuery batches service-connection requests (session create,
	// session-scoped obtain/delegate) per destination kernel (§4.3.3).
	ServiceQuery bool
	// Revoke batches tree-revocation requests for remote children, one
	// envelope per owning kernel, collected during the mark phase and
	// flushed at its end (the paper's §5.2 proposal). Config.RevokeBatching
	// is a deprecated alias for this flag. In the reply direction it routes
	// thread-context revoke replies through the sink (they leave at the
	// dispatch barrier); continuation-completed replies stay direct — see
	// ikReplyAsync — so revocation completion never waits on a window.
	Revoke bool
	// MaxBatch flushes an exchange/service-query queue inline when it
	// reaches this many requests (default DefaultMaxBatch). Revoke batches
	// are bounded by the mark phase instead, matching the original
	// RevokeBatching semantics. Reply queues use the same bound.
	MaxBatch int
	// FlushWindow is the *ceiling* of the adaptive aggregation window: the
	// longest a non-empty request queue may wait for more traffic before
	// it is flushed (default DefaultFlushWindow cycles). Each request
	// queue adapts its own window between FlushWindowMin and FlushWindow
	// by drain feedback at every flush: draining a full MaxBatch envelope
	// (sustained load) doubles the window, draining a lone message (the
	// wait bought nothing: the link is quiet) halves it, anything between
	// leaves it — so batching stops costing latency on idle links and
	// still aggregates aggressively on busy ones. Reply queues have no
	// window: they drain at the dispatch barrier (see transport.repq).
	FlushWindow sim.Duration
	// FlushWindowMin is the floor of the adaptive window (default
	// DefaultFlushWindowMin). Setting FlushWindowMin = FlushWindow pins
	// the window fixed, disabling adaptation.
	FlushWindowMin sim.Duration
}

// Transport defaults.
const (
	// DefaultMaxBatch is the inline-flush threshold per destination queue.
	DefaultMaxBatch = 16
	// DefaultFlushWindow is the aggregation-window ceiling in cycles
	// (0.5 µs at 2 GHz): long enough to capture concurrent spanning
	// operations, short against the multi-thousand-cycle cost of the
	// operations themselves.
	DefaultFlushWindow sim.Duration = 1000
	// DefaultFlushWindowMin is the adaptive window's floor (32 ns at
	// 2 GHz): close enough to an inline flush that a lone request on a
	// quiet link pays almost nothing for riding the transport.
	DefaultFlushWindowMin sim.Duration = 64
)

// Enabled reports whether any operation family is batched.
func (b IKCBatching) Enabled() bool {
	return b.Exchange || b.ServiceQuery || b.Revoke
}

// withDefaults fills MaxBatch and the flush-window bounds.
func (b IKCBatching) withDefaults() IKCBatching {
	if b.MaxBatch <= 0 {
		b.MaxBatch = DefaultMaxBatch
	}
	if b.FlushWindow == 0 {
		b.FlushWindow = DefaultFlushWindow
	}
	if b.FlushWindowMin == 0 {
		b.FlushWindowMin = DefaultFlushWindowMin
	}
	if b.FlushWindowMin > b.FlushWindow {
		b.FlushWindowMin = b.FlushWindow
	}
	return b
}

// batchClass groups request kinds into the policy's operation families.
type batchClass uint8

const (
	classNone batchClass = iota
	classExchange
	classSvcQuery
	classRevoke
)

// classOf maps a request kind to its batching family. Handshake
// completions (delegate-ack) and notifications (unlink-child) are never
// batched: they are latency-critical tails of an operation that already
// paid its round trips.
func classOf(kind ikcKind) batchClass {
	switch kind {
	case ikcObtain, ikcDelegate:
		return classExchange
	case ikcSession, ikcObtainSess, ikcDelegateSess:
		return classSvcQuery
	case ikcRevoke:
		return classRevoke
	default:
		return classNone
	}
}

// replyClassOf maps a request kind to the family its *reply* batches
// under. It differs from classOf in the revocation family: revocation
// requests ride their own dedicated envelope (ikcRevokeBatch, classNone in
// the request direction because the mark walk queues them explicitly), but
// their thread-context replies are ordinary ikcReply messages and flow
// through the generic sink like everything else (continuation completions
// bypass it — see ikReplyAsync).
func replyClassOf(kind ikcKind) batchClass {
	switch kind {
	case ikcRevoke, ikcRevokeBatch:
		return classRevoke
	default:
		return classOf(kind)
	}
}

// qkey identifies one request aggregation queue: requests of one kind
// bound for one kernel (so every envelope carries N requests of a single
// kind).
type qkey struct {
	dst  int
	kind ikcKind
}

// rkey identifies one reply aggregation queue: replies of one operation
// family bound for one kernel. Replies are matched to their request by
// sequence number, not by kind, so the reply direction can coalesce at the
// coarser class granularity.
type rkey struct {
	dst   int
	class batchClass
}

// sendQueue is one request aggregation queue. epoch distinguishes queue
// generations so a flush (timer or transmit-proc entry) aimed at an
// already-flushed generation is a no-op; window is the queue's adaptive
// flush window.
type sendQueue struct {
	reqs   []*ikcRequest
	epoch  uint64
	window sim.Duration
}

// flushRef names one generation of one request queue on the transmit
// proc's work queue. Carrying the epoch keeps a stale entry — its
// generation already flushed inline while the proc waited for the CPU —
// from draining the *next* generation early, which would both cut that
// envelope short and feed adaptWindow a false idle signal.
type flushRef struct {
	key   qkey
	epoch uint64
}

// replyQueue is one reply aggregation queue. It needs no generation or
// window bookkeeping: replies are only produced inside a request
// dispatch, and every dispatch ends with a barrier flush of this queue
// (flushBatchReplies), so the queue can never outlive the event instant
// that filled it — MaxBatch and the barrier are the only flush triggers.
type replyQueue struct {
	reps []*ikcReply
}

// revokeEntry is one remote child queued during a revocation mark phase.
type revokeEntry struct {
	dst int
	key ddl.Key
	rs  *revState
}

// transport is a kernel's half of the unified IKC layer: the request
// aggregation queues (sending side) and the reply sink (answering side).
type transport struct {
	k   *Kernel
	pol IKCBatching

	queues map[qkey]*sendQueue
	// repq is the reply sink: handlers return their results to it (via
	// ikReply; continuation completions bypass it, see ikReplyAsync) and
	// it aggregates them into per-(destination, class) envelopes drained
	// by the dispatch barrier.
	repq map[rkey]*replyQueue
	// revQ holds remote revocation targets between a mark walk and its
	// barrier flush. The kernel CPU is held for the whole walk, so the
	// queue only ever contains entries of the revocation being walked.
	revQ []revokeEntry

	// flushQ feeds the transmit proc; spawned lazily on the first
	// timer-driven request flush so unbatched configurations create no
	// procs. Reply flushes never need it: nobody blocks on sending a
	// reply, so they run from event context under the ikReplyAsync cost
	// convention.
	flushQ  *sim.Queue[flushRef]
	spawned bool
}

func newTransport(k *Kernel, pol IKCBatching) *transport {
	return &transport{
		k:      k,
		pol:    pol.withDefaults(),
		queues: make(map[qkey]*sendQueue),
		repq:   make(map[rkey]*replyQueue),
		flushQ: sim.NewQueue[flushRef](k.sys.Eng),
	}
}

// batches reports whether requests of this kind ride aggregation queues.
// Revocation is excluded here: the mark walk queues its remote children
// explicitly (queueRevoke) so the barrier flush can keep Algorithm 1's
// outstanding-reply accounting.
func (t *transport) batches(kind ikcKind) bool {
	switch classOf(kind) {
	case classExchange:
		return t.pol.Exchange
	case classSvcQuery:
		return t.pol.ServiceQuery
	default:
		return false
	}
}

// batchesReply reports whether the reply to a request of this kind rides
// the reply sink. Symmetric with the request policy, except that the
// revocation family covers the reply direction too (see replyClassOf).
func (t *transport) batchesReply(kind ikcKind) bool {
	switch replyClassOf(kind) {
	case classExchange:
		return t.pol.Exchange
	case classSvcQuery:
		return t.pol.ServiceQuery
	case classRevoke:
		return t.pol.Revoke
	default:
		return false
	}
}

func (t *transport) queue(key qkey) *sendQueue {
	q := t.queues[key]
	if q == nil {
		q = &sendQueue{window: t.pol.FlushWindow}
		t.queues[key] = q
	}
	return q
}

func (t *transport) replyQueue(key rkey) *replyQueue {
	q := t.repq[key]
	if q == nil {
		q = &replyQueue{}
		t.repq[key] = q
	}
	return q
}

// --- request direction ---------------------------------------------------

// enqueue appends req to its aggregation queue and returns the future its
// reply will complete. The caller holds the CPU; the compose cost models
// marshalling the request into the batch buffer. The queue flushes inline
// at MaxBatch (growing the adaptive window: load sustains batching);
// otherwise the first request of a generation arms the window timer.
func (t *transport) enqueue(p *sim.Proc, dst int, req *ikcRequest) *sim.Future[*ikcReply] {
	k := t.k
	if dst == k.id {
		panic("core: inter-kernel call to self")
	}
	k.exec(p, k.sys.Cost.IKCCompose)
	req.Seq = k.nextSeq()
	req.From = k.id
	req.Inc = k.incarnation
	fut := sim.NewFuture[*ikcReply](k.sys.Eng)
	k.pending[req.Seq] = fut
	if k.peerDead(dst) {
		// Degraded mode: don't queue requests for a dead kernel — answer
		// them with an error reply right away (see reliability.go).
		k.rt.failFast(req.Seq, dst)
		return fut
	}
	k.stats.IKCBatched++

	key := qkey{dst: dst, kind: req.Kind}
	q := t.queue(key)
	q.reqs = append(q.reqs, req)
	if len(q.reqs) >= t.pol.MaxBatch {
		t.flushLocked(p, key)
	} else if len(q.reqs) == 1 {
		epoch := q.epoch
		k.dom.Schedule(q.window, func() { t.timerFire(key, epoch) })
	}
	return fut
}

// adaptWindow is the drain feedback of the adaptive flush window: a flush
// that drained a full MaxBatch envelope means
// sustained load — double the window (up to the FlushWindow ceiling) so
// the queue aggregates even more next time; a flush that drained a single
// message means the wait bought nothing — halve it (down to the
// FlushWindowMin floor) so a quiet link converges toward inline sends.
// In-between yields leave the window alone. The trigger (timer, MaxBatch,
// dispatch barrier) is deliberately ignored: under CPU contention a
// timer-armed flush routinely drains a full queue, which is load, not
// idleness.
func (t *transport) adaptWindow(window *sim.Duration, drained int) {
	switch {
	case drained >= t.pol.MaxBatch:
		*window = min(t.pol.FlushWindow, *window*2)
	case drained == 1:
		*window = max(t.pol.FlushWindowMin, *window/2)
	}
}

// timerFire runs in event context when a queue's aggregation window
// closes. If the generation is still pending, the flush is handed to the
// transmit proc (the enqueuers are parked on their replies and cannot
// flush themselves).
func (t *transport) timerFire(key qkey, epoch uint64) {
	q := t.queues[key]
	if q == nil || q.epoch != epoch || len(q.reqs) == 0 {
		return // already flushed inline
	}
	if !t.spawned {
		t.spawned = true
		t.k.dom.Spawn(fmt.Sprintf("k%d/xmit", t.k.id), func(p *sim.Proc) {
			for {
				ref := t.flushQ.Pop(p)
				t.flushFrom(p, ref)
			}
		})
	}
	t.flushQ.Push(flushRef{key: key, epoch: epoch})
}

// flushFrom is the transmit proc's entry: acquire the CPU like any kernel
// thread, then flush. The generation may have been flushed inline while
// this entry waited behind the CPU; the epoch check makes that a no-op —
// draining the *successor* generation here would cut its envelope short
// and misreport idleness to adaptWindow.
func (t *transport) flushFrom(p *sim.Proc, ref flushRef) {
	q := t.queues[ref.key]
	if q == nil || q.epoch != ref.epoch || len(q.reqs) == 0 {
		return
	}
	t.k.acquireCPU(p)
	if q.epoch == ref.epoch { // may have flushed inline while we waited for the CPU
		t.flushLocked(p, ref.key)
	}
	t.k.releaseCPU()
}

// flushLocked drains one queue and transmits its requests as a single
// coalesced envelope. The caller holds the CPU. The queue is detached
// before any preemption point, so requests enqueued while this envelope
// waits for an in-flight slot start a fresh generation.
func (t *transport) flushLocked(p *sim.Proc, key qkey) {
	q := t.queues[key]
	if q == nil || len(q.reqs) == 0 {
		return
	}
	reqs := q.reqs
	q.reqs = nil
	q.epoch++
	t.adaptWindow(&q.window, len(reqs))

	k := t.k
	if k.peerDead(key.dst) {
		// The destination died while these requests were queued: complete
		// them with error replies instead of transmitting into a black
		// hole (and tying up an in-flight credit).
		for _, req := range reqs {
			k.rt.failFast(req.Seq, key.dst)
		}
		return
	}
	k.exec(p, k.sys.Cost.IKCCompose) // envelope header compose
	k.stats.IKCSent++
	k.stats.IKCBatches++
	sem := k.inflightTo(key.dst)
	if !sem.TryAcquire() {
		k.releaseCPU()
		sem.Acquire(p)
		k.acquireCPU(p)
	}
	env := &ikcBatch{From: k.id, Kind: key.kind, Reqs: reqs}
	dk := k.sys.kernels[key.dst]
	must(k.dtu.SendVecTo(dk.pe, ikcBatchEP, env.items()))
	if k.rt != nil {
		k.rt.track(key.dst, reqs, true, key.kind)
	}
}

// --- reply direction (the sink) ------------------------------------------

// enqueueReply appends rep to its (destination, class) reply queue. The
// per-reply marshal cost has already been charged by ikReply. It may only
// be called from request-dispatch context: the dispatch barrier that ends
// every dispatch (flushBatchReplies, in recvRequest and recvBatch) is what
// guarantees the queue drains — there is no timer fallback, and none is
// needed, because a reply cannot outlive the dispatch that produced it.
// The only other flush trigger is MaxBatch, when a wide envelope's replies
// overflow mid-dispatch.
func (t *transport) enqueueReply(dst int, class batchClass, rep *ikcReply) {
	key := rkey{dst: dst, class: class}
	q := t.replyQueue(key)
	q.reps = append(q.reps, rep)
	if len(q.reps) >= t.pol.MaxBatch {
		t.flushReplies(key)
	}
}

// flushBatchReplies is the dispatch barrier of the reply sink: called when
// a kernel finishes dispatching an incoming request (envelope or direct),
// it flushes the reply queue feeding that request's sender. Every handler
// of an envelope has returned its reply to the sink by now (handlers that
// defer to continuations — revocation — answer later via ikReplyAsync,
// which bypasses the sink), so the common case answers an envelope of N
// requests with exactly one reply envelope, and no reply waits on an idle
// timer. Handlers may block mid-dispatch for consent and service round
// trips far longer than any flush window — the barrier, unlike a timer,
// holds the envelope open across them.
func (t *transport) flushBatchReplies(src int, kind ikcKind) {
	t.flushReplies(rkey{dst: src, class: replyClassOf(kind)})
}

// flushReplies drains one reply queue and transmits it as a single
// coalesced envelope over the vectored DTU path, preserving enqueue order.
// The envelope-header compose cost is charged as busy time before the send
// (the ikReplyAsync convention); replies bypass the in-flight limit — they
// answer slots the requests reserved — so there is nothing to block on. A
// queue holding a single reply degenerates to a direct reply message:
// there is nothing to share an envelope header with, so wrapping it would
// only add compose time and wire bytes.
func (t *transport) flushReplies(key rkey) {
	q := t.repq[key]
	if q == nil || len(q.reps) == 0 {
		return
	}
	reps := q.reps
	q.reps = nil

	k := t.k
	k.stats.IKCRepSent++
	dk := k.sys.kernels[key.dst]
	if len(reps) == 1 {
		rep := reps[0]
		k.sys.Net.Send(k.pe, dk.pe, ikcRepBytes, func() { dk.recvReply(rep) })
		return
	}
	k.stats.IKCRepBatches++
	k.stats.IKCRepBatched += uint64(len(reps))
	k.stats.Busy += k.sys.Cost.IKCCompose // envelope header compose
	items := make([]dtu.VecItem, len(reps))
	for i, r := range reps {
		items[i] = dtu.VecItem{Payload: r, Size: ikcBatchedRepBytes}
	}
	k.dom.Schedule(k.sys.Cost.IKCCompose, func() {
		must(k.dtu.SendVecTo(dk.pe, ikcReplyEP, items))
	})
}

// --- revocation barrier --------------------------------------------------

// queueRevoke records a remote child of a running revocation mark phase.
// The barrier flush (flushRevokes) groups the children by owning kernel.
func (t *transport) queueRevoke(dst int, key ddl.Key, rs *revState) {
	t.revQ = append(t.revQ, revokeEntry{dst: dst, key: key, rs: rs})
}

// flushRevokes is the revocation barrier flush: group rs's remote children
// by owning kernel (in first-seen order) and send one batched revoke
// request per kernel, counting one outstanding reply each — exactly the
// grouping the pre-transport flushRevokeBatches performed, so batched
// revocation keeps its original event sequence. The envelope stays the
// dedicated ikcRevokeBatch request (one reply for the whole batch,
// completed by the receiver's continuation machinery) rather than the
// generic per-request envelope of the other classes; the *reply* to it
// does ride the sink (replyClassOf maps it to classRevoke).
func (t *transport) flushRevokes(p *sim.Proc, rs *revState) {
	if len(t.revQ) == 0 {
		return
	}
	batches := make(map[int][]ddl.Key)
	var order []int
	var rest []revokeEntry
	for _, e := range t.revQ {
		if e.rs != rs {
			rest = append(rest, e) // defensive; the CPU discipline makes this unreachable
			continue
		}
		if _, seen := batches[e.dst]; !seen {
			order = append(order, e.dst)
		}
		batches[e.dst] = append(batches[e.dst], e.key)
	}
	t.revQ = rest
	k := t.k
	for _, dst := range order {
		rs.outstanding++
		keys := batches[dst]
		fut := k.ikSend(p, dst, &ikcRequest{Kind: ikcRevokeBatch, Keys: keys})
		fut.OnComplete(func(rep *ikcReply) {
			// An unreachable owner leaves every key of the batch unrevoked
			// remotely; record each for replay at the owner's rejoin.
			for _, key := range keys {
				k.recordOrphanFix(orphanFix{dst: dst, kind: ikcRevoke, key: key}, rep)
			}
			k.compSubmit(rs)
		})
	}
}
