package core

import (
	"fmt"

	"repro/internal/ddl"
	"repro/internal/sim"
)

// The unified IKC transport (paper §4.3 + the §5.2 message-batching
// proposal, generalized). The paper implements batching only for tree
// revocation; related capability systems make aggregation a property of the
// transport instead, so every inter-kernel operation can ride it. This file
// hoists that idea out of revoke.go: each kernel owns per-(destination,
// request-kind) aggregation queues, and a configurable policy decides which
// operation families are batched and when queues flush:
//
//   - inline, when a queue reaches MaxBatch (the enqueuing thread holds the
//     CPU and composes the envelope itself);
//   - after FlushWindow cycles, by the kernel's transmit thread (a timer
//     armed when a queue goes non-empty hands the flush to the "xmit" proc,
//     since every enqueuer is parked on its reply by then);
//   - at protocol barriers: the revocation mark phase flushes its queues
//     before the walk ends, preserving Algorithm 1's accounting.
//
// A flushed batch travels as one DTU message — dtu.SendVecTo coalesces the
// requests into a single NoC transfer occupying a single receive slot and
// raising a single delivery event — and is picked up by one kernel thread
// (recvBatch), so the per-message handoffs of wide fan-outs collapse to one
// per batch. Replies are not coalesced: each batched request keeps its own
// sequence number and is answered individually, which keeps the two-way
// delegation handshake and the Table 2 interference handling untouched
// (receivers re-validate at dispatch time exactly as for direct sends, and
// a batched request is indistinguishable from a slow direct one).
//
// Correctness of the flush points: delaying a request by at most
// FlushWindow is equivalent to a slower NoC — every protocol in
// exchange.go/service.go validates state at the receiver when the request
// is dispatched and re-validates at the sender when the reply arrives, so
// no handler depends on a bound for message latency. Ordering between
// dependent messages is preserved because dependent sends (the delegate
// ack, the orphan unlink) are only issued after the reply to the message
// they depend on, and the NoC delivers per-(src,dst) FIFO for direct and
// coalesced transfers alike.

// IKCBatching configures the unified transport. The zero value disables
// all batching (every request is a direct send, bit-identical to the
// pre-transport behavior).
type IKCBatching struct {
	// Exchange batches group-spanning capability exchange requests
	// (obtain, delegate) per destination kernel (§4.3.2).
	Exchange bool
	// ServiceQuery batches service-connection requests (session create,
	// session-scoped obtain/delegate) per destination kernel (§4.3.3).
	ServiceQuery bool
	// Revoke batches tree-revocation requests for remote children, one
	// envelope per owning kernel, collected during the mark phase and
	// flushed at its end (the paper's §5.2 proposal). Config.RevokeBatching
	// is a deprecated alias for this flag.
	Revoke bool
	// MaxBatch flushes an exchange/service-query queue inline when it
	// reaches this many requests (default DefaultMaxBatch). Revoke batches
	// are bounded by the mark phase instead, matching the original
	// RevokeBatching semantics.
	MaxBatch int
	// FlushWindow is how long a non-empty exchange/service-query queue may
	// wait for more requests before the transmit thread flushes it
	// (default DefaultFlushWindow cycles).
	FlushWindow sim.Duration
}

// Transport defaults.
const (
	// DefaultMaxBatch is the inline-flush threshold per destination queue.
	DefaultMaxBatch = 16
	// DefaultFlushWindow is the aggregation window in cycles (0.5 µs at
	// 2 GHz): long enough to capture concurrent spanning operations, short
	// against the multi-thousand-cycle cost of the operations themselves.
	DefaultFlushWindow sim.Duration = 1000
)

// Enabled reports whether any operation family is batched.
func (b IKCBatching) Enabled() bool {
	return b.Exchange || b.ServiceQuery || b.Revoke
}

// withDefaults fills MaxBatch and FlushWindow.
func (b IKCBatching) withDefaults() IKCBatching {
	if b.MaxBatch <= 0 {
		b.MaxBatch = DefaultMaxBatch
	}
	if b.FlushWindow == 0 {
		b.FlushWindow = DefaultFlushWindow
	}
	return b
}

// ikcBatchEP is the kernel DTU endpoint receiving coalesced batch
// envelopes. Kernel endpoints 2..2+SyscallRecvEPs-1 receive syscalls; this
// one sits above them. Its slot budget covers the in-flight bound of every
// peer (one envelope is one wire message and occupies one slot), mirroring
// the guarantee the in-flight accounting gives direct sends.
const ikcBatchEP = 2 + SyscallRecvEPs

// batchClass groups request kinds into the policy's operation families.
type batchClass uint8

const (
	classNone batchClass = iota
	classExchange
	classSvcQuery
	classRevoke
)

// classOf maps a request kind to its batching family. Handshake
// completions (delegate-ack) and notifications (unlink-child) are never
// batched: they are latency-critical tails of an operation that already
// paid its round trips.
func classOf(kind ikcKind) batchClass {
	switch kind {
	case ikcObtain, ikcDelegate:
		return classExchange
	case ikcSession, ikcObtainSess, ikcDelegateSess:
		return classSvcQuery
	case ikcRevoke:
		return classRevoke
	default:
		return classNone
	}
}

// qkey identifies one aggregation queue: requests of one kind bound for one
// kernel (so every envelope carries N requests of a single kind).
type qkey struct {
	dst  int
	kind ikcKind
}

// sendQueue is one aggregation queue. epoch distinguishes queue
// generations so a flush timer armed for an already-flushed generation is a
// no-op.
type sendQueue struct {
	reqs  []*ikcRequest
	epoch uint64
}

// revokeEntry is one remote child queued during a revocation mark phase.
type revokeEntry struct {
	dst int
	key ddl.Key
	rs  *revState
}

// transport is a kernel's sending half of the unified IKC layer.
type transport struct {
	k   *Kernel
	pol IKCBatching

	queues map[qkey]*sendQueue
	// revQ holds remote revocation targets between a mark walk and its
	// barrier flush. The kernel CPU is held for the whole walk, so the
	// queue only ever contains entries of the revocation being walked.
	revQ []revokeEntry

	// flushQ feeds the transmit proc; spawned lazily on the first
	// timer-driven flush so unbatched configurations create no procs.
	flushQ  *sim.Queue[qkey]
	spawned bool
}

func newTransport(k *Kernel, pol IKCBatching) *transport {
	return &transport{
		k:      k,
		pol:    pol.withDefaults(),
		queues: make(map[qkey]*sendQueue),
		flushQ: sim.NewQueue[qkey](k.sys.Eng),
	}
}

// batches reports whether requests of this kind ride aggregation queues.
// Revocation is excluded here: the mark walk queues its remote children
// explicitly (queueRevoke) so the barrier flush can keep Algorithm 1's
// outstanding-reply accounting.
func (t *transport) batches(kind ikcKind) bool {
	switch classOf(kind) {
	case classExchange:
		return t.pol.Exchange
	case classSvcQuery:
		return t.pol.ServiceQuery
	default:
		return false
	}
}

func (t *transport) queue(key qkey) *sendQueue {
	q := t.queues[key]
	if q == nil {
		q = &sendQueue{}
		t.queues[key] = q
	}
	return q
}

// enqueue appends req to its aggregation queue and returns the future its
// reply will complete. The caller holds the CPU; the compose cost models
// marshalling the request into the batch buffer. The queue flushes inline
// at MaxBatch; otherwise the first request of a generation arms the
// FlushWindow timer.
func (t *transport) enqueue(p *sim.Proc, dst int, req *ikcRequest) *sim.Future[*ikcReply] {
	k := t.k
	if dst == k.id {
		panic("core: inter-kernel call to self")
	}
	k.exec(p, k.sys.Cost.IKCCompose)
	req.Seq = k.nextSeq()
	req.From = k.id
	fut := sim.NewFuture[*ikcReply](k.sys.Eng)
	k.pending[req.Seq] = fut
	k.stats.IKCBatched++

	key := qkey{dst: dst, kind: req.Kind}
	q := t.queue(key)
	q.reqs = append(q.reqs, req)
	if len(q.reqs) >= t.pol.MaxBatch {
		t.flushLocked(p, key)
	} else if len(q.reqs) == 1 {
		epoch := q.epoch
		k.sys.Eng.Schedule(t.pol.FlushWindow, func() { t.timerFire(key, epoch) })
	}
	return fut
}

// timerFire runs in event context when a queue's aggregation window
// closes. If the generation is still pending, the flush is handed to the
// transmit proc (the enqueuers are parked on their replies and cannot
// flush themselves).
func (t *transport) timerFire(key qkey, epoch uint64) {
	q := t.queues[key]
	if q == nil || q.epoch != epoch || len(q.reqs) == 0 {
		return // already flushed inline
	}
	if !t.spawned {
		t.spawned = true
		t.k.sys.Eng.Spawn(fmt.Sprintf("k%d/xmit", t.k.id), func(p *sim.Proc) {
			for {
				k := t.flushQ.Pop(p)
				t.flushFrom(p, k)
			}
		})
	}
	t.flushQ.Push(key)
}

// flushFrom is the transmit proc's entry: acquire the CPU like any kernel
// thread, then flush. The queue may have been flushed inline meanwhile;
// that makes this a no-op.
func (t *transport) flushFrom(p *sim.Proc, key qkey) {
	q := t.queues[key]
	if q == nil || len(q.reqs) == 0 {
		return
	}
	t.k.acquireCPU(p)
	t.flushLocked(p, key)
	t.k.releaseCPU()
}

// flushLocked drains one queue and transmits its requests as a single
// coalesced envelope. The caller holds the CPU. The queue is detached
// before any preemption point, so requests enqueued while this envelope
// waits for an in-flight slot start a fresh generation.
func (t *transport) flushLocked(p *sim.Proc, key qkey) {
	q := t.queues[key]
	if q == nil || len(q.reqs) == 0 {
		return
	}
	reqs := q.reqs
	q.reqs = nil
	q.epoch++

	k := t.k
	k.exec(p, k.sys.Cost.IKCCompose) // envelope header compose
	k.stats.IKCSent++
	k.stats.IKCBatches++
	sem := k.inflightTo(key.dst)
	if !sem.TryAcquire() {
		k.releaseCPU()
		sem.Acquire(p)
		k.acquireCPU(p)
	}
	env := &ikcBatch{From: k.id, Kind: key.kind, Reqs: reqs}
	dk := k.sys.kernels[key.dst]
	must(k.dtu.SendVecTo(dk.pe, ikcBatchEP, env.items()))
}

// queueRevoke records a remote child of a running revocation mark phase.
// The barrier flush (flushRevokes) groups the children by owning kernel.
func (t *transport) queueRevoke(dst int, key ddl.Key, rs *revState) {
	t.revQ = append(t.revQ, revokeEntry{dst: dst, key: key, rs: rs})
}

// flushRevokes is the revocation barrier flush: group rs's remote children
// by owning kernel (in first-seen order) and send one batched revoke
// request per kernel, counting one outstanding reply each — exactly the
// grouping the pre-transport flushRevokeBatches performed, so batched
// revocation keeps its original event sequence. The envelope stays the
// dedicated ikcRevokeBatch request (one reply for the whole batch,
// completed by the receiver's continuation machinery) rather than the
// generic per-request-reply envelope of the other classes.
func (t *transport) flushRevokes(p *sim.Proc, rs *revState) {
	if len(t.revQ) == 0 {
		return
	}
	batches := make(map[int][]ddl.Key)
	var order []int
	var rest []revokeEntry
	for _, e := range t.revQ {
		if e.rs != rs {
			rest = append(rest, e) // defensive; the CPU discipline makes this unreachable
			continue
		}
		if _, seen := batches[e.dst]; !seen {
			order = append(order, e.dst)
		}
		batches[e.dst] = append(batches[e.dst], e.key)
	}
	t.revQ = rest
	k := t.k
	for _, dst := range order {
		rs.outstanding++
		fut := k.ikSend(p, dst, &ikcRequest{Kind: ikcRevokeBatch, Keys: batches[dst]})
		fut.OnComplete(func(*ikcReply) { k.compSubmit(rs) })
	}
}
