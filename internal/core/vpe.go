package core

import (
	"fmt"

	"repro/internal/cap"
	"repro/internal/dtu"
	"repro/internal/sim"
)

// User-PE DTU endpoint layout.
const (
	vpeSyscallSendEP  = 0 // send syscalls to the group kernel
	vpeSyscallReplyEP = 1 // receive syscall replies
	vpeServiceReplyEP = 3 // receive service IPC replies

	// vpeFirstSessionEP..vpeLastSessionEP are send endpoints to services,
	// one per session.
	vpeFirstSessionEP = 4
	vpeLastSessionEP  = 9
	// vpeFirstMemEP..vpeLastMemEP are memory endpoints, activated from
	// memory capabilities.
	vpeFirstMemEP = 10
	vpeLastMemEP  = 15
)

// Program is the code a VPE executes, running as a cooperative proc.
type Program func(v *VPE, p *sim.Proc)

// VPE is a virtual PE: the unit of execution scheduled on a user PE,
// comparable to a single-threaded process (paper §2.2). Each VPE has its
// own capability space managed by its group kernel, and issues system calls
// as messages to that kernel — at most one at a time.
type VPE struct {
	ID   int
	Name string
	PE   int

	sys    *System
	kernel *Kernel
	dtu    *dtu.DTU
	prog   Program
	proc   *sim.Proc

	selfSel cap.Selector // selector of the VPE's own control capability

	// OnExchange, if set, decides on incoming exchange requests; the
	// default accepts everything. It runs as the VPE's exchange handler.
	OnExchange func(ExchangeQuery) ExchangeAnswer

	// svc is non-nil when this VPE registered as a service.
	svc *localService

	// activeEPs maps activated endpoint indices to the backing selector,
	// so revocation can invalidate them.
	activeEPs map[int]cap.Selector

	// nextSessEP allocates send endpoints for sessions.
	nextSessEP int

	exited   bool
	started  bool
	doneAt   sim.Time
	capOps   uint64
	syscalls uint64
}

// Kernel returns the kernel managing this VPE.
func (v *VPE) Kernel() *Kernel { return v.kernel }

// SelfSel returns the selector of the VPE's own control capability.
func (v *VPE) SelfSel() cap.Selector { return v.selfSel }

// Exited reports whether the VPE has exited (or was killed).
func (v *VPE) Exited() bool { return v.exited }

// DoneAt returns the virtual time the program finished (0 if running).
func (v *VPE) DoneAt() sim.Time { return v.doneAt }

// CapOps returns the number of capability operations (obtain, delegate,
// revoke, session create) this VPE has issued — the paper's Table 4 metric.
func (v *VPE) CapOps() uint64 { return v.capOps }

// Syscalls returns the number of system calls this VPE has issued.
func (v *VPE) Syscalls() uint64 { return v.syscalls }

// start launches the VPE's program (called by the kernel after setup).
func (v *VPE) start() {
	if v.started || v.prog == nil {
		return
	}
	v.started = true
	v.proc = v.kernel.dom.Spawn(fmt.Sprintf("vpe%d:%s", v.ID, v.Name), func(p *sim.Proc) {
		v.prog(v, p)
		if !v.exited {
			v.doneAt = p.Now()
		}
	})
}

// answerExchange runs the VPE's exchange handler (event context; the
// decision cost is charged by the kernel's query round trip).
func (v *VPE) answerExchange(q ExchangeQuery) ExchangeAnswer {
	if v.exited {
		return ExchangeAnswer{Accept: false}
	}
	if v.OnExchange != nil {
		return v.OnExchange(q)
	}
	return ExchangeAnswer{Accept: true}
}

// Kill marks the VPE as exited immediately, without running cleanup — the
// fault model for the paper's orphaned/invalid interference cases. The
// kernel discovers the death when it next interacts with the VPE.
func (v *VPE) Kill() { v.exited = true }

// syscall sends a request message to the group kernel and blocks until the
// reply arrives, like the paper's message-based system calls. Each VPE has
// a single syscall credit, enforcing one outstanding call.
func (v *VPE) syscall(p *sim.Proc, req *sysRequest) *sysReply {
	req.VPE = v.ID
	v.syscalls++
	if err := v.dtu.Send(vpeSyscallSendEP, req, syscallMsgBytes, vpeSyscallReplyEP, 0); err != nil {
		panic(fmt.Sprintf("core: syscall send failed: %v", err))
	}
	m := v.dtu.Wait(p, vpeSyscallReplyEP)
	rep := m.Payload.(*sysReply)
	v.dtu.Ack(m)
	return rep
}

// Compute models local computation for d cycles.
func (v *VPE) Compute(p *sim.Proc, d sim.Duration) { p.Sleep(d) }

// TransferData models moving bytes of bulk data over the PE group's shared
// mesh region: transfers of VPEs in the same group serialize on the link.
func (v *VPE) TransferData(p *sim.Proc, bytes uint64) {
	d := sim.Duration(float64(bytes) * v.sys.Cost.LinkCyclesPerByte)
	if d == 0 {
		return
	}
	v.kernel.link.Acquire(p)
	p.Sleep(d)
	v.kernel.link.Release()
}

// AllocMem allocates size bytes of global memory with the given permissions
// and returns a root memory capability.
func (v *VPE) AllocMem(p *sim.Proc, size uint64, perm dtu.Perm) (cap.Selector, error) {
	rep := v.syscall(p, &sysRequest{Kind: sysAllocMem, Size: size, Perm: perm})
	return rep.Sel, rep.Err.Err()
}

// DeriveMem creates a child memory capability covering [off, off+size) of
// the memory capability at sel, with possibly reduced permissions.
func (v *VPE) DeriveMem(p *sim.Proc, sel cap.Selector, off, size uint64, perm dtu.Perm) (cap.Selector, error) {
	v.capOps++
	rep := v.syscall(p, &sysRequest{Kind: sysDeriveMem, Sel: sel, Off: off, Size: size, Perm: perm})
	return rep.Sel, rep.Err.Err()
}

// ObtainFrom obtains the capability at (srcVPE, srcSel) into this VPE's
// capability space. The owner VPE is asked for consent; the kernels run the
// distributed obtain protocol if the owner lives in another PE group.
func (v *VPE) ObtainFrom(p *sim.Proc, srcVPE int, srcSel cap.Selector) (cap.Selector, error) {
	v.capOps++
	rep := v.syscall(p, &sysRequest{Kind: sysObtainFrom, TargetVPE: srcVPE, TargetSel: srcSel})
	return rep.Sel, rep.Err.Err()
}

// DelegateTo delegates this VPE's capability at sel to dstVPE. The receiver
// is asked for consent; across groups the two-way handshake protocol runs.
func (v *VPE) DelegateTo(p *sim.Proc, dstVPE int, sel cap.Selector) (cap.Selector, error) {
	v.capOps++
	rep := v.syscall(p, &sysRequest{Kind: sysDelegateTo, TargetVPE: dstVPE, Sel: sel})
	return rep.Sel, rep.Err.Err()
}

// Revoke recursively revokes the capability subtree rooted at sel.
func (v *VPE) Revoke(p *sim.Proc, sel cap.Selector) error {
	v.capOps++
	rep := v.syscall(p, &sysRequest{Kind: sysRevoke, Sel: sel})
	return rep.Err.Err()
}

// CreateRgate creates a receive gate on this VPE's endpoint ep and returns
// its capability. Other VPEs can obtain send capabilities from it.
func (v *VPE) CreateRgate(p *sim.Proc, ep, slots int) (cap.Selector, error) {
	rep := v.syscall(p, &sysRequest{Kind: sysCreateRgate, EP: ep, Size: uint64(slots)})
	return rep.Sel, rep.Err.Err()
}

// Activate configures endpoint ep from the capability at sel (memory or
// send capability), enabling direct DTU access without further kernel
// involvement.
func (v *VPE) Activate(p *sim.Proc, sel cap.Selector, ep int) error {
	rep := v.syscall(p, &sysRequest{Kind: sysActivate, Sel: sel, EP: ep})
	return rep.Err.Err()
}

// Exit revokes all of the VPE's capabilities and marks it exited.
func (v *VPE) Exit(p *sim.Proc) {
	v.syscall(p, &sysRequest{Kind: sysExit})
	v.exited = true
	v.doneAt = p.Now()
}

// Noop issues a no-op syscall (used to measure the bare syscall path).
func (v *VPE) Noop(p *sim.Proc) {
	v.syscall(p, &sysRequest{Kind: sysNoop})
}

// DTU exposes the VPE's DTU for direct data access after Activate.
func (v *VPE) DTU() *dtu.DTU { return v.dtu }
