package core

import (
	"testing"

	"repro/internal/cap"
	"repro/internal/dtu"
	"repro/internal/sim"
)

// buildFanout creates a root capability obtained by n VPEs spread over the
// system's kernels and then revokes the root, returning the system and the
// revocation duration.
func buildFanout(t *testing.T, cfg Config, n int) (*System, sim.Duration) {
	t.Helper()
	s := MustNew(cfg)
	t.Cleanup(s.Close)
	ready := sim.NewFuture[cap.Selector](s.Eng)
	var wg sim.WaitGroup
	wg.Add(n)
	var revTime sim.Duration
	root, err := s.SpawnOn(s.userPEs[0], "root", func(v *VPE, p *sim.Proc) {
		sel, err := v.AllocMem(p, 4096, dtu.PermRW)
		if err != nil {
			t.Errorf("alloc: %v", err)
			return
		}
		ready.Complete(sel)
		wg.Wait(p)
		t0 := p.Now()
		if err := v.Revoke(p, sel); err != nil {
			t.Errorf("revoke: %v", err)
		}
		revTime = p.Now() - t0
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := s.SpawnOn(s.userPEs[1+i], "kid", func(v *VPE, p *sim.Proc) {
			sel := ready.Wait(p)
			if _, err := v.ObtainFrom(p, root.ID, sel); err != nil {
				t.Errorf("obtain: %v", err)
			}
			wg.Done()
		}); err != nil {
			t.Fatal(err)
		}
	}
	s.Run()
	return s, revTime
}

// TestBatchedRevocationCorrect: with batching enabled, a cross-kernel tree
// revocation still removes every capability and keeps invariants.
func TestBatchedRevocationCorrect(t *testing.T) {
	const kids = 9
	s, _ := buildFanout(t, Config{Kernels: 4, UserPEs: kids + 7, RevokeBatching: true}, kids)
	if n := memCapsEverywhere(s); n != 0 {
		t.Fatalf("%d mem caps survived batched revoke", n)
	}
	deleted := uint64(0)
	for ki := 0; ki < s.Kernels(); ki++ {
		deleted += s.Kernel(ki).Stats().CapsDeleted
	}
	if deleted != kids+1 {
		t.Fatalf("deleted = %d, want %d", deleted, kids+1)
	}
	checkAllInvariants(t, s)
}

// TestBatchingReducesMessages: batching must cut the number of inter-kernel
// messages for a wide tree revocation.
func TestBatchingReducesMessages(t *testing.T) {
	const kids = 12
	run := func(batching bool) uint64 {
		s, _ := buildFanout(t, Config{Kernels: 4, UserPEs: kids + 7, RevokeBatching: batching}, kids)
		var sent uint64
		for ki := 0; ki < s.Kernels(); ki++ {
			sent += s.Kernel(ki).Stats().IKCSent
		}
		return sent
	}
	plain := run(false)
	batched := run(true)
	if batched >= plain {
		t.Fatalf("batching did not reduce messages: %d vs %d", batched, plain)
	}
}

// TestBatchingSpeedsUpTreeRevocation: the paper's expectation — batching
// improves wide-tree revocation latency.
func TestBatchingSpeedsUpTreeRevocation(t *testing.T) {
	const kids = 24
	_, plain := buildFanout(t, Config{Kernels: 4, UserPEs: kids + 7}, kids)
	_, batched := buildFanout(t, Config{Kernels: 4, UserPEs: kids + 7, RevokeBatching: true}, kids)
	if batched >= plain {
		t.Fatalf("batched revoke (%d cycles) not faster than plain (%d cycles)", batched, plain)
	}
}

// TestBatchedChainStillCorrect: batching must not break deep cross-kernel
// chains (each hop has exactly one remote child, so batches of size one).
func TestBatchedChainStillCorrect(t *testing.T) {
	s := MustNew(Config{Kernels: 2, UserPEs: 10, RevokeBatching: true})
	defer s.Close()
	const chainLen = 6
	futs := make([]*sim.Future[cap.Selector], chainLen+1)
	for i := range futs {
		futs[i] = sim.NewFuture[cap.Selector](s.Eng)
	}
	vpes := make([]*VPE, chainLen+1)
	half := 5
	pe := func(i int) int {
		if i%2 == 0 {
			return s.userPEs[i/2]
		}
		return s.userPEs[half+i/2]
	}
	var err error
	done := sim.NewFuture[struct{}](s.Eng)
	vpes[0], err = s.SpawnOn(pe(0), "c0", func(v *VPE, p *sim.Proc) {
		sel, _ := v.AllocMem(p, 4096, dtu.PermRW)
		futs[0].Complete(sel)
		done.Wait(p)
		if err := v.Revoke(p, sel); err != nil {
			t.Errorf("revoke: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= chainLen; i++ {
		i := i
		vpes[i], err = s.SpawnOn(pe(i), "c", func(v *VPE, p *sim.Proc) {
			prev := futs[i-1].Wait(p)
			sel, e := v.ObtainFrom(p, vpes[i-1].ID, prev)
			if e != nil {
				t.Errorf("obtain %d: %v", i, e)
				return
			}
			futs[i].Complete(sel)
			if i == chainLen {
				done.Complete(struct{}{})
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	s.Run()
	if n := memCapsEverywhere(s); n != 0 {
		t.Fatalf("%d caps survived batched chain revoke", n)
	}
	checkAllInvariants(t, s)
}
