package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/ddl"
	"repro/internal/dtu"
	"repro/internal/fault"
	"repro/internal/noc"
	"repro/internal/sim"
)

// Config describes a SemperOS machine: how many kernels (and therefore PE
// groups), user PEs and memory PEs to instantiate.
type Config struct {
	// Kernels is the number of kernel PEs / PE groups (1..MaxKernels).
	Kernels int
	// UserPEs is the number of user PEs, split into contiguous groups.
	UserPEs int
	// MemPEs is the number of DRAM PEs (default 1).
	MemPEs int
	// MemBytes is the DRAM capacity per memory PE (default 64 MiB).
	MemBytes int
	// Noc overrides the NoC configuration (nil uses noc.DefaultConfig).
	Noc *noc.Config
	// Cost overrides the cost model (nil uses DefaultCostModel).
	Cost *CostModel
	// IKCBatching configures the unified inter-kernel transport: which
	// operation families (capability exchange, service queries, tree
	// revocation) aggregate into coalesced per-destination envelopes — in
	// both directions, requests and replies — and the flush policy,
	// including the adaptive flush window (see transport.go). The zero
	// value disables all batching.
	IKCBatching IKCBatching
	// RevokeBatching enables the paper's proposed optimization (§5.2,
	// "Tree revocation"): instead of one inter-kernel message per remote
	// child, the kernel batches all children owned by the same kernel into
	// a single revoke request.
	//
	// Deprecated: RevokeBatching is an alias for IKCBatching.Revoke and is
	// kept so existing configurations work unchanged; setting either
	// enables revoke batching with identical semantics.
	RevokeBatching bool
	// Faults attaches a deterministic fault-injection plan to the NoC's
	// kernel↔kernel links (internal/fault). Setting it switches the IKC
	// protocol into reliable mode — timeouts, retransmit with backoff,
	// receiver dedup, dead-peer degradation (reliability.go). Nil keeps
	// the lossless fabric and the byte-identical baseline event trace.
	Faults *fault.Plan
	// Reliability tunes the reliable IKC mode's timers and budgets; nil
	// uses the defaults. Setting it (even with Faults nil) enables
	// reliable mode on a lossless fabric.
	Reliability *Reliability
	// Engine, when non-nil, is the simulation engine to build on instead of
	// a fresh sim.NewEngine. It must be in fresh state (new or Reset):
	// time, sequence and event counters at zero and not killed. The bench
	// harness uses this to recycle pooled engines across experiments.
	Engine *sim.Engine
	// SimWorkers partitions the simulation's event queue into
	// min(SimWorkers, Kernels) domains — one per contiguous block of
	// kernels, each kernel owning its PE group — with the NoC's minimum
	// cross-PE latency as the lookahead bound. In merged mode (the
	// default) the engine runs the domains through the order-preserving
	// merged loop: every simulated metric stays byte-identical to the
	// sequential engine at any setting, and the partitioning yields
	// per-domain busy/idle attribution (sim.Engine.DomainStats). 0 or 1
	// keeps the sequential fast path. Under SimModeRounds, SimWorkers
	// only sizes the execution pool — the domain layout is always one
	// domain per kernel, so metrics are identical at any worker count.
	SimWorkers int
	// SimMode selects the execution mode of a partitioned engine:
	//
	//   - "" or "merged": the order-preserving merged loop. Metrics are
	//     byte-identical to the sequential engine; SimWorkers buys
	//     busy/idle attribution only.
	//   - "rounds": genuine conservative-PDES isolated rounds. Every
	//     kernel (with its PE group) gets its own domain, every
	//     cross-domain interaction costs at least one NoC latency (credit
	//     returns ride credit messages, service lookups and DRAM refills
	//     ride IKC), and the engine advances domains concurrently on
	//     SimWorkers workers. Metrics drift from the merged baseline —
	//     deterministically, identically at any worker count — and a
	//     single multi-kernel run scales with cores. Incompatible with NoC
	//     contention, whose link state is shared across all senders; fault
	//     injection works (the injector shards its state by source PE), but
	//     the plan must not crash kernel 0, the DRAM-refill home (Validate).
	SimMode string
	// RelaxLimits lifts the architectural sizing limits (MaxKernels,
	// MaxPEsPerKernel) for scalability studies: the machine may then be
	// built with more kernels and larger PE groups than real SemperOS
	// hardware would allow. Per-kernel resources that are sized from
	// MaxKernels (inter-kernel thread pools, envelope endpoints) grow with
	// the actual kernel count instead. The ddl.Key bit-field widths still
	// bound the machine at MaxPEs total PEs.
	RelaxLimits bool
}

// SimMode values for Config.SimMode.
const (
	SimModeMerged = "merged"
	SimModeRounds = "rounds"
)

// roundsMode reports whether the config selects isolated-rounds execution.
func (c Config) roundsMode() bool { return c.SimMode == SimModeRounds }

// batchingPolicy resolves the effective transport policy: the deprecated
// RevokeBatching alias folds into IKCBatching.Revoke, and flush parameters
// get their defaults.
func (c Config) batchingPolicy() IKCBatching {
	b := c.IKCBatching
	if c.RevokeBatching {
		b.Revoke = true
	}
	return b.withDefaults()
}

func (c Config) withDefaults() Config {
	if c.Kernels <= 0 {
		c.Kernels = 1
	}
	if c.MemPEs <= 0 {
		c.MemPEs = 1
	}
	if c.MemBytes <= 0 {
		c.MemBytes = 64 << 20
	}
	return c
}

// Validate reports configuration errors against the architectural limits.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.Kernels > MaxKernels && !c.RelaxLimits {
		return fmt.Errorf("core: %d kernels exceed the maximum of %d", c.Kernels, MaxKernels)
	}
	if c.UserPEs <= 0 {
		return errors.New("core: at least one user PE is required")
	}
	perKernel := (c.UserPEs + c.Kernels - 1) / c.Kernels
	if perKernel > MaxPEsPerKernel && !c.RelaxLimits {
		return fmt.Errorf("core: %d PEs per kernel exceed the maximum of %d", perKernel, MaxPEsPerKernel)
	}
	if total := c.Kernels + c.UserPEs + c.MemPEs; total > ddl.MaxPEs {
		return fmt.Errorf("core: %d total PEs exceed the DDL key space of %d", total, ddl.MaxPEs)
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return err
		}
	}
	switch c.SimMode {
	case "", SimModeMerged:
	case SimModeRounds:
		if c.Noc != nil && c.Noc.Contention {
			return errors.New("core: SimMode rounds is incompatible with NoC contention (shared link state); use merged mode")
		}
		if c.Faults != nil {
			// The injector itself is rounds-safe (its mutable state is
			// sharded by source PE), but kernel 0 is the rounds-mode
			// DRAM-refill home and central-pool owner: crashing it blackholes
			// every refill and wedges allocation across the machine. Reject
			// the scenario instead of hanging.
			for _, kf := range c.Faults.Kernels {
				if kf.Kernel == 0 && kf.CrashAt > 0 {
					return errors.New("core: SimMode rounds cannot crash kernel 0 (the DRAM-refill home); crash another kernel or use merged mode")
				}
			}
		}
	default:
		return fmt.Errorf("core: unknown SimMode %q (valid: %q, %q)", c.SimMode, SimModeMerged, SimModeRounds)
	}
	return nil
}

// System is one simulated SemperOS machine: the NoC, all PEs with their
// DTUs, the kernels, and the global service directory.
type System struct {
	cfg  Config
	Eng  *sim.Engine
	Net  *noc.Network
	Fab  *dtu.Fabric
	Cost CostModel

	kernels []*Kernel
	member  *ddl.Membership
	userPEs []int
	memPEs  []int
	vpes    []*VPE
	peToVPE []*VPE
	// doms, when SimWorkers partitions the engine, maps domain id to handle;
	// nil on the sequential fast path. kernelDom maps kernel id to domain.
	doms      []*sim.Domain
	kernelDom []*sim.Domain

	// rel is the resolved reliable-IKC configuration; nil in baseline
	// lossless mode. inj is the attached fault injector, if any.
	rel *Reliability
	inj *fault.Injector

	// rounds marks isolated-rounds execution (Config.SimMode == "rounds"):
	// the shared directory and DRAM state below stay untouched, replaced by
	// the per-kernel partitioned state on Kernel plus the central DRAM
	// remainder here (centralNext, single-writer: kernel 0's domain).
	rounds bool

	services map[string]*serviceEntry
	dramNext []uint64
	dramRR   int
	// centralNext is the rounds-mode central DRAM pool: the next free offset
	// per memory PE in the un-carved upper half of its capacity. Only kernel
	// 0 (the refill grantor) touches it, so it needs no further partitioning.
	centralNext []uint64
	centralRR   int
	nextVPE     int
}

type serviceEntry struct {
	name   string
	key    ddl.Key
	kernel int
	vpe    *VPE
}

// dramSpan is one contiguous pre-carved slice of a memory PE, the unit of
// the rounds-mode per-kernel DRAM quota.
type dramSpan struct {
	pe   int
	off  uint64
	len  uint64
	used uint64
}

// NewSystem builds and boots a machine. PE numbering: kernels occupy PEs
// [0, Kernels), user PEs follow, memory PEs come last. User PEs are assigned
// to kernels in contiguous blocks (the PE groups).
func NewSystem(cfg Config) (*System, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nodes := cfg.Kernels + cfg.UserPEs + cfg.MemPEs
	eng := cfg.Engine
	if eng == nil {
		eng = sim.NewEngine()
	}
	ncfg := noc.DefaultConfig(nodes)
	if cfg.Noc != nil {
		ncfg = *cfg.Noc
		ncfg.Nodes = nodes
	}
	cost := DefaultCostModel()
	if cfg.Cost != nil {
		cost = *cfg.Cost
	}
	net := noc.New(eng, ncfg)
	fab := dtu.NewFabric(eng, net)
	s := &System{
		cfg:      cfg,
		Eng:      eng,
		Net:      net,
		Fab:      fab,
		Cost:     cost,
		member:   ddl.NewMembership(nodes),
		peToVPE:  make([]*VPE, nodes),
		services: make(map[string]*serviceEntry),
		dramNext: make([]uint64, cfg.MemPEs),
	}
	// Fault injection and the reliable IKC mode it requires. Either knob
	// alone enables reliable mode; the injector only exists with a plan.
	if cfg.Faults != nil || cfg.Reliability != nil {
		rel := Reliability{}
		if cfg.Reliability != nil {
			rel = *cfg.Reliability
		}
		rel = rel.withDefaults()
		s.rel = &rel
	}
	if cfg.Faults != nil {
		s.inj = fault.NewInjector(*cfg.Faults, cfg.Kernels)
		net.SetInjector(s.inj)
	}
	s.rounds = cfg.roundsMode()
	switch {
	case s.rounds && cfg.Kernels > 1:
		// Isolated rounds: one domain per kernel, always — the layout must
		// not depend on SimWorkers, or metrics would vary with the worker
		// count. SimWorkers only sizes the engine's execution pool. The
		// domain table is topology-aware: user PEs follow their group kernel
		// (contiguous blocks, so groups align with mesh rows) and each
		// memory PE joins its nearest kernel's domain instead of kernel 0's,
		// keeping its traffic on short same-domain paths. The lookahead is
		// the minimum latency across the resulting cut, at least MinLatency.
		s.doms = make([]*sim.Domain, cfg.Kernels)
		s.doms[0] = eng.Domain(0)
		for i := 1; i < cfg.Kernels; i++ {
			s.doms[i] = eng.NewDomain()
		}
		s.kernelDom = s.doms
		nodeDoms := make([]*sim.Domain, nodes)
		for pe := range nodeDoms {
			nodeDoms[pe] = s.kernelDom[s.domainKernelOfNode(pe)]
		}
		net.BindDomains(nodeDoms)
		net.SetIsolated(true)
		eng.SetLookahead(net.MinLatencyAcross(s.domainKernelOfNode))
		eng.SetIsolated(true)
		eng.SetWorkers(max(cfg.SimWorkers, 1))
	case min(cfg.SimWorkers, cfg.Kernels) > 1:
		// Merged mode: contiguous blocks of kernels (with their PE groups)
		// map onto min(SimWorkers, Kernels) domains, and the network's
		// minimum cross-PE latency becomes the engine's lookahead bound.
		// The order-preserving merged loop keeps every metric byte-identical
		// to the sequential engine; the partitioning buys attribution.
		d := min(cfg.SimWorkers, cfg.Kernels)
		s.doms = make([]*sim.Domain, d)
		s.doms[0] = eng.Domain(0)
		for i := 1; i < d; i++ {
			s.doms[i] = eng.NewDomain()
		}
		s.kernelDom = make([]*sim.Domain, cfg.Kernels)
		for k := 0; k < cfg.Kernels; k++ {
			s.kernelDom[k] = s.doms[k*d/cfg.Kernels]
		}
		nodeDoms := make([]*sim.Domain, nodes)
		for pe := range nodeDoms {
			nodeDoms[pe] = s.kernelDom[s.kernelIDOfNode(pe)]
		}
		net.BindDomains(nodeDoms)
		eng.SetLookahead(net.MinLatency())
		eng.SetWorkers(cfg.SimWorkers)
	}
	// Kernel PEs.
	for k := 0; k < cfg.Kernels; k++ {
		fab.Add(k, 0)
		s.member.Assign(k, k)
	}
	// User PEs, grouped in contiguous blocks.
	for u := 0; u < cfg.UserPEs; u++ {
		pe := cfg.Kernels + u
		fab.Add(pe, 4096) // small scratch memory per user PE
		s.userPEs = append(s.userPEs, pe)
		s.member.Assign(pe, u*cfg.Kernels/cfg.UserPEs)
	}
	// Memory PEs, managed by kernel 0.
	for m := 0; m < cfg.MemPEs; m++ {
		pe := cfg.Kernels + cfg.UserPEs + m
		fab.Add(pe, cfg.MemBytes)
		s.memPEs = append(s.memPEs, pe)
		s.member.Assign(pe, 0)
		fab.DTU(pe).Downgrade()
	}
	// Boot the kernels; each gets its own membership replica.
	for k := 0; k < cfg.Kernels; k++ {
		s.kernels = append(s.kernels, newKernel(s, k))
	}
	// Schedule crash recoveries: at RecoverAt the kernel's links
	// un-blackhole (fault.Injector window) and the kernel itself starts the
	// rejoin handshake as a new incarnation (rejoin.go). Validate has
	// already enforced RecoverAt > CrashAt.
	if cfg.Faults != nil {
		for _, kf := range cfg.Faults.Kernels {
			if kf.CrashAt > 0 && kf.RecoverAt > 0 && kf.Kernel >= 0 && kf.Kernel < cfg.Kernels {
				kk := s.kernels[kf.Kernel]
				kk.dom.At(kf.RecoverAt, kk.beginRejoin)
			}
		}
	}
	if s.rounds {
		s.carveDRAMQuota()
	}
	return s, nil
}

// carveDRAMQuota pre-carves half of every memory PE into equal per-kernel
// spans (the rounds-mode DRAM quota); the upper half stays central, owned by
// kernel 0 and handed out in ikcDRAMRefill grants. Allocation thereby never
// touches shared state from a kernel's own domain.
func (s *System) carveDRAMQuota() {
	half := uint64(s.cfg.MemBytes) / 2
	per := half / uint64(s.cfg.Kernels)
	s.centralNext = make([]uint64, len(s.memPEs))
	for i, pe := range s.memPEs {
		s.centralNext[i] = half
		if per == 0 {
			continue
		}
		for ki, k := range s.kernels {
			k.dramSpans = append(k.dramSpans, dramSpan{pe: pe, off: uint64(ki) * per, len: per})
		}
	}
}

// carveCentral carves size bytes out of the central DRAM pool (round-robin
// across memory PEs). Rounds mode only; the sole caller is kernel 0 — on its
// own domain — granting refills or allocating for itself.
func (s *System) carveCentral(size uint64) (dramSpan, bool) {
	for try := 0; try < len(s.memPEs); try++ {
		i := (s.centralRR + try) % len(s.memPEs)
		if s.centralNext[i]+size <= uint64(s.cfg.MemBytes) {
			sp := dramSpan{pe: s.memPEs[i], off: s.centralNext[i], len: size}
			s.centralNext[i] += size
			s.centralRR = (i + 1) % len(s.memPEs)
			return sp, true
		}
	}
	return dramSpan{}, false
}

// kernelIDOfNode returns the kernel managing a PE purely from the config's
// static numbering (kernels, then user PEs in contiguous groups, then memory
// PEs owned by kernel 0). NewSystem needs this before Membership is
// populated; the Assign calls below follow the same formula.
func (s *System) kernelIDOfNode(pe int) int {
	switch {
	case pe < s.cfg.Kernels:
		return pe
	case pe < s.cfg.Kernels+s.cfg.UserPEs:
		return (pe - s.cfg.Kernels) * s.cfg.Kernels / s.cfg.UserPEs
	default:
		return 0
	}
}

// domainKernelOfNode returns the kernel whose domain a PE joins under
// isolated rounds. Kernel and user PEs follow kernelIDOfNode — the contiguous
// PE groups align with mesh rows, keeping the cross-domain cut tight — but
// memory PEs join the nearest kernel's domain (by hop count, ties to the
// lower kernel id) rather than kernel 0's, so DRAM traffic stays on short
// same-domain paths where the topology allows it.
func (s *System) domainKernelOfNode(pe int) int {
	if pe < s.cfg.Kernels+s.cfg.UserPEs {
		return s.kernelIDOfNode(pe)
	}
	best, bestH := 0, int(^uint(0)>>1)
	for k := 0; k < s.cfg.Kernels; k++ {
		if h := s.Net.Hops(pe, k); h < bestH {
			best, bestH = k, h
		}
	}
	return best
}

// domainOfKernel returns the event domain kernel k runs on: its assigned
// domain when the engine is partitioned, the root domain otherwise.
func (s *System) domainOfKernel(k int) *sim.Domain {
	if s.kernelDom == nil {
		return s.Eng.Domain(0)
	}
	return s.kernelDom[k]
}

// DomainStats exposes the engine's per-domain busy/idle attribution; nil on
// the sequential fast path.
func (s *System) DomainStats() []sim.DomainStat { return s.Eng.DomainStats() }

// MustNew is NewSystem for tests and examples where the config is constant.
func MustNew(cfg Config) *System {
	s, err := NewSystem(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Config returns the (defaulted) configuration.
func (s *System) Config() Config { return s.cfg }

// Kernel returns kernel k.
func (s *System) Kernel(k int) *Kernel { return s.kernels[k] }

// Kernels returns the number of kernels.
func (s *System) Kernels() int { return len(s.kernels) }

// KernelOfPE returns the kernel managing the given PE.
func (s *System) KernelOfPE(pe int) *Kernel {
	k := s.member.KernelOf(pe)
	if k < 0 {
		return nil
	}
	return s.kernels[k]
}

// UserPEs returns the user PE ids in ascending order.
func (s *System) UserPEs() []int { return s.userPEs }

// VPEs returns all spawned VPEs in spawn order.
func (s *System) VPEs() []*VPE { return s.vpes }

// Run executes the simulation until no events remain.
func (s *System) Run() { s.Eng.Run() }

// RunCtx executes the simulation until no events remain or ctx is done,
// returning the context's error in the latter case. A cancelled system is
// still consistent; Close unwinds its parked procs.
func (s *System) RunCtx(ctx context.Context) error { return s.Eng.RunCtx(ctx) }

// RunFor advances the simulation by d cycles.
func (s *System) RunFor(d sim.Duration) { s.Eng.RunUntil(s.Eng.Now() + d) }

// Now returns the current virtual time.
func (s *System) Now() sim.Time { return s.Eng.Now() }

// Close terminates the simulation, unwinding all parked processes.
func (s *System) Close() { s.Eng.Kill() }

// allocDRAM carves size bytes out of a memory PE (round-robin across memory
// PEs) and returns its PE id and offset.
func (s *System) allocDRAM(size uint64) (pe int, off uint64, err error) {
	for try := 0; try < len(s.memPEs); try++ {
		i := (s.dramRR + try) % len(s.memPEs)
		if s.dramNext[i]+size <= uint64(s.cfg.MemBytes) {
			off = s.dramNext[i]
			s.dramNext[i] += size
			s.dramRR = (i + 1) % len(s.memPEs)
			return s.memPEs[i], off, nil
		}
	}
	return 0, 0, errors.New("core: out of DRAM")
}

// Service returns the directory entry for a registered service, or nil.
func (s *System) service(name string) *serviceEntry { return s.services[name] }

// FaultStats returns the fault injector's counters (zero without a plan).
func (s *System) FaultStats() fault.Stats {
	if s.inj == nil {
		return fault.Stats{}
	}
	return s.inj.Stats()
}

// TotalStats sums the per-kernel statistics.
func (s *System) TotalStats() KernelStats {
	var t KernelStats
	for _, k := range s.kernels {
		t.add(k.stats)
	}
	return t
}

// Spawn creates a VPE running prog on the first free user PE.
func (s *System) Spawn(name string, prog Program) (*VPE, error) {
	for _, pe := range s.userPEs {
		if s.peToVPE[pe] == nil {
			return s.SpawnOn(pe, name, prog)
		}
	}
	return nil, errors.New("core: no free user PE")
}

// SpawnOn creates a VPE running prog on a specific user PE. The VPE is set
// up by the PE's group kernel (costing kernel time) before prog starts.
func (s *System) SpawnOn(pe int, name string, prog Program) (*VPE, error) {
	if s.member.KernelOf(pe) < 0 || pe < s.cfg.Kernels || pe >= s.cfg.Kernels+s.cfg.UserPEs {
		return nil, fmt.Errorf("core: PE %d is not a user PE", pe)
	}
	if s.peToVPE[pe] != nil {
		return nil, fmt.Errorf("core: PE %d is already occupied", pe)
	}
	k := s.KernelOfPE(pe)
	v := &VPE{
		ID:     s.nextVPE,
		Name:   name,
		PE:     pe,
		sys:    s,
		kernel: k,
		dtu:    s.Fab.DTU(pe),
		prog:   prog,
	}
	s.nextVPE++
	s.vpes = append(s.vpes, v)
	s.peToVPE[pe] = v
	k.createVPE(v)
	return v, nil
}
