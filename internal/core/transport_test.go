package core

import (
	"testing"

	"repro/internal/cap"
	"repro/internal/dtu"
	"repro/internal/sim"
)

// Tests for the unified IKC transport: cross-operation batching of
// capability exchange and service queries, coalesced DTU delivery, the
// deprecated RevokeBatching alias, and bit-reproducibility of batched
// configurations.

// wireStats sums the inter-kernel wire traffic of a run.
type wireStats struct {
	ikcSent       uint64 // request-direction wire messages (envelope counts once)
	ikcBatched    uint64 // requests that rode inside an envelope
	ikcRepSent    uint64 // reply-direction wire messages (envelope counts once)
	ikcRepBatched uint64 // replies that rode inside an envelope
	ikcRepBatches uint64 // reply envelopes sent
	nocMsgs       uint64 // every NoC delivery event (incl. syscalls, replies)
	vecs          uint64 // coalesced DTU vector deliveries
}

func gatherWire(s *System) wireStats {
	var w wireStats
	for ki := 0; ki < s.Kernels(); ki++ {
		st := s.Kernel(ki).Stats()
		w.ikcSent += st.IKCSent
		w.ikcBatched += st.IKCBatched
		w.ikcRepSent += st.IKCRepSent
		w.ikcRepBatched += st.IKCRepBatched
		w.ikcRepBatches += st.IKCRepBatches
		w.vecs += s.Fab.DTU(s.Kernel(ki).PE()).Stats().VecDeliveries
	}
	w.nocMsgs = s.Net.Stats().Messages
	return w
}

// runFanoutObtain spreads n obtainers over the kernels of cfg and lets each
// obtain the same root capability (a group-spanning obtain for every VPE
// outside the root's group). It returns the system after the run.
func runFanoutObtain(t *testing.T, cfg Config, n int) *System {
	t.Helper()
	s := MustNew(cfg)
	t.Cleanup(s.Close)
	ready := sim.NewFuture[cap.Selector](s.Eng)
	root, err := s.SpawnOn(s.userPEs[0], "root", func(v *VPE, p *sim.Proc) {
		sel, err := v.AllocMem(p, 4096, dtu.PermRW)
		if err != nil {
			t.Errorf("alloc: %v", err)
			return
		}
		ready.Complete(sel)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := s.SpawnOn(s.userPEs[1+i], "kid", func(v *VPE, p *sim.Proc) {
			sel := ready.Wait(p)
			if _, err := v.ObtainFrom(p, root.ID, sel); err != nil {
				t.Errorf("obtain: %v", err)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	s.Run()
	return s
}

// TestExchangeBatchingReducesMessages: with exchange batching on, a
// spanning obtain fan-out needs strictly fewer inter-kernel wire messages
// and strictly fewer NoC delivery events, and the batched requests arrive
// in coalesced DTU vectors.
func TestExchangeBatchingReducesMessages(t *testing.T) {
	const kids = 12
	run := func(b IKCBatching) (wireStats, int) {
		s := runFanoutObtain(t, Config{Kernels: 4, UserPEs: kids + 7, IKCBatching: b}, kids)
		return gatherWire(s), memCapsEverywhere(s)
	}
	plain, plainCaps := run(IKCBatching{})
	batched, batchedCaps := run(IKCBatching{Exchange: true})

	if plainCaps != batchedCaps {
		t.Fatalf("batched run created %d mem caps, plain %d", batchedCaps, plainCaps)
	}
	if batched.ikcSent >= plain.ikcSent {
		t.Fatalf("exchange batching did not reduce IKC messages: %d vs %d", batched.ikcSent, plain.ikcSent)
	}
	if batched.nocMsgs >= plain.nocMsgs {
		t.Fatalf("exchange batching did not reduce NoC deliveries: %d vs %d", batched.nocMsgs, plain.nocMsgs)
	}
	if batched.ikcBatched == 0 || batched.vecs == 0 {
		t.Fatalf("no coalesced traffic recorded: batched=%d vecs=%d", batched.ikcBatched, batched.vecs)
	}
	if plain.ikcBatched != 0 || plain.vecs != 0 {
		t.Fatalf("unbatched run produced coalesced traffic: batched=%d vecs=%d", plain.ikcBatched, plain.vecs)
	}
}

// TestExchangeBatchingCorrect: a batched fan-out obtain followed by a
// batched tree revocation leaves no capability behind and keeps the
// mapping-database invariants.
func TestExchangeBatchingCorrect(t *testing.T) {
	const kids = 9
	cfg := Config{
		Kernels:     4,
		UserPEs:     kids + 7,
		IKCBatching: IKCBatching{Exchange: true, ServiceQuery: true, Revoke: true},
	}
	s, _ := buildFanout(t, cfg, kids)
	if n := memCapsEverywhere(s); n != 0 {
		t.Fatalf("%d mem caps survived batched revoke after batched obtains", n)
	}
	checkAllInvariants(t, s)
}

// runServiceFanout registers a service on kernel 0 and lets n clients on
// other kernels open a session and perform one session-scoped obtain each
// (both group-spanning service queries).
func runServiceFanout(t *testing.T, cfg Config, n int) (*System, *uint64) {
	t.Helper()
	s := MustNew(cfg)
	t.Cleanup(s.Close)
	svcReady := sim.NewFuture[struct{}](s.Eng)
	var opened uint64
	_, err := s.SpawnOn(s.userPEs[0], "svc", func(v *VPE, p *sim.Proc) {
		sel, err := v.AllocMem(p, 4096, dtu.PermRW)
		if err != nil {
			t.Errorf("svc alloc: %v", err)
			return
		}
		err = v.RegisterService(p, "buf", ServiceHandlers{
			Open: func(p *sim.Proc, clientVPE int, args any) SvcResult {
				opened++
				return SvcResult{Ident: opened}
			},
			Obtain: func(p *sim.Proc, ident uint64, args any) SvcResult {
				return SvcResult{SrcSel: sel}
			},
		})
		if err != nil {
			t.Errorf("register: %v", err)
			return
		}
		svcReady.Complete(struct{}{})
		v.ServeLoop(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Clients go on the PEs of the other kernels (the tail of userPEs).
	for i := 0; i < n; i++ {
		pe := s.userPEs[len(s.userPEs)-1-i]
		if _, err := s.SpawnOn(pe, "client", func(v *VPE, p *sim.Proc) {
			svcReady.Wait(p)
			sess, err := v.CreateSession(p, "buf", nil)
			if err != nil {
				t.Errorf("session: %v", err)
				return
			}
			if _, _, err := sess.Obtain(p, nil); err != nil {
				t.Errorf("sess obtain: %v", err)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	s.Run()
	return s, &opened
}

// TestServiceQueryBatchingReducesMessages: with service-query batching on,
// spanning session creation and session-scoped obtains need strictly fewer
// inter-kernel wire messages and NoC deliveries, with every session still
// established.
func TestServiceQueryBatchingReducesMessages(t *testing.T) {
	const clients = 9
	cfg := func(b IKCBatching) Config {
		return Config{Kernels: 4, UserPEs: 16, IKCBatching: b}
	}
	sPlain, openedPlain := runServiceFanout(t, cfg(IKCBatching{}), clients)
	sBatched, openedBatched := runServiceFanout(t, cfg(IKCBatching{ServiceQuery: true}), clients)

	if *openedPlain != clients || *openedBatched != clients {
		t.Fatalf("sessions opened: plain %d batched %d, want %d", *openedPlain, *openedBatched, clients)
	}
	plain, batched := gatherWire(sPlain), gatherWire(sBatched)
	if batched.ikcSent >= plain.ikcSent {
		t.Fatalf("service-query batching did not reduce IKC messages: %d vs %d", batched.ikcSent, plain.ikcSent)
	}
	if batched.nocMsgs >= plain.nocMsgs {
		t.Fatalf("service-query batching did not reduce NoC deliveries: %d vs %d", batched.nocMsgs, plain.nocMsgs)
	}
	if batched.vecs == 0 {
		t.Fatal("no coalesced DTU deliveries recorded")
	}
	checkAllInvariants(t, sBatched)
}

// TestRevokeBatchingAliasEquivalence pins the deprecated alias: a run with
// Config.RevokeBatching must be indistinguishable — same revocation
// latency, same wire messages, same executed-event count — from one with
// IKCBatching.Revoke, so existing configurations keep their semantics.
func TestRevokeBatchingAliasEquivalence(t *testing.T) {
	const kids = 12
	run := func(cfg Config) (sim.Duration, wireStats, uint64) {
		s, rev := buildFanout(t, cfg, kids)
		return rev, gatherWire(s), s.Eng.Executed()
	}
	revA, wireA, execA := run(Config{Kernels: 4, UserPEs: kids + 7, RevokeBatching: true})
	revB, wireB, execB := run(Config{Kernels: 4, UserPEs: kids + 7, IKCBatching: IKCBatching{Revoke: true}})
	if revA != revB || wireA != wireB || execA != execB {
		t.Fatalf("alias diverged: rev %d vs %d, wire %+v vs %+v, executed %d vs %d",
			revA, revB, wireA, wireB, execA, execB)
	}
}

// TestMaxBatchInlineFlush: a queue reaching MaxBatch flushes without
// waiting for the window, so a huge FlushWindow cannot stall traffic.
func TestMaxBatchInlineFlush(t *testing.T) {
	const kids = 8
	cfg := Config{
		Kernels: 2,
		UserPEs: kids + 2,
		IKCBatching: IKCBatching{
			Exchange:    true,
			MaxBatch:    2,
			FlushWindow: 50_000_000, // effectively never
		},
	}
	s := runFanoutObtain(t, cfg, kids)
	var batches uint64
	for ki := 0; ki < s.Kernels(); ki++ {
		batches += s.Kernel(ki).Stats().IKCBatches
	}
	if batches < kids/2/2 {
		t.Fatalf("inline flushes did not happen: %d envelopes", batches)
	}
	if n := memCapsEverywhere(s); n != kids+1 {
		t.Fatalf("obtains incomplete: %d mem caps, want %d", n, kids+1)
	}
	checkAllInvariants(t, s)
}

// TestReplyBatchingReducesMessages: the symmetric transport — with
// exchange batching on, the replies to a spanning obtain fan-out coalesce
// into reply envelopes, so the reply direction needs strictly fewer wire
// messages too (the request direction was already pinned by
// TestExchangeBatchingReducesMessages).
func TestReplyBatchingReducesMessages(t *testing.T) {
	const kids = 12
	run := func(b IKCBatching) (wireStats, int) {
		s := runFanoutObtain(t, Config{Kernels: 4, UserPEs: kids + 7, IKCBatching: b}, kids)
		return gatherWire(s), memCapsEverywhere(s)
	}
	plain, plainCaps := run(IKCBatching{})
	batched, batchedCaps := run(IKCBatching{Exchange: true})

	if plainCaps != batchedCaps {
		t.Fatalf("batched run created %d mem caps, plain %d", batchedCaps, plainCaps)
	}
	if batched.ikcRepSent >= plain.ikcRepSent {
		t.Fatalf("reply batching did not reduce reply messages: %d vs %d",
			batched.ikcRepSent, plain.ikcRepSent)
	}
	if batched.ikcRepBatches == 0 || batched.ikcRepBatched == 0 {
		t.Fatalf("no reply envelopes recorded: batches=%d batched=%d",
			batched.ikcRepBatches, batched.ikcRepBatched)
	}
	if plain.ikcRepBatches != 0 || plain.ikcRepBatched != 0 {
		t.Fatalf("unbatched run produced reply envelopes: batches=%d batched=%d",
			plain.ikcRepBatches, plain.ikcRepBatched)
	}
	// The symmetric transport's point: total wire traffic (both directions)
	// drops below what request-only batching achieved, i.e. the reply
	// direction no longer dominates.
	if total := batched.ikcSent + batched.ikcRepSent; total >= plain.ikcSent {
		t.Fatalf("batched total (req+rep = %d) not below plain request count alone (%d)",
			total, plain.ikcSent)
	}
}

// TestReplyEnvelopeDelegateHandshake: the delegate two-phase handshake
// survives reply batching. Several spanning delegates run concurrently so
// their handshake-step-1 replies share reply envelopes; each ack (sent
// only after the reply it depends on is demuxed) must still find its
// pendingDelegations entry, and every receiver must end up owning the
// delegated capability.
func TestReplyEnvelopeDelegateHandshake(t *testing.T) {
	const pairs = 6
	cfg := Config{
		Kernels:     2,
		UserPEs:     2 * pairs,
		IKCBatching: IKCBatching{Exchange: true, ServiceQuery: true},
	}
	s := MustNew(cfg)
	t.Cleanup(s.Close)

	// Receivers live in kernel 1's group (second half of userPEs); they
	// park forever and accept every exchange.
	receivers := make([]*VPE, pairs)
	for i := 0; i < pairs; i++ {
		v, err := s.SpawnOn(s.userPEs[pairs+i], "recv", func(v *VPE, p *sim.Proc) { p.Park() })
		if err != nil {
			t.Fatal(err)
		}
		receivers[i] = v
	}
	// Delegators live in kernel 0's group; each allocates memory and
	// delegates it to its receiver. They all start together, so the
	// delegate requests batch and so do the handshake replies.
	errs := make([]error, pairs)
	for i := 0; i < pairs; i++ {
		i := i
		if _, err := s.SpawnOn(s.userPEs[i], "dlg", func(v *VPE, p *sim.Proc) {
			sel, err := v.AllocMem(p, 4096, dtu.PermRW)
			if err != nil {
				errs[i] = err
				return
			}
			_, errs[i] = v.DelegateTo(p, receivers[i].ID, sel)
		}); err != nil {
			t.Fatal(err)
		}
	}
	s.Run()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("delegate %d failed: %v", i, err)
		}
	}
	k1 := s.Kernel(1)
	for i, r := range receivers {
		owned := 0
		for _, c := range k1.Store().VPECaps(r.ID) {
			if _, ok := c.Object.(*cap.MemObject); ok {
				owned++
			}
		}
		if owned != 1 {
			t.Fatalf("receiver %d owns %d mem caps, want 1", i, owned)
		}
	}
	// No handshake may be left half-open, and the replies must actually
	// have ridden envelopes for the test to mean anything.
	for ki := 0; ki < s.Kernels(); ki++ {
		if n := s.Kernel(ki).pendingDelegations.Len(); n != 0 {
			t.Fatalf("kernel %d holds %d dangling pending delegations", ki, n)
		}
	}
	if w := gatherWire(s); w.ikcRepBatches == 0 {
		t.Fatal("handshake replies never rode a reply envelope")
	}
	checkAllInvariants(t, s)
}

// TestAdaptiveFlushWindow: the drain feedback of the flush window. Lone
// spanning obtains (flushes draining a single request) shrink a queue's
// window below the FlushWindow ceiling; a subsequent burst that fills
// MaxBatch envelopes grows it back.
func TestAdaptiveFlushWindow(t *testing.T) {
	cfg := Config{
		Kernels:     2,
		UserPEs:     20,
		IKCBatching: IKCBatching{Exchange: true, MaxBatch: 2},
	}
	s := MustNew(cfg)
	t.Cleanup(s.Close)
	requesterK := s.KernelOfPE(s.userPEs[10]) // kernel 1, where the obtains originate
	key := qkey{dst: 0, kind: ikcObtain}

	ready := sim.NewFuture[cap.Selector](s.Eng)
	burst := sim.NewFuture[struct{}](s.Eng)
	root, err := s.SpawnOn(s.userPEs[0], "root", func(v *VPE, p *sim.Proc) {
		sel, err := v.AllocMem(p, 4096, dtu.PermRW)
		if err != nil {
			t.Errorf("alloc: %v", err)
			return
		}
		ready.Complete(sel)
	})
	if err != nil {
		t.Fatal(err)
	}
	var afterLone sim.Duration
	if _, err := s.SpawnOn(s.userPEs[10], "lone", func(v *VPE, p *sim.Proc) {
		sel := ready.Wait(p)
		for i := 0; i < 2; i++ {
			if _, err := v.ObtainFrom(p, root.ID, sel); err != nil {
				t.Errorf("lone obtain: %v", err)
				return
			}
			p.Sleep(5 * DefaultFlushWindow) // let the link go quiet between obtains
		}
		afterLone = requesterK.xport.queue(key).window
		burst.Complete(struct{}{})
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := s.SpawnOn(s.userPEs[11+i], "burst", func(v *VPE, p *sim.Proc) {
			burst.Wait(p)
			sel := ready.Wait(p)
			if _, err := v.ObtainFrom(p, root.ID, sel); err != nil {
				t.Errorf("burst obtain: %v", err)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	s.Run()

	if afterLone >= DefaultFlushWindow {
		t.Fatalf("lone flushes did not shrink the window: %d (ceiling %d)",
			afterLone, DefaultFlushWindow)
	}
	if afterLone < DefaultFlushWindowMin {
		t.Fatalf("window %d fell below the floor %d", afterLone, DefaultFlushWindowMin)
	}
	final := requesterK.xport.queue(key).window
	if final <= afterLone {
		t.Fatalf("MaxBatch burst did not grow the window: %d after lone obtains, %d after burst",
			afterLone, final)
	}
}

// replyTrace runs a delegate-heavy batched scenario (spanning delegates
// whose handshake replies share envelopes, then a batched fan-out obtain
// plus revoke) and returns its deterministic fingerprint, including the
// reply-envelope counters.
func replyTrace(t *testing.T, eng *sim.Engine) [4]uint64 {
	t.Helper()
	cfg := Config{
		Kernels:     4,
		UserPEs:     19,
		IKCBatching: IKCBatching{Exchange: true, ServiceQuery: true, Revoke: true},
		Engine:      eng,
	}
	s, rev := buildFanout(t, cfg, 12)
	w := gatherWire(s)
	return [4]uint64{uint64(rev), uint64(s.Now()), w.ikcRepSent, w.ikcRepBatches}
}

// TestReplyBatchedPoolReuseDeterminism mirrors
// TestBatchedPoolReuseDeterminism for the reply direction: the
// reply-envelope counters and simulated times must be bit-identical on a
// fresh engine and on a pooled engine that already ran a different batched
// workload.
func TestReplyBatchedPoolReuseDeterminism(t *testing.T) {
	want := replyTrace(t, sim.NewEngine())
	if want[3] == 0 {
		t.Fatal("scenario produced no reply envelopes; fingerprint is vacuous")
	}

	pool := sim.NewPool()
	dirty := pool.Get()
	runFanoutObtain(t, Config{Kernels: 2, UserPEs: 8, IKCBatching: IKCBatching{Exchange: true}, Engine: dirty}, 5)
	pool.Put(dirty)

	got := replyTrace(t, pool.Get())
	if got != want {
		t.Fatalf("reply-batched run diverged on pooled engine: %v vs %v", got, want)
	}
}

// batchedTrace runs the batched fan-out scenario on the given engine and
// returns its deterministic fingerprint.
func batchedTrace(t *testing.T, eng *sim.Engine) [3]uint64 {
	t.Helper()
	cfg := Config{
		Kernels:     4,
		UserPEs:     19,
		IKCBatching: IKCBatching{Exchange: true, ServiceQuery: true, Revoke: true},
		Engine:      eng,
	}
	s, rev := buildFanout(t, cfg, 12)
	var sent uint64
	for ki := 0; ki < s.Kernels(); ki++ {
		sent += s.Kernel(ki).Stats().IKCSent
	}
	return [3]uint64{uint64(rev), uint64(s.Now()), sent}
}

// TestBatchedPoolReuseDeterminism extends the TestPoolReuseDeterminism
// pinning to a batched configuration: the same scenario must be
// bit-reproducible on a fresh engine and on a pooled engine that already
// ran a different (also batched) workload.
func TestBatchedPoolReuseDeterminism(t *testing.T) {
	want := batchedTrace(t, sim.NewEngine())

	pool := sim.NewPool()
	dirty := pool.Get()
	runFanoutObtain(t, Config{Kernels: 2, UserPEs: 8, IKCBatching: IKCBatching{Exchange: true}, Engine: dirty}, 5)
	pool.Put(dirty)

	got := batchedTrace(t, pool.Get())
	if got != want {
		t.Fatalf("batched run diverged on pooled engine: %v vs %v", got, want)
	}
}
