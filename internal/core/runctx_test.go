package core

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/cap"
	"repro/internal/dtu"
	"repro/internal/sim"
)

// buildFanoutNoRun assembles the reliableFanout workload without running
// it, so the caller controls execution (RunCtx, partial runs, resumes).
func buildFanoutNoRun(t *testing.T, s *System, n int) []error {
	t.Helper()
	ready := sim.NewFuture[cap.Selector](s.Eng)
	var wg sim.WaitGroup
	wg.Add(n)
	errs := make([]error, n)
	root, err := s.SpawnOn(s.userPEs[0], "root", func(v *VPE, p *sim.Proc) {
		sel, err := v.AllocMem(p, 4096, dtu.PermRW)
		if err != nil {
			t.Errorf("alloc: %v", err)
			return
		}
		ready.Complete(sel)
		wg.Wait(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		i := i
		if _, err := s.SpawnOn(s.userPEs[1+i], fmt.Sprintf("c%d", i), func(v *VPE, p *sim.Proc) {
			sel := ready.Wait(p)
			_, errs[i] = v.ObtainFrom(p, root.ID, sel)
			wg.Done()
		}); err != nil {
			t.Fatal(err)
		}
	}
	return errs
}

// TestSystemRunCtxCancelDeterministic: cancelling System.RunCtx from an
// in-simulation event stops at the same executed count and virtual time at
// every -simworkers setting, the resumed run completes every operation,
// and the final kernel stats match an uncancelled run. Teardown after a
// cancelled run is clean (Close settles LiveProcs to zero).
func TestSystemRunCtxCancelDeterministic(t *testing.T) {
	const kids = 12
	cfg := func(w int) Config { return Config{Kernels: 4, UserPEs: kids + 7, SimWorkers: w} }

	// Uncancelled reference.
	refSys := MustNew(cfg(1))
	refErrs := buildFanoutNoRun(t, refSys, kids)
	refSys.Run()
	refStats := refSys.TotalStats()
	for i, err := range refErrs {
		if err != nil {
			t.Fatalf("reference client %d: %v", i, err)
		}
	}
	refSys.Close()

	partial := func(w int) (uint64, sim.Time) {
		s := MustNew(cfg(w))
		errs := buildFanoutNoRun(t, s, kids)
		ctx, cancel := context.WithCancel(context.Background())
		// Cancel from inside the simulation at a fixed virtual time: the
		// poll boundary makes the stop point a pure function of the event
		// sequence.
		s.Eng.Schedule(3_000, cancel)
		if err := s.RunCtx(ctx); err != context.Canceled {
			t.Fatalf("simworkers=%d: RunCtx = %v, want context.Canceled", w, err)
		}
		executed, now := s.Eng.Executed(), s.Now()
		// The engine stays valid: resuming completes the workload exactly.
		if err := s.RunCtx(context.Background()); err != nil {
			t.Fatalf("simworkers=%d resume: %v", w, err)
		}
		for i, err := range errs {
			if err != nil {
				t.Errorf("simworkers=%d client %d after resume: %v", w, i, err)
			}
		}
		if st := s.TotalStats(); st != refStats {
			t.Errorf("simworkers=%d: resumed stats differ from uncancelled run:\n%+v\n%+v", w, st, refStats)
		}
		s.Close()
		if n := s.Eng.LiveProcs(); n != 0 {
			t.Errorf("simworkers=%d: LiveProcs = %d after Close, want 0", w, n)
		}
		return executed, now
	}

	exec1, now1 := partial(1)
	if exec1 == 0 {
		t.Fatal("cancellation struck before any event")
	}
	for _, w := range []int{2, 4} {
		if execW, nowW := partial(w); execW != exec1 || nowW != now1 {
			t.Errorf("simworkers=%d: cancel point (executed=%d now=%d) differs from sequential (%d, %d)",
				w, execW, nowW, exec1, now1)
		}
	}
	if execR, nowR := partial(2); execR != exec1 || nowR != now1 {
		t.Errorf("repeat: cancel point (executed=%d now=%d) not reproducible (%d, %d)",
			execR, nowR, exec1, now1)
	}
}

// TestSystemRunCtxCancelPoolReuse: a pooled engine whose run was cancelled
// mid-flight — kernels and VPEs still parked — recycles through
// Pool.Put/Get into a fresh system that reproduces an independent run
// exactly.
func TestSystemRunCtxCancelPoolReuse(t *testing.T) {
	const kids = 12
	cfg := Config{Kernels: 4, UserPEs: kids + 7, SimWorkers: 2}

	ref := MustNew(cfg)
	buildFanoutNoRun(t, ref, kids)
	ref.Run()
	refStats := ref.TotalStats()
	ref.Close()

	pool := sim.NewPool()
	e := pool.Get()
	cfgPooled := cfg
	cfgPooled.Engine = e
	s1 := MustNew(cfgPooled)
	buildFanoutNoRun(t, s1, kids)
	ctx, cancel := context.WithCancel(context.Background())
	s1.Eng.Schedule(3_000, cancel)
	if err := s1.RunCtx(ctx); err != context.Canceled {
		t.Fatalf("RunCtx = %v, want context.Canceled", err)
	}
	pool.Put(e) // Reset: unwinds every parked kernel and VPE proc
	if n := e.LiveProcs(); n != 0 {
		t.Fatalf("LiveProcs = %d after Put, want 0", n)
	}

	e2 := pool.Get()
	if e2 != e {
		t.Fatalf("pool handed out a different engine")
	}
	cfgPooled.Engine = e2
	s2 := MustNew(cfgPooled)
	t.Cleanup(s2.Close)
	errs := buildFanoutNoRun(t, s2, kids)
	s2.Run()
	for i, err := range errs {
		if err != nil {
			t.Errorf("client %d on reused engine: %v", i, err)
		}
	}
	if st := s2.TotalStats(); st != refStats {
		t.Errorf("pool-reused run stats differ from a fresh run:\n%+v\n%+v", st, refStats)
	}
	checkAllInvariants(t, s2)
}
