package core

import (
	"testing"

	"repro/internal/cap"
	"repro/internal/ddl"
	"repro/internal/dtu"
	"repro/internal/sim"
)

// newTestSystem builds a small machine: kernels with userPEs user PEs.
func newTestSystem(t *testing.T, kernels, userPEs int) *System {
	t.Helper()
	s := MustNew(Config{Kernels: kernels, UserPEs: userPEs})
	t.Cleanup(s.Close)
	return s
}

// checkAllInvariants validates every kernel's mapping database.
func checkAllInvariants(t *testing.T, s *System) {
	t.Helper()
	for _, k := range s.kernels {
		if err := k.store.CheckLocalInvariants(); err != nil {
			t.Fatalf("kernel %d invariants: %v", k.id, err)
		}
	}
}

// checkNoLeaks asserts CheckLeaks finds nothing after the machine drained.
// deadKernels excuses kernels that crashed and never recovered.
func checkNoLeaks(t *testing.T, s *System, deadKernels ...int) {
	t.Helper()
	for _, p := range s.CheckLeaks(deadKernels...) {
		t.Errorf("leak: %s", p)
	}
}

// totalCaps counts capabilities across all kernels.
func totalCaps(s *System) int {
	n := 0
	for _, k := range s.kernels {
		n += k.store.Len()
	}
	return n
}

func TestSpawnAndNoop(t *testing.T) {
	s := newTestSystem(t, 1, 2)
	ran := false
	_, err := s.Spawn("app", func(v *VPE, p *sim.Proc) {
		v.Noop(p)
		ran = true
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	if !ran {
		t.Fatal("program did not run")
	}
	if s.Kernel(0).Stats().Syscalls != 1 {
		t.Fatalf("syscalls = %d, want 1", s.Kernel(0).Stats().Syscalls)
	}
	if s.Now() == 0 {
		t.Fatal("syscall took no simulated time")
	}
}

func TestGroupAssignment(t *testing.T) {
	s := newTestSystem(t, 4, 8)
	for i, k := range s.kernels {
		g := k.Group()
		if len(g) != 2 {
			t.Fatalf("kernel %d group size = %d, want 2", i, len(g))
		}
		for _, pe := range g {
			if s.KernelOfPE(pe) != k {
				t.Fatalf("membership mismatch for PE %d", pe)
			}
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewSystem(Config{Kernels: MaxKernels + 1, UserPEs: 1}); err == nil {
		t.Error("too many kernels accepted")
	}
	if _, err := NewSystem(Config{Kernels: 1, UserPEs: 0}); err == nil {
		t.Error("zero user PEs accepted")
	}
	if _, err := NewSystem(Config{Kernels: 1, UserPEs: MaxPEsPerKernel + 1}); err == nil {
		t.Error("oversized group accepted")
	}
}

func TestThreadPoolSizing(t *testing.T) {
	// Equation 1: V_group + K_max * M_inflight.
	s := newTestSystem(t, 2, 10)
	k := s.Kernel(0)
	want := len(k.Group()) + MaxKernels*MaxInflight
	if got := k.ThreadPoolSize(); got != want {
		t.Fatalf("ThreadPoolSize = %d, want %d", got, want)
	}
	if k.syscallPool.max != len(k.Group()) {
		t.Fatalf("syscall pool max = %d, want %d", k.syscallPool.max, len(k.Group()))
	}
	if k.ikcPool.max != MaxKernels*MaxInflight {
		t.Fatalf("ikc pool max = %d", k.ikcPool.max)
	}
	if k.revokePool.max != RevokeThreads {
		t.Fatalf("revoke pool max = %d, want %d", k.revokePool.max, RevokeThreads)
	}
}

func TestAllocAndDeriveMem(t *testing.T) {
	s := newTestSystem(t, 1, 1)
	var derr error
	_, err := s.Spawn("app", func(v *VPE, p *sim.Proc) {
		sel, err := v.AllocMem(p, 4096, dtu.PermRW)
		if err != nil {
			derr = err
			return
		}
		child, err := v.DeriveMem(p, sel, 1024, 512, dtu.PermR)
		if err != nil {
			derr = err
			return
		}
		// Over-privileged derive must fail.
		if _, err := v.DeriveMem(p, child, 0, 16, dtu.PermRW); err == nil {
			derr = err
		}
		// Out-of-range derive must fail.
		if _, err := v.DeriveMem(p, sel, 4000, 512, dtu.PermR); err == nil {
			derr = err
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	if derr != nil {
		t.Fatal(derr)
	}
	checkAllInvariants(t, s)
}

func TestMemCapActivateAndAccess(t *testing.T) {
	s := newTestSystem(t, 1, 1)
	var got []byte
	s.Spawn("app", func(v *VPE, p *sim.Proc) {
		sel, err := v.AllocMem(p, 4096, dtu.PermRW)
		if err != nil {
			t.Errorf("AllocMem: %v", err)
			return
		}
		if err := v.Activate(p, sel, vpeFirstMemEP); err != nil {
			t.Errorf("Activate: %v", err)
			return
		}
		if err := v.DTU().WriteMem(p, vpeFirstMemEP, 10, []byte("hello")); err != nil {
			t.Errorf("WriteMem: %v", err)
			return
		}
		got, err = v.DTU().ReadMem(p, vpeFirstMemEP, 10, 5)
		if err != nil {
			t.Errorf("ReadMem: %v", err)
		}
	})
	s.Run()
	if string(got) != "hello" {
		t.Fatalf("read %q, want hello", got)
	}
}

// runExchange spawns an owner (allocates memory, parks) and a requester
// (obtains from the owner), placed by the caller, and returns the system.
func runExchange(t *testing.T, kernels, userPEs, ownerPE, reqPE int,
	after func(owner, req *VPE, ownerSel, reqSel cap.Selector, p *sim.Proc)) *System {
	t.Helper()
	s := newTestSystem(t, kernels, userPEs)
	ready := sim.NewFuture[cap.Selector](s.Eng)
	owner, err := s.SpawnOn(ownerPE, "owner", func(v *VPE, p *sim.Proc) {
		sel, err := v.AllocMem(p, 4096, dtu.PermRW)
		if err != nil {
			t.Errorf("owner alloc: %v", err)
			return
		}
		ready.Complete(sel)
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.SpawnOn(reqPE, "requester", func(v *VPE, p *sim.Proc) {
		ownerSel := ready.Wait(p)
		reqSel, err := v.ObtainFrom(p, owner.ID, ownerSel)
		if err != nil {
			t.Errorf("obtain: %v", err)
			return
		}
		if after != nil {
			after(owner, v, ownerSel, reqSel, p)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	return s
}

func TestObtainLocal(t *testing.T) {
	s := runExchange(t, 1, 2, 1, 2, nil)
	k := s.Kernel(0)
	if k.Stats().Obtains != 1 {
		t.Fatalf("obtains = %d, want 1", k.Stats().Obtains)
	}
	// Owner cap has one child; requester cap points back.
	checkAllInvariants(t, s)
	if totalCaps(s) != 4 { // 2 VPE caps + owner mem + child mem
		t.Fatalf("total caps = %d, want 4", totalCaps(s))
	}
}

func TestObtainSpanning(t *testing.T) {
	// 2 kernels, 2 user PEs: PE 2 -> kernel 0, PE 3 -> kernel 1.
	s := runExchange(t, 2, 2, 2, 3, nil)
	k0, k1 := s.Kernel(0), s.Kernel(1)
	if k1.Stats().Obtains != 1 {
		t.Fatalf("requester kernel obtains = %d, want 1", k1.Stats().Obtains)
	}
	if k0.Stats().IKCReceived == 0 || k1.Stats().IKCSent == 0 {
		t.Fatal("no inter-kernel call recorded")
	}
	checkAllInvariants(t, s)
	// The child lives at kernel 1, the parent at kernel 0; links cross.
	var crossChild bool
	for _, key := range k0.store.Keys() {
		c := k0.store.Lookup(key)
		c.ForEachChild(func(ch ddl.Key) {
			if k0.member.KernelOfKey(ch) == 1 {
				crossChild = true
			}
		})
	}
	if !crossChild {
		t.Fatal("no cross-kernel child link found")
	}
}

func TestObtainDenied(t *testing.T) {
	s := newTestSystem(t, 1, 2)
	ready := sim.NewFuture[cap.Selector](s.Eng)
	owner, _ := s.Spawn("owner", func(v *VPE, p *sim.Proc) {
		v.OnExchange = func(q ExchangeQuery) ExchangeAnswer { return ExchangeAnswer{Accept: false} }
		sel, _ := v.AllocMem(p, 64, dtu.PermR)
		ready.Complete(sel)
	})
	var got error
	s.Spawn("req", func(v *VPE, p *sim.Proc) {
		sel := ready.Wait(p)
		_, got = v.ObtainFrom(p, owner.ID, sel)
	})
	s.Run()
	if got != ErrDenied {
		t.Fatalf("err = %v, want ErrDenied", got)
	}
	checkAllInvariants(t, s)
}

func TestDelegateLocalAndSpanning(t *testing.T) {
	for name, cfg := range map[string]struct{ kernels, peA, peB int }{
		"local":    {1, 1, 2},
		"spanning": {2, 2, 3},
	} {
		t.Run(name, func(t *testing.T) {
			s := newTestSystem(t, cfg.kernels, 2)
			done := sim.NewFuture[error](s.Eng)
			b, err := s.SpawnOn(cfg.peB, "receiver", func(v *VPE, p *sim.Proc) {
				p.Park() // passive receiver
			})
			if err != nil {
				t.Fatal(err)
			}
			_, err = s.SpawnOn(cfg.peA, "delegator", func(v *VPE, p *sim.Proc) {
				sel, err := v.AllocMem(p, 128, dtu.PermRW)
				if err != nil {
					done.Complete(err)
					return
				}
				_, err = v.DelegateTo(p, b.ID, sel)
				done.Complete(err)
			})
			if err != nil {
				t.Fatal(err)
			}
			s.Run()
			if !done.Done() {
				t.Fatal("delegator did not finish")
			}
			if err := done.Wait(nil); err != nil {
				// Wait with nil proc is safe: future already complete.
				t.Fatalf("delegate: %v", err)
			}
			// The receiver must now own a mem cap child.
			kb := s.KernelOfPE(cfg.peB)
			caps := kb.store.VPECaps(b.ID)
			var memCaps int
			for _, c := range caps {
				if _, ok := c.Object.(*cap.MemObject); ok {
					memCaps++
					if c.Parent == 0 {
						t.Error("delegated cap has no parent link")
					}
				}
			}
			if memCaps != 1 {
				t.Fatalf("receiver mem caps = %d, want 1", memCaps)
			}
			checkAllInvariants(t, s)
		})
	}
}

func TestRevokeLocal(t *testing.T) {
	s := runExchange(t, 1, 2, 1, 2, func(owner, req *VPE, ownerSel, reqSel cap.Selector, p *sim.Proc) {
		// Requester revokes its obtained cap: only the child disappears.
		if err := req.Revoke(p, reqSel); err != nil {
			t.Errorf("revoke child: %v", err)
		}
	})
	k := s.Kernel(0)
	if k.Stats().CapsDeleted != 1 {
		t.Fatalf("deleted = %d, want 1", k.Stats().CapsDeleted)
	}
	checkAllInvariants(t, s)
	if totalCaps(s) != 3 {
		t.Fatalf("total caps = %d, want 3", totalCaps(s))
	}
}

func TestRevokeRecursiveSpanning(t *testing.T) {
	// Owner revokes its root: the remote child must disappear too.
	var ownerV *VPE
	var rootSel cap.Selector
	s := newTestSystem(t, 2, 2)
	ready := sim.NewFuture[cap.Selector](s.Eng)
	obtained := sim.NewFuture[struct{}](s.Eng)
	ownerV, _ = s.SpawnOn(2, "owner", func(v *VPE, p *sim.Proc) {
		sel, _ := v.AllocMem(p, 4096, dtu.PermRW)
		rootSel = sel
		ready.Complete(sel)
		obtained.Wait(p)
		if err := v.Revoke(p, sel); err != nil {
			t.Errorf("revoke: %v", err)
		}
	})
	s.SpawnOn(3, "req", func(v *VPE, p *sim.Proc) {
		sel := ready.Wait(p)
		if _, err := v.ObtainFrom(p, ownerV.ID, sel); err != nil {
			t.Errorf("obtain: %v", err)
		}
		obtained.Complete(struct{}{})
	})
	s.Run()
	_ = rootSel
	// Both the root (kernel 0) and the child (kernel 1) must be gone.
	for ki, k := range s.kernels {
		for _, key := range k.store.Keys() {
			c := k.store.Lookup(key)
			if _, ok := c.Object.(*cap.MemObject); ok {
				t.Fatalf("kernel %d still holds mem cap %v", ki, c)
			}
		}
	}
	checkAllInvariants(t, s)
	if got := s.Kernel(0).Stats().CapsDeleted + s.Kernel(1).Stats().CapsDeleted; got != 2 {
		t.Fatalf("caps deleted = %d, want 2", got)
	}
}

// buildChain delegates a capability down a chain of VPEs and returns the
// system plus the VPEs. With alternate=true the VPEs alternate between two
// kernels (the paper's group-spanning chain).
func buildChain(t *testing.T, kernels, length int, alternate bool) (*System, []*VPE) {
	t.Helper()
	s := newTestSystem(t, kernels, length+1)
	vpes := make([]*VPE, length+1)
	futs := make([]*sim.Future[cap.Selector], length+1)
	for i := range futs {
		futs[i] = sim.NewFuture[cap.Selector](s.Eng)
	}
	pes := make([]int, length+1)
	for i := range pes {
		if alternate {
			// Alternate between the first PE of group 0 and group 1.
			half := (len(s.userPEs) + 1) / 2
			if i%2 == 0 {
				pes[i] = s.userPEs[i/2]
			} else {
				pes[i] = s.userPEs[half+i/2]
			}
		} else {
			pes[i] = s.userPEs[i]
		}
	}
	var err error
	vpes[0], err = s.SpawnOn(pes[0], "chain0", func(v *VPE, p *sim.Proc) {
		sel, e := v.AllocMem(p, 4096, dtu.PermRW)
		if e != nil {
			t.Errorf("alloc: %v", e)
			return
		}
		futs[0].Complete(sel)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= length; i++ {
		i := i
		vpes[i], err = s.SpawnOn(pes[i], "chain", func(v *VPE, p *sim.Proc) {
			prev := futs[i-1].Wait(p)
			sel, e := v.ObtainFrom(p, vpes[i-1].ID, prev)
			if e != nil {
				t.Errorf("chain obtain %d: %v", i, e)
				return
			}
			futs[i].Complete(sel)
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return s, vpes
}

func TestChainRevocation(t *testing.T) {
	for name, alternate := range map[string]bool{"local": false, "spanning": true} {
		t.Run(name, func(t *testing.T) {
			kernels := 1
			if alternate {
				kernels = 2
			}
			const chainLen = 8
			s, vpes := buildChain(t, kernels, chainLen, alternate)
			s.Run() // build the chain
			// Now revoke the root from VPE 0.
			root := s.KernelOfPE(vpes[0].PE).store.VPECaps(vpes[0].ID)
			var rootSel cap.Selector
			for _, c := range root {
				if _, ok := c.Object.(*cap.MemObject); ok {
					rootSel = c.Sel
				}
			}
			if rootSel == cap.NoSel {
				t.Fatal("root mem cap not found")
			}
			done := false
			s.Eng.Spawn("drive", func(p *sim.Proc) {
				// Drive the revoke through the root owner's program context:
				// issue the syscall directly from a fresh proc bound to vpe0.
				if err := vpes[0].Revoke(p, rootSel); err != nil {
					t.Errorf("revoke: %v", err)
				}
				done = true
			})
			s.Run()
			if !done {
				t.Fatal("revoke did not complete")
			}
			deleted := uint64(0)
			for _, k := range s.kernels {
				deleted += k.Stats().CapsDeleted
			}
			if deleted != chainLen+1 {
				t.Fatalf("deleted = %d, want %d", deleted, chainLen+1)
			}
			checkAllInvariants(t, s)
		})
	}
}

func TestTreeRevocationAcrossKernels(t *testing.T) {
	const kids = 12
	s := newTestSystem(t, 4, kids+1)
	ready := sim.NewFuture[cap.Selector](s.Eng)
	var wg sim.WaitGroup
	wg.Add(kids)
	owner, _ := s.SpawnOn(s.userPEs[0], "root", func(v *VPE, p *sim.Proc) {
		sel, _ := v.AllocMem(p, 4096, dtu.PermRW)
		ready.Complete(sel)
		wg.Wait(p)
		if err := v.Revoke(p, sel); err != nil {
			t.Errorf("revoke: %v", err)
		}
	})
	for i := 0; i < kids; i++ {
		s.SpawnOn(s.userPEs[i+1], "kid", func(v *VPE, p *sim.Proc) {
			sel := ready.Wait(p)
			if _, err := v.ObtainFrom(p, owner.ID, sel); err != nil {
				t.Errorf("obtain: %v", err)
			}
			wg.Done()
		})
	}
	s.Run()
	deleted := uint64(0)
	for _, k := range s.kernels {
		deleted += k.Stats().CapsDeleted
	}
	if deleted != kids+1 {
		t.Fatalf("deleted = %d, want %d", deleted, kids+1)
	}
	checkAllInvariants(t, s)
}

func TestPermStringsAndErrno(t *testing.T) {
	if OK.Err() != nil {
		t.Error("OK.Err() != nil")
	}
	if ErrNoSuchCap.Err() == nil {
		t.Error("ErrNoSuchCap.Err() == nil")
	}
	for e := OK; e <= ErrPeerDead; e++ {
		if e.Error() == "unknown error" {
			t.Errorf("errno %d has no message", e)
		}
	}
}
