package core

import (
	"testing"

	"repro/internal/cap"
	"repro/internal/dtu"
	"repro/internal/sim"
)

// This file reproduces the paper's Table 2 — the interference analysis of
// overlapping capability-modifying operations — as executable tests. Each
// test provokes one cell of the matrix and asserts the protocol's required
// outcome:
//
//	              2nd: Obtain      Delegate        Revoke/Crash
//	1st: Obtain   Serialized       Serialized      Orphaned
//	     Delegate Serialized       Serialized      Invalid
//	     Revoke   Pointless        Pointless       Incomplete

// TestInterferenceSerialized: overlapping obtains of the same capability
// serialize at the owning kernel; both succeed and the tree is consistent.
func TestInterferenceSerialized(t *testing.T) {
	s := newTestSystem(t, 2, 4) // PEs 2,3 -> kernel 0; PEs 4,5 -> kernel 1
	ready := sim.NewFuture[cap.Selector](s.Eng)
	owner, _ := s.SpawnOn(2, "owner", func(v *VPE, p *sim.Proc) {
		sel, _ := v.AllocMem(p, 4096, dtu.PermRW)
		ready.Complete(sel)
	})
	errs := make([]error, 2)
	for i, pe := range []int{3, 4} { // one local, one remote requester
		i := i
		s.SpawnOn(pe, "req", func(v *VPE, p *sim.Proc) {
			sel := ready.Wait(p)
			_, errs[i] = v.ObtainFrom(p, owner.ID, sel)
		})
	}
	s.Run()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("requester %d: %v", i, err)
		}
	}
	// The owner's capability must list exactly two children.
	k := s.Kernel(0)
	for _, key := range k.store.Keys() {
		c := k.store.Lookup(key)
		if _, ok := c.Object.(*cap.MemObject); ok && c.Parent == 0 {
			if n := c.NumChildren(); n != 2 {
				t.Fatalf("root children = %d, want 2", n)
			}
		}
	}
	checkAllInvariants(t, s)
	checkNoLeaks(t, s)
}

// TestInterferenceOrphaned: the requester of a group-spanning obtain is
// killed while the inter-kernel call is in flight. The owner's tree briefly
// holds an orphaned child, which the requester's kernel removes via a
// notification (paper §4.3.2, case 1).
func TestInterferenceOrphaned(t *testing.T) {
	runInterferenceOrphaned(t, Config{Kernels: 2, UserPEs: 2})
}

// TestInterferenceOrphanedBatched: the same race with the obtain riding
// the batched transport — aggregation delays the request but must not
// change the outcome.
func TestInterferenceOrphanedBatched(t *testing.T) {
	runInterferenceOrphaned(t, Config{
		Kernels:     2,
		UserPEs:     2,
		IKCBatching: IKCBatching{Exchange: true, ServiceQuery: true},
	})
}

func runInterferenceOrphaned(t *testing.T, cfg Config) {
	t.Helper()
	s := MustNew(cfg)
	t.Cleanup(s.Close)
	ready := sim.NewFuture[cap.Selector](s.Eng)
	var requester *VPE
	owner, _ := s.SpawnOn(2, "owner", func(v *VPE, p *sim.Proc) {
		// Kill the requester exactly while the owner is asked for consent —
		// guaranteed to be inside the obtain's inter-kernel window.
		v.OnExchange = func(q ExchangeQuery) ExchangeAnswer {
			requester.Kill()
			return ExchangeAnswer{Accept: true}
		}
		sel, _ := v.AllocMem(p, 4096, dtu.PermRW)
		ready.Complete(sel)
	})
	var obtErr error
	requester, _ = s.SpawnOn(3, "req", func(v *VPE, p *sim.Proc) {
		sel := ready.Wait(p)
		_, obtErr = v.ObtainFrom(p, owner.ID, sel)
	})
	s.Run()
	if obtErr != ErrVPEGone {
		t.Fatalf("obtain err = %v, want ErrVPEGone", obtErr)
	}
	// No orphan may remain: the owner's capability has no children and the
	// requester's kernel holds no mem cap for it.
	k0, k1 := s.Kernel(0), s.Kernel(1)
	for _, key := range k0.store.Keys() {
		c := k0.store.Lookup(key)
		if _, ok := c.Object.(*cap.MemObject); ok && c.NumChildren() != 0 {
			t.Fatalf("orphaned child left behind: %v", c)
		}
	}
	for _, c := range k1.store.VPECaps(requester.ID) {
		if _, ok := c.Object.(*cap.MemObject); ok {
			t.Fatalf("dead requester still owns %v", c)
		}
	}
	if k0.Stats().Orphans+k1.Stats().Orphans == 0 {
		t.Fatal("orphan cleanup not recorded")
	}
	checkAllInvariants(t, s)
	checkNoLeaks(t, s)
}

// TestInterferenceInvalid: the delegator's capability is revoked while a
// group-spanning delegate is in flight. Without the two-way handshake the
// receiver would keep a live capability with no parent link; the handshake
// must abort the delegation instead (paper §4.3.2, case 2).
func TestInterferenceInvalid(t *testing.T) {
	runInterferenceInvalid(t, IKCBatching{})
}

// TestInterferenceInvalidBatched: the delegate handshake must survive a
// mid-flight revocation also when step 1 travels in a batched envelope.
func TestInterferenceInvalidBatched(t *testing.T) {
	runInterferenceInvalid(t, IKCBatching{Exchange: true, ServiceQuery: true})
}

func runInterferenceInvalid(t *testing.T, b IKCBatching) {
	t.Helper()
	cost := DefaultCostModel()
	cost.VPEAccept = 50_000 // widen the in-flight window so the revoke wins
	s := MustNew(Config{Kernels: 2, UserPEs: 4, Cost: &cost, IKCBatching: b})
	defer s.Close()

	rootReady := sim.NewFuture[cap.Selector](s.Eng)
	chainReady := sim.NewFuture[cap.Selector](s.Eng)
	revokeNow := sim.NewFuture[struct{}](s.Eng)

	// Root owner (kernel 0): revokes the root when signalled.
	rootOwner, _ := s.SpawnOn(2, "root", func(v *VPE, p *sim.Proc) {
		sel, _ := v.AllocMem(p, 4096, dtu.PermRW)
		rootReady.Complete(sel)
		revokeNow.Wait(p)
		if err := v.Revoke(p, sel); err != nil {
			t.Errorf("revoke: %v", err)
		}
	})
	// Receiver (kernel 1): triggers the root revocation from inside its
	// consent handler, i.e. exactly during the delegate's handshake.
	receiver, _ := s.SpawnOn(4, "receiver", func(v *VPE, p *sim.Proc) {
		v.OnExchange = func(q ExchangeQuery) ExchangeAnswer {
			if !revokeNow.Done() {
				revokeNow.Complete(struct{}{})
			}
			return ExchangeAnswer{Accept: true}
		}
		p.Park()
	})
	// Delegator (kernel 0): obtains a child of the root, then delegates it
	// across groups.
	var delErr error
	s.SpawnOn(3, "delegator", func(v *VPE, p *sim.Proc) {
		rootSel := rootReady.Wait(p)
		childSel, err := v.ObtainFrom(p, rootOwner.ID, rootSel)
		if err != nil {
			t.Errorf("obtain: %v", err)
			return
		}
		chainReady.Complete(childSel)
		_, delErr = v.DelegateTo(p, receiver.ID, childSel)
	})
	s.Run()

	if delErr == nil {
		t.Fatal("delegate succeeded although its parent was revoked mid-flight")
	}
	// The receiver must not hold any memory capability.
	k1 := s.Kernel(1)
	for _, c := range k1.store.VPECaps(receiver.ID) {
		if _, ok := c.Object.(*cap.MemObject); ok {
			t.Fatalf("invalid capability survived at receiver: %v", c)
		}
	}
	// The whole mem subtree must be gone everywhere.
	for ki, k := range s.kernels {
		for _, key := range k.store.Keys() {
			c := k.store.Lookup(key)
			if _, ok := c.Object.(*cap.MemObject); ok {
				t.Fatalf("kernel %d still holds %v", ki, c)
			}
		}
	}
	checkAllInvariants(t, s)
	checkNoLeaks(t, s)
}

// TestInterferenceIncomplete: two revocations of overlapping subtrees
// (A1 -> B2 -> C1, revoke A and revoke B concurrently) must both return
// only after the entire affected subtree is deleted everywhere — no
// acknowledgements of incomplete revokes (paper §4.3.1/4.3.3).
func TestInterferenceIncomplete(t *testing.T) {
	s := newTestSystem(t, 2, 3)
	// A owned by vA on kernel 0, B by vB on kernel 1, C by vC on kernel 0.
	futA := sim.NewFuture[cap.Selector](s.Eng)
	futB := sim.NewFuture[cap.Selector](s.Eng)
	futC := sim.NewFuture[struct{}](s.Eng)

	var vA, vB, vC *VPE
	var selA, selB cap.Selector
	checkedA, checkedB := false, false

	vA, _ = s.SpawnOn(2, "A", func(v *VPE, p *sim.Proc) {
		sel, _ := v.AllocMem(p, 4096, dtu.PermRW)
		selA = sel
		futA.Complete(sel)
		futC.Wait(p) // wait until the chain exists
		if err := v.Revoke(p, sel); err != nil {
			t.Errorf("revoke A: %v", err)
			return
		}
		// On return, the *entire* chain must be gone from every kernel.
		if n := memCapsEverywhere(s); n != 0 {
			t.Errorf("revoke A acknowledged with %d caps left", n)
		}
		checkedA = true
	})
	vB, _ = s.SpawnOn(4, "B", func(v *VPE, p *sim.Proc) { // PE 4 -> kernel 1
		a := futA.Wait(p)
		sel, err := v.ObtainFrom(p, vA.ID, a)
		if err != nil {
			t.Errorf("obtain B: %v", err)
			return
		}
		selB = sel
		futB.Complete(sel)
		futC.Wait(p)
		if err := v.Revoke(p, sel); err != nil {
			t.Errorf("revoke B: %v", err)
			return
		}
		// B's subtree (B and C) must be gone everywhere.
		if got := ownedMemCaps(s, vB.ID) + ownedMemCaps(s, vC.ID); got != 0 {
			t.Errorf("revoke B acknowledged with its subtree alive (%d caps)", got)
		}
		checkedB = true
	})
	vC, _ = s.SpawnOn(3, "C", func(v *VPE, p *sim.Proc) { // PE 3 -> kernel 0
		b := futB.Wait(p)
		if _, err := v.ObtainFrom(p, vB.ID, b); err != nil {
			t.Errorf("obtain C: %v", err)
			return
		}
		futC.Complete(struct{}{})
	})
	s.Run()
	_ = selA
	_ = selB
	if !checkedA || !checkedB {
		t.Fatal("a revoke never returned")
	}
	if n := memCapsEverywhere(s); n != 0 {
		t.Fatalf("%d mem caps survived", n)
	}
	checkAllInvariants(t, s)
	checkNoLeaks(t, s)
}

// TestInterferencePointless: exchanges of capabilities that are in
// revocation are denied immediately (the mark phase makes them visible),
// preventing pointless exchanges.
func TestInterferencePointless(t *testing.T) {
	cost := DefaultCostModel()
	cost.VPEAccept = 50_000 // keep the middle cap marked long enough
	s := MustNew(Config{Kernels: 2, UserPEs: 4, Cost: &cost})
	defer s.Close()

	futRoot := sim.NewFuture[cap.Selector](s.Eng)
	futMid := sim.NewFuture[cap.Selector](s.Eng)
	goRevoke := sim.NewFuture[struct{}](s.Eng)

	var rootV, midV *VPE
	rootV, _ = s.SpawnOn(2, "root", func(v *VPE, p *sim.Proc) {
		sel, _ := v.AllocMem(p, 4096, dtu.PermRW)
		futRoot.Complete(sel)
		goRevoke.Wait(p)
		if err := v.Revoke(p, sel); err != nil {
			t.Errorf("revoke: %v", err)
		}
	})
	// Middle holder on the other kernel; obtains from root, then delegates
	// onward to a slow-consenting peer to keep the revocation in flight.
	slow, _ := s.SpawnOn(5, "slow", func(v *VPE, p *sim.Proc) {
		v.OnExchange = func(q ExchangeQuery) ExchangeAnswer {
			return ExchangeAnswer{Accept: true}
		}
		p.Park()
	})
	midV, _ = s.SpawnOn(4, "mid", func(v *VPE, p *sim.Proc) {
		root := futRoot.Wait(p)
		sel, err := v.ObtainFrom(p, rootV.ID, root)
		if err != nil {
			t.Errorf("obtain mid: %v", err)
			return
		}
		futMid.Complete(sel)
		goRevoke.Complete(struct{}{})
		_ = slow
	})
	// A third party tries to obtain the middle capability while the
	// revocation is running.
	var lateErr error
	s.SpawnOn(3, "late", func(v *VPE, p *sim.Proc) {
		sel := futMid.Wait(p)
		// Give the revocation a head start so the mark phase reached mid.
		p.Sleep(30_000)
		_, lateErr = v.ObtainFrom(p, midV.ID, sel)
	})
	s.Run()
	if lateErr == nil {
		t.Fatal("exchange of a capability in revocation succeeded")
	}
	if lateErr != ErrInRevocation && lateErr != ErrNoSuchCap {
		t.Fatalf("err = %v, want ErrInRevocation (or ErrNoSuchCap after sweep)", lateErr)
	}
	if n := memCapsEverywhere(s); n != 0 {
		t.Fatalf("%d mem caps survived the revoke", n)
	}
	checkAllInvariants(t, s)
	checkNoLeaks(t, s)
}

// memCapsEverywhere counts memory capabilities across all kernels.
func memCapsEverywhere(s *System) int {
	n := 0
	for _, k := range s.kernels {
		for _, key := range k.store.Keys() {
			if _, ok := k.store.Lookup(key).Object.(*cap.MemObject); ok {
				n++
			}
		}
	}
	return n
}

// ownedMemCaps counts memory capabilities owned by one VPE anywhere.
func ownedMemCaps(s *System, vpe int) int {
	n := 0
	for _, k := range s.kernels {
		for _, c := range k.store.VPECaps(vpe) {
			if _, ok := c.Object.(*cap.MemObject); ok {
				n++
			}
		}
	}
	return n
}

// TestExitRevokesEverything: a VPE's exit revokes all its capabilities,
// including children delegated to other kernels.
func TestExitRevokesEverything(t *testing.T) {
	s := newTestSystem(t, 2, 2)
	ready := sim.NewFuture[cap.Selector](s.Eng)
	obtained := sim.NewFuture[struct{}](s.Eng)
	owner, _ := s.SpawnOn(2, "owner", func(v *VPE, p *sim.Proc) {
		sel, _ := v.AllocMem(p, 4096, dtu.PermRW)
		ready.Complete(sel)
		obtained.Wait(p)
		v.Exit(p)
	})
	s.SpawnOn(3, "peer", func(v *VPE, p *sim.Proc) {
		sel := ready.Wait(p)
		if _, err := v.ObtainFrom(p, owner.ID, sel); err != nil {
			t.Errorf("obtain: %v", err)
		}
		obtained.Complete(struct{}{})
	})
	s.Run()
	if !owner.Exited() {
		t.Fatal("owner not exited")
	}
	if n := memCapsEverywhere(s); n != 0 {
		t.Fatalf("%d mem caps survived exit", n)
	}
	// The owner's entire capability space must be empty.
	if got := len(s.Kernel(0).store.VPECaps(owner.ID)); got != 0 {
		t.Fatalf("owner still holds %d caps", got)
	}
	checkAllInvariants(t, s)
	checkNoLeaks(t, s)
}
