package core

import (
	"testing"

	"repro/internal/cap"
	"repro/internal/dtu"
	"repro/internal/sim"
)

// TestRevokeThreadBound: no matter how many cross-kernel revocations hit a
// kernel concurrently, at most RevokeThreads revoke workers are ever
// spawned — the paper's §4.3.3 denial-of-service defense.
func TestRevokeThreadBound(t *testing.T) {
	const holders = 10
	s := newTestSystem(t, 2, 2*holders+2)
	// Kernel 0 hosts the roots' owners; each holder on kernel 1 obtains one
	// cap, then all owners revoke at the same instant: kernel 1 receives a
	// storm of revoke requests.
	var owners [holders]*VPE
	readies := make([]*sim.Future[cap.Selector], holders)
	var attached sim.WaitGroup
	attached.Add(holders)
	for i := 0; i < holders; i++ {
		i := i
		readies[i] = sim.NewFuture[cap.Selector](s.Eng)
		owners[i], _ = s.SpawnOn(s.userPEs[i], "owner", func(v *VPE, p *sim.Proc) {
			sel, _ := v.AllocMem(p, 64, dtu.PermRW)
			readies[i].Complete(sel)
			attached.Wait(p)
			if err := v.Revoke(p, sel); err != nil {
				t.Errorf("revoke %d: %v", i, err)
			}
		})
		s.SpawnOn(s.userPEs[holders+i], "holder", func(v *VPE, p *sim.Proc) {
			sel := readies[i].Wait(p)
			if _, err := v.ObtainFrom(p, owners[i].ID, sel); err != nil {
				t.Errorf("obtain %d: %v", i, err)
			}
			attached.Done()
		})
	}
	s.Run()
	for ki := 0; ki < 2; ki++ {
		k := s.Kernel(ki)
		if k.revokePool.spawned > RevokeThreads {
			t.Fatalf("kernel %d spawned %d revoke threads, bound is %d",
				ki, k.revokePool.spawned, RevokeThreads)
		}
	}
	if n := memCapsEverywhere(s); n != 0 {
		t.Fatalf("%d caps survived the revoke storm", n)
	}
}

// TestInflightLimitThrottlesSenders: a burst of group-spanning operations
// between one kernel pair never exceeds MaxInflight unprocessed requests;
// excess senders park on the in-flight semaphore instead of losing
// messages.
func TestInflightLimitThrottlesSenders(t *testing.T) {
	const peers = 12
	s := newTestSystem(t, 2, peers+2)
	ready := sim.NewFuture[cap.Selector](s.Eng)
	// One owner on kernel 0; many requesters on kernel 1 obtain at once.
	owner, _ := s.SpawnOn(s.userPEs[0], "owner", func(v *VPE, p *sim.Proc) {
		sel, _ := v.AllocMem(p, 64, dtu.PermRW)
		ready.Complete(sel)
	})
	okCount := 0
	var reqPEs []int
	for _, pe := range s.userPEs {
		if s.KernelOfPE(pe).ID() == 1 {
			reqPEs = append(reqPEs, pe)
		}
	}
	if len(reqPEs) < peers/2 {
		t.Fatalf("not enough kernel-1 PEs: %d", len(reqPEs))
	}
	for _, pe := range reqPEs {
		s.SpawnOn(pe, "req", func(v *VPE, p *sim.Proc) {
			sel := ready.Wait(p)
			if _, err := v.ObtainFrom(p, owner.ID, sel); err == nil {
				okCount++
			}
		})
	}
	s.Run()
	if okCount != len(reqPEs) {
		t.Fatalf("only %d/%d obtains succeeded", okCount, len(reqPEs))
	}
	// No messages may have been lost anywhere (the limit's whole purpose).
	if lost := s.Net.Stats().Lost; lost != 0 {
		t.Fatalf("%d messages lost despite in-flight limiting", lost)
	}
	// The sender-side semaphore is back to its full budget.
	if sem := s.Kernel(1).inflightTo(0); sem.Count() != MaxInflight {
		t.Fatalf("in-flight budget = %d, want %d", sem.Count(), MaxInflight)
	}
}

// TestDelegateSess pushes a client capability into a session, local and
// spanning: the service ends up owning a child of the client's capability.
func TestDelegateSess(t *testing.T) {
	for name, kernels := range map[string]int{"local": 1, "spanning": 2} {
		t.Run(name, func(t *testing.T) {
			s := newTestSystem(t, kernels, 2)
			var svcVPE *VPE
			svcReady := sim.NewFuture[struct{}](s.Eng)
			var gotObj cap.Object
			svcVPE, _ = s.SpawnOn(s.userPEs[0], "svc", func(v *VPE, p *sim.Proc) {
				err := v.RegisterService(p, "buf", ServiceHandlers{
					Open: func(p *sim.Proc, clientVPE int, args any) SvcResult {
						return SvcResult{Ident: 7}
					},
					Delegate: func(p *sim.Proc, ident uint64, args any, obj cap.Object) SvcResult {
						gotObj = obj
						return SvcResult{Accept: true, Reply: "ack"}
					},
				})
				if err != nil {
					t.Errorf("register: %v", err)
					return
				}
				svcReady.Complete(struct{}{})
				v.ServeLoop(p)
			})
			var delErr error
			var reply any
			s.SpawnOn(s.userPEs[len(s.userPEs)-1], "client", func(v *VPE, p *sim.Proc) {
				svcReady.Wait(p)
				sess, err := v.CreateSession(p, "buf", nil)
				if err != nil {
					t.Errorf("session: %v", err)
					return
				}
				sel, err := v.AllocMem(p, 4096, dtu.PermRW)
				if err != nil {
					t.Errorf("alloc: %v", err)
					return
				}
				reply, delErr = sess.Delegate(p, sel, "here")
			})
			s.Run()
			if delErr != nil {
				t.Fatalf("delegate-sess: %v", delErr)
			}
			if reply != "ack" {
				t.Fatalf("service reply = %v", reply)
			}
			if _, ok := gotObj.(*cap.MemObject); !ok {
				t.Fatalf("service saw %T, want *cap.MemObject", gotObj)
			}
			// The service VPE owns a mem cap child now.
			var svcMem int
			for ki := 0; ki < s.Kernels(); ki++ {
				for _, c := range s.Kernel(ki).store.VPECaps(svcVPE.ID) {
					if _, ok := c.Object.(*cap.MemObject); ok && c.Parent != 0 {
						svcMem++
					}
				}
			}
			if svcMem != 1 {
				t.Fatalf("service mem caps = %d, want 1", svcMem)
			}
			checkAllInvariants(t, s)
		})
	}
}

// TestSessionCloseSevers: revoking the session capability removes it from
// the service capability's children.
func TestSessionCloseSevers(t *testing.T) {
	s := newTestSystem(t, 2, 2)
	svcReady := sim.NewFuture[struct{}](s.Eng)
	var svcVPE *VPE
	svcVPE, _ = s.SpawnOn(s.userPEs[0], "svc", func(v *VPE, p *sim.Proc) {
		err := v.RegisterService(p, "x", ServiceHandlers{
			Open: func(p *sim.Proc, clientVPE int, args any) SvcResult {
				return SvcResult{Ident: 1}
			},
		})
		if err != nil {
			t.Errorf("register: %v", err)
			return
		}
		svcReady.Complete(struct{}{})
		v.ServeLoop(p)
	})
	s.SpawnOn(s.userPEs[1], "client", func(v *VPE, p *sim.Proc) {
		svcReady.Wait(p)
		sess, err := v.CreateSession(p, "x", nil)
		if err != nil {
			t.Errorf("session: %v", err)
			return
		}
		if err := sess.Close(p); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	s.Run()
	// The service capability must have no children left.
	k0 := s.KernelOfPE(svcVPE.PE)
	for _, c := range k0.store.VPECaps(svcVPE.ID) {
		if _, ok := c.Object.(*cap.ServiceObject); ok && c.NumChildren() != 0 {
			t.Fatalf("service cap still has %d children after session close", c.NumChildren())
		}
	}
	checkAllInvariants(t, s)
}

// TestNoMessageLossUnderLoad: a full application-style run loses no DTU
// messages anywhere — the architectural requirement the in-flight limits
// and credit system exist to guarantee.
func TestNoMessageLossUnderLoad(t *testing.T) {
	s := newTestSystem(t, 4, 24)
	ready := sim.NewFuture[cap.Selector](s.Eng)
	owner, _ := s.SpawnOn(s.userPEs[0], "owner", func(v *VPE, p *sim.Proc) {
		sel, _ := v.AllocMem(p, 4096, dtu.PermRW)
		ready.Complete(sel)
	})
	for i := 1; i < 24; i++ {
		s.SpawnOn(s.userPEs[i], "worker", func(v *VPE, p *sim.Proc) {
			sel := ready.Wait(p)
			mine, err := v.ObtainFrom(p, owner.ID, sel)
			if err != nil {
				t.Errorf("obtain: %v", err)
				return
			}
			if err := v.Revoke(p, mine); err != nil {
				t.Errorf("revoke: %v", err)
			}
		})
	}
	s.Run()
	if lost := s.Net.Stats().Lost; lost != 0 {
		t.Fatalf("%d messages lost", lost)
	}
	checkAllInvariants(t, s)
}
