package core

import (
	"repro/internal/dtu"
	"repro/internal/sim"
)

// Inter-kernel calls (paper §4.1): kernels communicate via messages over
// the NoC, adhering to a messaging protocol with per-pair FIFO ordering
// (guaranteed by internal/noc) and a bounded number of in-flight messages
// per kernel pair, so that the receiver's DTU message slots can never
// overflow. Replies travel in slots reserved by the request (as in the M3
// DTU design), so only requests count against the in-flight limit.

// inflightTo returns the in-flight semaphore for requests to kernel dst,
// created lazily in its dense per-kernel slot.
func (k *Kernel) inflightTo(dst int) *sim.Semaphore {
	s := k.inflight[dst]
	if s == nil {
		s = sim.NewSemaphore(k.sys.Eng, MaxInflight)
		k.inflight[dst] = s
	}
	return s
}

// nextSeq mints a request sequence number.
func (k *Kernel) nextSeq() uint64 {
	k.seq++
	return k.seq
}

// ikSend transmits a request to kernel dst. The caller must hold the CPU
// token; the in-flight slot is acquired at a preemption point (the CPU is
// released while waiting for one). The request is matched with a reply via
// its sequence number; the returned future completes when the reply
// arrives.
func (k *Kernel) ikSend(p *sim.Proc, dst int, req *ikcRequest) *sim.Future[*ikcReply] {
	if dst == k.id {
		panic("core: inter-kernel call to self")
	}
	k.exec(p, k.sys.Cost.IKCCompose)
	req.Seq = k.nextSeq()
	req.From = k.id
	req.Inc = k.incarnation
	fut := sim.NewFuture[*ikcReply](k.sys.Eng)
	k.pending[req.Seq] = fut
	if k.peerDead(dst) {
		// Degraded mode: dst exhausted its retry budget earlier. Fail the
		// call immediately instead of queueing work for a dead kernel.
		k.rt.failFast(req.Seq, dst)
		return fut
	}
	k.stats.IKCSent++

	sem := k.inflightTo(dst)
	if !sem.TryAcquire() {
		k.releaseCPU()
		sem.Acquire(p)
		k.acquireCPU(p)
	}
	dk := k.sys.kernels[dst]
	k.sys.Net.Send(k.pe, dk.pe, ikcMsgBytes, func() { dk.recvRequest(req) })
	if k.rt != nil {
		k.rt.track(dst, []*ikcRequest{req}, false, req.Kind)
	}
	return fut
}

// ikSubmit hands a request to the unified transport: kinds the batching
// policy covers join a per-destination aggregation queue (transport.go) and
// travel in a coalesced envelope; everything else is a direct ikSend. With
// batching disabled this is exactly ikSend.
func (k *Kernel) ikSubmit(p *sim.Proc, dst int, req *ikcRequest) *sim.Future[*ikcReply] {
	if k.xport.batches(req.Kind) {
		return k.xport.enqueue(p, dst, req)
	}
	return k.ikSend(p, dst, req)
}

// ikCall performs a blocking inter-kernel call: submit the request to the
// transport, release the CPU (preemption point), wait for the reply.
func (k *Kernel) ikCall(p *sim.Proc, dst int, req *ikcRequest) *ikcReply {
	fut := k.ikSubmit(p, dst, req)
	rep := blockOn(k, p, fut)
	delete(k.pending, req.Seq)
	return rep
}

// ikNotify sends a one-way notification (e.g. orphan unlink). It consumes
// an in-flight slot like any request but nobody waits for a reply; the
// receiver must not send one. In reliable mode the receiver *does* answer
// with an empty ack (see dispatchRequest): loss of a notification must be
// observable so it can be retransmitted and its credit returned, and the
// ack — completing a future nobody waits on — is what resolves the
// transmission. The ack's future is returned so callers can observe a
// degraded outcome (ErrPeerDead) without blocking on it; in baseline
// lossless mode there is no ack and the result is nil.
func (k *Kernel) ikNotify(p *sim.Proc, dst int, req *ikcRequest) *sim.Future[*ikcReply] {
	k.exec(p, k.sys.Cost.IKCCompose)
	req.Seq = k.nextSeq()
	req.From = k.id
	req.Inc = k.incarnation
	var fut *sim.Future[*ikcReply]
	if k.reliable() {
		fut = sim.NewFuture[*ikcReply](k.sys.Eng)
		k.pending[req.Seq] = fut
		if k.peerDead(dst) {
			k.rt.failFast(req.Seq, dst)
			return fut
		}
	}
	k.stats.IKCSent++
	sem := k.inflightTo(dst)
	if !sem.TryAcquire() {
		k.releaseCPU()
		sem.Acquire(p)
		k.acquireCPU(p)
	}
	dk := k.sys.kernels[dst]
	k.sys.Net.Send(k.pe, dk.pe, ikcMsgBytes, func() { dk.recvRequest(req) })
	if k.rt != nil {
		k.rt.track(dst, []*ikcRequest{req}, false, req.Kind)
	}
	return fut
}

// recvRequest runs at the receiving kernel when a request message arrives
// (event context). Revoke requests go to the bounded revoke pool (at most
// two threads, the paper's DoS defense); everything else to the general
// inter-kernel pool.
func (k *Kernel) recvRequest(req *ikcRequest) {
	k.stats.IKCReceived++
	job := func(p *sim.Proc) {
		k.acquireCPU(p)
		if !k.reliable() {
			// Picking the message up frees its slot: return the in-flight
			// credit to the sender. In reliable mode the credit instead
			// returns when the sender's transmission resolves (onReply /
			// abort in reliability.go) — a lost request must not leak it.
			k.returnCredit(req.From)
		}
		k.exec(p, k.sys.Cost.IKCDispatch)
		if k.admitRequest(req) && k.dedupCheck(req) {
			k.dispatchRequest(p, req)
		}
		// Dispatch barrier of the reply sink (see flushBatchReplies): a
		// reply produced by this dispatch leaves now instead of waiting on
		// an idle window timer. No-op for unbatched families.
		k.xport.flushBatchReplies(req.From, req.Kind)
		k.releaseCPU()
	}
	if req.Kind == ikcRevoke || req.Kind == ikcRevokeBatch {
		k.revokePool.submit(job)
	} else {
		k.ikcPool.submit(job)
	}
}

// returnCredit gives the in-flight credit for one picked-up wire message
// back to its sending kernel. Merged mode returns it instantly (a zero-delay
// event, the historical baseline trace); rounds mode sends a credit message
// back over the NoC, so the release lands on the sender's domain one NoC
// latency later — the semaphore stays single-writer and the edge respects
// the lookahead bound.
func (k *Kernel) returnCredit(from int) {
	src := k.sys.kernels[from]
	if k.sys.rounds {
		k.sys.Net.Send(k.pe, src.pe, creditMsgBytes, func() { src.inflightTo(k.id).Release() })
		return
	}
	k.sys.Eng.Schedule(0, func() { src.inflightTo(k.id).Release() })
}

// recvBatch runs at the receiving kernel when a coalesced envelope arrives
// at its batch endpoint (event context, one delivery event for the whole
// vector). The envelope counts as one received wire message, occupies one
// in-flight slot of its sender and is picked up by a single kernel thread,
// which frees the shared receive slot, returns the in-flight credit and
// dispatches the carried requests in order. Handlers return their replies
// to the transport's reply sink, and they may block at their usual
// preemption points — the batch thread simply resumes with the next
// request afterwards, serializing the batch the way the receiving kernel's
// single CPU would anyway. When the last request has been dispatched the
// thread flushes the reply queue feeding the envelope's sender (the
// sink's dispatch barrier), so the batch is normally answered by a single
// reply envelope and no reply waits on an idle timer.
func (k *Kernel) recvBatch(msgs []*dtu.Message) {
	k.stats.IKCReceived++
	reqs := make([]*ikcRequest, len(msgs))
	for i, m := range msgs {
		reqs[i] = m.Payload.(*ikcRequest)
	}
	batch := &ikcBatch{From: reqs[0].From, Kind: reqs[0].Kind, Reqs: reqs}
	for _, req := range reqs {
		if req.From != batch.From || req.Kind != batch.Kind {
			panic("core: mixed envelope — batches must carry one kind from one kernel")
		}
	}
	k.ikcPool.submit(func(p *sim.Proc) {
		k.acquireCPU(p)
		for _, m := range msgs {
			k.dtu.Free(m)
		}
		if !k.reliable() {
			k.returnCredit(batch.From)
		}
		for _, req := range batch.Reqs {
			k.exec(p, k.sys.Cost.IKCDispatch)
			if k.admitRequest(req) && k.dedupCheck(req) {
				k.dispatchRequest(p, req)
			}
		}
		k.xport.flushBatchReplies(batch.From, batch.Kind)
		k.releaseCPU()
	})
}

// dispatchRequest routes a request to its handler and hands the returned
// result to the reply path. Handlers run on a kernel thread with the CPU
// held and *return* their reply instead of composing wire messages
// themselves — the transport decides whether it leaves as a direct message
// or joins a reply envelope. A nil result means no reply now: notifications
// are never answered, and the continuation-based revocation paths answer
// later via ikReplyAsync.
func (k *Kernel) dispatchRequest(p *sim.Proc, req *ikcRequest) {
	var rep *ikcReply
	switch req.Kind {
	case ikcObtain:
		rep = k.handleObtainReq(p, req)
	case ikcDelegate:
		rep = k.handleDelegateReq(p, req)
	case ikcDelegateAck:
		rep = k.handleDelegateAck(p, req)
	case ikcRevoke:
		rep = k.handleRevokeReq(p, req)
	case ikcRevokeBatch:
		rep = k.handleRevokeBatchReq(p, req)
	case ikcUnlinkChild:
		k.handleUnlinkChild(p, req) // notification: nobody to answer
		if k.reliable() {
			// ...except in reliable mode, where an empty ack makes the
			// notification's loss observable (see ikNotify).
			rep = &ikcReply{}
		}
	case ikcSession:
		rep = k.handleSessionReq(p, req)
	case ikcObtainSess:
		rep = k.handleObtainSessReq(p, req)
	case ikcDelegateSess:
		rep = k.handleDelegateSessReq(p, req)
	case ikcSvcLookup:
		rep = k.handleSvcLookup(p, req)
	case ikcSvcRegister:
		rep = k.handleSvcRegister(p, req)
	case ikcDRAMRefill:
		rep = k.handleDRAMRefill(p, req)
	case ikcRejoin:
		rep = k.handleRejoin(p, req)
	default:
		panic("core: unknown inter-kernel request kind")
	}
	if rep != nil {
		k.ikReply(p, req, rep)
	}
}

// ikReply sends the reply for req back to its sender, routing it through
// the reply sink when the policy batches this operation family (it then
// rides a coalesced envelope instead of its own wire message). The caller
// must hold the CPU token; the compose cost models marshalling the reply —
// into a message or into the envelope buffer. Direct replies travel in
// slots reserved by the request and bypass the in-flight limit.
func (k *Kernel) ikReply(p *sim.Proc, req *ikcRequest, rep *ikcReply) {
	k.exec(p, k.sys.Cost.IKCCompose)
	rep.Seq = req.Seq
	rep.From = k.id
	rep.Inc = req.Inc
	k.cacheReply(req.From, req.Seq, rep)
	if k.xport.batchesReply(req.Kind) {
		k.xport.enqueueReply(req.From, replyClassOf(req.Kind), rep)
		return
	}
	k.stats.IKCRepSent++
	src := k.sys.kernels[req.From]
	k.sys.Net.Send(k.pe, src.pe, ikcRepBytes, func() { src.recvReply(rep) })
}

// ikReplyAsync sends a reply from event context (used by the
// continuation-based revocation, which completes on message arrival rather
// than on a thread). The compose cost is modeled as a delay before the
// message leaves. These replies never join reply envelopes, regardless of
// policy: a continuation fires long after any dispatch barrier has passed,
// so batching it could only park a revocation's completion — the event the
// initiator's syscall blocks on — on an idle window timer, trading
// latency-critical progress for a coalescing opportunity that barely
// exists (revocation already answers one reply per batched request).
// Keeping them direct also pins batched revocation of arbitrarily deep
// trees to its pre-sink event trace.
func (k *Kernel) ikReplyAsync(req *ikcRequest, rep *ikcReply) {
	rep.Seq = req.Seq
	rep.From = k.id
	rep.Inc = req.Inc
	k.cacheReply(req.From, req.Seq, rep)
	k.stats.Busy += k.sys.Cost.IKCCompose
	k.stats.IKCRepSent++
	src := k.sys.kernels[req.From]
	k.dom.Schedule(k.sys.Cost.IKCCompose, func() {
		k.sys.Net.Send(k.pe, src.pe, ikcRepBytes, func() { src.recvReply(rep) })
	})
}

// recvReplyVec runs at the requesting kernel when a reply envelope arrives
// at its reply endpoint (event context, one delivery event for the whole
// vector). Like direct replies, the demux costs no kernel thread: each
// carried reply frees its share of the slot and completes its pending
// future, in envelope (= enqueue) order, so requesters observe the same
// reply order the answering kernel produced.
func (k *Kernel) recvReplyVec(msgs []*dtu.Message) {
	for _, m := range msgs {
		k.dtu.Free(m)
		k.recvReply(m.Payload.(*ikcReply))
	}
}

// recvReply completes the pending future for a reply (event context). A
// reply for an unknown sequence number is late or duplicated: its request
// was retransmitted and already answered, or the peer was declared dead
// and the future completed with an error reply. It is counted, not fatal
// — on the lossless baseline the counter provably stays zero (every
// reply matches a pending future), so flags-off traces are unchanged.
func (k *Kernel) recvReply(rep *ikcReply) {
	if k.rt != nil && rep.Inc != 0 && rep.Inc != k.incarnation {
		// The reply echoes the incarnation that asked the question; this
		// kernel has since crashed and recovered, so the answer belongs to
		// the dead incarnation (its futures were already aborted at rejoin).
		k.stats.StaleIncarnation++
		return
	}
	fut := k.pending[rep.Seq]
	if fut == nil {
		k.stats.LateReplies++
		return
	}
	delete(k.pending, rep.Seq)
	if k.rt != nil {
		k.rt.onReply(rep.Seq)
	}
	fut.Complete(rep)
}
