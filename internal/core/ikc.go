package core

import (
	"repro/internal/dtu"
	"repro/internal/sim"
)

// Inter-kernel calls (paper §4.1): kernels communicate via messages over
// the NoC, adhering to a messaging protocol with per-pair FIFO ordering
// (guaranteed by internal/noc) and a bounded number of in-flight messages
// per kernel pair, so that the receiver's DTU message slots can never
// overflow. Replies travel in slots reserved by the request (as in the M3
// DTU design), so only requests count against the in-flight limit.

// inflightTo returns the in-flight semaphore for requests to kernel dst.
func (k *Kernel) inflightTo(dst int) *sim.Semaphore {
	s := k.inflight[dst]
	if s == nil {
		s = sim.NewSemaphore(k.sys.Eng, MaxInflight)
		k.inflight[dst] = s
	}
	return s
}

// nextSeq mints a request sequence number.
func (k *Kernel) nextSeq() uint64 {
	k.seq++
	return k.seq
}

// ikSend transmits a request to kernel dst. The caller must hold the CPU
// token; the in-flight slot is acquired at a preemption point (the CPU is
// released while waiting for one). The request is matched with a reply via
// its sequence number; the returned future completes when the reply
// arrives.
func (k *Kernel) ikSend(p *sim.Proc, dst int, req *ikcRequest) *sim.Future[*ikcReply] {
	if dst == k.id {
		panic("core: inter-kernel call to self")
	}
	k.exec(p, k.sys.Cost.IKCCompose)
	req.Seq = k.nextSeq()
	req.From = k.id
	fut := sim.NewFuture[*ikcReply](k.sys.Eng)
	k.pending[req.Seq] = fut
	k.stats.IKCSent++

	sem := k.inflightTo(dst)
	if !sem.TryAcquire() {
		k.releaseCPU()
		sem.Acquire(p)
		k.acquireCPU(p)
	}
	dk := k.sys.kernels[dst]
	k.sys.Net.Send(k.pe, dk.pe, ikcMsgBytes, func() { dk.recvRequest(req) })
	return fut
}

// ikSubmit hands a request to the unified transport: kinds the batching
// policy covers join a per-destination aggregation queue (transport.go) and
// travel in a coalesced envelope; everything else is a direct ikSend. With
// batching disabled this is exactly ikSend.
func (k *Kernel) ikSubmit(p *sim.Proc, dst int, req *ikcRequest) *sim.Future[*ikcReply] {
	if k.xport.batches(req.Kind) {
		return k.xport.enqueue(p, dst, req)
	}
	return k.ikSend(p, dst, req)
}

// ikCall performs a blocking inter-kernel call: submit the request to the
// transport, release the CPU (preemption point), wait for the reply.
func (k *Kernel) ikCall(p *sim.Proc, dst int, req *ikcRequest) *ikcReply {
	fut := k.ikSubmit(p, dst, req)
	rep := blockOn(k, p, fut)
	delete(k.pending, req.Seq)
	return rep
}

// ikNotify sends a one-way notification (e.g. orphan unlink). It consumes
// an in-flight slot like any request but nobody waits for a reply; the
// receiver must not send one.
func (k *Kernel) ikNotify(p *sim.Proc, dst int, req *ikcRequest) {
	k.exec(p, k.sys.Cost.IKCCompose)
	req.Seq = k.nextSeq()
	req.From = k.id
	k.stats.IKCSent++
	sem := k.inflightTo(dst)
	if !sem.TryAcquire() {
		k.releaseCPU()
		sem.Acquire(p)
		k.acquireCPU(p)
	}
	dk := k.sys.kernels[dst]
	k.sys.Net.Send(k.pe, dk.pe, ikcMsgBytes, func() { dk.recvRequest(req) })
}

// recvRequest runs at the receiving kernel when a request message arrives
// (event context). Revoke requests go to the bounded revoke pool (at most
// two threads, the paper's DoS defense); everything else to the general
// inter-kernel pool.
func (k *Kernel) recvRequest(req *ikcRequest) {
	k.stats.IKCReceived++
	job := func(p *sim.Proc) {
		k.acquireCPU(p)
		// Picking the message up frees its slot: return the in-flight
		// credit to the sender.
		src := k.sys.kernels[req.From]
		k.sys.Eng.Schedule(0, func() { src.inflightTo(k.id).Release() })
		k.exec(p, k.sys.Cost.IKCDispatch)
		k.dispatchRequest(p, req)
		k.releaseCPU()
	}
	if req.Kind == ikcRevoke || req.Kind == ikcRevokeBatch {
		k.revokePool.submit(job)
	} else {
		k.ikcPool.submit(job)
	}
}

// recvBatch runs at the receiving kernel when a coalesced envelope arrives
// at its batch endpoint (event context, one delivery event for the whole
// vector). The envelope counts as one received wire message, occupies one
// in-flight slot of its sender and is picked up by a single kernel thread,
// which frees the shared receive slot, returns the in-flight credit and
// dispatches the carried requests in order. Handlers reply to each request
// individually (replies are not coalesced), and they may block at their
// usual preemption points — the batch thread simply resumes with the next
// request afterwards, serializing the batch the way the receiving kernel's
// single CPU would anyway.
func (k *Kernel) recvBatch(msgs []*dtu.Message) {
	k.stats.IKCReceived++
	reqs := make([]*ikcRequest, len(msgs))
	for i, m := range msgs {
		reqs[i] = m.Payload.(*ikcRequest)
	}
	batch := &ikcBatch{From: reqs[0].From, Kind: reqs[0].Kind, Reqs: reqs}
	for _, req := range reqs {
		if req.From != batch.From || req.Kind != batch.Kind {
			panic("core: mixed envelope — batches must carry one kind from one kernel")
		}
	}
	k.ikcPool.submit(func(p *sim.Proc) {
		k.acquireCPU(p)
		for _, m := range msgs {
			k.dtu.Free(m)
		}
		src := k.sys.kernels[batch.From]
		k.sys.Eng.Schedule(0, func() { src.inflightTo(k.id).Release() })
		for _, req := range batch.Reqs {
			k.exec(p, k.sys.Cost.IKCDispatch)
			k.dispatchRequest(p, req)
		}
		k.releaseCPU()
	})
}

// dispatchRequest routes a request to its handler. Handlers run on a kernel
// thread with the CPU held and reply via ikReply (except notifications and
// the continuation-based revoke).
func (k *Kernel) dispatchRequest(p *sim.Proc, req *ikcRequest) {
	switch req.Kind {
	case ikcObtain:
		k.handleObtainReq(p, req)
	case ikcDelegate:
		k.handleDelegateReq(p, req)
	case ikcDelegateAck:
		k.handleDelegateAck(p, req)
	case ikcRevoke:
		k.handleRevokeReq(p, req)
	case ikcRevokeBatch:
		k.handleRevokeBatchReq(p, req)
	case ikcUnlinkChild:
		k.handleUnlinkChild(p, req)
	case ikcSession:
		k.handleSessionReq(p, req)
	case ikcObtainSess:
		k.handleObtainSessReq(p, req)
	case ikcDelegateSess:
		k.handleDelegateSessReq(p, req)
	default:
		panic("core: unknown inter-kernel request kind")
	}
}

// ikReply sends the reply for req back to its sender. The caller must hold
// the CPU token. Replies travel in reserved slots and bypass the in-flight
// limit.
func (k *Kernel) ikReply(p *sim.Proc, req *ikcRequest, rep *ikcReply) {
	k.exec(p, k.sys.Cost.IKCCompose)
	rep.Seq = req.Seq
	rep.From = k.id
	src := k.sys.kernels[req.From]
	k.sys.Net.Send(k.pe, src.pe, ikcRepBytes, func() { src.recvReply(rep) })
}

// ikReplyAsync sends a reply from event context (used by the
// continuation-based revocation, which completes on message arrival rather
// than on a thread). The compose cost is modeled as a delay before the
// message leaves.
func (k *Kernel) ikReplyAsync(req *ikcRequest, rep *ikcReply) {
	rep.Seq = req.Seq
	rep.From = k.id
	src := k.sys.kernels[req.From]
	k.stats.Busy += k.sys.Cost.IKCCompose
	k.sys.Eng.Schedule(k.sys.Cost.IKCCompose, func() {
		k.sys.Net.Send(k.pe, src.pe, ikcRepBytes, func() { src.recvReply(rep) })
	})
}

// recvReply completes the pending future for a reply (event context).
func (k *Kernel) recvReply(rep *ikcReply) {
	fut := k.pending[rep.Seq]
	if fut == nil {
		panic("core: reply for unknown sequence number")
	}
	delete(k.pending, rep.Seq)
	fut.Complete(rep)
}
