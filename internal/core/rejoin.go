package core

import (
	"sort"

	"repro/internal/cap"
	"repro/internal/ddl"
	"repro/internal/sim"
)

// Kernel crash recovery (rejoin protocol). A scripted kernel crash
// (fault.KernelFault.CrashAt) blackholes every inter-kernel link of the
// kernel; with a RecoverAt the links come back and the kernel resumes as a
// new *incarnation*. The crash is link-level — the kernel PE itself kept
// running its group's syscalls, spuriously declaring peers dead and
// aborting cross-kernel operations with ErrPeerDead — so rejoining is not
// a reboot but a reconciliation:
//
//   1. At RecoverAt (beginRejoin, event context) the kernel bumps its
//      incarnation number, aborts every outstanding transmission and every
//      request still parked in an aggregation queue (they were asked by
//      the dead incarnation; no answer can ever resolve them), clears its
//      own dead-peer verdicts and resets the delegation-handshake state
//      that can no longer be acknowledged.
//   2. A kernel thread then broadcasts an ikcRejoin handshake. The bumped
//      incarnation stamp on that request (and on any later request) is
//      what re-admits the kernel at each peer: admitRequest observes a
//      newer incarnation and runs admitIncarnation — clear the dead
//      verdict, discard retransmit/dedup/handshake state keyed by the dead
//      incarnation, invalidate cached service locations, and schedule the
//      peer's own reconciliation toward the rejoined kernel.
//   3. After the handshake the recovering kernel re-registers its services
//      with their directory homes (rounds mode), replays recorded orphan
//      fixups and conservatively revokes every delegation chain still
//      rooted in the dead incarnation (reconcileChains), so no capability
//      or DDL entry outlives the incarnation that created it.
//
// Stale traffic from the dead incarnation — retransmits of its requests,
// late replies to questions it asked — is rejected by incarnation
// mismatch (admitRequest / recvReply) and counted in
// KernelStats.StaleIncarnation. Rejecting stale requests instead of
// tracking them is also what keeps the receiver dedup state bounded: a
// peer can discard everything keyed by a dead incarnation wholesale
// because the recovering kernel aborted all its transmissions at rejoin
// and will never retransmit them.

// orphanFix records one cross-kernel tree-maintenance operation that
// failed with ErrPeerDead: a subtree revocation whose remote child could
// not be reached (the local parent is already gone, so the link cannot be
// walked again) or an orphan-unlink notification that never arrived.
// Fixes are replayed when the dead peer rejoins (replayOrphanFixes); ones
// aimed at a permanently dead kernel stay recorded forever, which is
// harmless — the state they would fix died with the peer.
type orphanFix struct {
	dst   int
	kind  ikcKind // ikcRevoke or ikcUnlinkChild
	key   ddl.Key // revocation target, or the parent of an unlink
	child ddl.Key // unlinked child (ikcUnlinkChild only)
}

// recordOrphanFix is the OnComplete hook of the fire-and-forget tree
// maintenance sends: if the operation failed because the peer is dead,
// remember it for replay at the peer's rejoin. Runs in event context on
// this kernel's domain (single writer).
func (k *Kernel) recordOrphanFix(f orphanFix, rep *ikcReply) {
	if rep.Err == ErrPeerDead {
		k.orphanFixes = append(k.orphanFixes, f)
	}
}

// notifyUnlink sends an unlink-child notification, recording an orphan fix
// if the owner's kernel is unreachable so the dangling link is removed
// when it rejoins. In baseline lossless mode the notification cannot fail
// and nothing is tracked.
func (k *Kernel) notifyUnlink(p *sim.Proc, dst int, parent, child ddl.Key) {
	fut := k.ikNotify(p, dst, &ikcRequest{Kind: ikcUnlinkChild, Key: parent, Child: child})
	if fut == nil {
		return
	}
	fix := orphanFix{dst: dst, kind: ikcUnlinkChild, key: parent, child: child}
	fut.OnComplete(func(rep *ikcReply) { k.recordOrphanFix(fix, rep) })
}

// admitRequest is the receiver-side incarnation gate, run before the
// duplicate filter on every dispatched request. A request stamped with an
// incarnation older than the highest observed for its sender is a stale
// retransmit from before the sender's crash: it is dropped silently (the
// dead incarnation's futures were aborted at its rejoin, so nobody waits
// for an answer). A newer stamp implicitly admits the rejoined sender —
// the explicit ikcRejoin handshake is normally the first such request, but
// any request can carry the news, since the handshake itself may be
// dropped or reordered by the faulty fabric.
func (k *Kernel) admitRequest(req *ikcRequest) bool {
	if k.rt == nil || req.Inc == 0 {
		return true
	}
	observed := k.rt.incOf(req.From)
	switch {
	case req.Inc < observed:
		k.stats.StaleIncarnation++
		return false
	case req.Inc > observed:
		k.admitIncarnation(req.From, req.Inc)
	}
	return true
}

// admitIncarnation re-admits a peer that crashed and came back: record the
// new incarnation and discard every piece of state keyed by the dead one.
// Runs in thread context (CPU held) from admitRequest; everything here is
// either a local map operation or a job submission, never a preemption
// point.
func (k *Kernel) admitIncarnation(from int, inc uint32) {
	rt := k.rt
	rt.peerInc[from] = inc
	delete(rt.dead, from)
	// The dedup and reply-cache state for the peer is keyed by the dead
	// incarnation's sequence numbers: the recovering kernel aborted all its
	// outstanding transmissions at rejoin, so none of them will ever be
	// retransmitted, and stragglers already on the wire are rejected by the
	// incarnation gate before they reach the filter.
	delete(rt.dedup, from)
	// Outstanding transmissions *to* the peer were addressed to the dead
	// incarnation — it lost its receive state, so they could only be
	// rejected as stale. Abort them in first-send order (the deterministic
	// order byDst maintains), completing their futures with ErrPeerDead.
	xms := rt.byDst[from]
	delete(rt.byDst, from)
	for _, xm := range xms {
		if !xm.done {
			rt.abort(xm)
		}
	}
	// Delegation handshakes whose originator is the dead incarnation can
	// never be acknowledged: their entries would leak forever.
	k.dropPeerDelegations(from)
	// Cached service locations owned by the peer: drop them so the next
	// resolution asks the name's home again (which re-learned the location
	// from the peer's re-registration). Deletion-only, order-independent.
	for name, loc := range k.svcCache {
		if loc.kernel == from {
			delete(k.svcCache, name)
		}
	}
	// This kernel's own reconciliation toward the rejoined peer — replaying
	// recorded orphan fixes and revoking the chains still linking into the
	// dead incarnation — blocks on inter-kernel calls, so it runs as a pool
	// job rather than inline under the admission gate.
	k.ikcPool.submit(func(p *sim.Proc) {
		k.acquireCPU(p)
		k.replayOrphanFixes(p, from)
		k.reconcileChains(p, from)
		k.releaseCPU()
	})
}

// dropPeerDelegations discards pending delegation-handshake entries whose
// parent capability is owned by the given kernel: the originator aborted
// the handshake with ErrPeerDead when this kernel was unreachable (or died
// itself), so the acknowledgement that would resolve each entry is never
// coming.
func (k *Kernel) dropPeerDelegations(from int) {
	var doomed []ddl.Key
	k.pendingDelegations.Range(func(key ddl.Key, c *cap.Capability) bool {
		if k.member.KernelOfKey(c.Parent) == from {
			doomed = append(doomed, key)
		}
		return true
	})
	for _, key := range doomed {
		k.pendingDelegations.Delete(key)
	}
}

// handleRejoin acknowledges a rejoin handshake. All the actual
// re-admission work already ran in the incarnation gate (admitRequest saw
// the bumped stamp and called admitIncarnation before this handler was
// dispatched); the explicit handshake exists so the recovering kernel
// *knows* every peer routes to it again before it reconciles its own
// state.
func (k *Kernel) handleRejoin(p *sim.Proc, req *ikcRequest) *ikcReply {
	k.exec(p, k.sys.Cost.DDLDecode)
	return &ikcReply{}
}

// beginRejoin runs at RecoverAt (event context, scheduled by NewSystem for
// every crash+recover fault): the link-level blackhole just ended and the
// kernel resumes as a new incarnation.
func (k *Kernel) beginRejoin() {
	start := k.dom.Now()
	k.incarnation++
	rt := k.rt
	// Abort every outstanding transmission, in sorted destination order
	// (within one destination, byDst keeps first-send order): the futures
	// belong to the dead incarnation, and the peers will reject any
	// retransmit by incarnation mismatch anyway.
	dsts := make([]int, 0, len(rt.byDst))
	for dst := range rt.byDst {
		dsts = append(dsts, dst)
	}
	sort.Ints(dsts)
	for _, dst := range dsts {
		xms := rt.byDst[dst]
		delete(rt.byDst, dst)
		for _, xm := range xms {
			if !xm.done {
				rt.abort(xm)
			}
		}
	}
	// This kernel's own verdicts on its peers were formed by a dead link,
	// not dead peers: forget them wholesale and let fresh traffic judge.
	clear(rt.dead)
	// Requests still parked in aggregation queues carry the dead
	// incarnation's stamp; flushing them later could only produce stale
	// rejections (and re-mark the peers dead). Fail them now.
	k.xport.dropQueued()
	// Delegation handshakes prepared for remote originators: every
	// originator aborted (this kernel was unreachable), so no entry can be
	// acknowledged. The epoch guards in the delegate handlers keep threads
	// of the dead incarnation, parked across RecoverAt, from resurrecting
	// entries after this reset.
	k.pendingDelegations = ddl.KeyMap[*cap.Capability]{}

	k.ikcPool.submit(func(p *sim.Proc) {
		k.acquireCPU(p)
		// Handshake with every peer, in kernel order. The bumped stamp on
		// the request re-admits this kernel at the peer (admitRequest); the
		// reply tells this kernel the peer routes to it again.
		for peer := range k.sys.kernels {
			if peer == k.id {
				continue
			}
			k.exec(p, k.sys.Cost.IKCMarshal)
			k.ikCall(p, peer, &ikcRequest{Kind: ikcRejoin})
		}
		if k.sys.rounds {
			k.republishServices(p)
		}
		k.replayOrphanFixes(p, -1)
		k.reconcileChains(p, -1)
		k.stats.Rejoins++
		k.stats.RejoinCycles += k.dom.Now() - start
		k.releaseCPU()
	})
}

// republishServices re-registers this kernel's own services with their
// directory homes (rounds mode; the merged directory is shared state that
// never saw the crash). Locations never move, so a home whose entry
// survived answers ErrExists — which is success here.
func (k *Kernel) republishServices(p *sim.Proc) {
	names := make([]string, 0, len(k.svcOwn))
	for name := range k.svcOwn {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		// ErrExists: the home's entry is intact. ErrPeerDead: the home is
		// unreachable, and clients will get ErrNoService until it rejoins —
		// the same degraded answer they got during the crash window.
		_ = k.publishService(p, name, k.svcOwn[name].key)
	}
}

// replayOrphanFixes re-sends the recorded tree-maintenance operations
// aimed at kernel dst (all kernels when dst is -1). Fixes whose target is
// still unreachable — or that fail with ErrPeerDead again mid-replay —
// stay recorded for the next rejoin.
func (k *Kernel) replayOrphanFixes(p *sim.Proc, dst int) {
	if len(k.orphanFixes) == 0 {
		return
	}
	fixes := k.orphanFixes
	k.orphanFixes = nil
	var keep []orphanFix
	for _, f := range fixes {
		if (dst >= 0 && f.dst != dst) || k.peerDead(f.dst) {
			keep = append(keep, f)
			continue
		}
		switch f.kind {
		case ikcRevoke:
			// Idempotent at the owner: a key already gone just confirms.
			k.exec(p, k.sys.Cost.IKCMarshal)
			rep := k.ikCall(p, f.dst, &ikcRequest{Kind: ikcRevoke, Key: f.key})
			if rep.Err == ErrPeerDead {
				keep = append(keep, f)
			}
		case ikcUnlinkChild:
			// notifyUnlink re-records the fix itself if the peer is dead
			// again by the time the transmission resolves.
			k.notifyUnlink(p, f.dst, f.key, f.child)
		}
	}
	// Completions during the replay's preemption points may have recorded
	// new fixes; keep them after the survivors.
	k.orphanFixes = append(keep, k.orphanFixes...)
}

// reconcileChains conservatively severs the delegation chains that link
// this kernel's capabilities to capabilities owned by kernel `into` (every
// remote kernel when into is -1): each remote child subtree is revoked at
// its owner and the local link removed. The recovering kernel runs it over
// all peers — every cross-kernel child it still links was delegated by a
// dead incarnation, and nothing may outlive the incarnation that created
// it. Peers run it toward the rejoined kernel (admitIncarnation) for the
// mirror-image reason: children they link into it belong to its dead
// incarnation, including phantom links whose child was never created
// because the crash swallowed the reply (the revoke is idempotent at the
// owner, so a phantom just confirms).
func (k *Kernel) reconcileChains(p *sim.Proc, into int) {
	// Store.Keys is a deterministic function of the store's operation
	// history, so the walk order is reproducible at any worker count.
	for _, key := range k.store.Keys() {
		c := k.store.Lookup(key)
		if c == nil || c.Marked || c.NumChildren() == 0 {
			continue
		}
		var remote []ddl.Key
		c.ForEachChild(func(ck ddl.Key) {
			owner := k.member.KernelOfKey(ck)
			if owner != k.id && (into < 0 || owner == into) {
				remote = append(remote, ck)
			}
		})
		for _, ck := range remote {
			k.exec(p, k.sys.Cost.DDLDecode+k.sys.Cost.IKCMarshal)
			owner := k.member.KernelOfKey(ck)
			rep := k.ikCall(p, owner, &ikcRequest{Kind: ikcRevoke, Key: ck})
			if rep.Err == ErrPeerDead {
				k.orphanFixes = append(k.orphanFixes, orphanFix{dst: owner, kind: ikcRevoke, key: ck})
			}
			// The call was a preemption point and the store compacts removed
			// slots: re-resolve the parent before unlinking.
			if cur := k.store.Lookup(key); cur != nil && !cur.Marked {
				cur.RemoveChild(ck)
				k.exec(p, k.sys.Cost.CapLink)
			}
		}
	}
}

// dropQueued fails every request parked in an aggregation queue, in
// sorted (destination, kind) order. Called from beginRejoin: the queued
// requests are stamped with the dead incarnation, so transmitting them
// after recovery could only earn stale rejections.
func (t *transport) dropQueued() {
	keys := make([]qkey, 0, len(t.queues))
	for key, q := range t.queues {
		if len(q.reqs) > 0 {
			keys = append(keys, key)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].dst != keys[j].dst {
			return keys[i].dst < keys[j].dst
		}
		return keys[i].kind < keys[j].kind
	})
	for _, key := range keys {
		q := t.queues[key]
		reqs := q.reqs
		q.reqs = nil
		q.epoch++ // a pending window timer for the old generation no-ops
		for _, req := range reqs {
			t.k.rt.failFast(req.Seq, key.dst)
		}
	}
}
