package core

import (
	"repro/internal/cap"
	"repro/internal/ddl"
	"repro/internal/dtu"
	"repro/internal/sim"
)

// Services (paper §2.2 "Services on M3" and §3.3): OS services such as the
// m3fs filesystem run as ordinary VPEs. They register with their group
// kernel, which creates a service capability and publishes the service in
// the directory. Clients create sessions — session capabilities are
// children of the service capability, possibly across kernels — and then
// talk to the service directly over a DTU channel without kernel
// involvement; only capability exchanges go through the kernels.

// Service-side DTU endpoints used for client IPC.
const (
	svcFirstClientEP = 4
	svcLastClientEP  = 15
	svcClientEPs     = svcLastClientEP - svcFirstClientEP + 1
)

// SvcQueryKind distinguishes events a service processes.
type SvcQueryKind uint8

// Service event kinds.
const (
	SvcOpen SvcQueryKind = iota
	SvcObtain
	SvcDelegate
	SvcRequest
	SvcClose
)

// SvcResult is a service's answer to a kernel query.
type SvcResult struct {
	Errno  Errno
	Ident  uint64       // session identifier (open)
	SrcSel cap.Selector // capability to derive from (obtain)
	Accept bool         // delegate verdict
	Reply  any          // protocol-specific payload
}

// ServiceHandlers are the callbacks a service implements. They run on the
// service VPE's proc, one at a time (the service PE is a serial resource),
// after the per-request processing cost.
type ServiceHandlers struct {
	// Open decides on a new session. The handler runs on the service's proc
	// p and may issue service syscalls (e.g. derive capabilities).
	Open func(p *sim.Proc, clientVPE int, args any) SvcResult
	// Obtain picks the capability to hand out for a session-scoped obtain.
	Obtain func(p *sim.Proc, ident uint64, args any) SvcResult
	// Delegate accepts or refuses a capability pushed into the session.
	Delegate func(p *sim.Proc, ident uint64, args any, obj cap.Object) SvcResult
	// Request handles data-plane IPC from clients (no kernel involved).
	Request func(p *sim.Proc, ident uint64, args any) any
	// Close tears down a session.
	Close func(p *sim.Proc, ident uint64)
}

type svcEvent struct {
	kind   SvcQueryKind
	client int
	ident  uint64
	args   any
	obj    cap.Object
	fromPE int
	fut    *sim.Future[SvcResult]
	msg    *dtu.Message
}

type localService struct {
	v        *VPE
	name     string
	handlers ServiceHandlers
	queue    *sim.Queue[svcEvent]
}

// RegisterService registers this VPE as a service under the given name.
// After registering, the VPE must run ServeLoop to process requests.
func (v *VPE) RegisterService(p *sim.Proc, name string, h ServiceHandlers) error {
	v.svc = &localService{v: v, name: name, handlers: h, queue: sim.NewQueue[svcEvent](v.sys.Eng)}
	rep := v.syscall(p, &sysRequest{Kind: sysRegisterService, Name: name})
	if rep.Err != OK {
		v.svc = nil
	}
	return rep.Err.Err()
}

// ServeLoop processes service events forever: kernel queries (session
// open, capability exchange policy) and client IPC requests. Each event
// costs ServiceRequest cycles, so a service instance saturates — the
// service-dependence effect of the paper's Figure 7.
func (v *VPE) ServeLoop(p *sim.Proc) {
	if v.svc == nil {
		panic("core: ServeLoop without RegisterService")
	}
	h := v.svc.handlers
	for {
		ev := v.svc.queue.Pop(p)
		switch ev.kind {
		case SvcObtain, SvcDelegate, SvcClose:
			p.Sleep(v.sys.Cost.ServiceObtainQuery)
		default:
			p.Sleep(v.sys.Cost.ServiceRequest)
		}
		switch ev.kind {
		case SvcOpen:
			res := SvcResult{}
			if h.Open != nil {
				res = h.Open(p, ev.client, ev.args)
			}
			v.svcAnswer(ev, res)
		case SvcObtain:
			res := SvcResult{Errno: ErrDenied}
			if h.Obtain != nil {
				res = h.Obtain(p, ev.ident, ev.args)
			}
			v.svcAnswer(ev, res)
		case SvcDelegate:
			res := SvcResult{Errno: ErrDenied}
			if h.Delegate != nil {
				res = h.Delegate(p, ev.ident, ev.args, ev.obj)
			}
			v.svcAnswer(ev, res)
		case SvcClose:
			if h.Close != nil {
				h.Close(p, ev.ident)
			}
			v.svcAnswer(ev, SvcResult{})
		case SvcRequest:
			var reply any
			if h.Request != nil {
				reply = h.Request(p, ev.msg.Label, ev.msg.Payload)
			}
			v.dtu.Reply(ev.msg, reply, svcRepBytes)
		}
	}
}

// svcAnswer returns a kernel query result over the NoC.
func (v *VPE) svcAnswer(ev svcEvent, res SvcResult) {
	fut := ev.fut
	v.sys.Net.Send(v.PE, ev.fromPE, svcRepBytes, func() { fut.Complete(res) })
}

// queryService sends a query to a service VPE and waits for the answer (a
// preemption point for the kernel thread).
func (k *Kernel) queryService(p *sim.Proc, sv *VPE, ev svcEvent) SvcResult {
	ev.fromPE = k.pe
	ev.fut = sim.NewFuture[SvcResult](k.sys.Eng)
	fut := ev.fut
	k.sys.Net.Send(k.pe, sv.PE, svcReqBytes, func() { sv.svc.queue.Push(ev) })
	return blockOn(k, p, fut)
}

// sysRegisterService creates the service capability and publishes the
// service in the directory. Registration happens at boot time and is not a
// measured path.
func (k *Kernel) sysRegisterService(p *sim.Proc, req *sysRequest) *sysReply {
	v := k.vpeOf(req.VPE)
	if v == nil || v.svc == nil {
		return &sysReply{Err: ErrBadArgs}
	}
	var key ddl.Key
	if k.sys.rounds {
		// Partitioned directory (rounds.go): publish to the name's home
		// kernel first — its directory slice is the duplicate authority.
		key = k.mintKey(v.PE, v.ID, ddl.TypeService)
		if errno := k.publishService(p, req.Name, key); errno != OK {
			return &sysReply{Err: errno}
		}
	} else {
		if k.sys.services[req.Name] != nil {
			return &sysReply{Err: ErrExists}
		}
		key = k.mintKey(v.PE, v.ID, ddl.TypeService)
	}
	c := &cap.Capability{
		Key:    key,
		Owner:  v.ID,
		Sel:    k.store.AllocSel(v.ID),
		Object: &cap.ServiceObject{Name: req.Name, PE: v.PE, VPE: v.ID},
		Perm:   dtu.PermRW,
	}
	k.insertCap(p, c)
	// Client IPC endpoints; sessions are spread across them.
	for ep := svcFirstClientEP; ep <= svcLastClientEP; ep++ {
		q := v.svc.queue
		must(v.dtu.ConfigureRecv(k.dtu, ep, dtu.DefaultSlots, func(m *dtu.Message) {
			q.Push(svcEvent{kind: SvcRequest, msg: m})
		}))
	}
	entry := &serviceEntry{name: req.Name, key: c.Key, kernel: k.id, vpe: v}
	if k.sys.rounds {
		k.svcOwn[req.Name] = entry
	} else {
		k.sys.services[req.Name] = entry
	}
	return &sysReply{Sel: c.Sel}
}

// --- session creation ----------------------------------------------------

// sessionInfo travels back to the client's kernel so it can configure the
// client's send endpoint for direct IPC.
type sessionInfo struct {
	SvcPE int
	SvcEP int
	Ident uint64
}

func (k *Kernel) sysCreateSession(p *sim.Proc, req *sysRequest) *sysReply {
	v := k.vpeOf(req.VPE)
	if v == nil {
		return &sysReply{Err: ErrVPEGone}
	}
	k.exec(p, k.sys.Cost.DDLDecode+k.sys.Cost.CapLookup)
	var loc svcLoc
	if k.sys.rounds {
		// Partitioned directory (rounds.go): resolve through svcOwn, the
		// local directory slice, the lookup cache, or an IKC query to the
		// name's home kernel. Dead-owner filtering happens at the home.
		var errno Errno
		loc, errno = k.resolveService(p, req.Name)
		if errno != OK {
			return &sysReply{Err: errno}
		}
	} else {
		entry := k.sys.service(req.Name)
		if entry == nil {
			return &sysReply{Err: ErrNoService}
		}
		if k.peerDead(entry.kernel) {
			// Degraded mode: the directory stops routing to a kernel this
			// kernel has declared dead — clients get ErrNoService instead of
			// a session doomed to fail-fast errors.
			return &sysReply{Err: ErrNoService}
		}
		loc = svcLoc{kernel: entry.kernel, key: entry.key}
	}
	objID := k.gen.NextID(v.PE, v.ID)
	var info sessionInfo
	var parentKey ddl.Key
	if loc.kernel == k.id {
		entry := k.serviceLocal(req.Name)
		if entry == nil {
			return &sysReply{Err: ErrNoService}
		}
		svcCap := k.store.Lookup(loc.key)
		if svcCap == nil || svcCap.Marked {
			return &sysReply{Err: ErrNoService}
		}
		res := k.queryService(p, entry.vpe, svcEvent{kind: SvcOpen, client: v.ID, args: req.Args})
		if res.Errno != OK {
			return &sysReply{Err: res.Errno}
		}
		sessKey := ddl.NewKey(v.PE, v.ID, ddl.TypeSession, objID)
		// The service query is a preemption point and the store compacts
		// removed slots; re-resolve the service capability before linking.
		if cur := k.store.Lookup(loc.key); cur != nil {
			cur.AddChild(sessKey)
		}
		k.exec(p, k.sys.Cost.CapLink)
		info = sessionInfo{SvcPE: entry.vpe.PE, SvcEP: clientEPFor(res.Ident), Ident: res.Ident}
		parentKey = loc.key
		k.stats.Sessions++
	} else {
		k.exec(p, k.sys.Cost.IKCMarshal)
		rep := k.ikCall(p, loc.kernel, &ikcRequest{
			Kind:     ikcSession,
			Key:      loc.key,
			VPE:      v.ID,
			Args:     req.Args,
			ChildPE:  v.PE,
			ChildVPE: v.ID,
			ChildObj: objID,
		})
		if rep.Err != OK {
			return &sysReply{Err: rep.Err}
		}
		info = rep.Args.(sessionInfo)
		parentKey = rep.Key
		k.stats.Sessions++
	}
	sessKey := ddl.NewKey(v.PE, v.ID, ddl.TypeSession, objID)
	sess := &cap.Capability{
		Key:    sessKey,
		Owner:  v.ID,
		Sel:    k.store.AllocSel(v.ID),
		Object: &cap.SessionObject{Service: req.Name, Ident: info.Ident},
		Perm:   dtu.PermRW,
		Parent: parentKey,
	}
	k.insertCap(p, sess)
	// Configure the client's send endpoint for direct service IPC.
	ep := vpeFirstSessionEP + v.nextSessEP
	if ep > vpeLastSessionEP {
		return &sysReply{Err: ErrBadArgs}
	}
	v.nextSessEP++
	k.exec(p, k.sys.Cost.EPConfig)
	must(v.dtu.ConfigureSend(k.dtu, ep, info.SvcPE, info.SvcEP, 1, info.Ident))
	return &sysReply{Sel: sess.Sel, Args: ep}
}

// clientEPFor spreads sessions across the service's client endpoints.
func clientEPFor(ident uint64) int {
	return svcFirstClientEP + int(ident%uint64(svcClientEPs))
}

// handleSessionReq runs at the service's kernel.
func (k *Kernel) handleSessionReq(p *sim.Proc, req *ikcRequest) *ikcReply {
	k.exec(p, k.sys.Cost.CapLookup+k.sys.Cost.DDLDecode)
	svcCap := k.store.Lookup(req.Key)
	if svcCap == nil || svcCap.Marked {
		return &ikcReply{Err: ErrNoService}
	}
	so := svcCap.Object.(*cap.ServiceObject)
	sv := k.vpeOf(so.VPE)
	if sv == nil || sv.exited || sv.svc == nil {
		return &ikcReply{Err: ErrNoService}
	}
	res := k.queryService(p, sv, svcEvent{kind: SvcOpen, client: req.VPE, args: req.Args})
	if res.Errno != OK {
		return &ikcReply{Err: res.Errno}
	}
	sessKey := ddl.NewKey(req.ChildPE, req.ChildVPE, ddl.TypeSession, req.ChildObj)
	// Re-resolve after the service query (preemption point): the store
	// compacts removed slots, so svcCap may no longer be the service.
	if cur := k.store.Lookup(req.Key); cur != nil {
		cur.AddChild(sessKey)
	}
	k.exec(p, k.sys.Cost.CapLink+k.sys.Cost.IKCMarshal)
	return &ikcReply{
		Key:  req.Key,
		Args: sessionInfo{SvcPE: sv.PE, SvcEP: clientEPFor(res.Ident), Ident: res.Ident},
	}
}

// --- session-scoped exchanges ---------------------------------------------

func (k *Kernel) sysObtainSess(p *sim.Proc, req *sysRequest) *sysReply {
	v := k.vpeOf(req.VPE)
	if v == nil {
		return &sysReply{Err: ErrVPEGone}
	}
	sess := k.lookupSel(p, req.VPE, req.Sel)
	if sess == nil {
		return &sysReply{Err: ErrNoSuchCap}
	}
	if sess.Marked {
		return &sysReply{Err: ErrInRevocation}
	}
	so, ok := sess.Object.(*cap.SessionObject)
	if !ok {
		return &sysReply{Err: ErrBadArgs}
	}
	k.exec(p, k.sys.Cost.DDLDecode)
	svcKernel := k.member.KernelOfKey(sess.Parent)
	objID := k.gen.NextID(v.PE, v.ID)

	if svcKernel == k.id {
		entry := k.serviceLocal(so.Service)
		if entry == nil {
			return &sysReply{Err: ErrNoService}
		}
		res := k.queryService(p, entry.vpe, svcEvent{kind: SvcObtain, ident: so.Ident, args: req.Args})
		if res.Errno != OK {
			return &sysReply{Err: res.Errno}
		}
		src := k.lookupSel(p, entry.vpe.ID, res.SrcSel)
		if src == nil {
			return &sysReply{Err: ErrNoSuchCap}
		}
		if src.Marked {
			return &sysReply{Err: ErrInRevocation}
		}
		obj := deriveObject(src.Object)
		childKey := ddl.NewKey(v.PE, v.ID, obj.ObjType(), objID)
		src.AddChild(childKey)
		k.exec(p, k.sys.Cost.CapLink)
		child := &cap.Capability{
			Key:    childKey,
			Owner:  v.ID,
			Sel:    k.store.AllocSel(v.ID),
			Object: obj,
			Perm:   src.Perm,
			Parent: src.Key,
		}
		k.insertCap(p, child)
		k.stats.Obtains++
		return &sysReply{Sel: child.Sel, Args: res.Reply}
	}

	k.exec(p, k.sys.Cost.IKCMarshal)
	rep := k.ikCall(p, svcKernel, &ikcRequest{
		Kind:     ikcObtainSess,
		Key:      sess.Parent,
		Ident:    so.Ident,
		VPE:      v.ID,
		Args:     req.Args,
		ChildPE:  v.PE,
		ChildVPE: v.ID,
		ChildObj: objID,
	})
	if rep.Err != OK {
		return &sysReply{Err: rep.Err}
	}
	childKey := ddl.NewKey(v.PE, v.ID, rep.Object.ObjType(), objID)
	if v.exited {
		k.stats.Orphans++
		k.notifyUnlink(p, svcKernel, rep.Key, childKey)
		return &sysReply{Err: ErrVPEGone}
	}
	child := &cap.Capability{
		Key:    childKey,
		Owner:  v.ID,
		Sel:    k.store.AllocSel(v.ID),
		Object: rep.Object,
		Perm:   rep.Perm,
		Parent: rep.Key,
	}
	k.insertCap(p, child)
	k.stats.Obtains++
	return &sysReply{Sel: child.Sel, Args: rep.Args}
}

// handleObtainSessReq runs at the service's kernel: ask the service which
// capability to hand out, link the child and return the object.
func (k *Kernel) handleObtainSessReq(p *sim.Proc, req *ikcRequest) *ikcReply {
	k.exec(p, k.sys.Cost.CapLookup+k.sys.Cost.DDLDecode)
	svcCap := k.store.Lookup(req.Key)
	if svcCap == nil || svcCap.Marked {
		return &ikcReply{Err: ErrNoService}
	}
	so := svcCap.Object.(*cap.ServiceObject)
	sv := k.vpeOf(so.VPE)
	if sv == nil || sv.exited || sv.svc == nil {
		return &ikcReply{Err: ErrNoService}
	}
	res := k.queryService(p, sv, svcEvent{kind: SvcObtain, ident: req.Ident, args: req.Args})
	if res.Errno != OK {
		return &ikcReply{Err: res.Errno}
	}
	src := k.lookupSel(p, sv.ID, res.SrcSel)
	if src == nil {
		return &ikcReply{Err: ErrNoSuchCap}
	}
	if src.Marked {
		return &ikcReply{Err: ErrInRevocation}
	}
	obj := deriveObject(src.Object)
	childKey := ddl.NewKey(req.ChildPE, req.ChildVPE, obj.ObjType(), req.ChildObj)
	src.AddChild(childKey)
	k.exec(p, k.sys.Cost.CapLink+k.sys.Cost.IKCMarshal)
	return &ikcReply{Key: src.Key, Object: obj, Perm: src.Perm, Args: res.Reply}
}

// sysDelegateSess pushes the client's capability at req.Sel into the
// session (req.TargetSel), e.g. granting a service access to client memory.
// Across kernels it reuses the delegate two-way handshake.
func (k *Kernel) sysDelegateSess(p *sim.Proc, req *sysRequest) *sysReply {
	v := k.vpeOf(req.VPE)
	if v == nil {
		return &sysReply{Err: ErrVPEGone}
	}
	c := k.lookupSel(p, req.VPE, req.Sel)
	if c == nil {
		return &sysReply{Err: ErrNoSuchCap}
	}
	if c.Marked {
		return &sysReply{Err: ErrInRevocation}
	}
	sess := k.lookupSel(p, req.VPE, req.TargetSel)
	if sess == nil {
		return &sysReply{Err: ErrNoSuchCap}
	}
	so, ok := sess.Object.(*cap.SessionObject)
	if !ok {
		return &sysReply{Err: ErrBadArgs}
	}
	k.exec(p, k.sys.Cost.DDLDecode)
	svcKernel := k.member.KernelOfKey(sess.Parent)

	if svcKernel == k.id {
		entry := k.serviceLocal(so.Service)
		if entry == nil {
			return &sysReply{Err: ErrNoService}
		}
		obj := deriveObject(c.Object)
		// The service query is a preemption point; re-resolve the delegated
		// capability by key afterwards (the store compacts removed slots).
		cKey := c.Key
		res := k.queryService(p, entry.vpe, svcEvent{kind: SvcDelegate, ident: so.Ident, args: req.Args, obj: obj})
		if res.Errno != OK || !res.Accept {
			return &sysReply{Err: ErrDenied}
		}
		cur := k.store.Lookup(cKey)
		if cur == nil || cur.Marked {
			return &sysReply{Err: ErrInRevocation}
		}
		child := &cap.Capability{
			Key:    k.mintKey(entry.vpe.PE, entry.vpe.ID, obj.ObjType()),
			Owner:  entry.vpe.ID,
			Sel:    k.store.AllocSel(entry.vpe.ID),
			Object: obj,
			Perm:   cur.Perm,
			Parent: cKey,
		}
		cur.AddChild(child.Key)
		k.exec(p, k.sys.Cost.CapLink)
		k.insertCap(p, child)
		k.stats.Delegates++
		return &sysReply{Sel: child.Sel, Args: res.Reply}
	}

	// Inter-kernel calls below are preemption points; resolve the delegated
	// capability by its hoisted key afterwards, never through the pointer.
	cKey := c.Key
	k.exec(p, k.sys.Cost.IKCMarshal)
	rep := k.ikCall(p, svcKernel, &ikcRequest{
		Kind:   ikcDelegateSess,
		Key:    cKey,
		Ident:  so.Ident,
		VPE:    v.ID,
		Object: deriveObject(c.Object),
		Perm:   c.Perm,
		Args:   req.Args,
		Child:  sess.Parent, // service capability key
	})
	if rep.Err != OK {
		return &sysReply{Err: rep.Err}
	}
	childKey := rep.Key
	k.exec(p, k.sys.Cost.CapLookup)
	cur := k.store.Lookup(cKey)
	if cur == nil || cur.Marked {
		k.ikCall(p, svcKernel, &ikcRequest{Kind: ikcDelegateAck, Child: childKey, Ok: false})
		return &sysReply{Err: ErrInRevocation}
	}
	cur.AddChild(childKey)
	k.exec(p, k.sys.Cost.CapLink)
	ack := k.ikCall(p, svcKernel, &ikcRequest{Kind: ikcDelegateAck, Child: childKey, Ok: true})
	if ack.Err != OK {
		if again := k.store.Lookup(cKey); again != nil {
			again.RemoveChild(childKey)
		}
		k.stats.Orphans++
		return &sysReply{Err: ack.Err}
	}
	k.stats.Delegates++
	return &sysReply{Args: rep.Args}
}

// handleDelegateSessReq runs at the service's kernel: ask the service for
// consent, prepare the child (handshake step 1).
func (k *Kernel) handleDelegateSessReq(p *sim.Proc, req *ikcRequest) *ikcReply {
	k.exec(p, k.sys.Cost.CapLookup+k.sys.Cost.DDLDecode)
	svcCap := k.store.Lookup(req.Child)
	if svcCap == nil || svcCap.Marked {
		return &ikcReply{Err: ErrNoService}
	}
	so := svcCap.Object.(*cap.ServiceObject)
	sv := k.vpeOf(so.VPE)
	if sv == nil || sv.exited || sv.svc == nil {
		return &ikcReply{Err: ErrNoService}
	}
	inc := k.incarnation
	res := k.queryService(p, sv, svcEvent{kind: SvcDelegate, ident: req.Ident, args: req.Args, obj: req.Object})
	if res.Errno != OK || !res.Accept {
		return &ikcReply{Err: ErrDenied}
	}
	if k.incarnation != inc {
		// Parked across a crash recovery: the rejoin reset wiped the
		// pending-delegation table and the originator aborted, so the entry
		// below could never be acknowledged (rejoin.go).
		return &ikcReply{Err: ErrPeerDead}
	}
	childKey := k.mintKey(sv.PE, sv.ID, req.Object.ObjType())
	child := &cap.Capability{
		Key:    childKey,
		Owner:  sv.ID,
		Object: req.Object,
		Perm:   req.Perm,
		Parent: req.Key,
	}
	k.exec(p, k.sys.Cost.CapCreate)
	k.pendingDelegations.Put(childKey, child)
	return &ikcReply{Key: childKey, Args: res.Reply}
}

// --- client-side session API ----------------------------------------------

// Session is a client's handle to a service connection.
type Session struct {
	Sel cap.Selector
	v   *VPE
	ep  int
}

// CreateSession connects to a named service, returning a session handle.
func (v *VPE) CreateSession(p *sim.Proc, name string, args any) (*Session, error) {
	v.capOps++
	rep := v.syscall(p, &sysRequest{Kind: sysCreateSession, Name: name, Args: args})
	if rep.Err != OK {
		return nil, rep.Err
	}
	return &Session{Sel: rep.Sel, v: v, ep: rep.Args.(int)}, nil
}

// Call performs data-plane IPC with the service: no kernel involved, only
// the DTU channel configured at session creation.
func (s *Session) Call(p *sim.Proc, args any) (any, error) {
	if err := s.v.dtu.Send(s.ep, args, svcReqBytes, vpeServiceReplyEP, 0); err != nil {
		return nil, err
	}
	m := s.v.dtu.Wait(p, vpeServiceReplyEP)
	reply := m.Payload
	s.v.dtu.Ack(m)
	return reply, nil
}

// Obtain asks the service for a capability (e.g. a memory capability for a
// file range) through the kernels.
func (s *Session) Obtain(p *sim.Proc, args any) (cap.Selector, any, error) {
	s.v.capOps++
	rep := s.v.syscall(p, &sysRequest{Kind: sysObtainSess, Sel: s.Sel, Args: args})
	return rep.Sel, rep.Args, rep.Err.Err()
}

// Delegate pushes one of the client's capabilities into the session.
func (s *Session) Delegate(p *sim.Proc, sel cap.Selector, args any) (any, error) {
	s.v.capOps++
	rep := s.v.syscall(p, &sysRequest{Kind: sysDelegateSess, Sel: sel, TargetSel: s.Sel, Args: args})
	return rep.Args, rep.Err.Err()
}

// Close revokes the session capability, severing the connection.
func (s *Session) Close(p *sim.Proc) error {
	return s.v.Revoke(p, s.Sel)
}
