package core

import (
	"repro/internal/cap"
	"repro/internal/ddl"
	"repro/internal/sim"
)

// Capability exchange (paper §4.3.2). Obtain and delegate are the two
// capability-modifying operations besides revoke. Group-internal exchanges
// run entirely at one kernel; group-spanning ones use inter-kernel calls.
// Delegation across groups uses a two-way handshake so a capability never
// becomes usable at the receiver while its parent link does not exist yet
// (the "Invalid" interference case of Table 2); obtains that race with the
// requester's death leave an orphan that is reaped through a notification
// (the "Orphaned" case).

// deriveObject produces the kernel object for a child capability derived
// from parent's object. Deriving from a receive gate yields a send
// capability to it (connection establishment, paper Fig. 3); everything
// else is shared by reference.
func deriveObject(obj cap.Object) cap.Object {
	switch o := obj.(type) {
	case *cap.RecvObject:
		return &cap.SendObject{DstPE: o.PE, DstEP: o.EP, Credits: 1}
	default:
		return obj
	}
}

// kernelOfVPE resolves the kernel managing a VPE, charging a DDL decode.
func (k *Kernel) kernelOfVPE(p *sim.Proc, id int) (*Kernel, Errno) {
	k.exec(p, k.sys.Cost.DDLDecode)
	if id < 0 || id >= len(k.sys.vpes) {
		return nil, ErrVPEGone
	}
	return k.sys.vpes[id].kernel, OK
}

// --- obtain --------------------------------------------------------------

func (k *Kernel) sysObtainFrom(p *sim.Proc, req *sysRequest) *sysReply {
	v := k.vpeOf(req.VPE)
	if v == nil {
		return &sysReply{Err: ErrVPEGone}
	}
	owner, errno := k.kernelOfVPE(p, req.TargetVPE)
	if errno != OK {
		return &sysReply{Err: errno}
	}
	if owner == k {
		return k.obtainLocal(p, v, req.TargetVPE, req.TargetSel)
	}
	return k.obtainSpanning(p, v, owner, req.TargetVPE, req.TargetSel)
}

// obtainLocal handles an obtain where both VPEs are in this kernel's group.
// Overlapping exchanges serialize here because this kernel owns both
// capability spaces (the "Serialized" case of Table 2).
func (k *Kernel) obtainLocal(p *sim.Proc, v *VPE, srcVPE int, srcSel cap.Selector) *sysReply {
	src := k.lookupSel(p, srcVPE, srcSel)
	if src == nil {
		return &sysReply{Err: ErrNoSuchCap}
	}
	if src.Marked {
		// Deny exchanges of capabilities in revocation ("Pointless").
		return &sysReply{Err: ErrInRevocation}
	}
	srcV := k.vpeOf(srcVPE)
	if srcV == nil || srcV.exited {
		return &sysReply{Err: ErrVPEGone}
	}
	if !k.askVPE(p, srcV, ExchangeQuery{Obtain: true, PeerVPE: v.ID, Sel: srcSel}) {
		return &sysReply{Err: ErrDenied}
	}
	// Re-check after the consent round trip: the capability may have been
	// revoked or the requester killed meanwhile.
	if src != k.store.LookupSel(srcVPE, srcSel) || src.Marked {
		return &sysReply{Err: ErrInRevocation}
	}
	if v.exited {
		return &sysReply{Err: ErrVPEGone}
	}
	obj := deriveObject(src.Object)
	child := &cap.Capability{
		Key:    k.mintKey(v.PE, v.ID, obj.ObjType()),
		Owner:  v.ID,
		Sel:    k.store.AllocSel(v.ID),
		Object: obj,
		Perm:   src.Perm,
		Parent: src.Key,
	}
	src.AddChild(child.Key)
	k.exec(p, k.sys.Cost.CapLink)
	k.insertCap(p, child)
	k.stats.Obtains++
	return &sysReply{Sel: child.Sel}
}

// inflightObtain tracks one spanning obtain whose reply is still in flight.
// The owner links the pre-agreed child key before its reply reaches us, so a
// revocation can race the reply: the revoke request for the not-yet-inserted
// key arrives here, finds nothing, and is confirmed as already revoked —
// after which the owner deletes the parent. The tombstone makes the late (or
// dedup-replayed) reply discard the child instead of inserting an orphan.
type inflightObtain struct {
	revoked bool
}

// exchangeID names an in-flight spanning exchange by the child-key fields
// both sides know before the reply: creator PE, creator VPE and object id.
// Object ids are minted per (pe, vpe) across all types (ddl.Generator), so
// the triple identifies exactly one eventual key.
func exchangeID(pe, vpe int, object uint64) uint64 {
	return uint64(pe)<<(ddl.VPEBits+ddl.ObjectBits) |
		uint64(vpe)<<ddl.ObjectBits | object
}

// obtainSpanning runs the distributed obtain: the owner kernel links the
// (pre-agreed) child key under the source capability and returns the object;
// this kernel then creates the child. If the requester died while the
// inter-kernel call was in flight, the child at the owner is an orphan and
// a notification removes it (paper §4.3.2, case 1).
func (k *Kernel) obtainSpanning(p *sim.Proc, v *VPE, owner *Kernel, srcVPE int, srcSel cap.Selector) *sysReply {
	objID := k.gen.NextID(v.PE, v.ID)
	// Register before sending: the owner cannot link (and thus revoke-walk)
	// the child key before it has seen this request.
	exID := exchangeID(v.PE, v.ID, objID)
	po := &inflightObtain{}
	k.inflightObtains[exID] = po
	k.exec(p, k.sys.Cost.IKCMarshal)
	rep := k.ikCall(p, owner.id, &ikcRequest{
		Kind:     ikcObtain,
		VPE:      srcVPE,
		Sel:      srcSel,
		ChildPE:  v.PE,
		ChildVPE: v.ID,
		ChildObj: objID,
	})
	delete(k.inflightObtains, exID)
	if rep.Err != OK {
		return &sysReply{Err: rep.Err}
	}
	childKey := ddl.NewKey(v.PE, v.ID, rep.Object.ObjType(), objID)
	if po.revoked {
		// A revocation consumed the child key while the reply was in
		// flight: this kernel already confirmed the key as gone and the
		// owner deleted the parent subtree. Inserting now would leak an
		// unreachable orphan.
		return &sysReply{Err: ErrInRevocation}
	}
	if v.exited {
		// Orphaned: the owner linked a child that will never exist here.
		k.stats.Orphans++
		k.notifyUnlink(p, owner.id, rep.Key, childKey)
		return &sysReply{Err: ErrVPEGone}
	}
	child := &cap.Capability{
		Key:    childKey,
		Owner:  v.ID,
		Sel:    k.store.AllocSel(v.ID),
		Object: rep.Object,
		Perm:   rep.Perm,
		Parent: rep.Key,
	}
	k.insertCap(p, child)
	k.stats.Obtains++
	return &sysReply{Sel: child.Sel}
}

// handleObtainReq runs at the owner kernel: consent, link the child key,
// return the object.
func (k *Kernel) handleObtainReq(p *sim.Proc, req *ikcRequest) *ikcReply {
	src := k.lookupSel(p, req.VPE, req.Sel)
	if src == nil {
		return &ikcReply{Err: ErrNoSuchCap}
	}
	if src.Marked {
		return &ikcReply{Err: ErrInRevocation}
	}
	srcV := k.vpeOf(req.VPE)
	if srcV == nil || srcV.exited {
		return &ikcReply{Err: ErrVPEGone}
	}
	if !k.askVPE(p, srcV, ExchangeQuery{Obtain: true, PeerVPE: req.ChildVPE, Sel: req.Sel}) {
		return &ikcReply{Err: ErrDenied}
	}
	// Re-check: a revocation may have started during the consent round trip.
	if src != k.store.LookupSel(req.VPE, req.Sel) || src.Marked {
		return &ikcReply{Err: ErrInRevocation}
	}
	obj := deriveObject(src.Object)
	childKey := ddl.NewKey(req.ChildPE, req.ChildVPE, obj.ObjType(), req.ChildObj)
	src.AddChild(childKey)
	k.exec(p, k.sys.Cost.CapLink+k.sys.Cost.IKCMarshal)
	return &ikcReply{Key: src.Key, Object: obj, Perm: src.Perm}
}

// handleUnlinkChild removes an orphaned child link (notification; no
// reply).
func (k *Kernel) handleUnlinkChild(p *sim.Proc, req *ikcRequest) {
	k.exec(p, k.sys.Cost.CapLookup+k.sys.Cost.DDLDecode)
	parent := k.store.Lookup(req.Key)
	if parent == nil {
		return // parent revoked meanwhile; nothing to clean
	}
	parent.RemoveChild(req.Child)
	k.exec(p, k.sys.Cost.CapLink)
	k.stats.Orphans++
}

// --- delegate ------------------------------------------------------------

func (k *Kernel) sysDelegateTo(p *sim.Proc, req *sysRequest) *sysReply {
	v := k.vpeOf(req.VPE)
	if v == nil {
		return &sysReply{Err: ErrVPEGone}
	}
	c := k.lookupSel(p, req.VPE, req.Sel)
	if c == nil {
		return &sysReply{Err: ErrNoSuchCap}
	}
	if c.Marked {
		return &sysReply{Err: ErrInRevocation}
	}
	dst, errno := k.kernelOfVPE(p, req.TargetVPE)
	if errno != OK {
		return &sysReply{Err: errno}
	}
	if dst == k {
		return k.delegateLocal(p, v, c, req.TargetVPE)
	}
	return k.delegateSpanning(p, v, c, dst, req.TargetVPE)
}

func (k *Kernel) delegateLocal(p *sim.Proc, v *VPE, c *cap.Capability, dstVPE int) *sysReply {
	dstV := k.vpeOf(dstVPE)
	if dstV == nil || dstV.exited {
		return &sysReply{Err: ErrVPEGone}
	}
	// The consent round trip is a preemption point and the store compacts
	// removed slots, so re-resolve the parent by key afterwards.
	cKey := c.Key
	if !k.askVPE(p, dstV, ExchangeQuery{Obtain: false, PeerVPE: v.ID}) {
		return &sysReply{Err: ErrDenied}
	}
	cur := k.store.Lookup(cKey)
	if cur == nil || cur.Marked {
		return &sysReply{Err: ErrInRevocation}
	}
	if dstV.exited {
		return &sysReply{Err: ErrVPEGone}
	}
	obj := deriveObject(cur.Object)
	child := &cap.Capability{
		Key:    k.mintKey(dstV.PE, dstV.ID, obj.ObjType()),
		Owner:  dstV.ID,
		Sel:    k.store.AllocSel(dstV.ID),
		Object: obj,
		Perm:   cur.Perm,
		Parent: cKey,
	}
	cur.AddChild(child.Key)
	k.exec(p, k.sys.Cost.CapLink)
	k.insertCap(p, child)
	k.stats.Delegates++
	return &sysReply{Sel: child.Sel}
}

// delegateSpanning runs the two-way handshake (paper §4.3.2, case 2):
//  1. ask the receiver's kernel to prepare (but not insert) the child;
//  2. link the child under the local parent;
//  3. acknowledge, upon which the receiver's kernel inserts the child.
//
// Step 2 re-validates the parent so a delegator killed (and revoked) during
// step 1 cannot leave a valid child behind — the "Invalid" case.
func (k *Kernel) delegateSpanning(p *sim.Proc, v *VPE, c *cap.Capability, dst *Kernel, dstVPE int) *sysReply {
	parentKey := c.Key
	obj := deriveObject(c.Object)
	k.exec(p, k.sys.Cost.IKCMarshal)
	rep := k.ikCall(p, dst.id, &ikcRequest{
		Kind:   ikcDelegate,
		Key:    parentKey,
		VPE:    dstVPE,
		Object: obj,
		Perm:   c.Perm,
	})
	if rep.Err != OK {
		return &sysReply{Err: rep.Err}
	}
	childKey := rep.Key
	// Two-way handshake step 2: re-validate the parent.
	k.exec(p, k.sys.Cost.CapLookup)
	cur := k.store.Lookup(parentKey)
	if cur == nil || cur.Marked || v.exited {
		k.ikCall(p, dst.id, &ikcRequest{Kind: ikcDelegateAck, Child: childKey, Ok: false})
		if cur == nil {
			return &sysReply{Err: ErrNoSuchCap}
		}
		return &sysReply{Err: ErrInRevocation}
	}
	cur.AddChild(childKey)
	k.exec(p, k.sys.Cost.CapLink)
	ack := k.ikCall(p, dst.id, &ikcRequest{Kind: ikcDelegateAck, Child: childKey, Ok: true})
	if ack.Err != OK {
		// The receiver died before insertion: remove the orphaned link.
		k.exec(p, k.sys.Cost.CapLink)
		if again := k.store.Lookup(parentKey); again != nil {
			again.RemoveChild(childKey)
		}
		k.stats.Orphans++
		return &sysReply{Err: ack.Err}
	}
	k.stats.Delegates++
	return &sysReply{}
}

// handleDelegateReq runs at the receiver's kernel: consent, prepare the
// child capability without inserting it, and return its key. The reply may
// ride a reply envelope; the ack that depends on it is only sent by the
// delegator after that envelope is demuxed, so the pendingDelegations
// entry is always in place before the ack can arrive.
func (k *Kernel) handleDelegateReq(p *sim.Proc, req *ikcRequest) *ikcReply {
	dstV := k.vpeOf(req.VPE)
	if dstV == nil || dstV.exited {
		return &ikcReply{Err: ErrVPEGone}
	}
	inc := k.incarnation
	if !k.askVPE(p, dstV, ExchangeQuery{Obtain: false, PeerVPE: req.VPE}) {
		return &ikcReply{Err: ErrDenied}
	}
	if k.incarnation != inc {
		// This thread was parked across a crash recovery: the rejoin reset
		// wiped the pending-delegation table, and the originator's future
		// aborted with ErrPeerDead — an entry created now could never be
		// acknowledged and would leak forever (rejoin.go).
		return &ikcReply{Err: ErrPeerDead}
	}
	childKey := k.mintKey(dstV.PE, dstV.ID, req.Object.ObjType())
	child := &cap.Capability{
		Key:    childKey,
		Owner:  dstV.ID,
		Object: req.Object,
		Perm:   req.Perm,
		Parent: req.Key,
	}
	k.exec(p, k.sys.Cost.CapCreate)
	k.pendingDelegations.Put(childKey, child)
	return &ikcReply{Key: childKey}
}

// handleDelegateAck finishes the handshake at the receiver's kernel.
func (k *Kernel) handleDelegateAck(p *sim.Proc, req *ikcRequest) *ikcReply {
	child, _ := k.pendingDelegations.Get(req.Child)
	k.pendingDelegations.Delete(req.Child)
	if child == nil {
		return &ikcReply{Err: ErrNoSuchCap}
	}
	if !req.Ok {
		// Delegator aborted (parent revoked meanwhile): discard.
		return &ikcReply{}
	}
	dstV := k.vpeOf(child.Owner)
	if dstV == nil || dstV.exited {
		// Orphaned on the receiver side: report back for unlinking.
		return &ikcReply{Err: ErrVPEGone}
	}
	child.Sel = k.store.AllocSel(child.Owner)
	k.insertCap(p, child)
	k.stats.Delegates++
	return &ikcReply{}
}
