// Package core implements the SemperOS multikernel: multiple microkernels,
// each managing a PE group, cooperating through inter-kernel calls to
// provide a single distributed capability system (paper §3 and §4).
//
// This package is the paper's primary contribution. It builds on the
// substrates: internal/sim (deterministic discrete-event engine),
// internal/noc (network-on-chip), internal/dtu (per-PE data transfer units),
// internal/ddl (distributed data lookup) and internal/cap (kernel-local
// capability trees).
package core

import "repro/internal/sim"

// Frequency of the simulated cores (paper §5.1: 2 GHz).
const (
	// CyclesPerMicrosecond converts cycles to microseconds at 2 GHz.
	CyclesPerMicrosecond = 2000
	// CyclesPerSecond is the clock rate.
	CyclesPerSecond = 2_000_000_000
)

// CostModel holds the cycle costs charged for kernel and user actions.
// NoC and DTU transfer times come from internal/noc on top of these.
//
// The constants are calibrated so that the Table 3 microbenchmarks land in
// the paper's magnitude (thousands of cycles per capability operation) with
// the paper's ratios: group-spanning operations roughly double local ones,
// and SemperOS local operations carry a measurable DDL-decoding overhead
// over the pointer-linked M3 baseline. Absolute values are calibration
// outputs, not micro-architectural measurements.
type CostModel struct {
	// SyscallDispatch is charged when a kernel thread picks up a syscall
	// (the message-based equivalent of a mode switch plus decode).
	SyscallDispatch sim.Duration
	// SyscallReply is charged to compose and send the syscall reply.
	SyscallReply sim.Duration
	// DDLDecode is charged per DDL key analysis (determining the owning
	// kernel and VPE of a key). This is the overhead SemperOS pays over M3's
	// plain pointers (paper §5.2).
	DDLDecode sim.Duration
	// CapLookup is charged per capability table lookup.
	CapLookup sim.Duration
	// CapCreate is charged to allocate and fill a new capability.
	CapCreate sim.Duration
	// CapLink is charged to insert a capability into the mapping database
	// (parent/child links plus selector table).
	CapLink sim.Duration
	// CapErase is charged to delete a capability from the mapping database.
	CapErase sim.Duration
	// RevokeMark is charged per capability marked in revocation phase one.
	RevokeMark sim.Duration
	// RevokeDelete is charged per capability deleted in phase two.
	RevokeDelete sim.Duration
	// IKCDispatch is charged when a kernel thread picks up an inter-kernel
	// request.
	IKCDispatch sim.Duration
	// IKCCompose is charged to build and send an inter-kernel request or
	// reply.
	IKCCompose sim.Duration
	// IKCMarshal is charged (on top of IKCCompose) to serialize or
	// deserialize capability objects travelling in exchange and session
	// messages; revoke messages carry only a key and skip it.
	IKCMarshal sim.Duration
	// VPEAccept is charged by a VPE's exchange handler to decide on an
	// exchange request (paper Fig. 3, steps A.2/A.3).
	VPEAccept sim.Duration
	// VPECreate is charged by the kernel to set up a VPE (capability space,
	// DTU configuration).
	VPECreate sim.Duration
	// ServiceRequest is the service-side processing time for one IPC
	// request (session open or file protocol request: path walks, extent
	// allocation).
	ServiceRequest sim.Duration
	// ServiceObtainQuery is the service-side time to answer a capability
	// exchange policy query (an extent-table lookup, much cheaper than a
	// path walk).
	ServiceObtainQuery sim.Duration
	// EPConfig is charged when the kernel configures a DTU endpoint on
	// behalf of an application (activate).
	EPConfig sim.Duration
	// LinkCyclesPerByte models the shared bandwidth of a PE group's mesh
	// region: bulk file data transfers of VPEs in the same group serialize
	// at this rate (the paper attributes part of the efficiency loss to
	// "contention ... for hardware resources like the interconnect").
	LinkCyclesPerByte float64
}

// DefaultCostModel returns the calibrated cost model used by the
// experiments.
func DefaultCostModel() CostModel {
	return CostModel{
		SyscallDispatch:    200,
		SyscallReply:       120,
		DDLDecode:          170,
		CapLookup:          200,
		CapCreate:          1400,
		CapLink:            485,
		CapErase:           160,
		RevokeMark:         240,
		RevokeDelete:       291,
		IKCDispatch:        442,
		IKCCompose:         500,
		IKCMarshal:         688,
		VPEAccept:          220,
		VPECreate:          1400,
		ServiceRequest:     1500,
		ServiceObtainQuery: 3000,
		EPConfig:           350,
		LinkCyclesPerByte:  0.025,
	}
}

// Architectural limits of the evaluation platform (paper §5.1): the DTU
// endpoint budget supports at most 64 kernels and at most 192 PEs per
// kernel; at most 4 inter-kernel messages may be in flight per kernel pair.
const (
	// MaxKernels is the maximum number of kernels in the system.
	MaxKernels = 64
	// MaxPEsPerKernel is the maximum group size per kernel (6 syscall
	// endpoints * 32 slots, one outstanding syscall per VPE).
	MaxPEsPerKernel = 192
	// MaxInflight is the maximum number of in-flight (unprocessed)
	// inter-kernel messages per kernel pair.
	MaxInflight = 4
	// RevokeThreads is the maximum number of kernel threads processing
	// incoming revoke requests (DoS bound, paper §4.3.3).
	RevokeThreads = 2
	// SyscallRecvEPs is the number of kernel DTU endpoints receiving
	// syscalls.
	SyscallRecvEPs = 6
)

// Message payload sizes in bytes, charged on the NoC.
const (
	syscallMsgBytes = 64
	syscallRepBytes = 48
	ikcMsgBytes     = 96
	ikcRepBytes     = 64
	vpeQueryBytes   = 48
	svcReqBytes     = 64
	svcRepBytes     = 64
	// ikcBatchedReqBytes is the per-request payload inside a coalesced
	// envelope: a request standalone costs ikcMsgBytes plus the DTU header,
	// batched it shares the envelope's header and drops per-message framing.
	ikcBatchedReqBytes = 72
	// ikcBatchedRepBytes is the per-reply payload inside a coalesced reply
	// envelope, shrunk from ikcRepBytes the same way.
	ikcBatchedRepBytes = 48
	// creditMsgBytes is the rounds-mode in-flight credit return: a bare
	// acknowledgement carrying only the kernel-pair identity, sent back to
	// the requester's node so the credit release costs one NoC traversal
	// instead of an instantaneous cross-kernel event.
	creditMsgBytes = 16
)
