// Package ddl implements the distributed data lookup (DDL), the capability
// addressing scheme of SemperOS (paper §3.2).
//
// Every kernel object that must be referable by other kernels gets a DDL
// key: a 64-bit value split into bit fields
//
//	| PE ID | VPE ID | Type | Object ID |
//
// where PE ID and VPE ID denote the creator of the object and Type and
// Object ID describe the object itself. The PE ID splits the key space into
// partitions; each partition is assigned to exactly one kernel via the
// membership table, which is replicated at every kernel. Given any DDL key,
// any kernel can therefore decide which kernel owns the named object without
// communication.
package ddl

import (
	"fmt"
)

// Bit-field widths of a DDL key. 12 bits of PE ID support 4096 PEs, well
// above the 640-PE evaluation platform; 34 bits of object ID are practically
// inexhaustible for a simulation run.
const (
	PEBits     = 12
	VPEBits    = 12
	TypeBits   = 6
	ObjectBits = 64 - PEBits - VPEBits - TypeBits

	// MaxPEs is the number of addressable PEs (and key-space partitions).
	MaxPEs = 1 << PEBits
	// MaxVPEs is the number of addressable VPEs per PE.
	MaxVPEs = 1 << VPEBits
)

// Type identifies the kind of object a DDL key names.
type Type uint8

// Object types. They mirror the resources SemperOS manages through
// capabilities: VPEs, byte-granular memory, communication endpoints,
// services and sessions.
const (
	TypeInvalid Type = iota
	TypeVPE
	TypeMem
	TypeSend
	TypeRecv
	TypeService
	TypeSession
	TypeKernel
	typeMax
)

func (t Type) String() string {
	switch t {
	case TypeVPE:
		return "vpe"
	case TypeMem:
		return "mem"
	case TypeSend:
		return "send"
	case TypeRecv:
		return "recv"
	case TypeService:
		return "service"
	case TypeSession:
		return "session"
	case TypeKernel:
		return "kernel"
	default:
		return "invalid"
	}
}

// Key is a globally valid DDL key. The zero Key is invalid and never names
// an object.
type Key uint64

// NewKey assembles a DDL key from its fields. It panics if a field exceeds
// its width: keys are constructed by kernels from validated inputs, so an
// overflow is a kernel bug.
func NewKey(pe, vpe int, typ Type, object uint64) Key {
	if pe < 0 || pe >= MaxPEs {
		panic(fmt.Sprintf("ddl: PE %d out of range", pe))
	}
	if vpe < 0 || vpe >= MaxVPEs {
		panic(fmt.Sprintf("ddl: VPE %d out of range", vpe))
	}
	if typ == TypeInvalid || typ >= typeMax {
		panic(fmt.Sprintf("ddl: bad type %d", typ))
	}
	if object >= 1<<ObjectBits {
		panic(fmt.Sprintf("ddl: object id %d out of range", object))
	}
	return Key(uint64(pe)<<(VPEBits+TypeBits+ObjectBits) |
		uint64(vpe)<<(TypeBits+ObjectBits) |
		uint64(typ)<<ObjectBits |
		object)
}

// PE returns the creator PE field (the key-space partition).
func (k Key) PE() int { return int(k >> (VPEBits + TypeBits + ObjectBits)) }

// VPE returns the creator VPE field.
func (k Key) VPE() int {
	return int(k>>(TypeBits+ObjectBits)) & (MaxVPEs - 1)
}

// Type returns the object type field.
func (k Key) Type() Type {
	return Type(k>>ObjectBits) & (1<<TypeBits - 1)
}

// Object returns the object id field.
func (k Key) Object() uint64 { return uint64(k) & (1<<ObjectBits - 1) }

// Valid reports whether the key names an object (nonzero with a known type).
func (k Key) Valid() bool {
	t := k.Type()
	return k != 0 && t != TypeInvalid && t < typeMax
}

func (k Key) String() string {
	if !k.Valid() {
		return "key<invalid>"
	}
	return fmt.Sprintf("key<pe%d:v%d:%s:%d>", k.PE(), k.VPE(), k.Type(), k.Object())
}

// Generator hands out fresh object ids per creator (pe, vpe) pair, so that
// keys minted by one kernel never collide.
//
// Counters live in lazily allocated dense pages indexed by VPE id: almost
// every VPE mints exclusively through its own PE, so one (pe, counter) entry
// per VPE covers the hot path without a map lookup or per-creator
// allocation. The rare second PE minting for the same VPE falls back to a
// small overflow map, preserving the independent per-(pe, vpe) counters.
type Generator struct {
	pages    []*genPage
	overflow map[uint32]uint64
}

const genPageSize = 64

type genEntry struct {
	pe int32 // PE bound to this VPE's dense counter; -1 = unused
	n  uint64
}

type genPage [genPageSize]genEntry

// NewGenerator returns an empty key generator.
func NewGenerator() *Generator {
	return &Generator{}
}

// Next mints a fresh key for creator (pe, vpe) and the given type.
func (g *Generator) Next(pe, vpe int, typ Type) Key {
	return NewKey(pe, vpe, typ, g.NextID(pe, vpe))
}

// NextID mints a fresh object id for creator (pe, vpe) without fixing the
// type yet. Used by exchange protocols where the object type becomes known
// only at the owner's side; both kernels then compose the same key.
func (g *Generator) NextID(pe, vpe int) uint64 {
	if pe < 0 || pe >= MaxPEs || vpe < 0 || vpe >= MaxVPEs {
		panic(fmt.Sprintf("ddl: creator (%d, %d) out of range", pe, vpe))
	}
	pi := vpe / genPageSize
	for pi >= len(g.pages) {
		g.pages = append(g.pages, nil)
	}
	pg := g.pages[pi]
	if pg == nil {
		pg = new(genPage)
		for i := range pg {
			pg[i].pe = -1
		}
		g.pages[pi] = pg
	}
	e := &pg[vpe%genPageSize]
	switch e.pe {
	case int32(pe):
		obj := e.n
		e.n++
		return obj
	case -1:
		e.pe = int32(pe)
		e.n = 1
		return 0
	}
	// A second PE minting for the same VPE: independent counter via the
	// overflow map, exactly like the pre-slab map-per-creator behavior.
	if g.overflow == nil {
		g.overflow = make(map[uint32]uint64)
	}
	id := uint32(pe)<<16 | uint32(vpe)
	obj := g.overflow[id]
	g.overflow[id] = obj + 1
	return obj
}

// Membership is the table mapping key-space partitions (PE IDs) to kernels.
// Every kernel holds a copy; in the current system (like the paper's
// implementation) the mapping is static because PE migration is unsupported.
type Membership struct {
	kernelOf []int
}

// NewMembership creates a table for a machine with pes PEs, with every
// partition unassigned (-1).
func NewMembership(pes int) *Membership {
	m := &Membership{kernelOf: make([]int, pes)}
	for i := range m.kernelOf {
		m.kernelOf[i] = -1
	}
	return m
}

// Assign maps PE pe's partition to the given kernel.
func (m *Membership) Assign(pe, kernel int) {
	m.kernelOf[pe] = kernel
}

// KernelOf returns the kernel managing PE pe's partition, or -1.
func (m *Membership) KernelOf(pe int) int {
	if pe < 0 || pe >= len(m.kernelOf) {
		return -1
	}
	return m.kernelOf[pe]
}

// KernelOfKey returns the kernel owning the object named by k, derived
// purely from the key and the table — the core of the DDL.
func (m *Membership) KernelOfKey(k Key) int { return m.KernelOf(k.PE()) }

// PEs returns the number of PEs covered by the table.
func (m *Membership) PEs() int { return len(m.kernelOf) }

// Group returns all PEs assigned to the given kernel, in ascending order.
func (m *Membership) Group(kernel int) []int {
	var pes []int
	for pe, k := range m.kernelOf {
		if k == kernel {
			pes = append(pes, pe)
		}
	}
	return pes
}

// Clone returns an independent copy, modeling the per-kernel replica.
func (m *Membership) Clone() *Membership {
	c := &Membership{kernelOf: make([]int, len(m.kernelOf))}
	copy(c.kernelOf, m.kernelOf)
	return c
}
