package ddl

import (
	"testing"
	"testing/quick"
)

func TestKeyRoundTrip(t *testing.T) {
	cases := []struct {
		pe, vpe int
		typ     Type
		obj     uint64
	}{
		{0, 0, TypeVPE, 0},
		{1, 2, TypeMem, 3},
		{MaxPEs - 1, MaxVPEs - 1, TypeSession, 1<<ObjectBits - 1},
		{639, 511, TypeService, 123456789},
	}
	for _, c := range cases {
		k := NewKey(c.pe, c.vpe, c.typ, c.obj)
		if k.PE() != c.pe || k.VPE() != c.vpe || k.Type() != c.typ || k.Object() != c.obj {
			t.Errorf("round trip failed for %+v: got pe=%d vpe=%d typ=%v obj=%d",
				c, k.PE(), k.VPE(), k.Type(), k.Object())
		}
		if !k.Valid() {
			t.Errorf("key %v invalid", k)
		}
	}
}

func TestKeyRoundTripProperty(t *testing.T) {
	f := func(pe, vpe uint16, typ uint8, obj uint64) bool {
		p := int(pe) % MaxPEs
		v := int(vpe) % MaxVPEs
		ty := Type(typ%uint8(typeMax-1)) + 1 // skip TypeInvalid
		o := obj % (1 << ObjectBits)
		k := NewKey(p, v, ty, o)
		return k.PE() == p && k.VPE() == v && k.Type() == ty && k.Object() == o && k.Valid()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZeroKeyInvalid(t *testing.T) {
	var k Key
	if k.Valid() {
		t.Fatal("zero key reported valid")
	}
	if k.String() != "key<invalid>" {
		t.Fatalf("String = %q", k.String())
	}
}

func TestKeyFieldOverflowPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"pe":   func() { NewKey(MaxPEs, 0, TypeVPE, 0) },
		"vpe":  func() { NewKey(0, MaxVPEs, TypeVPE, 0) },
		"type": func() { NewKey(0, 0, TypeInvalid, 0) },
		"obj":  func() { NewKey(0, 0, TypeVPE, 1<<ObjectBits) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s overflow did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestGeneratorUnique(t *testing.T) {
	g := NewGenerator()
	seen := make(map[Key]bool)
	for pe := 0; pe < 3; pe++ {
		for i := 0; i < 100; i++ {
			k := g.Next(pe, 1, TypeMem)
			if seen[k] {
				t.Fatalf("duplicate key %v", k)
			}
			seen[k] = true
		}
	}
}

func TestGeneratorIndependentCreators(t *testing.T) {
	g := NewGenerator()
	k1 := g.Next(1, 1, TypeMem)
	k2 := g.Next(2, 1, TypeMem)
	if k1.Object() != 0 || k2.Object() != 0 {
		t.Fatal("creators do not have independent object id spaces")
	}
	if k1 == k2 {
		t.Fatal("keys from different creators collide")
	}
}

func TestMembership(t *testing.T) {
	m := NewMembership(8)
	if m.KernelOf(3) != -1 {
		t.Fatal("unassigned PE has a kernel")
	}
	for pe := 0; pe < 8; pe++ {
		m.Assign(pe, pe/4) // PEs 0-3 -> kernel 0, 4-7 -> kernel 1
	}
	if m.KernelOf(2) != 0 || m.KernelOf(6) != 1 {
		t.Fatal("assignment broken")
	}
	k := NewKey(5, 0, TypeVPE, 9)
	if m.KernelOfKey(k) != 1 {
		t.Fatalf("KernelOfKey = %d, want 1", m.KernelOfKey(k))
	}
	g0 := m.Group(0)
	if len(g0) != 4 || g0[0] != 0 || g0[3] != 3 {
		t.Fatalf("Group(0) = %v", g0)
	}
}

func TestMembershipOutOfRange(t *testing.T) {
	m := NewMembership(4)
	if m.KernelOf(-1) != -1 || m.KernelOf(99) != -1 {
		t.Fatal("out-of-range PE did not return -1")
	}
}

func TestMembershipClone(t *testing.T) {
	m := NewMembership(4)
	m.Assign(0, 7)
	c := m.Clone()
	c.Assign(0, 9)
	if m.KernelOf(0) != 7 {
		t.Fatal("clone is not independent")
	}
	if c.KernelOf(0) != 9 {
		t.Fatal("clone assignment lost")
	}
}

func TestTypeStrings(t *testing.T) {
	want := map[Type]string{
		TypeVPE: "vpe", TypeMem: "mem", TypeSend: "send", TypeRecv: "recv",
		TypeService: "service", TypeSession: "session", TypeKernel: "kernel",
		TypeInvalid: "invalid",
	}
	for typ, s := range want {
		if typ.String() != s {
			t.Errorf("%d.String() = %q, want %q", typ, typ.String(), s)
		}
	}
}
