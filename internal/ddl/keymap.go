package ddl

// KeyMap is an open-addressing hash table from Key to V, tuned for the
// simulator's hot paths: a Key is a single uint64, so the table stores keys
// and values in two flat slices (no per-entry allocation, no bucket
// pointers) and probes linearly from a strong 64-bit mix of the key.
//
// The zero KeyMap is empty and ready to use. Key 0 is the invalid DDL key
// and doubles as the empty-slot sentinel; inserting it panics. Deletion uses
// backward-shift compaction, so the table never accumulates tombstones and
// lookups stay O(probe distance) forever. Values of deleted entries are
// zeroed so the table does not retain pointers for the GC.
//
// Iteration order (Range) is table order, which depends on the hash layout —
// callers that need determinism must not iterate.
type KeyMap[V any] struct {
	keys []Key
	vals []V
	n    int
}

// hashKey finalizes a key with the splitmix64 mixer: cheap, and strong
// enough that the structured DDL bit fields (PE/VPE/type/object) spread
// uniformly over the table.
func hashKey(k Key) uint64 {
	x := uint64(k)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Len returns the number of stored entries.
func (m *KeyMap[V]) Len() int { return m.n }

// Get returns the value stored under k.
func (m *KeyMap[V]) Get(k Key) (V, bool) {
	var zero V
	if m.n == 0 || k == 0 {
		return zero, false
	}
	mask := uint64(len(m.keys) - 1)
	for i := hashKey(k) & mask; ; i = (i + 1) & mask {
		switch m.keys[i] {
		case k:
			return m.vals[i], true
		case 0:
			return zero, false
		}
	}
}

// Put stores v under k, replacing any existing entry.
func (m *KeyMap[V]) Put(k Key, v V) {
	if k == 0 {
		panic("ddl: KeyMap key 0 (invalid key)")
	}
	// Grow at 3/4 load so linear probing stays short.
	if len(m.keys) == 0 || m.n >= len(m.keys)*3/4 {
		m.grow()
	}
	mask := uint64(len(m.keys) - 1)
	for i := hashKey(k) & mask; ; i = (i + 1) & mask {
		switch m.keys[i] {
		case k:
			m.vals[i] = v
			return
		case 0:
			m.keys[i] = k
			m.vals[i] = v
			m.n++
			return
		}
	}
}

// Delete removes the entry stored under k; absent keys are a no-op.
func (m *KeyMap[V]) Delete(k Key) {
	if m.n == 0 || k == 0 {
		return
	}
	mask := uint64(len(m.keys) - 1)
	i := hashKey(k) & mask
	for {
		if m.keys[i] == 0 {
			return
		}
		if m.keys[i] == k {
			break
		}
		i = (i + 1) & mask
	}
	// Backward-shift compaction: pull displaced entries into the hole so no
	// tombstone is needed. An entry at j may fill slot i iff its home slot
	// is not in the cyclic range (i, j].
	var zero V
	j := i
	for {
		j = (j + 1) & mask
		if m.keys[j] == 0 {
			break
		}
		home := hashKey(m.keys[j]) & mask
		if (j-home)&mask >= (j-i)&mask {
			m.keys[i] = m.keys[j]
			m.vals[i] = m.vals[j]
			i = j
		}
	}
	m.keys[i] = 0
	m.vals[i] = zero
	m.n--
}

// Range calls fn for every entry in table order until fn returns false.
// The order is not deterministic across different insertion histories.
func (m *KeyMap[V]) Range(fn func(k Key, v V) bool) {
	for i, k := range m.keys {
		if k != 0 && !fn(k, m.vals[i]) {
			return
		}
	}
}

func (m *KeyMap[V]) grow() {
	newCap := 16
	if len(m.keys) > 0 {
		newCap = len(m.keys) * 2
	}
	oldKeys, oldVals := m.keys, m.vals
	m.keys = make([]Key, newCap)
	m.vals = make([]V, newCap)
	mask := uint64(newCap - 1)
	for i, k := range oldKeys {
		if k == 0 {
			continue
		}
		j := hashKey(k) & mask
		for m.keys[j] != 0 {
			j = (j + 1) & mask
		}
		m.keys[j] = k
		m.vals[j] = oldVals[i]
	}
}
