package ddl

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKeyMapBasics(t *testing.T) {
	var m KeyMap[int] // zero value is ready to use
	if m.Len() != 0 {
		t.Fatalf("Len = %d", m.Len())
	}
	if _, ok := m.Get(NewKey(1, 1, TypeMem, 0)); ok {
		t.Fatal("empty map returned a value")
	}
	k1 := NewKey(1, 1, TypeMem, 1)
	k2 := NewKey(1, 1, TypeMem, 2)
	m.Put(k1, 10)
	m.Put(k2, 20)
	m.Put(k1, 11) // overwrite
	if v, ok := m.Get(k1); !ok || v != 11 {
		t.Fatalf("Get(k1) = %d, %v", v, ok)
	}
	if v, ok := m.Get(k2); !ok || v != 20 {
		t.Fatalf("Get(k2) = %d, %v", v, ok)
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d", m.Len())
	}
	m.Delete(k1)
	m.Delete(k1) // absent delete is a no-op
	if _, ok := m.Get(k1); ok {
		t.Fatal("deleted key still present")
	}
	if m.Len() != 1 {
		t.Fatalf("Len after delete = %d", m.Len())
	}
	n := 0
	m.Range(func(k Key, v int) bool {
		if k != k2 || v != 20 {
			t.Fatalf("Range visited %v=%d", k, v)
		}
		n++
		return true
	})
	if n != 1 {
		t.Fatalf("Range visited %d entries", n)
	}
}

func TestKeyMapZeroKeyPanics(t *testing.T) {
	var m KeyMap[int]
	defer func() {
		if recover() == nil {
			t.Error("Put(0) did not panic")
		}
	}()
	m.Put(0, 1)
}

// Property: a KeyMap agrees with a builtin map under random put/get/delete
// sequences, across growth and backward-shift deletion.
func TestKeyMapMatchesMap(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		var m KeyMap[uint64]
		ref := make(map[Key]uint64)
		var keys []Key
		ops := int(n)%1000 + 50
		for i := 0; i < ops; i++ {
			switch r := rng.Intn(10); {
			case r < 5:
				// Cluster keys deliberately (small object ids) so linear
				// probe chains and backward shifts actually happen.
				k := NewKey(rng.Intn(4), rng.Intn(4), TypeMem, uint64(rng.Intn(64)))
				v := rng.Uint64()
				m.Put(k, v)
				ref[k] = v
				keys = append(keys, k)
			case r < 8 && len(keys) > 0:
				k := keys[rng.Intn(len(keys))]
				m.Delete(k)
				delete(ref, k)
			default:
				k := NewKey(rng.Intn(4), rng.Intn(4), TypeMem, uint64(rng.Intn(64)))
				v, ok := m.Get(k)
				rv, rok := ref[k]
				if ok != rok || v != rv {
					return false
				}
			}
		}
		if m.Len() != len(ref) {
			return false
		}
		for k, rv := range ref {
			if v, ok := m.Get(k); !ok || v != rv {
				return false
			}
		}
		seen := 0
		m.Range(func(k Key, v uint64) bool {
			if rv, ok := ref[k]; !ok || rv != v {
				return false
			}
			seen++
			return true
		})
		return seen == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
