package fault

import (
	"testing"

	"repro/internal/noc"
	"repro/internal/sim"
)

// inspectSequence replays n messages round-robin over the kernel links of a
// 4-kernel machine and records every verdict.
func inspectSequence(in *Injector, n int) []noc.Verdict {
	out := make([]noc.Verdict, 0, n)
	for i := 0; i < n; i++ {
		src := i % 4
		dst := (i + 1 + i%3) % 4
		out = append(out, in.Inspect(sim.Time(100*i), src, dst, 64))
	}
	return out
}

func TestInjectorDeterministic(t *testing.T) {
	plan := Plan{Seed: 42, Drop: 0.1, Dup: 0.05, Jitter: 300}
	a := inspectSequence(NewInjector(plan, 4), 4096)
	b := inspectSequence(NewInjector(plan, 4), 4096)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("verdict %d differs between identical injectors: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestInjectorSeedDecorrelates(t *testing.T) {
	a := inspectSequence(NewInjector(Plan{Seed: 1, Drop: 0.5}, 4), 4096)
	b := inspectSequence(NewInjector(Plan{Seed: 2, Drop: 0.5}, 4), 4096)
	same := 0
	for i := range a {
		if a[i].Drop == b[i].Drop {
			same++
		}
	}
	// Independent fair coins agree about half the time; identical streams
	// would agree always.
	if same == len(a) {
		t.Fatalf("seeds 1 and 2 produced identical drop sequences")
	}
	if same < len(a)*35/100 || same > len(a)*65/100 {
		t.Fatalf("drop agreement %d/%d outside the plausible band for independent draws", same, len(a))
	}
}

func TestInjectorRates(t *testing.T) {
	in := NewInjector(Plan{Seed: 7, Drop: 0.2, Dup: 0.1}, 4)
	n := 20000
	for i := 0; i < n; i++ {
		in.Inspect(0, 0, 1, 64)
	}
	st := in.Stats()
	if st.Inspected != uint64(n) {
		t.Fatalf("Inspected = %d, want %d", st.Inspected, n)
	}
	// ±15% bands around the binomial means — far beyond 5 sigma at n=20000,
	// so a healthy PRNG never trips them.
	checkRate := func(name string, got uint64, p float64) {
		mean := p * float64(n)
		lo, hi := uint64(mean*0.85), uint64(mean*1.15)
		if got < lo || got > hi {
			t.Errorf("%s = %d, want within [%d, %d] (p=%v, n=%d)", name, got, lo, hi, p, n)
		}
	}
	checkRate("Dropped", st.Dropped, 0.2)
	// Dup draws only happen on non-dropped messages: effective rate 0.8*0.1.
	checkRate("Duplicated", st.Duplicated, 0.08)
}

func TestInjectorScope(t *testing.T) {
	in := NewInjector(Plan{Seed: 3, Drop: 1}, 2)
	cases := []struct {
		src, dst int
		faulted  bool
	}{
		{0, 1, true},
		{1, 0, true},
		{0, 0, false}, // self
		{0, 5, false}, // user PE destination
		{5, 0, false}, // user PE source
		{6, 7, false}, // user PE both
	}
	for _, c := range cases {
		v := in.Inspect(0, c.src, c.dst, 64)
		if v.Drop != c.faulted {
			t.Errorf("Inspect(%d->%d).Drop = %v, want %v", c.src, c.dst, v.Drop, c.faulted)
		}
	}
	if got := in.Stats().Inspected; got != 2 {
		t.Fatalf("Inspected = %d, want 2 (only kernel links count)", got)
	}
}

// TestInjectorScopeCountersIndependent verifies out-of-scope traffic never
// shifts the kernel-link fault sequence: a machine with extra user-PE
// chatter sees the same verdicts on the kernel links.
func TestInjectorScopeCountersIndependent(t *testing.T) {
	plan := Plan{Seed: 9, Drop: 0.3, Dup: 0.1, Jitter: 100}
	a := NewInjector(plan, 2)
	b := NewInjector(plan, 2)
	for i := 0; i < 2048; i++ {
		va := a.Inspect(sim.Time(i), 0, 1, 64)
		b.Inspect(sim.Time(i), 7, 3, 64) // user-PE noise, out of scope
		vb := b.Inspect(sim.Time(i), 0, 1, 64)
		if va != vb {
			t.Fatalf("message %d: kernel-link verdict shifted by out-of-scope traffic: %+v vs %+v", i, va, vb)
		}
	}
}

func TestLinkRuleOverride(t *testing.T) {
	plan := Plan{
		Seed: 5, Drop: 1,
		Links: []LinkRule{
			{Src: 0, Dst: 1, Drop: 0}, // lossless exception
			{Src: -1, Dst: 2, Drop: 1},
		},
	}
	in := NewInjector(plan, 4)
	if v := in.Inspect(0, 0, 1, 64); v.Drop {
		t.Fatalf("link rule 0->1 should make the link lossless")
	}
	if v := in.Inspect(0, 3, 2, 64); !v.Drop {
		t.Fatalf("wildcard rule ->2 should drop")
	}
	if v := in.Inspect(0, 1, 3, 64); !v.Drop {
		t.Fatalf("unmatched link should fall back to the plan default (drop=1)")
	}
}

func TestKernelCrash(t *testing.T) {
	in := NewInjector(Plan{Seed: 1, Kernels: []KernelFault{{Kernel: 1, CrashAt: 1000}}}, 4)
	if v := in.Inspect(999, 0, 1, 64); v.Drop {
		t.Fatalf("message before CrashAt must pass")
	}
	// Both directions blackhole from CrashAt on.
	if v := in.Inspect(1000, 0, 1, 64); !v.Drop {
		t.Fatalf("message to crashed kernel must vanish")
	}
	if v := in.Inspect(1500, 1, 2, 64); !v.Drop {
		t.Fatalf("message from crashed kernel must vanish")
	}
	if v := in.Inspect(1500, 0, 2, 64); v.Drop {
		t.Fatalf("links between live kernels stay up")
	}
	if got := in.Stats().Blackholed; got != 2 {
		t.Fatalf("Blackholed = %d, want 2", got)
	}
}

// TestKernelCrashRecovery: a RecoverAt bounds the blackhole window — traffic
// resumes in both directions the cycle the kernel recovers.
func TestKernelCrashRecovery(t *testing.T) {
	in := NewInjector(Plan{Seed: 1, Kernels: []KernelFault{{Kernel: 1, CrashAt: 1000, RecoverAt: 2000}}}, 4)
	if v := in.Inspect(999, 0, 1, 64); v.Drop {
		t.Fatalf("message before CrashAt must pass")
	}
	if v := in.Inspect(1000, 0, 1, 64); !v.Drop {
		t.Fatalf("message inside the crash window must vanish")
	}
	if v := in.Inspect(1999, 1, 2, 64); !v.Drop {
		t.Fatalf("outbound message inside the crash window must vanish")
	}
	if v := in.Inspect(2000, 0, 1, 64); v.Drop {
		t.Fatalf("message at RecoverAt must pass — the window is half-open")
	}
	if v := in.Inspect(5000, 1, 2, 64); v.Drop {
		t.Fatalf("outbound message after recovery must pass")
	}
	if got := in.Stats().Blackholed; got != 2 {
		t.Fatalf("Blackholed = %d, want 2", got)
	}
}

func TestPlanValidate(t *testing.T) {
	ok := Plan{Kernels: []KernelFault{{Kernel: 1, CrashAt: 100, RecoverAt: 200}, {Kernel: 2, CrashAt: 50}}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	bad := []Plan{
		{Kernels: []KernelFault{{Kernel: 1, RecoverAt: 200}}},               // recovery without a crash
		{Kernels: []KernelFault{{Kernel: 1, CrashAt: 200, RecoverAt: 200}}}, // empty window
		{Kernels: []KernelFault{{Kernel: 1, CrashAt: 300, RecoverAt: 200}}}, // inverted window
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("invalid plan %d accepted", i)
		}
	}
}

func TestKernelStall(t *testing.T) {
	in := NewInjector(Plan{Seed: 1, Kernels: []KernelFault{{Kernel: 1, StallAt: 1000, StallFor: 500}}}, 4)
	if v := in.Inspect(500, 0, 1, 64); v.Delay != 0 {
		t.Fatalf("pre-stall message delayed by %d", v.Delay)
	}
	// A message arriving mid-window is held until the window closes.
	if v := in.Inspect(1200, 0, 1, 64); v.Delay != 300 {
		t.Fatalf("mid-stall delay = %d, want 300", v.Delay)
	}
	// Stall applies to traffic INTO the stalled kernel only.
	if v := in.Inspect(1200, 1, 0, 64); v.Delay != 0 {
		t.Fatalf("outbound traffic of a stalled kernel delayed by %d", v.Delay)
	}
	if v := in.Inspect(1500, 0, 1, 64); v.Delay != 0 {
		t.Fatalf("post-stall message delayed by %d", v.Delay)
	}
	if got := in.Stats().Stalled; got != 1 {
		t.Fatalf("Stalled = %d, want 1", got)
	}
}

func TestZeroPlanInjectsNothing(t *testing.T) {
	in := NewInjector(Plan{Seed: 123}, 4)
	for _, v := range inspectSequence(in, 1024) {
		if v != (noc.Verdict{}) {
			t.Fatalf("zero plan produced verdict %+v", v)
		}
	}
	st := in.Stats()
	if st.Dropped+st.Duplicated+st.Delayed+st.Stalled+st.Blackholed != 0 {
		t.Fatalf("zero plan counted injections: %+v", st)
	}
}
