// Package fault is the deterministic fault-injection layer of the
// simulated machine. A Plan describes what goes wrong — per-link message
// drop/duplication probabilities, delivery-delay jitter, kernel stall
// windows and kernel crash times — and an Injector draws every decision
// from a splittable counter-based PRNG keyed by (seed, src, dst, per-pair
// message counter). Because the NoC calls Inspect once per message in a
// deterministic order (the merged event loop preserves event order at any
// -simworkers setting; isolated rounds order each sender's stream on its
// own domain and the injector shards all mutable state by source PE; and
// -parallel/-shards parallelize across independent simulations), a fixed
// seed yields a byte-identical faulty run regardless of host parallelism.
//
// Faults apply only to kernel↔kernel links (both endpoints below the
// kernel-PE bound): the inter-kernel protocol is the layer hardened
// against loss (core/ikc.go, core/transport.go). Syscall channels,
// service IPC and consent queries stay lossless, so a faulty run degrades
// — operations fail with error replies — but never wedges on an
// unhardened path.
package fault

import (
	"fmt"

	"repro/internal/noc"
	"repro/internal/sim"
)

// LinkRule overrides the plan's default fault rates for matching directed
// links. Src/Dst are kernel PE numbers; -1 matches any kernel. The first
// matching rule wins and replaces the defaults wholesale.
type LinkRule struct {
	Src    int // source kernel PE, -1 for any
	Dst    int // destination kernel PE, -1 for any
	Drop   float64
	Dup    float64
	Jitter sim.Duration
}

// KernelFault schedules time-driven faults of one kernel. A stall window
// delays every delivery into the kernel until the window closes (the
// kernel stops draining its DTU); a crash blackholes all its inter-kernel
// traffic — both directions — from CrashAt on. With RecoverAt zero the
// crash is permanent; a nonzero RecoverAt ends the blackhole window, after
// which the kernel runs as a new incarnation (core schedules the rejoin
// handshake at RecoverAt, see core's rejoin protocol).
type KernelFault struct {
	Kernel  int // kernel PE number
	StallAt sim.Time
	// StallFor is the stall window length; 0 means no stall.
	StallFor sim.Duration
	// CrashAt is the crash time; 0 means the kernel never crashes.
	CrashAt sim.Time
	// RecoverAt, when nonzero, is the cycle at which the crashed kernel's
	// links un-blackhole. Must be strictly after CrashAt (Validate).
	RecoverAt sim.Time
}

// Plan is a complete fault scenario. The zero rates with no kernel faults
// make a plan that injects nothing (but still switches the IKC layer into
// reliable mode when attached via core.Config.Faults).
type Plan struct {
	// Seed keys the PRNG; identical plans with identical seeds produce
	// identical fault sequences. Seed 0 is valid and distinct from 1.
	Seed uint64
	// Drop is the default per-message drop probability on kernel links.
	Drop float64
	// Dup is the default per-message duplication probability.
	Dup float64
	// Jitter is the default delay-jitter bound: each message is delayed by
	// a uniform draw from [0, Jitter).
	Jitter sim.Duration
	// Links overrides the defaults per directed link.
	Links []LinkRule
	// Kernels schedules stall windows, crashes and recoveries.
	Kernels []KernelFault
}

// Validate checks the plan's static well-formedness. Today that is the
// crash/recovery window ordering: a recovery that does not strictly follow
// its crash describes no window at all, and silently treating it as
// "never crashed" (or "never recovered") would make a scenario pass while
// testing nothing.
func (p *Plan) Validate() error {
	for _, kf := range p.Kernels {
		if kf.RecoverAt == 0 {
			continue
		}
		if kf.CrashAt == 0 {
			return fmt.Errorf("fault: kernel %d has RecoverAt %d without a CrashAt", kf.Kernel, kf.RecoverAt)
		}
		if kf.RecoverAt <= kf.CrashAt {
			return fmt.Errorf("fault: kernel %d RecoverAt %d must be after CrashAt %d", kf.Kernel, kf.RecoverAt, kf.CrashAt)
		}
	}
	return nil
}

// Stats counts what the injector did. All counters are per-Injector (=
// per-System), so concurrent simulations never share them.
type Stats struct {
	Inspected  uint64 // kernel↔kernel messages examined
	Dropped    uint64 // probabilistic drops
	Duplicated uint64
	Delayed    uint64 // messages given nonzero jitter
	Stalled    uint64 // messages delayed by a stall window
	Blackholed uint64 // messages dropped because an endpoint had crashed
}

// splitmix64 is the finalizer of the SplitMix64 generator: a bijective
// avalanche hash, here used as a counter-based PRNG — hashing
// (seed, pair, counter, salt) gives an independent uniform draw per
// decision without any shared mutable generator state.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Decision salts decorrelate the sub-draws of one message.
const (
	saltDrop uint64 = iota + 1
	saltDup
	saltJitter
)

// effRates is the resolved rate set for one directed link.
type effRates struct {
	drop, dup float64
	jitter    sim.Duration
}

// Injector implements noc.Injector for a Plan. All mutable state — the
// per-pair PRNG counters, the resolved-rate cache and the stats — is
// sharded by source PE: the NoC calls Inspect at send time on the sending
// node's path, so under isolated rounds (one event domain per kernel) each
// shard has exactly one writer and the injector is safe without locks. The
// sharding changes nothing observable: counters advance per (src, dst)
// pair exactly as before, so merged-mode fault sequences are untouched.
type Injector struct {
	plan      Plan
	kernelPEs int
	perSrc    []srcState
	kfaults   map[int][]KernelFault // read-only after NewInjector
}

// srcState is one source PE's shard of the injector's mutable state, maps
// keyed by destination PE.
type srcState struct {
	rates    map[int]effRates
	counters map[int]uint64
	stats    Stats
}

// NewInjector compiles a plan against a machine whose kernel PEs are
// [0, kernelPEs). Link rules naming kernels outside that range simply
// never match.
func NewInjector(plan Plan, kernelPEs int) *Injector {
	in := &Injector{
		plan:      plan,
		kernelPEs: kernelPEs,
		perSrc:    make([]srcState, kernelPEs),
		kfaults:   make(map[int][]KernelFault),
	}
	for i := range in.perSrc {
		in.perSrc[i].rates = make(map[int]effRates)
		in.perSrc[i].counters = make(map[int]uint64)
	}
	for _, kf := range plan.Kernels {
		in.kfaults[kf.Kernel] = append(in.kfaults[kf.Kernel], kf)
	}
	return in
}

// Stats sums the per-source shards into one snapshot. Call it only while
// no simulation round is in flight (shards are written lock-free).
func (in *Injector) Stats() Stats {
	var out Stats
	for i := range in.perSrc {
		s := &in.perSrc[i].stats
		out.Inspected += s.Inspected
		out.Dropped += s.Dropped
		out.Duplicated += s.Duplicated
		out.Delayed += s.Delayed
		out.Stalled += s.Stalled
		out.Blackholed += s.Blackholed
	}
	return out
}

func (in *Injector) ratesFor(ss *srcState, src, dst int) effRates {
	if r, ok := ss.rates[dst]; ok {
		return r
	}
	r := effRates{drop: in.plan.Drop, dup: in.plan.Dup, jitter: in.plan.Jitter}
	for _, lr := range in.plan.Links {
		if (lr.Src == -1 || lr.Src == src) && (lr.Dst == -1 || lr.Dst == dst) {
			r = effRates{drop: lr.Drop, dup: lr.Dup, jitter: lr.Jitter}
			break
		}
	}
	ss.rates[dst] = r
	return r
}

// draw returns a uniform float64 in [0,1) for one decision of one message.
func (in *Injector) draw(src, dst int, ctr, salt uint64) float64 {
	h := splitmix64(splitmix64(splitmix64(in.plan.Seed^(uint64(src)<<32|uint64(uint32(dst))))+ctr) + salt)
	return float64(h>>11) / (1 << 53)
}

func (in *Injector) crashed(pe int, now sim.Time) bool {
	for _, kf := range in.kfaults[pe] {
		if kf.CrashAt > 0 && now >= kf.CrashAt && (kf.RecoverAt == 0 || now < kf.RecoverAt) {
			return true
		}
	}
	return false
}

func (in *Injector) stallDelay(pe int, now sim.Time) sim.Duration {
	for _, kf := range in.kfaults[pe] {
		if kf.StallFor > 0 && now >= kf.StallAt && now < kf.StallAt+kf.StallFor {
			return kf.StallAt + kf.StallFor - now
		}
	}
	return 0
}

// Inspect decides the fate of one message, called by the NoC at send time
// (noc.Injector). Out-of-scope messages — anything but kernel↔kernel —
// pass untouched and do not consume PRNG counters, so adding user PEs to
// a machine never shifts the fault sequence on the kernel links.
func (in *Injector) Inspect(now sim.Time, src, dst, size int) noc.Verdict {
	if src == dst || src >= in.kernelPEs || dst >= in.kernelPEs {
		return noc.Verdict{}
	}
	ss := &in.perSrc[src]
	ss.stats.Inspected++
	ctr := ss.counters[dst]
	ss.counters[dst] = ctr + 1
	// A crashed endpoint blackholes the link in both directions: messages
	// to a dead kernel vanish, and a dead kernel sends nothing (its
	// in-flight sends at crash time vanish too).
	if in.crashed(src, now) || in.crashed(dst, now) {
		ss.stats.Blackholed++
		return noc.Verdict{Drop: true}
	}
	r := in.ratesFor(ss, src, dst)
	var v noc.Verdict
	if r.drop > 0 && in.draw(src, dst, ctr, saltDrop) < r.drop {
		v.Drop = true
		ss.stats.Dropped++
	}
	if !v.Drop && r.dup > 0 && in.draw(src, dst, ctr, saltDup) < r.dup {
		v.Dup = true
		ss.stats.Duplicated++
	}
	if r.jitter > 0 {
		if j := sim.Duration(in.draw(src, dst, ctr, saltJitter) * float64(r.jitter)); j > 0 {
			v.Delay += j
			ss.stats.Delayed++
		}
	}
	// Stall windows delay delivery into the stalled kernel (it stops
	// draining its DTU) on top of any jitter. Dropped messages skip it.
	if !v.Drop {
		if d := in.stallDelay(dst, now); d > 0 {
			v.Delay += d
			ss.stats.Stalled++
		}
	}
	return v
}
