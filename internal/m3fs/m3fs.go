// Package m3fs implements the in-memory filesystem service of M3/SemperOS
// (paper §2.2): files live in global memory, and clients access file data
// through byte-granular memory capabilities handed out per file range —
// much like memory-mapped I/O, without involving the filesystem or the
// kernel on the data path.
//
// The service exposes two interfaces:
//
//   - a data-plane IPC interface (open, stat, mkdir, unlink, readdir,
//     extend, close) carried directly over the session's DTU channel, and
//   - capability exchanges over the session: a client obtains a memory
//     capability for a file extent; closing a file revokes the obtained
//     capabilities.
//
// Each service instance owns a private copy of the filesystem image
// (paper §5.3.1: scaling m3fs is done by adding instances, each with its
// own image).
package m3fs

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cap"
	"repro/internal/core"
	"repro/internal/dtu"
	"repro/internal/sim"
)

// Config parameterizes a filesystem instance.
type Config struct {
	// ServiceName is the name registered in the service directory.
	ServiceName string
	// ExtentBytes is the size of one extent (default 1 MiB): the unit of
	// memory-capability hand-out.
	ExtentBytes uint64
	// ImageBytes is the size of the in-memory image (default 16 MiB).
	ImageBytes uint64

	// PathWalkCycles is the processing cost of resolving a path on top of
	// the base request cost (default 2000).
	PathWalkCycles sim.Duration
	// ExtentCycles is the per-extent cost of loading a file's extent table
	// on first open and of allocating new extents on extend (default 6500).
	// Extent tables are cached, so re-opens pay only the path walk — the
	// behavior that lets m3fs sustain file-churn workloads like PostMark.
	ExtentCycles sim.Duration
	// SessionCycles is the cost of setting up a client session (default
	// 5000).
	SessionCycles sim.Duration
}

func (c Config) withDefaults() Config {
	if c.ServiceName == "" {
		c.ServiceName = "m3fs"
	}
	if c.ExtentBytes == 0 {
		c.ExtentBytes = 1 << 20
	}
	if c.ImageBytes == 0 {
		c.ImageBytes = 16 << 20
	}
	if c.PathWalkCycles == 0 {
		c.PathWalkCycles = 1800
	}
	if c.ExtentCycles == 0 {
		c.ExtentCycles = 5000
	}
	if c.SessionCycles == 0 {
		c.SessionCycles = 5000
	}
	return c
}

// Stats counts service activity.
type Stats struct {
	Opens, Stats, Mkdirs, Unlinks, Readdirs, Extends, Closes uint64
	RangeObtains                                             uint64
	ExtentsDerived                                           uint64
	RevokesIssued                                            uint64
}

// --- request/reply payloads (data-plane IPC) ------------------------------

// ReqOpen opens (optionally creating/truncating) a file.
type ReqOpen struct {
	Path     string
	Create   bool
	Truncate bool
}

// RepOpen is the reply to ReqOpen.
type RepOpen struct {
	Err  core.Errno
	FD   int
	Size uint64
}

// ReqStat queries file metadata.
type ReqStat struct{ Path string }

// RepStat is the reply to ReqStat.
type RepStat struct {
	Err   core.Errno
	IsDir bool
	Size  uint64
}

// ReqMkdir creates a directory.
type ReqMkdir struct{ Path string }

// ReqUnlink removes a file, revoking all extent capabilities handed out
// for it.
type ReqUnlink struct{ Path string }

// ReqReaddir lists a directory.
type ReqReaddir struct{ Path string }

// RepReaddir is the reply to ReqReaddir.
type RepReaddir struct {
	Err     core.Errno
	Entries []string
}

// ReqExtend grows a file to NewSize, allocating extents.
type ReqExtend struct {
	FD      int
	NewSize uint64
}

// ReqClose closes a file descriptor.
type ReqClose struct{ FD int }

// RepGeneric is the reply to requests that only return a status.
type RepGeneric struct{ Err core.Errno }

// ObtainRange is the session-obtain argument: the client asks for a memory
// capability covering the file range starting at Off.
type ObtainRange struct {
	FD  int
	Off uint64
}

// RangeInfo describes the granted range (the session-obtain reply).
type RangeInfo struct {
	Off uint64 // start of the range within the file
	Len uint64 // length of the range
}

// --- filesystem state ------------------------------------------------------

type node interface{ isNode() }

type dirNode struct {
	entries map[string]node
}

type fileNode struct {
	id      uint64
	size    uint64
	extents []uint64 // image offsets, one per extent
	hot     bool     // extent table loaded (first open paid for it)
}

func (*dirNode) isNode()  {}
func (*fileNode) isNode() {}

type openFile struct {
	f *fileNode
}

type session struct {
	ident  uint64
	client int
	files  map[int]*openFile
	nextFD int
}

type extKey struct {
	fileID uint64
	idx    int
}

// FS is one filesystem service instance.
type FS struct {
	cfg      Config
	v        *core.VPE
	root     *dirNode
	rootSel  cap.Selector
	nextOff  uint64
	nextFile uint64
	nextSess uint64
	sessions map[uint64]*session
	extCaps  map[extKey]cap.Selector
	stats    Stats
}

// NewFS creates an (unstarted) filesystem instance for the given service
// VPE. Preload the image with MustCreate/MustMkdirAll, then call Start.
func NewFS(cfg Config, v *core.VPE) *FS {
	cfg = cfg.withDefaults()
	return &FS{
		cfg:      cfg,
		v:        v,
		root:     &dirNode{entries: make(map[string]node)},
		sessions: make(map[uint64]*session),
		extCaps:  make(map[extKey]cap.Selector),
	}
}

// Stats returns a snapshot of the instance's counters.
func (fs *FS) Stats() Stats { return fs.stats }

// Name returns the registered service name.
func (fs *FS) Name() string { return fs.cfg.ServiceName }

// Program returns a core.Program that runs a filesystem service: allocate
// the image, optionally preload it, register, and serve forever. ready (if
// non-nil) is completed with the FS once the service is registered.
func Program(cfg Config, preload func(*FS), ready *sim.Future[*FS]) core.Program {
	return func(v *core.VPE, p *sim.Proc) {
		fs := NewFS(cfg, v)
		if preload != nil {
			preload(fs)
		}
		if err := fs.Start(p); err != nil {
			panic(fmt.Sprintf("m3fs: start failed: %v", err))
		}
		if ready != nil {
			// CompleteFrom: under isolated rounds the future lives on the
			// driver's root domain, not this service's.
			ready.CompleteFrom(p, fs)
		}
		v.ServeLoop(p)
	}
}

// Start allocates the image memory and registers the service.
func (fs *FS) Start(p *sim.Proc) error {
	sel, err := fs.v.AllocMem(p, fs.cfg.ImageBytes, dtu.PermRW)
	if err != nil {
		return err
	}
	fs.rootSel = sel
	return fs.v.RegisterService(p, fs.cfg.ServiceName, core.ServiceHandlers{
		Open:    fs.onOpen,
		Obtain:  fs.onObtain,
		Request: fs.onRequest,
	})
}

// --- path handling ---------------------------------------------------------

func splitPath(path string) []string {
	var parts []string
	for _, s := range strings.Split(path, "/") {
		if s != "" {
			parts = append(parts, s)
		}
	}
	return parts
}

// walk resolves a path to its parent directory and final name.
func (fs *FS) walk(path string) (parent *dirNode, name string, n node) {
	parts := splitPath(path)
	if len(parts) == 0 {
		return nil, "", fs.root
	}
	d := fs.root
	for _, part := range parts[:len(parts)-1] {
		next, ok := d.entries[part].(*dirNode)
		if !ok {
			return nil, "", nil
		}
		d = next
	}
	name = parts[len(parts)-1]
	return d, name, d.entries[name]
}

// --- boot-time image construction -------------------------------------------

// MustMkdirAll creates a directory path in the image (boot time; no
// simulated cost).
func (fs *FS) MustMkdirAll(path string) {
	d := fs.root
	for _, part := range splitPath(path) {
		next, ok := d.entries[part]
		if !ok {
			nd := &dirNode{entries: make(map[string]node)}
			d.entries[part] = nd
			d = nd
			continue
		}
		dn, ok := next.(*dirNode)
		if !ok {
			panic("m3fs: path component is a file: " + path)
		}
		d = dn
	}
}

// MustCreate creates a file of the given size in the image (boot time).
func (fs *FS) MustCreate(path string, size uint64) {
	parent, name, existing := fs.walk(path)
	if parent == nil {
		panic("m3fs: missing parent directory: " + path)
	}
	if existing != nil {
		panic("m3fs: file exists: " + path)
	}
	f := &fileNode{id: fs.nextFile}
	fs.nextFile++
	if err := fs.grow(f, size); err != nil {
		panic("m3fs: image full while preloading " + path)
	}
	parent.entries[name] = f
}

// grow extends a file to newSize, allocating extents from the image.
func (fs *FS) grow(f *fileNode, newSize uint64) error {
	need := int((newSize + fs.cfg.ExtentBytes - 1) / fs.cfg.ExtentBytes)
	for len(f.extents) < need {
		if fs.nextOff+fs.cfg.ExtentBytes > fs.cfg.ImageBytes {
			return core.ErrOutOfMem
		}
		f.extents = append(f.extents, fs.nextOff)
		fs.nextOff += fs.cfg.ExtentBytes
	}
	if newSize > f.size {
		f.size = newSize
	}
	return nil
}

// --- service handlers --------------------------------------------------------

func (fs *FS) onOpen(p *sim.Proc, clientVPE int, args any) core.SvcResult {
	p.Sleep(fs.cfg.SessionCycles)
	fs.nextSess++
	ident := fs.nextSess
	fs.sessions[ident] = &session{ident: ident, client: clientVPE, files: make(map[int]*openFile)}
	return core.SvcResult{Ident: ident}
}

func (fs *FS) onObtain(p *sim.Proc, ident uint64, args any) core.SvcResult {
	sess := fs.sessions[ident]
	if sess == nil {
		return core.SvcResult{Errno: core.ErrBadArgs}
	}
	rng, ok := args.(ObtainRange)
	if !ok {
		return core.SvcResult{Errno: core.ErrBadArgs}
	}
	of := sess.files[rng.FD]
	if of == nil {
		return core.SvcResult{Errno: core.ErrBadArgs}
	}
	f := of.f
	idx := int(rng.Off / fs.cfg.ExtentBytes)
	if idx >= len(f.extents) {
		return core.SvcResult{Errno: core.ErrBadArgs}
	}
	sel, err := fs.extentCap(p, f, idx)
	if err != nil {
		return core.SvcResult{Errno: core.ErrOutOfMem}
	}
	fs.stats.RangeObtains++
	// The capability covers the whole extent: a client appending past it is
	// "provided with an additional memory capability to the next range"
	// (paper §5.3.1), not with overlapping re-grants of the same extent.
	start := uint64(idx) * fs.cfg.ExtentBytes
	return core.SvcResult{SrcSel: sel, Reply: RangeInfo{Off: start, Len: fs.cfg.ExtentBytes}}
}

// extentCap returns (deriving and caching on first use) the service-owned
// memory capability for one extent of a file.
func (fs *FS) extentCap(p *sim.Proc, f *fileNode, idx int) (cap.Selector, error) {
	if idx >= len(f.extents) {
		return cap.NoSel, core.ErrBadArgs
	}
	key := extKey{f.id, idx}
	if sel, ok := fs.extCaps[key]; ok {
		return sel, nil
	}
	sel, err := fs.v.DeriveMem(p, fs.rootSel, f.extents[idx], fs.cfg.ExtentBytes, dtu.PermRW)
	if err != nil {
		return cap.NoSel, err
	}
	fs.stats.ExtentsDerived++
	fs.extCaps[key] = sel
	return sel, nil
}

func (fs *FS) onRequest(p *sim.Proc, ident uint64, args any) any {
	sess := fs.sessions[ident]
	if sess == nil {
		return RepGeneric{Err: core.ErrBadArgs}
	}
	switch req := args.(type) {
	case ReqOpen:
		return fs.doOpen(p, sess, req)
	case ReqStat:
		return fs.doStat(p, req)
	case ReqMkdir:
		return fs.doMkdir(p, req)
	case ReqUnlink:
		return fs.doUnlink(p, req)
	case ReqReaddir:
		return fs.doReaddir(p, req)
	case ReqExtend:
		return fs.doExtend(p, sess, req)
	case ReqClose:
		fs.stats.Closes++
		delete(sess.files, req.FD)
		return RepGeneric{}
	default:
		return RepGeneric{Err: core.ErrBadArgs}
	}
}

func (fs *FS) doOpen(p *sim.Proc, sess *session, req ReqOpen) RepOpen {
	fs.stats.Opens++
	p.Sleep(fs.cfg.PathWalkCycles)
	parent, name, n := fs.walk(req.Path)
	f, isFile := n.(*fileNode)
	switch {
	case n == nil && req.Create:
		if parent == nil {
			return RepOpen{Err: core.ErrBadArgs}
		}
		f = &fileNode{id: fs.nextFile}
		fs.nextFile++
		parent.entries[name] = f
	case n == nil:
		return RepOpen{Err: core.ErrNoSuchCap}
	case !isFile:
		return RepOpen{Err: core.ErrBadArgs}
	}
	if req.Truncate && f.size > 0 {
		fs.truncate(p, f)
	}
	if !f.hot {
		// First open: load the extent table.
		p.Sleep(fs.cfg.ExtentCycles * sim.Duration(len(f.extents)))
		f.hot = true
	}
	sess.nextFD++
	fd := sess.nextFD
	sess.files[fd] = &openFile{f: f}
	return RepOpen{FD: fd, Size: f.size}
}

// truncate discards file content; capabilities handed out for its extents
// are revoked (the copy-on-write/consistency discipline §3 motivates).
func (fs *FS) truncate(p *sim.Proc, f *fileNode) {
	fs.revokeExtents(p, f)
	f.size = 0
	// Extents stay allocated (image is a simple bump allocator) but are
	// reused by the file as it grows again.
}

// revokeExtents revokes every capability derived for f's extents.
func (fs *FS) revokeExtents(p *sim.Proc, f *fileNode) {
	for idx := range f.extents {
		key := extKey{f.id, idx}
		if sel, ok := fs.extCaps[key]; ok {
			if err := fs.v.Revoke(p, sel); err == nil {
				fs.stats.RevokesIssued++
			}
			delete(fs.extCaps, key)
		}
	}
}

func (fs *FS) doStat(p *sim.Proc, req ReqStat) RepStat {
	fs.stats.Stats++
	p.Sleep(fs.cfg.PathWalkCycles)
	_, _, n := fs.walk(req.Path)
	switch t := n.(type) {
	case *fileNode:
		return RepStat{Size: t.size}
	case *dirNode:
		return RepStat{IsDir: true}
	default:
		return RepStat{Err: core.ErrNoSuchCap}
	}
}

func (fs *FS) doMkdir(p *sim.Proc, req ReqMkdir) RepGeneric {
	fs.stats.Mkdirs++
	p.Sleep(fs.cfg.PathWalkCycles)
	parent, name, n := fs.walk(req.Path)
	if parent == nil {
		return RepGeneric{Err: core.ErrBadArgs}
	}
	if n != nil {
		return RepGeneric{Err: core.ErrExists}
	}
	parent.entries[name] = &dirNode{entries: make(map[string]node)}
	return RepGeneric{}
}

func (fs *FS) doUnlink(p *sim.Proc, req ReqUnlink) RepGeneric {
	fs.stats.Unlinks++
	p.Sleep(fs.cfg.PathWalkCycles)
	parent, name, n := fs.walk(req.Path)
	f, ok := n.(*fileNode)
	if !ok {
		return RepGeneric{Err: core.ErrNoSuchCap}
	}
	fs.revokeExtents(p, f)
	delete(parent.entries, name)
	return RepGeneric{}
}

func (fs *FS) doReaddir(p *sim.Proc, req ReqReaddir) RepReaddir {
	fs.stats.Readdirs++
	p.Sleep(fs.cfg.PathWalkCycles)
	_, _, n := fs.walk(req.Path)
	d, ok := n.(*dirNode)
	if !ok {
		return RepReaddir{Err: core.ErrNoSuchCap}
	}
	entries := make([]string, 0, len(d.entries))
	for name := range d.entries {
		entries = append(entries, name)
	}
	sort.Strings(entries)
	return RepReaddir{Entries: entries}
}

func (fs *FS) doExtend(p *sim.Proc, sess *session, req ReqExtend) RepGeneric {
	fs.stats.Extends++
	of := sess.files[req.FD]
	if of == nil {
		return RepGeneric{Err: core.ErrBadArgs}
	}
	before := len(of.f.extents)
	if err := fs.grow(of.f, req.NewSize); err != nil {
		return RepGeneric{Err: core.ErrOutOfMem}
	}
	p.Sleep(fs.cfg.ExtentCycles * sim.Duration(len(of.f.extents)-before))
	return RepGeneric{}
}
