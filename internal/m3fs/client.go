package m3fs

import (
	"fmt"

	"repro/internal/cap"
	"repro/internal/core"
	"repro/internal/sim"
)

// Client is an application's connection to one m3fs instance. It mirrors
// the M3 file API: metadata operations are data-plane IPC; file data is
// reached through memory capabilities obtained per extent.
type Client struct {
	v    *core.VPE
	sess *core.Session

	// DataCyclesPerByte models the time to move one byte of file data
	// through a memory endpoint against a non-contended memory controller
	// (the paper's §5.3.1 methodology: data accesses are accounted as
	// compute time rather than simulated through a memory hierarchy).
	DataCyclesPerByte float64
}

// DefaultDataCyclesPerByte corresponds to ~16 GB/s per PE at 2 GHz.
const DefaultDataCyclesPerByte = 0.125

// Dial connects a VPE to the named filesystem service.
func Dial(p *sim.Proc, v *core.VPE, service string) (*Client, error) {
	sess, err := v.CreateSession(p, service, nil)
	if err != nil {
		return nil, fmt.Errorf("m3fs: dial %s: %w", service, err)
	}
	return &Client{v: v, sess: sess, DataCyclesPerByte: DefaultDataCyclesPerByte}, nil
}

// Close closes the session (revoking the session capability).
func (c *Client) Close(p *sim.Proc) error { return c.sess.Close(p) }

// Session exposes the underlying session (for tests).
func (c *Client) Session() *core.Session { return c.sess }

// call performs one data-plane request.
func (c *Client) call(p *sim.Proc, req any) (any, error) {
	rep, err := c.sess.Call(p, req)
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// Stat returns metadata for a path.
func (c *Client) Stat(p *sim.Proc, path string) (RepStat, error) {
	rep, err := c.call(p, ReqStat{Path: path})
	if err != nil {
		return RepStat{}, err
	}
	st := rep.(RepStat)
	return st, st.Err.Err()
}

// Mkdir creates a directory.
func (c *Client) Mkdir(p *sim.Proc, path string) error {
	rep, err := c.call(p, ReqMkdir{Path: path})
	if err != nil {
		return err
	}
	return rep.(RepGeneric).Err.Err()
}

// Unlink removes a file; the service revokes all extent capabilities
// handed out for it.
func (c *Client) Unlink(p *sim.Proc, path string) error {
	rep, err := c.call(p, ReqUnlink{Path: path})
	if err != nil {
		return err
	}
	return rep.(RepGeneric).Err.Err()
}

// Readdir lists a directory.
func (c *Client) Readdir(p *sim.Proc, path string) ([]string, error) {
	rep, err := c.call(p, ReqReaddir{Path: path})
	if err != nil {
		return nil, err
	}
	rd := rep.(RepReaddir)
	return rd.Entries, rd.Err.Err()
}

// File is an open file: it tracks the position and the memory capabilities
// obtained for the ranges touched so far.
type File struct {
	c    *Client
	fd   int
	size uint64
	pos  uint64

	// ranges holds one obtained capability per touched extent.
	ranges map[uint64]rangeCap // keyed by range start offset
	order  []uint64            // obtain order, for deterministic revocation
}

type rangeCap struct {
	sel  cap.Selector
	info RangeInfo
}

// Open opens a file, optionally creating or truncating it.
func (c *Client) Open(p *sim.Proc, path string, create, truncate bool) (*File, error) {
	rep, err := c.call(p, ReqOpen{Path: path, Create: create, Truncate: truncate})
	if err != nil {
		return nil, err
	}
	ro := rep.(RepOpen)
	if ro.Err != core.OK {
		return nil, ro.Err
	}
	return &File{c: c, fd: ro.FD, size: ro.Size, ranges: make(map[uint64]rangeCap)}, nil
}

// Size returns the file size as of the last server interaction.
func (f *File) Size() uint64 { return f.size }

// Pos returns the current file position.
func (f *File) Pos() uint64 { return f.pos }

// Seek sets the file position.
func (f *File) Seek(pos uint64) { f.pos = pos }

// RangeCaps returns the selectors of all obtained range capabilities in
// obtain order.
func (f *File) RangeCaps() []cap.Selector {
	sels := make([]cap.Selector, 0, len(f.order))
	for _, off := range f.order {
		sels = append(sels, f.ranges[off].sel)
	}
	return sels
}

// ensureRange obtains (once) the memory capability covering offset off.
func (f *File) ensureRange(p *sim.Proc, off uint64) (rangeCap, error) {
	for start, rc := range f.ranges {
		if off >= start && off < start+rc.info.Len {
			return rc, nil
		}
	}
	sel, reply, err := f.c.sess.Obtain(p, ObtainRange{FD: f.fd, Off: off})
	if err != nil {
		return rangeCap{}, err
	}
	info := reply.(RangeInfo)
	rc := rangeCap{sel: sel, info: info}
	f.ranges[info.Off] = rc
	f.order = append(f.order, info.Off)
	return rc, nil
}

// Read models reading n bytes sequentially from the current position:
// obtaining memory capabilities for newly touched extents and charging the
// data-movement time. It returns the number of bytes read (less than n at
// end of file).
func (f *File) Read(p *sim.Proc, n uint64) (uint64, error) {
	if f.pos >= f.size {
		return 0, nil
	}
	if f.pos+n > f.size {
		n = f.size - f.pos
	}
	left := n
	for left > 0 {
		rc, err := f.ensureRange(p, f.pos)
		if err != nil {
			return n - left, err
		}
		chunk := rc.info.Off + rc.info.Len - f.pos
		if chunk > left {
			chunk = left
		}
		p.Sleep(sim.Duration(float64(chunk) * f.c.DataCyclesPerByte))
		f.c.v.TransferData(p, chunk)
		f.pos += chunk
		left -= chunk
	}
	return n, nil
}

// Write models writing n bytes sequentially at the current position,
// extending the file as needed.
func (f *File) Write(p *sim.Proc, n uint64) error {
	if f.pos+n > f.size {
		rep, err := f.c.call(p, ReqExtend{FD: f.fd, NewSize: f.pos + n})
		if err != nil {
			return err
		}
		if e := rep.(RepGeneric).Err; e != core.OK {
			return e
		}
		f.size = f.pos + n
	}
	left := n
	for left > 0 {
		rc, err := f.ensureRange(p, f.pos)
		if err != nil {
			return err
		}
		chunk := rc.info.Off + rc.info.Len - f.pos
		if chunk > left {
			chunk = left
		}
		p.Sleep(sim.Duration(float64(chunk) * f.c.DataCyclesPerByte))
		f.c.v.TransferData(p, chunk)
		f.pos += chunk
		left -= chunk
	}
	return nil
}

// Close closes the file. With revoke=true the client revokes every range
// capability it obtained (the paper's "when the file is closed again, the
// memory capabilities are revoked"); with revoke=false the capabilities are
// left to bulk cleanup at VPE exit.
func (f *File) Close(p *sim.Proc, revoke bool) error {
	if revoke {
		for _, off := range f.order {
			if err := f.c.v.Revoke(p, f.ranges[off].sel); err != nil {
				return err
			}
		}
	}
	f.ranges = make(map[uint64]rangeCap)
	f.order = nil
	rep, err := f.c.call(p, ReqClose{FD: f.fd})
	if err != nil {
		return err
	}
	return rep.(RepGeneric).Err.Err()
}
