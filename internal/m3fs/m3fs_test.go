package m3fs

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// startFS boots a system with one m3fs instance (optionally preloaded) and
// returns the system plus a future resolving to the FS.
func startFS(t *testing.T, kernels, userPEs int, preload func(*FS)) (*core.System, *sim.Future[*FS]) {
	t.Helper()
	s := core.MustNew(core.Config{Kernels: kernels, UserPEs: userPEs})
	t.Cleanup(s.Close)
	ready := sim.NewFuture[*FS](s.Eng)
	if _, err := s.SpawnOn(s.UserPEs()[0], "m3fs", Program(Config{}, preload, ready)); err != nil {
		t.Fatal(err)
	}
	return s, ready
}

func TestOpenReadClose(t *testing.T) {
	s, ready := startFS(t, 1, 2, func(fs *FS) {
		fs.MustCreate("/data.bin", 3<<20) // 3 MiB -> 3 extents
	})
	var fsRef *FS
	var capOps uint64
	s.Spawn("app", func(v *core.VPE, p *sim.Proc) {
		fsRef = ready.Wait(p)
		c, err := Dial(p, v, "m3fs")
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		f, err := c.Open(p, "/data.bin", false, false)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		if f.Size() != 3<<20 {
			t.Errorf("size = %d", f.Size())
		}
		n, err := f.Read(p, 3<<20)
		if err != nil || n != 3<<20 {
			t.Errorf("read = %d, %v", n, err)
		}
		if err := f.Close(p, true); err != nil {
			t.Errorf("close: %v", err)
		}
		capOps = v.CapOps()
	})
	s.Run()
	if fsRef == nil {
		t.Fatal("service did not start")
	}
	st := fsRef.Stats()
	if st.Opens != 1 || st.RangeObtains != 3 || st.Closes != 1 {
		t.Fatalf("fs stats = %+v", st)
	}
	// Client cap ops: 1 session + 3 obtains + 3 revokes.
	if capOps != 7 {
		t.Fatalf("client cap ops = %d, want 7", capOps)
	}
}

func TestWriteExtendsFile(t *testing.T) {
	s, ready := startFS(t, 1, 2, nil)
	s.Spawn("app", func(v *core.VPE, p *sim.Proc) {
		ready.Wait(p)
		c, _ := Dial(p, v, "m3fs")
		f, err := c.Open(p, "/new.log", true, false)
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		if err := f.Write(p, 2<<20); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		st, err := c.Stat(p, "/new.log")
		if err != nil || st.Size != 2<<20 {
			t.Errorf("stat after write: %+v, %v", st, err)
		}
	})
	s.Run()
}

func TestMetadataOps(t *testing.T) {
	s, ready := startFS(t, 1, 2, func(fs *FS) {
		fs.MustMkdirAll("/a/b")
		fs.MustCreate("/a/b/x", 100)
		fs.MustCreate("/a/b/y", 200)
	})
	s.Spawn("app", func(v *core.VPE, p *sim.Proc) {
		ready.Wait(p)
		c, _ := Dial(p, v, "m3fs")
		entries, err := c.Readdir(p, "/a/b")
		if err != nil || len(entries) != 2 || entries[0] != "x" || entries[1] != "y" {
			t.Errorf("readdir = %v, %v", entries, err)
		}
		st, err := c.Stat(p, "/a/b")
		if err != nil || !st.IsDir {
			t.Errorf("stat dir = %+v, %v", st, err)
		}
		if _, err := c.Stat(p, "/a/b/zzz"); err == nil {
			t.Error("stat of missing file succeeded")
		}
		if err := c.Mkdir(p, "/a/c"); err != nil {
			t.Errorf("mkdir: %v", err)
		}
		if err := c.Mkdir(p, "/a/c"); err == nil {
			t.Error("duplicate mkdir succeeded")
		}
		if err := c.Unlink(p, "/a/b/x"); err != nil {
			t.Errorf("unlink: %v", err)
		}
		if _, err := c.Stat(p, "/a/b/x"); err == nil {
			t.Error("stat of unlinked file succeeded")
		}
	})
	s.Run()
}

// TestUnlinkRevokesClientCaps: when a file is removed, the service revokes
// its extent capabilities, recursively destroying the clients' range caps —
// the consistency discipline that motivates a fast revoke (paper §3).
func TestUnlinkRevokesClientCaps(t *testing.T) {
	s, ready := startFS(t, 2, 3, func(fs *FS) {
		fs.MustCreate("/shared", 1<<20)
	})
	holderDone := sim.NewFuture[*core.VPE](s.Eng)
	unlinked := sim.NewFuture[struct{}](s.Eng)
	// Holder on kernel 1 (remote from the service on kernel 0).
	s.SpawnOn(s.UserPEs()[2], "holder", func(v *core.VPE, p *sim.Proc) {
		ready.Wait(p)
		c, err := Dial(p, v, "m3fs")
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		f, err := c.Open(p, "/shared", false, false)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		if _, err := f.Read(p, 1024); err != nil {
			t.Errorf("read: %v", err)
			return
		}
		holderDone.Complete(v)
	})
	s.SpawnOn(s.UserPEs()[1], "remover", func(v *core.VPE, p *sim.Proc) {
		holderDone.Wait(p)
		c, _ := Dial(p, v, "m3fs")
		if err := c.Unlink(p, "/shared"); err != nil {
			t.Errorf("unlink: %v", err)
		}
		unlinked.Complete(struct{}{})
	})
	s.Run()
	if !unlinked.Done() {
		t.Fatal("unlink did not complete")
	}
	// The holder's range capability must be gone from its kernel.
	holder := holderDone.Wait(nil)
	k := holder.Kernel()
	for _, c := range k.Store().VPECaps(holder.ID) {
		if c.Type().String() == "mem" {
			t.Fatalf("holder still owns %v after unlink", c)
		}
	}
}

func TestMultipleClientsShareExtentCaps(t *testing.T) {
	s, ready := startFS(t, 1, 3, func(fs *FS) {
		fs.MustCreate("/f", 1<<20)
	})
	var fsRef *FS
	var wg sim.WaitGroup
	wg.Add(2)
	for i := 0; i < 2; i++ {
		s.Spawn("reader", func(v *core.VPE, p *sim.Proc) {
			fsRef = ready.Wait(p)
			c, _ := Dial(p, v, "m3fs")
			f, err := c.Open(p, "/f", false, false)
			if err != nil {
				t.Errorf("open: %v", err)
				return
			}
			if _, err := f.Read(p, 1<<20); err != nil {
				t.Errorf("read: %v", err)
			}
			wg.Done()
		})
	}
	s.Run()
	if wg.Count() != 0 {
		t.Fatal("readers did not finish")
	}
	// The extent capability is derived once and shared: two obtains, one
	// derivation.
	st := fsRef.Stats()
	if st.ExtentsDerived != 1 {
		t.Fatalf("extents derived = %d, want 1", st.ExtentsDerived)
	}
	if st.RangeObtains != 2 {
		t.Fatalf("range obtains = %d, want 2", st.RangeObtains)
	}
}

func TestTruncateOnOpen(t *testing.T) {
	s, ready := startFS(t, 1, 2, func(fs *FS) {
		fs.MustCreate("/t", 2<<20)
	})
	s.Spawn("app", func(v *core.VPE, p *sim.Proc) {
		ready.Wait(p)
		c, _ := Dial(p, v, "m3fs")
		f, err := c.Open(p, "/t", false, true)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		if f.Size() != 0 {
			t.Errorf("size after truncate = %d", f.Size())
		}
		if err := f.Write(p, 512); err != nil {
			t.Errorf("write: %v", err)
		}
	})
	s.Run()
}

func TestReadPastEOF(t *testing.T) {
	s, ready := startFS(t, 1, 2, func(fs *FS) {
		fs.MustCreate("/small", 100)
	})
	s.Spawn("app", func(v *core.VPE, p *sim.Proc) {
		ready.Wait(p)
		c, _ := Dial(p, v, "m3fs")
		f, _ := c.Open(p, "/small", false, false)
		n, err := f.Read(p, 1000)
		if err != nil || n != 100 {
			t.Errorf("read = %d, %v; want 100", n, err)
		}
		n, err = f.Read(p, 10)
		if err != nil || n != 0 {
			t.Errorf("read at EOF = %d, %v; want 0", n, err)
		}
	})
	s.Run()
}

func TestSpanningSession(t *testing.T) {
	// Service on kernel 0, client on kernel 1: session creation and range
	// obtains must traverse the inter-kernel protocol.
	s, ready := startFS(t, 2, 2, func(fs *FS) {
		fs.MustCreate("/x", 1<<20)
	})
	s.SpawnOn(s.UserPEs()[1], "app", func(v *core.VPE, p *sim.Proc) {
		ready.Wait(p)
		c, err := Dial(p, v, "m3fs")
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		f, err := c.Open(p, "/x", false, false)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		if _, err := f.Read(p, 1<<20); err != nil {
			t.Errorf("read: %v", err)
		}
		if err := f.Close(p, true); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	s.Run()
	k0, k1 := s.Kernel(0), s.Kernel(1)
	if k0.Stats().IKCReceived == 0 && k1.Stats().IKCReceived == 0 {
		t.Fatal("no inter-kernel traffic for a spanning session")
	}
	if k1.Stats().Sessions != 1 {
		t.Fatalf("client kernel sessions = %d, want 1", k1.Stats().Sessions)
	}
}
