package bench

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Options scales the application-level experiments. Full() reproduces the
// paper's sweeps (512 instances, 640 PEs); Quick() shrinks them for smoke
// runs and unit benchmarks.
type Options struct {
	// MaxInstances caps the largest instance count (paper: 512).
	MaxInstances int
	// Kernels64 is the "64 kernels" of the paper's sweeps.
	Kernels64 int
	// InstanceSteps are the x-axis instance counts, as fractions (x/8) of
	// MaxInstances*? — concretely the multiples used: 1..8 of
	// MaxInstances/8.
	InstanceSteps []int
	// Parallel is the experiment worker-pool size (0 = GOMAXPROCS). Every
	// experiment configuration runs on its own sim.Engine, so all simulated
	// metrics are independent of Parallel; only wallclock changes.
	Parallel int
	// Report, when non-nil, collects one Result per experiment run for the
	// machine-readable JSON report (see report.go).
	Report *Report
	// Executor, when non-nil, replaces the in-process worker pool — the
	// ShardExecutor runs the planned specs on worker subprocesses. All
	// simulated metrics are independent of the executor.
	Executor Executor
	// Costs seeds longest-first dispatch with recorded wallclocks from a
	// prior report; nil falls back to the instance-count heuristic. Only
	// wallclock changes.
	Costs *CostModel
	// SimWorkers partitions each experiment's event queue per kernel block
	// (see core.Config.SimWorkers), stamped onto every planned spec. All
	// simulated metrics are byte-identical at any setting; partitioned runs
	// additionally report per-domain busy/idle (Result.Domains).
	SimWorkers int
	// SimMode selects merged (default) or isolated-rounds simulation (see
	// core.Config.SimMode), stamped onto every planned spec. Rounds metrics
	// are deterministic at any -simworkers/-shards setting but intentionally
	// differ from merged: every cross-domain interaction costs NoC latency.
	SimMode string
	// FaultSeed seeds the deterministic fault injector of the faults
	// experiment (-faultseed); 0 means seed 1. Identical seeds give
	// byte-identical faulty runs at any -parallel/-shards/-simworkers.
	FaultSeed uint64
}

// Full returns the paper-scale options.
func Full() Options {
	return Options{MaxInstances: 512, Kernels64: 64, InstanceSteps: []int{64, 128, 192, 256, 320, 384, 448, 512}}
}

// Quick returns reduced options for smoke runs.
func Quick() Options {
	return Options{MaxInstances: 64, Kernels64: 8, InstanceSteps: []int{16, 32, 48, 64}}
}

func (o Options) scaleCfg(k, s int) (int, int) {
	// Scale kernel/service counts proportionally when running quick.
	f := o.Kernels64
	return maxi(1, k*f/64), maxi(1, s*f/64)
}

// sparseSteps thins the instance axis to the paper's Figures 7-9 x-axis
// (128..512 in four steps at full scale).
func (o Options) sparseSteps() []int {
	if len(o.InstanceSteps) <= 4 {
		return o.InstanceSteps
	}
	var out []int
	for i, n := range o.InstanceSteps {
		if i%2 == 1 {
			out = append(out, n)
		}
	}
	return out
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// --- Table 4 ---------------------------------------------------------------

// Table4Row is one application's row.
type Table4Row struct {
	Name     string
	CapOps1  uint64
	Rate1    float64
	CapOpsN  uint64
	RateN    float64
	PaperOps uint64
}

// Table4Result holds all rows.
type Table4Result struct {
	N    int // parallel instance count (paper: 512)
	Rows []Table4Row
}

// Table4 measures capability-operation counts and rates for 1 and N
// parallel instances (paper: 512 instances, 64 kernels + 64 services).
// All 2x6 runs execute in parallel on the harness.
func Table4(o Options) Table4Result {
	kernels, services := o.scaleCfg(64, 64)
	res := Table4Result{N: o.MaxInstances}
	traces := trace.All()
	cfgs := make([]workload.Config, 0, 2*len(traces))
	for _, tr := range traces {
		cfgs = append(cfgs,
			workload.Config{Kernels: 1, Services: 1, Instances: 1, Trace: tr},
			workload.Config{Kernels: kernels, Services: services, Instances: o.MaxInstances, Trace: tr})
	}
	rs := o.runWorkloads("table4", cfgs)
	for i, tr := range traces {
		make1 := auxOf[workloadAux](rs[2*i]).Makespan
		makeN := auxOf[workloadAux](rs[2*i+1]).Makespan
		// Table 4's headline cycle metric is the makespan (the denominator
		// of the ops/s rate), not the mean instance runtime.
		rs[2*i].Metrics.Cycles = make1
		rs[2*i+1].Metrics.Cycles = makeN
		res.Rows = append(res.Rows, Table4Row{
			Name:     tr.Name,
			CapOps1:  rs[2*i].Metrics.CapOps,
			Rate1:    capOpsRate(rs[2*i].Metrics.CapOps, make1),
			CapOpsN:  rs[2*i+1].Metrics.CapOps,
			RateN:    capOpsRate(rs[2*i+1].Metrics.CapOps, makeN),
			PaperOps: tr.WantCapOps,
		})
	}
	o.record(rs)
	return res
}

// capOpsRate mirrors workload.Result.CapOpsPerSecond from the quantities
// that cross the worker protocol (identical float operations, so the rates
// match the in-process computation bit for bit).
func capOpsRate(ops, makespan uint64) float64 {
	if makespan == 0 {
		return 0
	}
	return float64(ops) / (float64(makespan) / core.CyclesPerSecond)
}

// Print writes the table in the paper's layout.
func (r Table4Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Table 4: Capability operations per application (1 and %d instances)\n", r.N)
	fmt.Fprintln(w, "benchmark   ops(1)  ops/s(1)   ops(N)   ops/s(N)")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-10s  %6d  %8.0f  %7d  %9.0f\n",
			row.Name, row.CapOps1, row.Rate1, row.CapOpsN, row.RateN)
	}
}

// --- Figures 6-9 -------------------------------------------------------------

// EffPoint is one (instances, efficiency) point.
type EffPoint struct {
	Instances  int
	Efficiency float64
}

// EffSeries is one line of an efficiency figure.
type EffSeries struct {
	Label  string
	Points []EffPoint
}

// EffResult is a complete efficiency figure.
type EffResult struct {
	Title  string
	Series []EffSeries
}

// Print writes the figure as one column per series.
func (r EffResult) Print(w io.Writer) {
	fmt.Fprintln(w, r.Title)
	fmt.Fprint(w, "instances")
	for _, s := range r.Series {
		fmt.Fprintf(w, "  %18s", s.Label)
	}
	fmt.Fprintln(w)
	if len(r.Series) == 0 {
		return
	}
	for i, pt := range r.Series[0].Points {
		fmt.Fprintf(w, "%9d", pt.Instances)
		for _, s := range r.Series {
			fmt.Fprintf(w, "  %17.1f%%", 100*s.Points[i].Efficiency)
		}
		fmt.Fprintln(w)
	}
}

// efficiencySweep measures parallel efficiency over instance counts for a
// fixed kernel/service configuration; the single-instance baseline and the
// points all run in parallel. Figures batch several sweeps into one harness
// run via runEffSweeps instead.
func (o Options) efficiencySweep(tr *trace.Trace, kernels, services int, steps []int) []EffPoint {
	return o.runEffSweeps("sweep", []sweepSpec{{tr: tr, kernels: kernels, services: services, steps: steps}})[0]
}

// Fig6 measures parallel efficiency of all six applications at 32 kernels
// and 32 services (paper Figure 6). All six sweeps share one task batch.
func Fig6(o Options) EffResult {
	kernels, services := o.scaleCfg(32, 32)
	res := EffResult{Title: fmt.Sprintf("Figure 6: Parallel efficiency, %d kernels + %d services", kernels, services)}
	traces := trace.All()
	specs := make([]sweepSpec, len(traces))
	for i, tr := range traces {
		specs[i] = sweepSpec{tr: tr, kernels: kernels, services: services, steps: o.InstanceSteps}
	}
	pts := o.runEffSweeps("fig6", specs)
	for i, tr := range traces {
		res.Series = append(res.Series, EffSeries{Label: tr.Name, Points: pts[i]})
	}
	return res
}

// Fig7 measures service dependence: tar and SQLite at max kernels with a
// growing number of services (paper Figure 7). Both traces and all service
// counts form one task batch.
func Fig7(o Options) []EffResult {
	kernels, _ := o.scaleCfg(64, 64)
	svcCounts := []int{4, 8, 16, 32, 48, 64}
	traces := []*trace.Trace{trace.Tar(), trace.SQLite()}
	var specs []sweepSpec
	for _, tr := range traces {
		for _, s := range svcCounts {
			_, services := o.scaleCfg(64, s)
			specs = append(specs, sweepSpec{tr: tr, kernels: kernels, services: services, steps: o.sparseSteps()})
		}
	}
	pts := o.runEffSweeps("fig7", specs)
	var out []EffResult
	for ti, tr := range traces {
		res := EffResult{Title: fmt.Sprintf("Figure 7 (%s): service dependence, %d kernels", tr.Name, kernels)}
		for si := range svcCounts {
			sp := specs[ti*len(svcCounts)+si]
			res.Series = append(res.Series, EffSeries{
				Label:  fmt.Sprintf("%dK %dS", sp.kernels, sp.services),
				Points: pts[ti*len(svcCounts)+si],
			})
		}
		out = append(out, res)
	}
	return out
}

// Fig8 measures kernel dependence: PostMark and LevelDB at max services
// with a growing number of kernels (paper Figure 8).
func Fig8(o Options) []EffResult {
	_, services := o.scaleCfg(64, 64)
	kCounts := []int{4, 8, 16, 32, 48, 64}
	traces := []*trace.Trace{trace.PostMark(), trace.LevelDB()}
	var specs []sweepSpec
	for _, tr := range traces {
		for _, k := range kCounts {
			kernels, _ := o.scaleCfg(k, 64)
			specs = append(specs, sweepSpec{tr: tr, kernels: kernels, services: services, steps: o.sparseSteps()})
		}
	}
	pts := o.runEffSweeps("fig8", specs)
	var out []EffResult
	for ti, tr := range traces {
		res := EffResult{Title: fmt.Sprintf("Figure 8 (%s): kernel dependence, %d services", tr.Name, services)}
		for ki := range kCounts {
			sp := specs[ti*len(kCounts)+ki]
			res.Series = append(res.Series, EffSeries{
				Label:  fmt.Sprintf("%dK %dS", sp.kernels, sp.services),
				Points: pts[ti*len(kCounts)+ki],
			})
		}
		out = append(out, res)
	}
	return out
}

// SysEffPoint is one (total PEs, system efficiency) point.
type SysEffPoint struct {
	PEs        int
	Efficiency float64
}

// SysEffSeries is one configuration line of Figure 9.
type SysEffSeries struct {
	Label    string
	Kernels  int
	Services int
	Points   []SysEffPoint
}

// Fig9Result is the system-efficiency figure for one application.
type Fig9Result struct {
	Title  string
	Series []SysEffSeries
}

// Print writes the figure.
func (r Fig9Result) Print(w io.Writer) {
	fmt.Fprintln(w, r.Title)
	for _, s := range r.Series {
		fmt.Fprintf(w, "  %-12s", s.Label)
		for _, pt := range s.Points {
			fmt.Fprintf(w, "  (%d PEs: %.1f%%)", pt.PEs, 100*pt.Efficiency)
		}
		fmt.Fprintln(w)
	}
}

// Fig9 measures system efficiency (OS PEs count as zero) for PostMark and
// SQLite across OS configurations and machine sizes (paper Figure 9).
// Every baseline and machine-size run across both traces is one task batch.
func Fig9(o Options) []Fig9Result {
	configs := []struct{ k, s int }{
		{8, 8}, {16, 16}, {32, 16}, {32, 32}, {48, 32}, {64, 32},
	}
	peCounts := []int{128, 256, 384, 512, 640}
	if o.MaxInstances < 512 {
		peCounts = []int{32, 64, 96, 128}
	}
	traces := []*trace.Trace{trace.PostMark(), trace.SQLite()}

	// Flatten every run into one config list, remembering the layout:
	// per (trace, config): baseline index, then the (pes, run index) points.
	type seriesPlan struct {
		tr               *trace.Trace
		kernels, service int
		baseIdx          int
		pes              []int
		runIdx           []int
	}
	var cfgs []workload.Config
	var plans []seriesPlan
	for _, tr := range traces {
		for _, cfg := range configs {
			kernels, services := o.scaleCfg(cfg.k, cfg.s)
			pl := seriesPlan{tr: tr, kernels: kernels, service: services, baseIdx: len(cfgs)}
			cfgs = append(cfgs, workload.Config{Kernels: kernels, Services: services, Instances: 1, Trace: tr})
			for _, pes := range peCounts {
				instances := pes - kernels - services
				if instances < 1 {
					continue
				}
				pl.pes = append(pl.pes, pes)
				pl.runIdx = append(pl.runIdx, len(cfgs))
				cfgs = append(cfgs, workload.Config{Kernels: kernels, Services: services, Instances: instances, Trace: tr})
			}
			plans = append(plans, pl)
		}
	}
	rs := o.runWorkloads("fig9", cfgs)

	var out []Fig9Result
	pi := 0
	for _, tr := range traces {
		res := Fig9Result{Title: fmt.Sprintf("Figure 9 (%s): system efficiency", tr.Name)}
		for range configs {
			pl := plans[pi]
			pi++
			s := SysEffSeries{
				Label:    fmt.Sprintf("%dK %dS", pl.kernels, pl.service),
				Kernels:  pl.kernels,
				Services: pl.service,
			}
			alone := rs[pl.baseIdx].Metrics.Cycles
			rs[pl.baseIdx].Metrics.Efficiency = 1
			for j, pes := range pl.pes {
				r := &rs[pl.runIdx[j]]
				eff := float64(alone) / float64(r.Metrics.Cycles)
				sysEff := workload.SystemEfficiency(eff, pl.kernels, pl.service, pes-pl.kernels-pl.service)
				r.Metrics.Efficiency = sysEff
				s.Points = append(s.Points, SysEffPoint{PEs: pes, Efficiency: sysEff})
			}
			res.Series = append(res.Series, s)
		}
		out = append(out, res)
	}
	o.record(rs)
	return out
}

// --- Figure 10 ---------------------------------------------------------------

// NginxPoint is one (servers, requests/s) point.
type NginxPoint struct {
	Servers int
	ReqPerS float64
}

// NginxSeries is one configuration line.
type NginxSeries struct {
	Label  string
	Points []NginxPoint
}

// Fig10Result is the server-benchmark figure.
type Fig10Result struct {
	Title  string
	Series []NginxSeries
}

// Print writes the figure.
func (r Fig10Result) Print(w io.Writer) {
	fmt.Fprintln(w, r.Title)
	for _, s := range r.Series {
		fmt.Fprintf(w, "  %-12s", s.Label)
		for _, pt := range s.Points {
			fmt.Fprintf(w, "  (%d srv: %.0f req/s)", pt.Servers, pt.ReqPerS)
		}
		fmt.Fprintln(w)
	}
}

// kindNginx runs the closed-loop Nginx server benchmark of Figure 10.
const kindNginx = "nginx"

// nginxAux is the side data of a server run: the completed request count,
// from which the post-process derives the requests/s axis.
type nginxAux struct {
	Requests uint64 `json:"requests"`
}

func init() { registerKind(kindNginx, runNginxSpec) }

func runNginxSpec(spec TaskSpec, eng *sim.Engine) (Metrics, any, error) {
	r, err := workload.RunNginx(workload.NginxConfig{
		Kernels:  spec.Config.Kernels,
		Services: spec.Config.Services,
		Servers:  spec.Config.Instances,
		Engine:   eng,
	})
	if err != nil {
		return Metrics{}, nil, err
	}
	m := Metrics{Cycles: uint64(r.Duration), CapOps: r.TotalCapOps}
	return m, nginxAux{Requests: r.Requests}, nil
}

// reqRate mirrors workload.NginxResult.RequestsPerSecond from the
// serialized quantities (Cycles is the measurement window).
func reqRate(requests, duration uint64) float64 {
	if duration == 0 {
		return 0
	}
	return float64(requests) / (float64(duration) / core.CyclesPerSecond)
}

// Fig10 measures Nginx scalability over server process counts and OS
// configurations (paper Figure 10). Every (config, servers) cell is an
// independent simulation; the whole figure is one planned batch.
func Fig10(o Options) Fig10Result {
	configs := []struct{ k, s int }{
		{8, 8}, {8, 16}, {8, 32}, {16, 16}, {32, 16}, {32, 32},
	}
	serverCounts := []int{32, 64, 96, 128, 160, 192, 224, 256}
	if o.MaxInstances < 512 {
		serverCounts = []int{8, 16, 24, 32}
	}
	var specs []TaskSpec
	for _, cfg := range configs {
		kernels, services := o.scaleCfg(cfg.k, cfg.s)
		for _, n := range serverCounts {
			specs = append(specs, TaskSpec{
				Experiment: "fig10",
				Kind:       kindNginx,
				Config:     ExpConfig{Kernels: kernels, Services: services, Instances: n},
			})
		}
	}
	rs := o.execute(specs)
	res := Fig10Result{Title: "Figure 10: Scalability of the Nginx webserver"}
	for ci := range configs {
		first := specs[ci*len(serverCounts)].Config
		s := NginxSeries{Label: fmt.Sprintf("%dK %dS", first.Kernels, first.Services)}
		for si, n := range serverCounts {
			r := rs[ci*len(serverCounts)+si]
			s.Points = append(s.Points, NginxPoint{
				Servers: n,
				ReqPerS: reqRate(auxOf[nginxAux](r).Requests, r.Metrics.Cycles),
			})
		}
		res.Series = append(res.Series, s)
	}
	o.record(rs)
	return res
}

// parallelEfficiencyBand is used by tests: the paper's headline claim is
// 70-78% parallel efficiency at 512 instances with 11% of PEs for the OS.
func parallelEfficiencyBand(o Options) (lo, hi float64) {
	kernels, services := o.scaleCfg(32, 32)
	traces := trace.All()
	specs := make([]sweepSpec, len(traces))
	for i, tr := range traces {
		specs[i] = sweepSpec{tr: tr, kernels: kernels, services: services, steps: []int{o.MaxInstances}}
	}
	pts := o.runEffSweeps("band", specs)
	lo, hi = 2.0, 0.0
	for i := range traces {
		e := pts[i][0].Efficiency
		if e < lo {
			lo = e
		}
		if e > hi {
			hi = e
		}
	}
	return lo, hi
}
