package bench

import (
	"strings"
	"testing"

	"repro/internal/trace"
	"repro/internal/workload"
)

// TestTable3MatchesPaperShape asserts the paper's Table 3 relationships:
// group-spanning operations roughly double the local ones, and SemperOS
// carries a moderate DDL overhead over M3.
func TestTable3MatchesPaperShape(t *testing.T) {
	r := Table3(Options{})
	// Paper: 3597 / 6484 / 1997 / 3876 cycles; M3 3250 / 1423.
	within := func(name string, got, want uint64, tolPct float64) {
		t.Helper()
		lo := float64(want) * (1 - tolPct/100)
		hi := float64(want) * (1 + tolPct/100)
		if float64(got) < lo || float64(got) > hi {
			t.Errorf("%s = %d, want %d ±%.0f%%", name, got, want, tolPct)
		}
	}
	within("exchange local", uint64(r.ExchangeLocal), 3597, 5)
	within("exchange spanning", uint64(r.ExchangeSpanning), 6484, 5)
	within("revoke local", uint64(r.RevokeLocal), 1997, 5)
	within("revoke spanning", uint64(r.RevokeSpanning), 3876, 5)
	within("M3 exchange", uint64(r.M3Exchange), 3250, 5)
	within("M3 revoke", uint64(r.M3Revoke), 1423, 5)
	if r.ExchangeSpanning < r.ExchangeLocal*3/2 {
		t.Error("spanning exchange should cost well over the local one")
	}
	if r.M3Exchange >= r.ExchangeLocal {
		t.Error("M3 exchange should be cheaper than SemperOS local")
	}
}

// TestFig4Shape asserts chain revocation relationships: cost grows linearly
// with chain length; the spanning chain costs about 3x the local one; M3 is
// roughly half of SemperOS locally.
func TestFig4Shape(t *testing.T) {
	r := Fig4(Options{}, 30)
	last := len(r.Lengths) - 1
	localSlope := float64(r.LocalSemperOS[last].Cycles-r.LocalSemperOS[0].Cycles) / float64(r.Lengths[last])
	spanSlope := float64(r.SpanningChain[last].Cycles-r.SpanningChain[0].Cycles) / float64(r.Lengths[last])
	m3Slope := float64(r.LocalM3[last].Cycles-r.LocalM3[0].Cycles) / float64(r.Lengths[last])
	if ratio := spanSlope / localSlope; ratio < 2.5 || ratio > 4.5 {
		t.Errorf("spanning/local slope ratio = %.2f, want ~3 (paper)", ratio)
	}
	if ratio := m3Slope / localSlope; ratio < 0.4 || ratio > 0.75 {
		t.Errorf("M3/SemperOS local slope ratio = %.2f, want ~0.5 (paper)", ratio)
	}
	// Monotonicity.
	for i := 1; i <= last; i++ {
		if r.LocalSemperOS[i].Cycles <= r.LocalSemperOS[i-1].Cycles {
			t.Error("local chain revocation time not increasing")
		}
	}
}

// TestFig5BreakEven asserts the paper's Figure 5 result: distributing the
// child capabilities over 12 kernels breaks even with local revocation at
// about 80 children, and one remote kernel is much slower than local.
func TestFig5BreakEven(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := Fig5(Options{}, 128)
	series := map[int][]ChainPoint{}
	for _, s := range r.Series {
		series[s.ExtraKernels] = s.Points
	}
	local, k12, k1 := series[0], series[12], series[1]
	// Break-even: by 96 children the 12-kernel spread must win; below 64 it
	// must not.
	idxOf := func(n int) int {
		for i, c := range r.Counts {
			if c == n {
				return i
			}
		}
		t.Fatalf("count %d not measured", n)
		return -1
	}
	if i := idxOf(96); k12[i].Cycles >= local[i].Cycles {
		t.Errorf("at 96 children 12 kernels (%d) should beat local (%d)", k12[i].Cycles, local[i].Cycles)
	}
	if i := idxOf(48); k12[i].Cycles <= local[i].Cycles {
		t.Errorf("at 48 children local (%d) should beat 12 kernels (%d)", local[i].Cycles, k12[i].Cycles)
	}
	// A single remote kernel serializes all inter-kernel work: much slower.
	if i := idxOf(96); k1[i].Cycles < 2*local[i].Cycles {
		t.Errorf("1+1 kernels (%d) should be far slower than local (%d)", k1[i].Cycles, local[i].Cycles)
	}
}

// TestTable4Quick verifies the capability operation counts at quick scale.
func TestTable4Quick(t *testing.T) {
	r := Table4(Quick())
	for _, row := range r.Rows {
		if row.CapOps1 != row.PaperOps {
			t.Errorf("%s: cap ops = %d, want %d", row.Name, row.CapOps1, row.PaperOps)
		}
		if row.CapOpsN != row.PaperOps*uint64(r.N) {
			t.Errorf("%s: cap ops(N) = %d, want %d", row.Name, row.CapOpsN, row.PaperOps*uint64(r.N))
		}
		if row.RateN <= row.Rate1 {
			t.Errorf("%s: aggregate rate not above single rate", row.Name)
		}
	}
}

// TestEfficiencyBandQuick checks that parallel efficiency degrades with
// scale but stays in a sane band at quick scale.
func TestEfficiencyBandQuick(t *testing.T) {
	lo, hi := parallelEfficiencyBand(Quick())
	if lo < 0.4 || hi > 1.01 {
		t.Errorf("efficiency band [%.2f, %.2f] out of range", lo, hi)
	}
	if lo > hi {
		t.Errorf("band inverted: [%.2f, %.2f]", lo, hi)
	}
}

// TestFig6QuickShape: efficiency must not increase with instance count.
func TestFig6QuickShape(t *testing.T) {
	o := Quick()
	o.InstanceSteps = []int{16, 64}
	pts := o.efficiencySweep(trace.PostMark(), o.Kernels64/2, o.Kernels64/2, o.InstanceSteps)
	if pts[1].Efficiency > pts[0].Efficiency*1.05 {
		t.Errorf("efficiency rose with load: %.2f -> %.2f", pts[0].Efficiency, pts[1].Efficiency)
	}
}

// TestFig7ServiceDependenceQuick: more services must help a service-bound
// workload.
func TestFig7ServiceDependenceQuick(t *testing.T) {
	tr := trace.SQLite()
	few := Options{}.efficiencySweep(tr, 8, 1, []int{48})
	many := Options{}.efficiencySweep(tr, 8, 8, []int{48})
	if many[0].Efficiency <= few[0].Efficiency {
		t.Errorf("8 services (%.2f) not better than 1 (%.2f)", many[0].Efficiency, few[0].Efficiency)
	}
}

// TestFig8KernelDependenceQuick: more kernels must help a cap-op-heavy
// workload.
func TestFig8KernelDependenceQuick(t *testing.T) {
	tr := trace.PostMark()
	few := Options{}.efficiencySweep(tr, 1, 8, []int{48})
	many := Options{}.efficiencySweep(tr, 8, 8, []int{48})
	if many[0].Efficiency <= few[0].Efficiency {
		t.Errorf("8 kernels (%.2f) not better than 1 (%.2f)", many[0].Efficiency, few[0].Efficiency)
	}
}

// TestFig10QuickShape: requests scale with server count when the OS is
// provisioned, and print output renders.
func TestFig10QuickShape(t *testing.T) {
	small, err := workload.RunNginx(workload.NginxConfig{Kernels: 4, Services: 4, Servers: 4, Duration: 4_000_000})
	if err != nil {
		t.Fatal(err)
	}
	big, err := workload.RunNginx(workload.NginxConfig{Kernels: 4, Services: 4, Servers: 12, Duration: 4_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if big.RequestsPerSecond() <= small.RequestsPerSecond() {
		t.Errorf("12 servers (%.0f/s) not faster than 4 (%.0f/s)",
			big.RequestsPerSecond(), small.RequestsPerSecond())
	}
}

// TestPrinters smoke-tests the report formatting.
func TestPrinters(t *testing.T) {
	var sb strings.Builder
	Table3(Options{}).Print(&sb)
	Fig4(Options{}, 10).Print(&sb)
	r := Table4(Quick())
	r.Print(&sb)
	for _, want := range []string{"Table 3", "Figure 4", "Table 4", "tar", "postmark"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}
