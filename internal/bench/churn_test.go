package bench

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
)

// TestChurnStorm drives the churn scenario at test scale and checks its
// headline contract: the storm drains (no hangs), the crashed kernel
// rejoins exactly once, operations degrade but complete partially, and no
// capability or DDL state is left owned by the dead incarnation.
func TestChurnStorm(t *testing.T) {
	r, err := Churn(Options{FaultSeed: 1}, 64, 8, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(r.Rows))
	}
	if r.CrashKernel != 8 {
		t.Fatalf("auto crash kernel = %d, want the last kernel (8)", r.CrashKernel)
	}
	for _, row := range r.Rows {
		if row.Aux.LeakedEntries != 0 {
			t.Errorf("%s at %dbp leaked %d entries", row.Scenario, row.DropBp, row.Aux.LeakedEntries)
		}
		if row.Completed <= 0 || row.Completed > 1 {
			t.Errorf("%s at %dbp: completed %.3f outside (0, 1]", row.Scenario, row.DropBp, row.Completed)
		}
		// The revocation storm must race at least one exchange into failure
		// on every row — otherwise the schedule no longer interleaves and
		// the scenario tests nothing.
		if row.Aux.ObtainsOK == row.Aux.ObtainsAttempted {
			t.Errorf("%s at %dbp: every obtain succeeded — no revocation/exchange race", row.Scenario, row.DropBp)
		}
		if row.Aux.RevokesOK == 0 {
			t.Errorf("%s at %dbp: no revocation succeeded", row.Scenario, row.DropBp)
		}
		switch row.Scenario {
		case "nocrash":
			if row.Aux.Rejoins != 0 {
				t.Errorf("nocrash row recorded %d rejoins", row.Aux.Rejoins)
			}
		case "storm":
			if row.Aux.Rejoins != 1 {
				t.Errorf("storm at %dbp: Rejoins = %d, want 1", row.DropBp, row.Aux.Rejoins)
			}
			if row.Aux.MeanRejoinCycles == 0 {
				t.Errorf("storm at %dbp: rejoin recorded no cycles", row.DropBp)
			}
			if row.Aux.InjBlackholed == 0 {
				t.Errorf("storm at %dbp: nothing blackholed — crash window missed the storm", row.DropBp)
			}
			// Post-recovery arrivals must reach the rejoined fabric: the
			// storm cannot fail every obtain of the crashed kernel's clients.
			if row.Aux.ObtainsOK == 0 {
				t.Errorf("storm at %dbp: every obtain failed", row.DropBp)
			}
		}
	}
}

// TestChurnDeterministic: the churn report is an exact function of (seed,
// plan) — byte-identical across worker-pool sizes and event-queue
// partitionings, and different under a different seed.
func TestChurnDeterministic(t *testing.T) {
	a, err := Churn(Options{FaultSeed: 3, Parallel: 1}, 32, 4, -1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Churn(Options{FaultSeed: 3, Parallel: 4}, 32, 4, -1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("identical seeds diverged across pool sizes:\n%+v\n%+v", a, b)
	}
	c, err := Churn(Options{FaultSeed: 3, SimWorkers: 4}, 32, 4, -1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, c) {
		t.Errorf("partitioned run diverged from sequential:\n%+v\n%+v", a, c)
	}
	d, err := Churn(Options{FaultSeed: 4}, 32, 4, -1)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Rows, d.Rows) {
		t.Errorf("seeds 3 and 4 produced identical storms")
	}
}

// TestChurnRounds: the scenario runs under isolated rounds — deterministic
// across repeats and leak-free — as long as the crashed kernel is not the
// rounds-mode DRAM-refill home.
func TestChurnRounds(t *testing.T) {
	run := func() ChurnResult {
		r, err := Churn(Options{FaultSeed: 1, SimMode: core.SimModeRounds}, 32, 4, -1)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("rounds-mode churn diverged across identical runs:\n%+v\n%+v", a, b)
	}
	for _, row := range a.Rows {
		if row.Aux.LeakedEntries != 0 {
			t.Errorf("rounds %s at %dbp leaked %d entries", row.Scenario, row.DropBp, row.Aux.LeakedEntries)
		}
		if row.Scenario == "storm" && row.Aux.Rejoins != 1 {
			t.Errorf("rounds storm at %dbp: Rejoins = %d, want 1", row.DropBp, row.Aux.Rejoins)
		}
	}
}

// TestChurnRejectsInvalidScenarios: crashing kernel 0 under rounds (the
// DRAM-refill home) and out-of-range crash kernels are errors before any
// simulation runs.
func TestChurnRejectsInvalidScenarios(t *testing.T) {
	if _, err := Churn(Options{SimMode: core.SimModeRounds}, 16, 4, 0); err == nil {
		t.Errorf("crashing kernel 0 under rounds was accepted")
	} else if !strings.Contains(err.Error(), "kernel 0") {
		t.Errorf("unexpected error for kernel 0 under rounds: %v", err)
	}
	if _, err := Churn(Options{}, 16, 4, 9); err == nil {
		t.Errorf("out-of-range crash kernel was accepted")
	}
	// Kernel 0 under merged mode is degenerate but legal.
	if _, err := Churn(Options{}, 16, 4, 0); err != nil {
		t.Errorf("crashing kernel 0 under merged mode rejected: %v", err)
	}
}
