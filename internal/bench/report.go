package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

// ReportSchema versions the JSON layout below. Bump it only for breaking
// changes; additions of optional fields keep the same version.
const ReportSchema = "semperos-bench/v1"

// Report collects experiment Results and serializes them as the
// machine-readable perf trajectory (the BENCH_*.json files). The layout is
//
//	{
//	  "schema": "semperos-bench/v1",
//	  "quick": true,
//	  "parallel": 4,
//	  "results": [
//	    {"experiment": "fig6/tar",
//	     "config": {"kernels": 4, "services": 4, "instances": 16},
//	     "metrics": {"cycles": 6210000, "efficiency": 0.93, "capops": 336},
//	     "wallclock_ns": 1234567},
//	    ...
//	  ]
//	}
//
// Every metrics field is simulated and deterministic — identical across
// -parallel settings and across machines; only wallclock_ns varies.
type Report struct {
	mu sync.Mutex

	Schema   string `json:"schema"`
	Quick    bool   `json:"quick"`
	Parallel int    `json:"parallel"`
	// SimWorkers records the run's event-queue partitioning (see
	// Options.SimWorkers); omitted when the run used the sequential engine.
	// Optional addition, schema unchanged.
	SimWorkers int `json:"simworkers,omitempty"`
	// SimMode records the run's simulation mode (see Options.SimMode);
	// omitted for merged runs. Optional addition, schema unchanged.
	SimMode string   `json:"simmode,omitempty"`
	Results []Result `json:"results"`
}

// NewReport returns an empty report carrying the run's settings.
func NewReport(quick bool, parallel int) *Report {
	return &Report{Schema: ReportSchema, Quick: quick, Parallel: parallel}
}

// Add appends results. It is safe for concurrent use, though the sweeps
// record whole ordered batches so the file stays deterministic.
func (r *Report) Add(rs ...Result) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.Results = append(r.Results, rs...)
}

// Len returns the number of recorded results.
func (r *Report) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.Results)
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WallclockSummary writes the sweep's host-time profile: the topN slowest
// tasks and the per-experiment wall-clock totals (grouped by the experiment
// name's top-level component, so fig6/tar and fig6/sqlite pool under fig6).
// This is the visible input of the cost model: the slowest tasks are the
// ones longest-first dispatch pulls to the front, and the totals show where
// a sharded sweep's wall-clock goes.
func (r *Report) WallclockSummary(w io.Writer, topN int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.Results) == 0 {
		return
	}
	ms := func(ns int64) float64 { return float64(ns) / float64(time.Millisecond) }

	idx := make([]int, len(r.Results))
	var total int64
	for i, res := range r.Results {
		idx[i] = i
		total += res.WallclockNS
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return r.Results[idx[a]].WallclockNS > r.Results[idx[b]].WallclockNS
	})
	fmt.Fprintf(w, "Wall-clock summary: %d tasks, %.0fms of task time\n", len(r.Results), ms(total))
	fmt.Fprintf(w, " slowest tasks:\n")
	for i := 0; i < min(topN, len(idx)); i++ {
		res := r.Results[idx[i]]
		fmt.Fprintf(w, "  %10.1fms  %-24s %dK %dS %dI\n", ms(res.WallclockNS),
			res.Experiment, res.Config.Kernels, res.Config.Services, res.Config.Instances)
	}

	groupTotal := map[string]int64{}
	groupTasks := map[string]int{}
	var groups []string
	for _, res := range r.Results {
		g, _, _ := strings.Cut(res.Experiment, "/")
		if _, seen := groupTotal[g]; !seen {
			groups = append(groups, g)
		}
		groupTotal[g] += res.WallclockNS
		groupTasks[g]++
	}
	sort.SliceStable(groups, func(a, b int) bool { return groupTotal[groups[a]] > groupTotal[groups[b]] })
	fmt.Fprintf(w, " per-experiment totals:\n")
	for _, g := range groups {
		fmt.Fprintf(w, "  %10.1fms  %-12s (%d tasks)\n", ms(groupTotal[g]), g, groupTasks[g])
	}

	// Allocation profile: total capabilities minted across all tasks that
	// report a count, and the largest end-of-task heap any single task saw
	// (a process-global HeapAlloc reading — an RSS-style ceiling, not a
	// per-task attribution).
	var capsalloc, capsbytes uint64
	for _, res := range r.Results {
		capsalloc += res.CapsMinted
		capsbytes = max(capsbytes, res.HeapPeakBytes)
	}
	if capsalloc > 0 || capsbytes > 0 {
		fmt.Fprintf(w, " capsalloc: %d caps minted   capsbytes: %.1f MiB peak task heap\n",
			capsalloc, float64(capsbytes)/(1<<20))
	}

	// Partitioned runs: aggregate the per-domain busy/idle attribution over
	// all tasks that ran with a partitioned engine, so a sweep shows where
	// its event work concentrated (domain 0 hosts kernel 0 and with it the
	// memory PEs and the service directory, so skew is expected).
	domBusy, domIdle := map[int]int64{}, map[int]int64{}
	domEvents := map[int]uint64{}
	maxDom, partitioned := 0, 0
	for _, res := range r.Results {
		if len(res.Domains) == 0 {
			continue
		}
		partitioned++
		for d, dw := range res.Domains {
			domBusy[d] += dw.BusyNS
			domIdle[d] += dw.IdleNS
			domEvents[d] += dw.Events
			maxDom = max(maxDom, d)
		}
	}
	if partitioned > 0 {
		var totalEvents uint64
		var totalBusy int64
		for d := 0; d <= maxDom; d++ {
			totalEvents += domEvents[d]
			totalBusy += domBusy[d]
		}
		fmt.Fprintf(w, " per-domain busy/idle (%d partitioned tasks):\n", partitioned)
		for d := 0; d <= maxDom; d++ {
			share := 0.0
			if totalEvents > 0 {
				share = 100 * float64(domEvents[d]) / float64(totalEvents)
			}
			fmt.Fprintf(w, "  domain %d: %10.1fms busy %10.1fms idle  %d events (%.1f%%)\n",
				d, ms(domBusy[d]), ms(domIdle[d]), domEvents[d], share)
		}
		// Imbalance: how far the busiest domain sits above the mean busy
		// time — 0% means perfectly balanced, 100% means the busiest domain
		// carried twice the mean.
		if totalBusy > 0 {
			mean := float64(totalBusy) / float64(maxDom+1)
			var peak float64
			for d := 0; d <= maxDom; d++ {
				peak = max(peak, float64(domBusy[d]))
			}
			fmt.Fprintf(w, "  imbalance: %.1f%% (busiest domain vs mean busy)\n", 100*(peak-mean)/mean)
		}
	}
}

// WriteFile writes the report to path (the BENCH_*.json trajectory point).
func (r *Report) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
