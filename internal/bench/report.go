package bench

import (
	"encoding/json"
	"io"
	"os"
	"sync"
)

// ReportSchema versions the JSON layout below. Bump it only for breaking
// changes; additions of optional fields keep the same version.
const ReportSchema = "semperos-bench/v1"

// Report collects experiment Results and serializes them as the
// machine-readable perf trajectory (the BENCH_*.json files). The layout is
//
//	{
//	  "schema": "semperos-bench/v1",
//	  "quick": true,
//	  "parallel": 4,
//	  "results": [
//	    {"experiment": "fig6/tar",
//	     "config": {"kernels": 4, "services": 4, "instances": 16},
//	     "metrics": {"cycles": 6210000, "efficiency": 0.93, "capops": 336},
//	     "wallclock_ns": 1234567},
//	    ...
//	  ]
//	}
//
// Every metrics field is simulated and deterministic — identical across
// -parallel settings and across machines; only wallclock_ns varies.
type Report struct {
	mu sync.Mutex

	Schema   string   `json:"schema"`
	Quick    bool     `json:"quick"`
	Parallel int      `json:"parallel"`
	Results  []Result `json:"results"`
}

// NewReport returns an empty report carrying the run's settings.
func NewReport(quick bool, parallel int) *Report {
	return &Report{Schema: ReportSchema, Quick: quick, Parallel: parallel}
}

// Add appends results. It is safe for concurrent use, though the sweeps
// record whole ordered batches so the file stays deterministic.
func (r *Report) Add(rs ...Result) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.Results = append(r.Results, rs...)
}

// Len returns the number of recorded results.
func (r *Report) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.Results)
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the report to path (the BENCH_*.json trajectory point).
func (r *Report) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
