package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/cap"
	"repro/internal/core"
	"repro/internal/dtu"
	"repro/internal/sim"
)

// Scalability sweep (`-experiment scale`). The compact capability tables
// (slab-backed cap.Store, open-addressed ddl.KeyMap, paged ddl.Generator)
// exist so one simulated machine can hold millions of capabilities across
// more than a thousand kernels; this experiment demonstrates exactly that.
// Each grid point builds a machine with core.Config.RelaxLimits (the
// architectural MaxKernels/MaxPEsPerKernel sizing lifted; the ddl.Key bit
// fields still bound it at ddl.MaxPEs PEs), mints capsPer+2 capabilities
// per VPE (the VPE self cap, one root mem cap, capsPer derives) plus one
// spanning obtain per non-root kernel, and then revokes the root's
// cross-machine tree — the revocation-latency column. The grid grows
// geometrically and the sweep runs its points sequentially, stopping when
// the wall-clock budget or the heap guard trips, so it degrades to a
// partial table instead of thrashing the host.

// scalePoint is one cell of the grid: Kernels PE groups, VPEs user PEs
// (one VPE each), CapsPer derived capabilities per VPE.
type scalePoint struct {
	Kernels, VPEs, CapsPer int
}

// scaleGrid doubles kernels per step past the architectural MaxKernels
// (64) up to 1024 kernels; the top point mints over a million
// capabilities (2048 VPEs × 514 caps + 1023 spanning obtains).
var scaleGrid = []scalePoint{
	{64, 128, 64},
	{128, 256, 128},
	{256, 512, 256},
	{512, 1024, 512},
	{1024, 2048, 512},
}

// scaleHeapBudget stops the sweep when a completed point's runtime.Sys
// (OS-claimed memory, the closest in-process RSS proxy) exceeds it.
const scaleHeapBudget = 8 << 30

// scaleAux is the side data of one scale point: the allocation profile
// behind the report row. The heap numbers are host-side measurements
// (process-global, non-deterministic); everything simulated — caps
// created, revoke cycles — is deterministic as usual.
type scaleAux struct {
	CapsCreated uint64 `json:"capscreated"`
	CapsDeleted uint64 `json:"capsdeleted"`
	// HeapLiveBytes is the post-GC live heap growth between machine
	// construction and the fully built capability forest (measured just
	// before the timed revoke), i.e. bytes the machine+caps hold per run.
	HeapLiveBytes uint64 `json:"heaplivebytes"`
	// SysBytes is runtime.MemStats.Sys at the peak — the RSS proxy the
	// sweep's stop condition checks.
	SysBytes uint64 `json:"sysbytes"`
	// Mallocs is the heap-object allocation count from machine
	// construction to the built forest; divided by CapsCreated it is the
	// allocs-per-capability column.
	Mallocs      uint64 `json:"mallocs"`
	RevokeCycles uint64 `json:"revokecycles"`
}

func (a scaleAux) capsMinted() uint64 { return a.CapsCreated }

// kindScale runs one grid point. Config encodes the machine (Kernels,
// Instances = VPEs) and Arg the derives per VPE.
const kindScale = "scale"

func init() { registerKind(kindScale, runScaleSpec) }

func runScaleSpec(spec TaskSpec, eng *sim.Engine) (Metrics, any, error) {
	aux, err := scaleRun(eng, spec.Config.Kernels, spec.Config.Instances, spec.Arg, spec.SimWorkers, spec.SimMode)
	if err != nil {
		return Metrics{}, nil, err
	}
	m := Metrics{Cycles: aux.RevokeCycles, CapOps: aux.CapsCreated}
	return m, aux, nil
}

// scaleRun builds one point's machine and capability forest: every VPE
// allocates a root mem cap and derives capsPer children from it; the
// first VPE of every non-root kernel additionally obtains the root VPE's
// mem cap (the spanning edges), and the root VPE finally revokes its cap
// — a tree spanning all kernels — under the clock.
func scaleRun(eng *sim.Engine, kernels, vpes, capsPer, simWorkers int, simMode string) (scaleAux, error) {
	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)

	sys, err := core.NewSystem(core.Config{
		Kernels:     kernels,
		UserPEs:     vpes,
		RelaxLimits: true,
		Engine:      eng,
		SimWorkers:  simWorkers,
		SimMode:     simMode,
	})
	if err != nil {
		return scaleAux{}, err
	}
	defer sys.Close()

	byGroup := make(map[int][]int)
	for _, pe := range sys.UserPEs() {
		g := sys.KernelOfPE(pe).ID()
		byGroup[g] = append(byGroup[g], pe)
	}
	rootPE := byGroup[0][0]
	byGroup[0] = byGroup[0][1:]

	ready := sim.NewFuture[cap.Selector](sys.Eng)
	var wg sim.WaitGroup
	wg.Bind(sys.Eng)
	wg.Add(vpes - 1)

	var peak runtime.MemStats
	var revTime sim.Duration
	mint := func(v *core.VPE, p *sim.Proc) cap.Selector {
		sel, err := v.AllocMem(p, 4096, dtu.PermRW)
		if err != nil {
			panic(err)
		}
		for j := 0; j < capsPer; j++ {
			if _, err := v.DeriveMem(p, sel, 0, 64, dtu.PermR); err != nil {
				panic(err)
			}
		}
		return sel
	}
	root, err := sys.SpawnOn(rootPE, "root", func(v *core.VPE, p *sim.Proc) {
		sel := mint(v, p)
		ready.CompleteFrom(p, sel)
		wg.Wait(p)
		// The forest is fully built: measure the live heap at its peak.
		// Host-side only — it reads no simulation state, so determinism
		// of the simulated metrics is untouched.
		runtime.GC()
		runtime.ReadMemStats(&peak)
		t0 := p.Now()
		if err := v.Revoke(p, sel); err != nil {
			panic(err)
		}
		revTime = p.Now() - t0
	})
	if err != nil {
		return scaleAux{}, err
	}
	for g := 0; g < kernels; g++ {
		for i, pe := range byGroup[g] {
			spanning := g != 0 && i == 0
			if _, err := sys.SpawnOn(pe, fmt.Sprintf("v%d.%d", g, i), func(v *core.VPE, p *sim.Proc) {
				mint(v, p)
				if spanning {
					sel := ready.Wait(p)
					if _, err := v.ObtainFrom(p, root.ID, sel); err != nil {
						panic(err)
					}
				}
				wg.DoneFrom(p)
			}); err != nil {
				return scaleAux{}, err
			}
		}
	}
	sys.Run()

	st := sys.TotalStats()
	return scaleAux{
		CapsCreated:   st.CapsCreated,
		CapsDeleted:   st.CapsDeleted,
		HeapLiveBytes: peak.HeapAlloc - min(peak.HeapAlloc, base.HeapAlloc),
		SysBytes:      peak.Sys,
		Mallocs:       peak.Mallocs - base.Mallocs,
		RevokeCycles:  uint64(revTime),
	}, nil
}

// ScaleRow is one completed grid point.
type ScaleRow struct {
	Kernels, VPEs, CapsPer int
	Aux                    scaleAux
	WallclockNS            int64
}

// ScaleResult holds the sweep: the completed rows plus the points the
// budgets cut off (never silently — Print lists them).
type ScaleResult struct {
	MaxKernels int
	Budget     time.Duration
	Rows       []ScaleRow
	Skipped    []string
}

// Scale runs the scalability sweep point by point — sequentially on
// purpose: the points are memory-bound, and the stop condition must see
// each result before committing to a bigger machine. maxKernels caps the
// grid (0 = the full grid); budget caps the sweep's wall clock (0 = no
// cap). The heap guard (scaleHeapBudget) always applies.
func Scale(o Options, maxKernels int, budget time.Duration) ScaleResult {
	start := time.Now()
	r := ScaleResult{MaxKernels: maxKernels, Budget: budget}
	stop := ""
	for _, pt := range scaleGrid {
		name := fmt.Sprintf("scale/%dk-%dv-%dc", pt.Kernels, pt.VPEs, pt.CapsPer)
		if maxKernels > 0 && pt.Kernels > maxKernels {
			r.Skipped = append(r.Skipped, name+" (over -scalekernels)")
			continue
		}
		if stop != "" {
			r.Skipped = append(r.Skipped, name+" ("+stop+")")
			continue
		}
		if budget > 0 && time.Since(start) > budget {
			stop = "wall-clock budget spent"
			r.Skipped = append(r.Skipped, name+" ("+stop+")")
			continue
		}
		rs := o.execute([]TaskSpec{{
			Experiment: name,
			Kind:       kindScale,
			Config:     ExpConfig{Kernels: pt.Kernels, Instances: pt.VPEs},
			Arg:        pt.CapsPer,
		}})
		aux := auxOf[scaleAux](rs[0])
		r.Rows = append(r.Rows, ScaleRow{
			Kernels: pt.Kernels, VPEs: pt.VPEs, CapsPer: pt.CapsPer,
			Aux: aux, WallclockNS: rs[0].WallclockNS,
		})
		o.record(rs)
		if aux.SysBytes > scaleHeapBudget {
			stop = "heap budget spent"
		}
	}
	return r
}

// Print writes the scalability table.
func (r ScaleResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Scale sweep: compact capability tables, RelaxLimits machines")
	fmt.Fprintln(w, "kernels   vpes  caps/vpe  caps-created  liveB/cap  allocs/cap  peak-sys(MiB)  revoke(µs)   wall(s)")
	for _, row := range r.Rows {
		perCap := func(v uint64) float64 {
			if row.Aux.CapsCreated == 0 {
				return 0
			}
			return float64(v) / float64(row.Aux.CapsCreated)
		}
		fmt.Fprintf(w, "%7d  %5d  %8d  %12d  %9.1f  %10.2f  %13.1f  %10.2f  %8.2f\n",
			row.Kernels, row.VPEs, row.CapsPer,
			row.Aux.CapsCreated,
			perCap(row.Aux.HeapLiveBytes),
			perCap(row.Aux.Mallocs),
			float64(row.Aux.SysBytes)/(1<<20),
			float64(row.Aux.RevokeCycles)/core.CyclesPerMicrosecond,
			float64(row.WallclockNS)/float64(time.Second))
	}
	for _, s := range r.Skipped {
		fmt.Fprintf(w, "skipped: %s\n", s)
	}
}
