package bench

import (
	"encoding/json"
	"reflect"
	"testing"
)

// TestFaultsSweep drives the full fault-injection sweep at test scale and
// checks its headline contract: everything completes under probabilistic
// faults, the crash scenario degrades (its victims fail, everyone else
// finishes), and losses scale with the drop rate.
func TestFaultsSweep(t *testing.T) {
	r := Faults(Options{FaultSeed: 1}, 64, 8)
	if len(r.Rows) != 2*len(faultsRates)+2 {
		t.Fatalf("got %d rows, want %d", len(r.Rows), 2*len(faultsRates)+2)
	}
	var crashRow, recoverRow FaultsRow
	for _, row := range r.Rows {
		if row.Aux.LeakedEntries != 0 {
			t.Errorf("%s at %dbp leaked %d entries", row.Workload, row.DropBp, row.Aux.LeakedEntries)
		}
		switch row.Workload {
		case "crash":
			crashRow = row
		case "crashrecover":
			recoverRow = row
		default:
			if row.Completed != 1 {
				t.Errorf("%s at %dbp: completed %.3f, want 1 (retransmission must recover every loss)",
					row.Workload, row.DropBp, row.Completed)
			}
			if row.DropBp == 0 && row.LostMsgs != 0 {
				t.Errorf("%s at 0bp lost %d messages on a drop-free fabric", row.Workload, row.LostMsgs)
			}
			if row.DropBp >= 100 && row.LostMsgs == 0 {
				t.Errorf("%s at %dbp lost nothing — injector not wired?", row.Workload, row.DropBp)
			}
		}
	}
	// The crash scenario: the last client kernel dies mid-fan-out, its
	// clients' operations resolve to errors, the rest complete.
	if crashRow.Completed >= 1 || crashRow.Completed <= 0 {
		t.Errorf("crash: completed %.3f, want partial completion in (0, 1)", crashRow.Completed)
	}
	if crashRow.Aux.DeadPeers == 0 {
		t.Errorf("crash: no kernel declared a peer dead")
	}
	if crashRow.Aux.FailFast == 0 && crashRow.Aux.Attempted-crashRow.Aux.Succeeded == 0 {
		t.Errorf("crash: no degraded operations at all: %+v", crashRow.Aux)
	}
	// The crash+recover scenario: the same kernel rejoins mid-storm. The old
	// incarnation's in-flight operations abort, so completion stays partial,
	// but the rejoin resolves the run far faster than the permanent crash's
	// RTO ladder.
	if recoverRow.Completed >= 1 || recoverRow.Completed <= 0 {
		t.Errorf("crashrecover: completed %.3f, want partial completion in (0, 1)", recoverRow.Completed)
	}
	if recoverRow.Aux.Rejoins != 1 {
		t.Errorf("crashrecover: Rejoins = %d, want 1", recoverRow.Aux.Rejoins)
	}
	if recoverRow.Aux.MeanRejoinCycles == 0 {
		t.Errorf("crashrecover: rejoin recorded no cycles")
	}
	if crashRow.Aux.Rejoins != 0 {
		t.Errorf("crash: Rejoins = %d on a permanent crash", crashRow.Aux.Rejoins)
	}
	if recoverRow.Makespan >= crashRow.Makespan {
		t.Errorf("crashrecover makespan %d not faster than permanent crash %d — rejoin did not resolve the storm",
			recoverRow.Makespan, crashRow.Makespan)
	}
}

// TestFaultsDeterministic: the same seed reproduces the whole sweep
// byte-identically at any worker-pool size, and a different seed draws a
// different fault sequence.
func TestFaultsDeterministic(t *testing.T) {
	a := Faults(Options{FaultSeed: 3, Parallel: 1}, 32, 4)
	b := Faults(Options{FaultSeed: 3, Parallel: 4}, 32, 4)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("identical seeds diverged across pool sizes:\n%+v\n%+v", a, b)
	}
	c := Faults(Options{FaultSeed: 4, Parallel: 1}, 32, 4)
	if reflect.DeepEqual(a.Rows, c.Rows) {
		t.Errorf("seeds 3 and 4 produced identical sweeps")
	}
}

// TestFaultsSpecsRoundTrip: faults specs survive the worker-protocol JSON
// round trip with the seed intact — sharded workers must reproduce the
// same faults.
func TestFaultsSpecsRoundTrip(t *testing.T) {
	specs := faultsSpecs(16, 4, 99)
	for _, spec := range specs {
		raw, err := json.Marshal(spec)
		if err != nil {
			t.Fatal(err)
		}
		var back TaskSpec
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatal(err)
		}
		if back != spec {
			t.Errorf("spec round trip changed %+v -> %+v", spec, back)
		}
		if back.Seed != 99 {
			t.Errorf("seed lost in round trip: %+v", back)
		}
	}
}
