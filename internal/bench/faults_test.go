package bench

import (
	"encoding/json"
	"reflect"
	"testing"
)

// TestFaultsSweep drives the full fault-injection sweep at test scale and
// checks its headline contract: everything completes under probabilistic
// faults, the crash scenario degrades (its victims fail, everyone else
// finishes), and losses scale with the drop rate.
func TestFaultsSweep(t *testing.T) {
	r := Faults(Options{FaultSeed: 1}, 64, 8)
	if len(r.Rows) != 2*len(faultsRates)+1 {
		t.Fatalf("got %d rows, want %d", len(r.Rows), 2*len(faultsRates)+1)
	}
	for _, row := range r.Rows {
		if row.Workload != "crash" {
			if row.Completed != 1 {
				t.Errorf("%s at %dbp: completed %.3f, want 1 (retransmission must recover every loss)",
					row.Workload, row.DropBp, row.Completed)
			}
			if row.DropBp == 0 && row.LostMsgs != 0 {
				t.Errorf("%s at 0bp lost %d messages on a drop-free fabric", row.Workload, row.LostMsgs)
			}
			if row.DropBp >= 100 && row.LostMsgs == 0 {
				t.Errorf("%s at %dbp lost nothing — injector not wired?", row.Workload, row.DropBp)
			}
			continue
		}
		// The crash scenario: the last client kernel dies mid-fan-out, its
		// clients' operations resolve to errors, the rest complete.
		if row.Completed >= 1 || row.Completed <= 0 {
			t.Errorf("crash: completed %.3f, want partial completion in (0, 1)", row.Completed)
		}
		if row.Aux.DeadPeers == 0 {
			t.Errorf("crash: no kernel declared a peer dead")
		}
		if row.Aux.FailFast == 0 && row.Aux.Attempted-row.Aux.Succeeded == 0 {
			t.Errorf("crash: no degraded operations at all: %+v", row.Aux)
		}
	}
}

// TestFaultsDeterministic: the same seed reproduces the whole sweep
// byte-identically at any worker-pool size, and a different seed draws a
// different fault sequence.
func TestFaultsDeterministic(t *testing.T) {
	a := Faults(Options{FaultSeed: 3, Parallel: 1}, 32, 4)
	b := Faults(Options{FaultSeed: 3, Parallel: 4}, 32, 4)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("identical seeds diverged across pool sizes:\n%+v\n%+v", a, b)
	}
	c := Faults(Options{FaultSeed: 4, Parallel: 1}, 32, 4)
	if reflect.DeepEqual(a.Rows, c.Rows) {
		t.Errorf("seeds 3 and 4 produced identical sweeps")
	}
}

// TestFaultsSpecsRoundTrip: faults specs survive the worker-protocol JSON
// round trip with the seed intact — sharded workers must reproduce the
// same faults.
func TestFaultsSpecsRoundTrip(t *testing.T) {
	specs := faultsSpecs(16, 4, 99)
	for _, spec := range specs {
		raw, err := json.Marshal(spec)
		if err != nil {
			t.Fatal(err)
		}
		var back TaskSpec
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatal(err)
		}
		if back != spec {
			t.Errorf("spec round trip changed %+v -> %+v", spec, back)
		}
		if back.Seed != 99 {
			t.Errorf("seed lost in round trip: %+v", back)
		}
	}
}
