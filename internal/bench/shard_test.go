package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"
)

// The shard tests re-exec the test binary as protocol workers: TestMain
// flips into RunWorker when the coordinator's env marker is set, exactly
// like `semperos-bench -worker` does for the real binary.
const workerEnv = "SEMPEROS_BENCH_WORKER"

func TestMain(m *testing.M) {
	if os.Getenv(workerEnv) == "1" {
		if err := RunWorker(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// testShardExecutor fans out over re-exec'd copies of this test binary.
func testShardExecutor(shards int) *ShardExecutor {
	return &ShardExecutor{
		Shards:   shards,
		Argv:     []string{os.Args[0]},
		ExtraEnv: []string{workerEnv + "=1"},
	}
}

// TestWorkerProtocol drives RunWorker in-memory: specs in, results out, in
// order, with task failures inside results (the worker must survive them).
func TestWorkerProtocol(t *testing.T) {
	specs := []wireTask{
		{Seq: 0, Spec: TaskSpec{Experiment: "fig5", Kind: kindFig5, Config: ExpConfig{Kernels: 2, Instances: 8}}},
		{Seq: 1, Spec: TaskSpec{Experiment: "broken", Kind: "no-such-kind"}},
		{Seq: 2, Spec: table3Specs()[0]},
	}
	var in bytes.Buffer
	enc := json.NewEncoder(&in)
	for _, wt := range specs {
		if err := enc.Encode(wt); err != nil {
			t.Fatal(err)
		}
	}
	var out bytes.Buffer
	if err := RunWorker(&in, &out); err != nil {
		t.Fatalf("RunWorker: %v", err)
	}
	dec := json.NewDecoder(&out)
	var got []wireResult
	for dec.More() {
		var wr wireResult
		if err := dec.Decode(&wr); err != nil {
			t.Fatal(err)
		}
		got = append(got, wr)
	}
	if len(got) != len(specs) {
		t.Fatalf("got %d results, want %d", len(got), len(specs))
	}
	for i, wr := range got {
		if wr.Seq != i {
			t.Errorf("result %d has seq %d", i, wr.Seq)
		}
	}
	// The protocol answers must carry the same simulated metrics as a local
	// run of the same specs.
	for i := range specs {
		want := RunSpec(specs[i].Spec)
		if got[i].Result.Metrics != want.Metrics || !bytes.Equal(got[i].Result.Aux, want.Aux) {
			t.Errorf("task %d: protocol result %+v (aux %s) != local %+v (aux %s)",
				i, got[i].Result.Metrics, got[i].Result.Aux, want.Metrics, want.Aux)
		}
	}
	if got[1].Result.Error == "" {
		t.Error("broken task did not report an error through the protocol")
	}
	if got[2].Result.Error != "" {
		t.Errorf("task after the broken one failed: %s", got[2].Result.Error)
	}
}

// miniSweep runs a cross-section of the evaluation (micro, chain, tree,
// ablation and workload kinds — including the aux-carrying Table 4 path)
// on the given executor with the given event-queue partitioning, and
// returns the recorded report rows with wallclocks (and the wallclock-bearing
// per-domain attribution) zeroed, so two sweeps compare on simulated data
// only.
func miniSweep(ex Executor, simWorkers int) []Result {
	return miniSweepMode(ex, simWorkers, "")
}

// miniSweepMode is miniSweep with an explicit simulation mode ("" or
// core.SimModeMerged for the order-preserving engine, core.SimModeRounds for
// isolated rounds — see TestRoundsDeterminism).
func miniSweepMode(ex Executor, simWorkers int, simMode string) []Result {
	o := Quick()
	o.Parallel = 2
	o.Executor = ex
	o.SimWorkers = simWorkers
	o.SimMode = simMode
	o.Report = NewReport(true, 1)
	Table3(o)
	Fig4(o, 20)
	Fig5(o, 32)
	AblationBatching(o, 32, 3)
	Table4(o)
	rs := make([]Result, len(o.Report.Results))
	copy(rs, o.Report.Results)
	for i := range rs {
		rs[i].WallclockNS = 0
		rs[i].Domains = nil
	}
	return rs
}

// TestShardDeterminism: the acceptance criterion of the sharded harness —
// a quick-scale sweep executed on 1, 2 and 4 worker processes produces
// simulated metrics byte-identical to the in-process run, row for row.
func TestShardDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses")
	}
	base := miniSweep(nil, 0)
	baseJSON, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4} {
		ex := testShardExecutor(shards)
		got := miniSweep(ex, 0)
		ex.Close()
		gotJSON, err := json.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(baseJSON, gotJSON) {
			continue
		}
		if len(got) != len(base) {
			t.Errorf("-shards %d: %d rows, want %d", shards, len(got), len(base))
			continue
		}
		for i := range base {
			if base[i].Experiment != got[i].Experiment || base[i].Config != got[i].Config ||
				base[i].Metrics != got[i].Metrics || base[i].Error != got[i].Error {
				t.Errorf("-shards %d row %d differs:\n  in-process: %+v\n  sharded:    %+v",
					shards, i, base[i], got[i])
			}
		}
	}
}

// TestSimWorkersDeterminism: the acceptance criterion of the partitioned
// engine — the same quick-scale sweep executed with -simworkers 1, 2 and 4
// produces simulated metrics byte-identical to the sequential engine, row
// for row (the mirror of TestShardDeterminism for event-queue partitioning).
func TestSimWorkersDeterminism(t *testing.T) {
	base := miniSweep(nil, 0)
	baseJSON, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		got := miniSweep(nil, workers)
		gotJSON, err := json.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(baseJSON, gotJSON) {
			continue
		}
		if len(got) != len(base) {
			t.Errorf("-simworkers %d: %d rows, want %d", workers, len(got), len(base))
			continue
		}
		for i := range base {
			if base[i].Experiment != got[i].Experiment || base[i].Config != got[i].Config ||
				base[i].Metrics != got[i].Metrics || base[i].Error != got[i].Error {
				t.Errorf("-simworkers %d row %d differs:\n  sequential:  %+v\n  partitioned: %+v",
					workers, i, base[i], got[i])
			}
		}
	}
}

// TestShardExecutorReuse: workers persist across Execute batches (their
// engine pools stay warm), and a second batch still merges in spec order.
func TestShardExecutorReuse(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses")
	}
	ex := testShardExecutor(2)
	defer ex.Close()
	specs := fig5Specs([]int{0, 16, 32}, []int{0, 1})
	first := ex.Execute(specs)
	second := ex.Execute(specs)
	if len(first) != len(specs) || len(second) != len(specs) {
		t.Fatalf("result counts: %d, %d, want %d", len(first), len(second), len(specs))
	}
	for i := range specs {
		if first[i].Error != "" || second[i].Error != "" {
			t.Fatalf("task %d failed: %q / %q", i, first[i].Error, second[i].Error)
		}
		if first[i].Metrics != second[i].Metrics {
			t.Errorf("task %d drifted across batches: %+v vs %+v", i, first[i].Metrics, second[i].Metrics)
		}
		if first[i].Experiment != specs[i].Experiment || first[i].Config != specs[i].Config {
			t.Errorf("task %d out of order: got %s %+v", i, first[i].Experiment, first[i].Config)
		}
	}
}

// TestShardWorkerCrash: a worker that dies mid-protocol fails only the
// tasks it touches — the executor errors them instead of hanging, and a
// healthy fleet on the same executor still works afterwards.
func TestShardWorkerCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses")
	}
	if _, err := os.Stat("/bin/true"); err != nil {
		t.Skip("/bin/true unavailable")
	}
	ex := &ShardExecutor{Shards: 2, Argv: []string{"/bin/true"}}
	defer ex.Close()
	specs := fig5Specs([]int{0, 16}, []int{0})
	rs := ex.Execute(specs)
	if len(rs) != len(specs) {
		t.Fatalf("got %d results, want %d", len(rs), len(specs))
	}
	for i, r := range rs {
		if r.Error == "" {
			t.Errorf("task %d against a dead worker succeeded: %+v", i, r)
		}
	}
}

// TestShardWorkerFlapping: a worker binary that can never start exhausts
// the slot's respawn budget and degrades to fail-fast error results —
// bounded attempts, no spawn storm, every task still answered.
func TestShardWorkerFlapping(t *testing.T) {
	const maxRespawns = 3
	ex := &ShardExecutor{
		Shards:         1,
		Argv:           []string{"/nonexistent/semperos-bench-worker"},
		MaxRespawns:    maxRespawns,
		RespawnBackoff: time.Microsecond, // keep the capped ladder instant
	}
	defer ex.Close()
	specs := fig5Specs([]int{0, 8, 16, 24, 32, 40}, []int{0})
	start := time.Now()
	rs := ex.Execute(specs)
	if len(rs) != len(specs) {
		t.Fatalf("got %d results, want %d", len(rs), len(specs))
	}
	spawnErrs, disabled := 0, 0
	for i, r := range rs {
		if r.Error == "" {
			t.Fatalf("task %d against an unstartable worker succeeded: %+v", i, r)
		}
		if strings.Contains(r.Error, "slot disabled") {
			disabled++
		} else {
			spawnErrs++
		}
	}
	if spawnErrs != maxRespawns {
		t.Errorf("%d spawn-attempt failures, want exactly %d (the respawn budget)", spawnErrs, maxRespawns)
	}
	if disabled != len(specs)-maxRespawns {
		t.Errorf("%d fail-fast results, want %d", disabled, len(specs)-maxRespawns)
	}
	// Fail-fast means fail FAST: the whole batch resolves well inside the
	// time an unbounded backoff ladder would burn.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("flapping worker stalled the batch for %v", elapsed)
	}
}

// TestShardWorkerRecovers: one crash does not disable a slot — the next
// task respawns the worker and succeeds, and the failure count resets so a
// long healthy streak never accumulates toward the budget.
func TestShardWorkerRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses")
	}
	ex := testShardExecutor(1)
	ex.RespawnBackoff = time.Microsecond
	defer ex.Close()
	specs := fig5Specs([]int{0, 16}, []int{0})

	// Batch 1 runs healthy, then the worker is killed behind the
	// executor's back — the crash surfaces on the next batch's first task.
	first := ex.Execute(specs)
	for i, r := range first {
		if r.Error != "" {
			t.Fatalf("healthy batch task %d failed: %s", i, r.Error)
		}
	}
	ex.workers[0].cmd.Process.Kill()

	second := ex.Execute(specs)
	sawError := false
	for _, r := range second {
		if r.Error != "" {
			sawError = true
		}
	}
	if !sawError {
		// The kill may have raced the next dispatch; either way the batch
		// must have answered every task.
		t.Logf("killed worker drained the batch cleanly (kill raced the protocol)")
	}
	// A fresh batch after the crash runs entirely on the respawned worker.
	third := ex.Execute(specs)
	for i, r := range third {
		if r.Error != "" {
			t.Fatalf("post-respawn task %d failed: %s", i, r.Error)
		}
		if r.Metrics != first[i].Metrics {
			t.Errorf("post-respawn task %d drifted: %+v vs %+v", i, r.Metrics, first[i].Metrics)
		}
	}
}
