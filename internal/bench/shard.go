package bench

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"
	"time"
)

// The coordinator/worker protocol. `semperos-bench -shards N` re-execs
// itself N times with the hidden -worker flag; each worker serves a
// newline-delimited JSON request/response loop on stdin/stdout: the
// coordinator streams one TaskSpec at a time (wireTask), the worker
// executes it on its own engine pool and answers with the Result
// (wireResult). One task is in flight per worker, so the shared
// longest-first queue load-balances dynamically, and results are merged in
// task order — the report, and every simulated metric in it, is
// byte-identical to an in-process run. Workers persist across experiment
// batches (their engine pools stay warm); a worker that dies fails only the
// task in flight and is respawned for its next task.

// wireTask is one coordinator→worker protocol line.
type wireTask struct {
	Seq  int      `json:"seq"`
	Spec TaskSpec `json:"spec"`
}

// wireResult is one worker→coordinator protocol line.
type wireResult struct {
	Seq    int    `json:"seq"`
	Result Result `json:"result"`
}

// RunWorker serves the shard worker protocol: TaskSpecs in on r, Results
// out on w, one NDJSON object per line, until EOF. Task failures (panics,
// experiment errors) travel inside the Result; RunWorker only returns a
// non-nil error on a broken protocol stream. Nothing else may be written to
// w: the coordinator owns the terminal.
func RunWorker(r io.Reader, w io.Writer) error {
	dec := json.NewDecoder(bufio.NewReader(r))
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for {
		var t wireTask
		if err := dec.Decode(&t); err == io.EOF {
			return nil
		} else if err != nil {
			return fmt.Errorf("bench worker: reading task: %w", err)
		}
		res := RunSpec(t.Spec)
		if err := enc.Encode(wireResult{Seq: t.Seq, Result: res}); err != nil {
			return fmt.Errorf("bench worker: writing result: %w", err)
		}
		if err := bw.Flush(); err != nil {
			return fmt.Errorf("bench worker: flushing result: %w", err)
		}
	}
}

// workerProc is one live worker subprocess with its protocol streams.
type workerProc struct {
	cmd   *exec.Cmd
	stdin io.WriteCloser
	enc   *json.Encoder
	dec   *json.Decoder
	seq   int
}

// ShardExecutor executes spec batches on a fleet of worker subprocesses.
type ShardExecutor struct {
	// Shards is the worker-process count; each runs one task at a time, so
	// -shards N is the multi-process analogue of -parallel N.
	Shards int
	// Argv is the worker command line (e.g. the semperos-bench binary plus
	// "-worker"). Argv[0] is the executable path.
	Argv []string
	// ExtraEnv entries are appended to the inherited environment (tests use
	// this to flip their own binary into worker mode).
	ExtraEnv []string
	// Costs drives longest-first dispatch; nil falls back to the
	// instance-count heuristic.
	Costs *CostModel
	// Stderr receives the workers' stderr (default os.Stderr), so a worker
	// crash is visible.
	Stderr io.Writer
	// MaxRespawns bounds consecutive worker failures per slot (spawn errors
	// and mid-task deaths alike) before the slot stops relaunching and
	// fail-fasts every task it draws — a flapping worker must not stall the
	// sweep on endless respawn loops. A successful task resets the count.
	// 0 means the default (5).
	MaxRespawns int
	// RespawnBackoff is the delay before relaunching a failed worker,
	// doubling per consecutive failure up to 32x. 0 means the default
	// (100ms); tests use tiny values.
	RespawnBackoff time.Duration

	mu      sync.Mutex
	workers []*workerProc
}

// Respawn-hardening defaults.
const (
	defaultMaxRespawns    = 5
	defaultRespawnBackoff = 100 * time.Millisecond
	respawnBackoffCap     = 32 // max multiplier over RespawnBackoff
)

// start launches one worker subprocess.
func (s *ShardExecutor) start() (*workerProc, error) {
	if len(s.Argv) == 0 {
		return nil, fmt.Errorf("bench: ShardExecutor has no worker command")
	}
	cmd := exec.Command(s.Argv[0], s.Argv[1:]...)
	cmd.Env = append(os.Environ(), s.ExtraEnv...)
	cmd.Stderr = s.Stderr
	if cmd.Stderr == nil {
		cmd.Stderr = os.Stderr
	}
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	return &workerProc{
		cmd:   cmd,
		stdin: stdin,
		enc:   json.NewEncoder(stdin),
		dec:   json.NewDecoder(bufio.NewReader(stdout)),
	}, nil
}

// do runs one spec on the worker, synchronously.
func (p *workerProc) do(spec TaskSpec) (Result, error) {
	seq := p.seq
	p.seq++
	if err := p.enc.Encode(wireTask{Seq: seq, Spec: spec}); err != nil {
		return Result{}, fmt.Errorf("sending task to worker: %w", err)
	}
	var wr wireResult
	if err := p.dec.Decode(&wr); err != nil {
		return Result{}, fmt.Errorf("reading result from worker: %w", err)
	}
	if wr.Seq != seq {
		return Result{}, fmt.Errorf("worker answered seq %d, want %d", wr.Seq, seq)
	}
	return wr.Result, nil
}

// stop closes the worker's stdin (the protocol's EOF) and reaps it.
func (p *workerProc) stop() {
	p.stdin.Close()
	p.cmd.Wait()
}

// kill tears a broken worker down without waiting for a clean exit.
func (p *workerProc) kill() {
	p.stdin.Close()
	if p.cmd.Process != nil {
		p.cmd.Process.Kill()
	}
	p.cmd.Wait()
}

// Execute fans the specs out over the worker fleet, dispatching
// longest-first from one shared queue (one task in flight per worker, so an
// idle worker always takes the most expensive remaining task), and returns
// the results in spec order. Workers are started lazily on the first batch
// and reused across batches. A worker failure fails only the task in
// flight: the slot respawns its process for the next task it draws, and
// tasks it draws while respawn keeps failing become error Results — the
// surviving workers keep the rest of the batch alive either way.
func (s *ShardExecutor) Execute(specs []TaskSpec) []Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	shards := max(s.Shards, 1)
	if s.workers == nil {
		s.workers = make([]*workerProc, shards)
	}
	results := make([]Result, len(specs))
	idx := make(chan int)
	go func() {
		for _, i := range s.Costs.Order(specs) {
			idx <- i
		}
		close(idx)
	}()
	maxRespawns := s.MaxRespawns
	if maxRespawns <= 0 {
		maxRespawns = defaultMaxRespawns
	}
	backoff := s.RespawnBackoff
	if backoff <= 0 {
		backoff = defaultRespawnBackoff
	}
	var wg sync.WaitGroup
	for w := 0; w < shards; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fail := func(i int, err error) {
				results[i] = Result{
					Experiment: specs[i].Experiment,
					Config:     specs[i].Config,
					Error:      fmt.Sprintf("shard %d: %v", w, err),
				}
			}
			fails := 0 // consecutive failures of this slot
			for i := range idx {
				if fails >= maxRespawns {
					// The slot exhausted its respawn budget: degrade to
					// fail-fast error results instead of flapping forever.
					fail(i, fmt.Errorf("worker slot disabled after %d consecutive failures", fails))
					continue
				}
				if s.workers[w] == nil {
					if fails > 0 {
						// Capped exponential backoff before the relaunch: a
						// worker dying instantly (bad binary, OOM loop) must
						// not turn the slot into a spawn storm.
						d := backoff << min(fails-1, 31)
						d = min(d, backoff*respawnBackoffCap)
						time.Sleep(d)
					}
					p, err := s.start()
					if err != nil {
						fails++
						fail(i, err)
						continue
					}
					s.workers[w] = p
				}
				res, err := s.workers[w].do(specs[i])
				if err != nil {
					// The worker broke mid-task: fail this task, tear the
					// process down and respawn on the next one.
					s.workers[w].kill()
					s.workers[w] = nil
					fails++
					fail(i, err)
					continue
				}
				fails = 0
				results[i] = res
			}
		}(w)
	}
	wg.Wait()
	return results
}

// Close shuts the worker fleet down (EOF on stdin, reap). The executor can
// be reused afterwards: the next Execute restarts workers on demand.
func (s *ShardExecutor) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, p := range s.workers {
		if p != nil {
			p.stop()
			s.workers[i] = nil
		}
	}
	s.workers = nil
}
