// Package bench regenerates every table and figure of the paper's
// evaluation (§5): the capability-operation microbenchmarks (Table 3),
// chain and tree revocation (Figures 4 and 5), the application workload
// characterization (Table 4), parallel efficiency (Figure 6), service and
// kernel dependence (Figures 7 and 8), system efficiency (Figure 9) and
// the Nginx server benchmark (Figure 10).
//
// Absolute cycle counts come from the calibrated cost model; the
// experiments reproduce the paper's relationships (who wins, by what
// factor, where crossovers fall) rather than gem5's exact numbers.
package bench

import (
	"fmt"
	"io"

	"repro/internal/cap"
	"repro/internal/core"
	"repro/internal/dtu"
	"repro/internal/m3"
	"repro/internal/sim"
)

// buildPair constructs a two-app system on eng. With spanning=true the apps
// land in different PE groups; otherwise both run under kernel 0.
func buildPair(eng *sim.Engine, spanning bool, simWorkers int, simMode string) (*core.System, int, int) {
	sys := core.MustNew(core.Config{Kernels: 2, UserPEs: 4, Engine: eng, SimWorkers: simWorkers, SimMode: simMode})
	// PEs 2,3 -> kernel 0; PEs 4,5 -> kernel 1.
	if spanning {
		return sys, 2, 4
	}
	return sys, 2, 3
}

// measureExchangeRevoke runs the paper's §5.2 microbenchmark on sys: app B
// obtains a capability from app A, then A revokes it. It returns the
// syscall latencies observed by the applications.
func measureExchangeRevoke(sys *core.System, peA, peB int) (exchange, revoke sim.Duration) {
	defer sys.Close()
	ready := sim.NewFuture[cap.Selector](sys.Eng)
	obtained := sim.NewFuture[struct{}](sys.Eng)
	var vA *core.VPE
	vA, _ = sys.SpawnOn(peA, "A", func(v *core.VPE, p *sim.Proc) {
		sel, err := v.AllocMem(p, 4096, dtu.PermRW)
		if err != nil {
			panic(err)
		}
		ready.CompleteFrom(p, sel)
		obtained.Wait(p)
		t0 := p.Now()
		if err := v.Revoke(p, sel); err != nil {
			panic(err)
		}
		revoke = p.Now() - t0
	})
	sys.SpawnOn(peB, "B", func(v *core.VPE, p *sim.Proc) {
		sel := ready.Wait(p)
		t0 := p.Now()
		if _, err := v.ObtainFrom(p, vA.ID, sel); err != nil {
			panic(err)
		}
		exchange = p.Now() - t0
		obtained.CompleteFrom(p, struct{}{})
	})
	sys.Run()
	return exchange, revoke
}

// Table3Result holds the runtimes of capability operations (paper Table 3).
type Table3Result struct {
	ExchangeLocal    sim.Duration
	ExchangeSpanning sim.Duration
	RevokeLocal      sim.Duration
	RevokeSpanning   sim.Duration
	M3Exchange       sim.Duration
	M3Revoke         sim.Duration
}

// kindTable3 runs one §5.2 exchange+revoke microbenchmark; the Variant
// selects the machine (local, spanning, m3).
const kindTable3 = "table3"

// table3Aux carries the second measurement of the run: each task measures
// both the exchange (Metrics.Cycles) and the revocation.
type table3Aux struct {
	Revoke uint64 `json:"revoke"`
}

func init() { registerKind(kindTable3, runTable3Spec) }

func runTable3Spec(spec TaskSpec, eng *sim.Engine) (Metrics, any, error) {
	var e, v sim.Duration
	switch spec.Variant {
	case "local", "spanning":
		sys, a, b := buildPair(eng, spec.Variant == "spanning", spec.SimWorkers, spec.SimMode)
		e, v = measureExchangeRevoke(sys, a, b)
	case "m3":
		m3sys := m3.MustNew(m3.Config{UserPEs: 4, Engine: eng})
		e, v = measureExchangeRevoke(m3sys.System, 1, 2)
	default:
		return Metrics{}, nil, fmt.Errorf("table3: unknown variant %q", spec.Variant)
	}
	return Metrics{Cycles: uint64(e)}, table3Aux{Revoke: uint64(v)}, nil
}

// table3Specs plans the three microbenchmark machines.
func table3Specs() []TaskSpec {
	return []TaskSpec{
		{Experiment: "table3/exchange-local", Kind: kindTable3, Variant: "local", Config: ExpConfig{Kernels: 2, Instances: 2}},
		{Experiment: "table3/exchange-spanning", Kind: kindTable3, Variant: "spanning", Config: ExpConfig{Kernels: 2, Instances: 2}},
		{Experiment: "table3/exchange-m3", Kind: kindTable3, Variant: "m3", Config: ExpConfig{Kernels: 1, Instances: 2}},
	}
}

// Table3 measures exchange and revocation in the group-local and
// group-spanning cases, for SemperOS and the M3 baseline. The three
// systems are independent simulations and run in parallel.
func Table3(o Options) Table3Result {
	rs := o.execute(table3Specs())
	revs := make([]uint64, len(rs))
	for i := range rs {
		revs[i] = auxOf[table3Aux](rs[i]).Revoke
	}
	// Each task measured two operations; mirror the revoke latencies as
	// their own report entries.
	names := []string{"table3/revoke-local", "table3/revoke-spanning", "table3/revoke-m3"}
	for i, name := range names {
		rev := rs[i]
		rev.Experiment = name
		rev.Metrics.Cycles = revs[i]
		// The task's wallclock covers both measurements; charging it again
		// here would double-count it in the trajectory.
		rev.WallclockNS = 0
		rs = append(rs, rev)
	}
	o.record(rs)
	return Table3Result{
		ExchangeLocal:    sim.Duration(rs[0].Metrics.Cycles),
		RevokeLocal:      sim.Duration(revs[0]),
		ExchangeSpanning: sim.Duration(rs[1].Metrics.Cycles),
		RevokeSpanning:   sim.Duration(revs[1]),
		M3Exchange:       sim.Duration(rs[2].Metrics.Cycles),
		M3Revoke:         sim.Duration(revs[2]),
	}
}

// Print writes the table in the paper's layout.
func (r Table3Result) Print(w io.Writer) {
	pct := func(sos, base sim.Duration) string {
		if base == 0 {
			return "—"
		}
		return fmt.Sprintf("%+.1f%%", 100*(float64(sos)-float64(base))/float64(base))
	}
	fmt.Fprintln(w, "Table 3: Runtimes of capability operations (cycles)")
	fmt.Fprintln(w, "Operation  Scope     SemperOS   M3     Increase")
	fmt.Fprintf(w, "Exchange   Local     %6d   %6d   %s\n", r.ExchangeLocal, r.M3Exchange, pct(r.ExchangeLocal, r.M3Exchange))
	fmt.Fprintf(w, "Exchange   Spanning  %6d        —   —\n", r.ExchangeSpanning)
	fmt.Fprintf(w, "Revoke     Local     %6d   %6d   %s\n", r.RevokeLocal, r.M3Revoke, pct(r.RevokeLocal, r.M3Revoke))
	fmt.Fprintf(w, "Revoke     Spanning  %6d        —   —\n", r.RevokeSpanning)
}

// --- Figure 4: chain revocation -------------------------------------------

// ChainPoint is one point of Figure 4.
type ChainPoint struct {
	Length int
	Cycles sim.Duration
}

// Fig4Result holds the three series of Figure 4.
type Fig4Result struct {
	Lengths       []int
	LocalSemperOS []ChainPoint
	SpanningChain []ChainPoint
	LocalM3       []ChainPoint
}

// buildChainAndRevoke creates a capability chain of the given length (the
// capability is exchanged from VPE to VPE) and measures revoking the root.
// With alternate=true consecutive VPEs live in different PE groups,
// creating the paper's ill-behaved cross-kernel ping-pong chain.
func buildChainAndRevoke(sys *core.System, pes []int, length int, alternate bool) sim.Duration {
	defer sys.Close()
	order := make([]int, length+1)
	if alternate {
		half := (len(pes) + 1) / 2
		for i := range order {
			if i%2 == 0 {
				order[i] = pes[i/2]
			} else {
				order[i] = pes[half+i/2]
			}
		}
	} else {
		copy(order, pes[:length+1])
	}
	futs := make([]*sim.Future[cap.Selector], length+1)
	for i := range futs {
		futs[i] = sim.NewFuture[cap.Selector](sys.Eng)
	}
	vpes := make([]*core.VPE, length+1)
	var revTime sim.Duration
	done := sim.NewFuture[struct{}](sys.Eng)
	var err0 error
	vpes[0], err0 = sys.SpawnOn(order[0], "chain0", func(v *core.VPE, p *sim.Proc) {
		sel, err := v.AllocMem(p, 4096, dtu.PermRW)
		if err != nil {
			panic(err)
		}
		futs[0].CompleteFrom(p, sel)
		done.Wait(p)
		t0 := p.Now()
		if err := v.Revoke(p, sel); err != nil {
			panic(err)
		}
		revTime = p.Now() - t0
	})
	if err0 != nil {
		panic(err0)
	}
	for i := 1; i <= length; i++ {
		i := i
		var err error
		vpes[i], err = sys.SpawnOn(order[i], fmt.Sprintf("chain%d", i), func(v *core.VPE, p *sim.Proc) {
			prev := futs[i-1].Wait(p)
			sel, err := v.ObtainFrom(p, vpes[i-1].ID, prev)
			if err != nil {
				panic(err)
			}
			futs[i].CompleteFrom(p, sel)
			if i == length {
				done.CompleteFrom(p, struct{}{})
			}
		})
		if err != nil {
			panic(err)
		}
	}
	if length == 0 {
		sys.Eng.Schedule(0, func() {
			futs[0].OnComplete(func(cap.Selector) { done.Complete(struct{}{}) })
		})
	}
	sys.Run()
	return revTime
}

// kindFig4 revokes one capability chain; Config.Instances is the chain
// length, Arg the figure's max length (which sizes the machine identically
// across all cells), Variant the machine (local, spanning, m3).
const kindFig4 = "fig4"

func init() { registerKind(kindFig4, runFig4Spec) }

func runFig4Spec(spec TaskSpec, eng *sim.Engine) (Metrics, any, error) {
	l, maxLen := spec.Config.Instances, spec.Arg
	var c sim.Duration
	switch spec.Variant {
	case "local", "spanning":
		sys := core.MustNew(core.Config{Kernels: 2, UserPEs: maxLen + 2, Engine: eng, SimWorkers: spec.SimWorkers, SimMode: spec.SimMode})
		c = buildChainAndRevoke(sys, sys.UserPEs(), l, spec.Variant == "spanning")
	case "m3":
		m3sys := m3.MustNew(m3.Config{UserPEs: maxLen + 2, Engine: eng})
		c = buildChainAndRevoke(m3sys.System, m3sys.UserPEs(), l, false)
	default:
		return Metrics{}, nil, fmt.Errorf("fig4: unknown variant %q", spec.Variant)
	}
	return Metrics{Cycles: uint64(c)}, nil, nil
}

// fig4Specs plans the (length, variant) grid.
func fig4Specs(maxLen int) ([]TaskSpec, []int) {
	var lengths []int
	for l := 0; l <= maxLen; l += 10 {
		lengths = append(lengths, l)
	}
	specs := make([]TaskSpec, 0, 3*len(lengths))
	for _, l := range lengths {
		specs = append(specs,
			TaskSpec{Experiment: "fig4/local", Kind: kindFig4, Variant: "local", Config: ExpConfig{Kernels: 2, Instances: l}, Arg: maxLen},
			TaskSpec{Experiment: "fig4/spanning", Kind: kindFig4, Variant: "spanning", Config: ExpConfig{Kernels: 2, Instances: l}, Arg: maxLen},
			TaskSpec{Experiment: "fig4/m3", Kind: kindFig4, Variant: "m3", Config: ExpConfig{Kernels: 1, Instances: l}, Arg: maxLen})
	}
	return specs, lengths
}

// Fig4 measures chain revocation for chain lengths 0..maxLen (step 10).
// Every (length, variant) cell builds its own system inside its task, so
// the whole figure is one planned batch.
func Fig4(o Options, maxLen int) Fig4Result {
	if maxLen <= 0 {
		maxLen = 100
	}
	specs, lengths := fig4Specs(maxLen)
	rs := o.execute(specs)
	r := Fig4Result{Lengths: lengths}
	for i, l := range lengths {
		r.LocalSemperOS = append(r.LocalSemperOS, ChainPoint{l, sim.Duration(rs[3*i].Metrics.Cycles)})
		r.SpanningChain = append(r.SpanningChain, ChainPoint{l, sim.Duration(rs[3*i+1].Metrics.Cycles)})
		r.LocalM3 = append(r.LocalM3, ChainPoint{l, sim.Duration(rs[3*i+2].Metrics.Cycles)})
	}
	o.record(rs)
	return r
}

// Print writes the three series (cycles, like the paper's K-cycle axis).
func (r Fig4Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 4: Revoking capability chains of varying sizes (cycles)")
	fmt.Fprintln(w, "len   local(SemperOS)   spanning(SemperOS)   local(M3)")
	for i, l := range r.Lengths {
		fmt.Fprintf(w, "%3d   %15d   %18d   %9d\n",
			l, r.LocalSemperOS[i].Cycles, r.SpanningChain[i].Cycles, r.LocalM3[i].Cycles)
	}
}

// --- Figure 5: tree revocation --------------------------------------------

// TreeSeries is one line of Figure 5: child capabilities spread over
// 1+Extra kernels.
type TreeSeries struct {
	ExtraKernels int
	Points       []ChainPoint // Length is the child count here
}

// Fig5Result holds all series of Figure 5.
type Fig5Result struct {
	Counts []int
	Series []TreeSeries
}

// buildTreeAndRevoke hands the root capability to n other VPEs (spread over
// extra kernels if extra > 0) and measures revoking the whole tree.
func buildTreeAndRevoke(eng *sim.Engine, n, extra, simWorkers int, simMode string) sim.Duration {
	kernels := extra + 1
	perGroup := n + 1
	if extra > 0 {
		perGroup = (n+extra-1)/extra + 1
	}
	sys := core.MustNew(core.Config{Kernels: kernels, UserPEs: kernels * perGroup, Engine: eng, SimWorkers: simWorkers, SimMode: simMode})
	defer sys.Close()
	pes := sys.UserPEs()
	// Group 0's first PE hosts the root; children are placed round-robin
	// over the extra kernels (or locally if extra == 0).
	byGroup := make(map[int][]int)
	for _, pe := range pes {
		g := sys.KernelOfPE(pe).ID()
		byGroup[g] = append(byGroup[g], pe)
	}
	rootPE := byGroup[0][0]
	byGroup[0] = byGroup[0][1:]

	ready := sim.NewFuture[cap.Selector](sys.Eng)
	var wg sim.WaitGroup
	wg.Bind(sys.Eng)
	wg.Add(n)
	var revTime sim.Duration
	root, _ := sys.SpawnOn(rootPE, "root", func(v *core.VPE, p *sim.Proc) {
		sel, err := v.AllocMem(p, 4096, dtu.PermRW)
		if err != nil {
			panic(err)
		}
		ready.CompleteFrom(p, sel)
		wg.Wait(p)
		t0 := p.Now()
		if err := v.Revoke(p, sel); err != nil {
			panic(err)
		}
		revTime = p.Now() - t0
	})
	for i := 0; i < n; i++ {
		var g int
		if extra == 0 {
			g = 0
		} else {
			g = 1 + i%extra
		}
		pe := byGroup[g][0]
		byGroup[g] = byGroup[g][1:]
		sys.SpawnOn(pe, fmt.Sprintf("kid%d", i), func(v *core.VPE, p *sim.Proc) {
			sel := ready.Wait(p)
			if _, err := v.ObtainFrom(p, root.ID, sel); err != nil {
				panic(err)
			}
			wg.DoneFrom(p)
		})
	}
	sys.Run()
	return revTime
}

// kindFig5 revokes one capability tree; Config encodes the cell
// (Kernels = 1+extra, Instances = child count).
const kindFig5 = "fig5"

func init() { registerKind(kindFig5, runFig5Spec) }

func runFig5Spec(spec TaskSpec, eng *sim.Engine) (Metrics, any, error) {
	n, extra := spec.Config.Instances, spec.Config.Kernels-1
	return Metrics{Cycles: uint64(buildTreeAndRevoke(eng, n, extra, spec.SimWorkers, spec.SimMode))}, nil, nil
}

// fig5Specs plans the (spread, child-count) grid.
func fig5Specs(counts, extras []int) []TaskSpec {
	specs := make([]TaskSpec, 0, len(extras)*len(counts))
	for _, extra := range extras {
		for _, n := range counts {
			specs = append(specs, TaskSpec{
				Experiment: "fig5",
				Kind:       kindFig5,
				Config:     ExpConfig{Kernels: 1 + extra, Instances: n},
			})
		}
	}
	return specs
}

// Fig5 measures tree revocation for child counts 0..maxKids (step 16) and
// kernel spreads 1+{0,1,4,8,12}, all cells in one planned batch.
func Fig5(o Options, maxKids int) Fig5Result {
	if maxKids <= 0 {
		maxKids = 128
	}
	r := Fig5Result{}
	for n := 0; n <= maxKids; n += 16 {
		r.Counts = append(r.Counts, n)
	}
	extras := []int{0, 1, 4, 8, 12}
	rs := o.execute(fig5Specs(r.Counts, extras))
	for ei, extra := range extras {
		s := TreeSeries{ExtraKernels: extra}
		for ni, n := range r.Counts {
			s.Points = append(s.Points, ChainPoint{n, sim.Duration(rs[ei*len(r.Counts)+ni].Metrics.Cycles)})
		}
		r.Series = append(r.Series, s)
	}
	o.record(rs)
	return r
}

// Print writes the series in µs, like the paper's Figure 5 axis.
func (r Fig5Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 5: Parallel revocation of capability trees (µs)")
	fmt.Fprint(w, "caps ")
	for _, s := range r.Series {
		fmt.Fprintf(w, "  1+%-2d kernels", s.ExtraKernels)
	}
	fmt.Fprintln(w)
	for i, n := range r.Counts {
		fmt.Fprintf(w, "%4d ", n)
		for _, s := range r.Series {
			us := float64(s.Points[i].Cycles) / core.CyclesPerMicrosecond
			fmt.Fprintf(w, "  %12.2f", us)
		}
		fmt.Fprintln(w)
	}
}
