package bench

import (
	"encoding/json"
	"testing"

	"repro/internal/trace"
	"repro/internal/workload"
)

// plannedSpecs gathers specs from every experiment planner (small
// parameterizations — the specs, not the runs, are under test).
func plannedSpecs() []TaskSpec {
	var specs []TaskSpec
	specs = append(specs, table3Specs()...)
	f4, _ := fig4Specs(20)
	specs = append(specs, f4...)
	specs = append(specs, fig5Specs([]int{0, 16}, []int{0, 1, 4})...)
	specs = append(specs, ablationSpecs([]int{16, 32}, 3)...)
	specs = append(specs, ablationIKCSpecs([]int{16}, 3)...)
	specs = append(specs, workloadSpecs("fig6", []workload.Config{
		{Kernels: 2, Services: 2, Instances: 1, Trace: trace.Tar()},
		{Kernels: 2, Services: 2, Instances: 8, Trace: trace.SQLite()},
	})...)
	specs = append(specs, TaskSpec{
		Experiment: "fig10",
		Kind:       kindNginx,
		Config:     ExpConfig{Kernels: 2, Services: 2, Instances: 8},
	})
	return specs
}

// TestTaskSpecRoundTrip: every spec a planner can produce survives the JSON
// round trip of the worker protocol unchanged, and its kind resolves in the
// registry — the two properties the serialization layer owes the shards.
func TestTaskSpecRoundTrip(t *testing.T) {
	specs := plannedSpecs()
	if len(specs) < 20 {
		t.Fatalf("only %d planned specs; planners missing?", len(specs))
	}
	for _, spec := range specs {
		if spec.Experiment == "" || spec.Kind == "" {
			t.Errorf("spec missing identity: %+v", spec)
		}
		if _, ok := kinds[spec.Kind]; !ok {
			t.Errorf("spec kind %q not in registry: %+v", spec.Kind, spec)
		}
		data, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("marshal %+v: %v", spec, err)
		}
		var back TaskSpec
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if back != spec {
			t.Errorf("round trip changed the spec:\n  sent: %+v\n  got:  %+v", spec, back)
		}
	}
}

// TestRunSpecMatchesTaskPath: executing a spec through the registry
// produces the same simulated metrics as the historical closure path (the
// experiment functions) — pinned here for one workload cell by running the
// spec twice and against workload.Run directly.
func TestRunSpecMatchesWorkloadRun(t *testing.T) {
	spec := workloadSpecs("det", []workload.Config{
		{Kernels: 2, Services: 2, Instances: 4, Trace: trace.Tar()},
	})[0]
	res := RunSpec(spec)
	if res.Error != "" {
		t.Fatalf("spec run failed: %s", res.Error)
	}
	direct, err := workload.Run(workload.Config{Kernels: 2, Services: 2, Instances: 4, Trace: trace.Tar()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Cycles != uint64(direct.MeanRuntime()) || res.Metrics.CapOps != direct.TotalCapOps {
		t.Errorf("spec metrics %+v != direct run (cycles %d, capops %d)",
			res.Metrics, direct.MeanRuntime(), direct.TotalCapOps)
	}
	if aux := auxOf[workloadAux](res); aux.Makespan != uint64(direct.Makespan) {
		t.Errorf("aux makespan %d != direct %d", aux.Makespan, direct.Makespan)
	}
}

// TestRunSpecUnknownKind: an unresolvable spec becomes an error Result, not
// a panic — the coordinator turns it into a fail-fast, the worker survives.
func TestRunSpecUnknownKind(t *testing.T) {
	res := RunSpec(TaskSpec{Experiment: "x", Kind: "no-such-kind"})
	if res.Error == "" {
		t.Fatal("unknown kind did not error")
	}
}

// TestCostModelOrder: recorded wallclocks dispatch longest-first; unknown
// specs fall back to the instance-count heuristic; ties keep spec order
// (deterministic schedules).
func TestCostModelOrder(t *testing.T) {
	specA := TaskSpec{Experiment: "a", Kind: kindFig5, Config: ExpConfig{Kernels: 1, Instances: 4}}
	specB := TaskSpec{Experiment: "b", Kind: kindFig5, Config: ExpConfig{Kernels: 1, Instances: 4}}
	specC := TaskSpec{Experiment: "c", Kind: kindFig5, Config: ExpConfig{Kernels: 1, Instances: 400}}

	rep := NewReport(true, 1)
	rep.Add(
		Result{Experiment: "a", Config: specA.Config, WallclockNS: 10},
		Result{Experiment: "b", Config: specB.Config, WallclockNS: 99},
		// "a" again, slower: the model must keep the max.
		Result{Experiment: "a", Config: specA.Config, WallclockNS: 50},
	)
	m := NewCostModel(rep)
	if got := m.Estimate(specA); got != 50 {
		t.Errorf("Estimate(a) = %d, want the max recording 50", got)
	}
	// Unknown spec C: heuristic ~1ms/PE puts it far above the tiny
	// recordings, so it must dispatch first.
	order := m.Order([]TaskSpec{specA, specB, specC})
	if order[0] != 2 || order[1] != 1 || order[2] != 0 {
		t.Errorf("order = %v, want [2 1 0] (heuristic C, then b=99ns, then a=50ns)", order)
	}
	if known := m.Known([]TaskSpec{specA, specB, specC}); known != 2 {
		t.Errorf("Known = %d, want 2", known)
	}

	// Nil model: pure heuristic, instance-count driven, stable on ties.
	var nilModel *CostModel
	order = nilModel.Order([]TaskSpec{specA, specB, specC})
	if order[0] != 2 || order[1] != 0 || order[2] != 1 {
		t.Errorf("heuristic order = %v, want [2 0 1]", order)
	}
}
