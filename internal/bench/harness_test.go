package bench

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

// TestRunTasksOrdering: results come back in task order even when tasks
// complete in reverse order.
func TestRunTasksOrdering(t *testing.T) {
	const n = 16
	tasks := make([]Task, n)
	for i := 0; i < n; i++ {
		i := i
		tasks[i] = Task{
			Experiment: fmt.Sprintf("t%d", i),
			Run: func(*sim.Engine) (Metrics, error) {
				return Metrics{Cycles: uint64(i)}, nil
			},
		}
	}
	for _, parallel := range []int{1, 4, n} {
		rs := RunTasks(parallel, tasks)
		if len(rs) != n {
			t.Fatalf("parallel=%d: got %d results, want %d", parallel, len(rs), n)
		}
		for i, r := range rs {
			if r.Experiment != fmt.Sprintf("t%d", i) || r.Metrics.Cycles != uint64(i) {
				t.Errorf("parallel=%d: result %d = %q/%d, want t%d/%d",
					parallel, i, r.Experiment, r.Metrics.Cycles, i, i)
			}
		}
	}
}

// TestRunTasksPanicCapture: a panicking task becomes an error result and
// does not take down its worker (later tasks still run).
func TestRunTasksPanicCapture(t *testing.T) {
	tasks := []Task{
		{Experiment: "boom", Run: func(*sim.Engine) (Metrics, error) { panic("kaboom") }},
		{Experiment: "err", Run: func(*sim.Engine) (Metrics, error) { return Metrics{}, errors.New("nope") }},
		{Experiment: "ok", Run: func(*sim.Engine) (Metrics, error) { return Metrics{Cycles: 7}, nil }},
	}
	rs := RunTasks(1, tasks)
	if rs[0].Error == "" || rs[0].Error != "panic: kaboom" {
		t.Errorf("panic not captured: %q", rs[0].Error)
	}
	if rs[1].Error != "nope" {
		t.Errorf("error not captured: %q", rs[1].Error)
	}
	if rs[2].Error != "" || rs[2].Metrics.Cycles != 7 {
		t.Errorf("healthy task corrupted: %+v", rs[2])
	}
}

// TestParallelDeterminism: the simulated metrics of a sweep are identical
// at -parallel 1 and -parallel 4 — the acceptance criterion of the harness.
func TestParallelDeterminism(t *testing.T) {
	sweep := func(parallel int) []Result {
		o := Quick()
		o.Parallel = parallel
		o.Report = NewReport(true, parallel)
		o.runEffSweeps("det", []sweepSpec{
			{tr: trace.Tar(), kernels: 2, services: 2, steps: []int{8, 16}},
			{tr: trace.PostMark(), kernels: 2, services: 2, steps: []int{8, 16}},
		})
		return o.Report.Results
	}
	serial, parallel := sweep(1), sweep(4)
	if len(serial) != len(parallel) || len(serial) == 0 {
		t.Fatalf("result counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		s, p := serial[i], parallel[i]
		if s.Experiment != p.Experiment || s.Config != p.Config || s.Metrics != p.Metrics {
			t.Errorf("result %d differs:\n  serial:   %+v\n  parallel: %+v", i, s, p)
		}
	}
}

// TestReportJSON: the report round-trips through JSON with the stable
// schema fields.
func TestReportJSON(t *testing.T) {
	rep := NewReport(true, 4)
	rep.Add(Result{
		Experiment:  "fig6/tar",
		Config:      ExpConfig{Kernels: 4, Services: 4, Instances: 16},
		Metrics:     Metrics{Cycles: 123, Efficiency: 0.5, CapOps: 21},
		WallclockNS: 456,
	})
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Schema   string `json:"schema"`
		Quick    bool   `json:"quick"`
		Parallel int    `json:"parallel"`
		Results  []struct {
			Experiment string `json:"experiment"`
			Config     struct {
				Kernels   int `json:"kernels"`
				Services  int `json:"services"`
				Instances int `json:"instances"`
			} `json:"config"`
			Metrics struct {
				Cycles     uint64  `json:"cycles"`
				Efficiency float64 `json:"efficiency"`
				CapOps     uint64  `json:"capops"`
			} `json:"metrics"`
			WallclockNS int64 `json:"wallclock_ns"`
		} `json:"results"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if decoded.Schema != ReportSchema {
		t.Errorf("schema = %q, want %q", decoded.Schema, ReportSchema)
	}
	if len(decoded.Results) != 1 {
		t.Fatalf("got %d results, want 1", len(decoded.Results))
	}
	r := decoded.Results[0]
	if r.Experiment != "fig6/tar" || r.Config.Kernels != 4 || r.Metrics.Cycles != 123 ||
		r.Metrics.Efficiency != 0.5 || r.Metrics.CapOps != 21 || r.WallclockNS != 456 {
		t.Errorf("result did not round-trip: %+v", r)
	}
}

// TestSweepRecordsEfficiency: the report entries of an efficiency sweep
// carry the computed efficiency on the parallel points and 1.0 on the
// baseline.
func TestSweepRecordsEfficiency(t *testing.T) {
	o := Quick()
	o.Report = NewReport(true, 0)
	pts := o.efficiencySweep(trace.Tar(), 2, 2, []int{8})
	rs := o.Report.Results
	if len(rs) != 2 {
		t.Fatalf("got %d report entries, want 2", len(rs))
	}
	if rs[0].Config.Instances != 1 || rs[0].Metrics.Efficiency != 1 {
		t.Errorf("baseline entry wrong: %+v", rs[0])
	}
	if rs[1].Config.Instances != 8 || rs[1].Metrics.Efficiency != pts[0].Efficiency {
		t.Errorf("point entry wrong: %+v (want eff %v)", rs[1], pts[0].Efficiency)
	}
	if rs[1].Metrics.Efficiency <= 0 || rs[1].Metrics.Efficiency > 1.01 {
		t.Errorf("efficiency out of range: %v", rs[1].Metrics.Efficiency)
	}
}

// TestRunTasksPooledEngines: every task receives a fresh-state engine, even
// after an earlier task on the same worker leaked parked procs and pending
// events — the engine pool Resets between tasks.
func TestRunTasksPooledEngines(t *testing.T) {
	mkTask := func(name string) Task {
		return Task{Experiment: name, Run: func(eng *sim.Engine) (Metrics, error) {
			if eng == nil {
				return Metrics{}, errors.New("nil engine")
			}
			if eng.Now() != 0 || eng.Pending() != 0 || eng.Executed() != 0 || eng.LiveProcs() != 0 {
				return Metrics{}, fmt.Errorf("engine not fresh: now=%d pending=%d executed=%d procs=%d",
					eng.Now(), eng.Pending(), eng.Executed(), eng.LiveProcs())
			}
			// Dirty the engine and leak a parked proc; do NOT Kill — the
			// harness must clean up on Put.
			eng.Spawn("leak", func(p *sim.Proc) { p.Park() })
			eng.Schedule(50, func() {})
			eng.RunUntil(10)
			eng.Schedule(100, func() {})
			return Metrics{Cycles: 1}, nil
		}}
	}
	tasks := []Task{mkTask("a"), mkTask("b"), mkTask("c"), mkTask("d")}
	for _, rs := range [][]Result{RunTasks(1, tasks), RunTasks(2, tasks)} {
		for _, r := range rs {
			if r.Error != "" {
				t.Errorf("%s: %s", r.Experiment, r.Error)
			}
		}
	}
}

// TestRunTasksCapturesProcPanic: a panic raised inside a simulated proc —
// the dominant failure mode of a broken experiment — becomes an error
// Result instead of tearing down the whole sweep.
func TestRunTasksCapturesProcPanic(t *testing.T) {
	tasks := []Task{
		{Experiment: "sim-boom", Run: func(e *sim.Engine) (Metrics, error) {
			defer e.Kill()
			e.Spawn("bad", func(p *sim.Proc) { panic("boom") })
			e.Run()
			return Metrics{}, nil
		}},
		{Experiment: "ok", Run: func(*sim.Engine) (Metrics, error) { return Metrics{Cycles: 1}, nil }},
	}
	rs := RunTasks(1, tasks)
	if !strings.Contains(rs[0].Error, "boom") {
		t.Errorf("proc panic not captured: %q", rs[0].Error)
	}
	if rs[1].Error != "" || rs[1].Metrics.Cycles != 1 {
		t.Errorf("healthy task corrupted: %+v", rs[1])
	}
}

// TestBatchedParallelDeterminism: the batched-transport ablation — every
// configuration with IKC batching enabled — produces bit-identical
// simulated metrics regardless of the harness worker-pool size (and thus
// regardless of which pooled, previously-dirtied engine each task lands
// on).
func TestBatchedParallelDeterminism(t *testing.T) {
	sweep := func(parallel int) AblationIKCResult {
		o := Quick()
		o.Parallel = parallel
		return AblationIKC(o, 32, 3)
	}
	serial, parallel := sweep(1), sweep(4)
	if len(serial.Exchange) == 0 || len(serial.SvcQuery) == 0 {
		t.Fatal("empty ablation result")
	}
	for i := range serial.Exchange {
		if serial.Exchange[i] != parallel.Exchange[i] {
			t.Errorf("exchange row %d differs:\n  serial:   %+v\n  parallel: %+v",
				i, serial.Exchange[i], parallel.Exchange[i])
		}
	}
	for i := range serial.SvcQuery {
		if serial.SvcQuery[i] != parallel.SvcQuery[i] {
			t.Errorf("svcquery row %d differs:\n  serial:   %+v\n  parallel: %+v",
				i, serial.SvcQuery[i], parallel.SvcQuery[i])
		}
	}
	// Batching must strictly reduce wire messages at every breadth.
	for _, rows := range [][]IKCRow{serial.Exchange, serial.SvcQuery} {
		for _, row := range rows {
			if row.BatchedMsgs >= row.PlainMsgs {
				t.Errorf("no message reduction at %d clients: %d vs %d",
					row.Clients, row.BatchedMsgs, row.PlainMsgs)
			}
		}
	}
}

// TestReplyEnvelopeParallelDeterminism mirrors
// TestBatchedParallelDeterminism for the reply direction of the symmetric
// transport: the per-direction wire-message splits must be bit-identical
// across worker-pool sizes, and the batched reply direction must coalesce
// (strictly fewer reply messages than the plain transport at every
// breadth).
func TestReplyEnvelopeParallelDeterminism(t *testing.T) {
	sweep := func(parallel int) AblationIKCResult {
		o := Quick()
		o.Parallel = parallel
		return AblationIKC(o, 32, 3)
	}
	serial, parallel := sweep(1), sweep(4)
	for name, pair := range map[string][2][]IKCRow{
		"exchange": {serial.Exchange, parallel.Exchange},
		"svcquery": {serial.SvcQuery, parallel.SvcQuery},
	} {
		for i := range pair[0] {
			if pair[0][i] != pair[1][i] {
				t.Errorf("%s row %d differs:\n  serial:   %+v\n  parallel: %+v",
					name, i, pair[0][i], pair[1][i])
			}
		}
		for _, row := range pair[0] {
			if row.BatchedRepMsgs >= row.PlainRepMsgs {
				t.Errorf("%s: no reply coalescing at %d clients: %d vs %d",
					name, row.Clients, row.BatchedRepMsgs, row.PlainRepMsgs)
			}
		}
	}
}
