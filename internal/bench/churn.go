package bench

import (
	"fmt"
	"io"

	"repro/internal/cap"
	"repro/internal/core"
	"repro/internal/dtu"
	"repro/internal/fault"
	"repro/internal/sim"
)

// Churn scenario (`-experiment churn`). The crash-recovery protocol
// (core/rejoin.go) is exercised end-to-end by an open-loop revocation
// storm: sessions arrive on a fixed schedule and obtain slot capabilities
// from a root while the root expires slots by revoking them — revocations
// racing exchanges across every kernel link — and, mid-storm, a fault plan
// drops 1% of the traffic and crashes one kernel, which later recovers and
// rejoins as a new incarnation. The run must drain (no hangs), the
// completion fractions are exact functions of (seed, plan) — byte-identical
// at any -parallel/-shards/-simworkers and deterministic under -simmode
// rounds — and afterwards core.System.CheckLeaks must find no capability or
// DDL state owned by the dead incarnation.

const (
	// churnSlots is the number of slot capabilities the root serves;
	// churnRevokes of them are expired mid-storm (the rest stay live so
	// post-recovery arrivals have something to obtain).
	churnSlots   = 16
	churnRevokes = 10
	// churnGap spaces the open-loop session arrivals; with 64 clients the
	// arrival schedule spans past the recovery, so the storm covers the
	// pre-crash, blackhole and post-rejoin regimes.
	churnGap sim.Duration = 8_000
	// churnRevokeAt/churnRevokeGap schedule the expiries: the revocation
	// storm starts before the crash and runs into the blackhole window, so
	// some revocations orphan state on the crashed kernel and must be
	// replayed at the rejoin.
	churnRevokeAt  sim.Time     = 60_000
	churnRevokeGap sim.Duration = 6_000
	// churnCrashAt/churnRecoverAt bound the blackhole window.
	churnCrashAt   sim.Time = 80_000
	churnRecoverAt sim.Time = 400_000
)

// churnAux is the side data of one churn run.
type churnAux struct {
	ObtainsAttempted int    `json:"obtainsattempted"`
	ObtainsOK        int    `json:"obtainsok"`
	RevokesAttempted int    `json:"revokesattempted"`
	RevokesOK        int    `json:"revokesok"`
	Retransmits      uint64 `json:"retransmits"`
	DupSuppressed    uint64 `json:"dupsuppressed"`
	FailFast         uint64 `json:"failfast"`
	DeadPeers        uint64 `json:"deadpeers"`
	Rejoins          uint64 `json:"rejoins"`
	MeanRejoinCycles uint64 `json:"meanrejoin"`
	StaleIncarnation uint64 `json:"staleincarnation"`
	InjDropped       uint64 `json:"injdropped"`
	InjBlackholed    uint64 `json:"injblackholed"`
	// LeakedEntries counts capability/DDL state owned by a dead incarnation
	// after the storm drained (core.System.CheckLeaks). The crashed kernel
	// recovered, so nothing is excused: any nonzero value is a protocol bug.
	LeakedEntries int    `json:"leakedentries"`
	CapsCreated   uint64 `json:"capscreated"`
}

func (a churnAux) capsMinted() uint64 { return a.CapsCreated }

// churnSystem builds the storm machine: clients spread over the non-root
// kernels exactly like the fault sweep's fan-out, plus the simulation mode
// (the churn scenario is the one fault experiment that also runs under
// isolated rounds).
func churnSystem(eng *sim.Engine, n, extra int, plan *fault.Plan, simWorkers int, simMode string) (*core.System, []int) {
	kernels := extra + 1
	perGroup := n + 2
	if extra > 0 {
		perGroup = (n+extra-1)/extra + 2
	}
	sys := core.MustNew(core.Config{
		Kernels:     kernels,
		UserPEs:     kernels * perGroup,
		IKCBatching: core.IKCBatching{Exchange: true, ServiceQuery: true},
		Faults:      plan,
		Engine:      eng,
		SimWorkers:  simWorkers,
		SimMode:     simMode,
	})
	byGroup := make(map[int][]int)
	for _, pe := range sys.UserPEs() {
		g := sys.KernelOfPE(pe).ID()
		byGroup[g] = append(byGroup[g], pe)
	}
	clientPEs := make([]int, 0, n)
	for i := 0; i < n; i++ {
		g := 0
		if extra > 0 {
			g = 1 + i%extra
		}
		clientPEs = append(clientPEs, byGroup[g][1+i/max(extra, 1)])
	}
	return sys, append([]int{byGroup[0][0]}, clientPEs...)
}

// sleepUntil parks the proc until the given absolute simulation time (a
// no-op when that time has already passed — sim.Time is unsigned, so the
// comparison must precede the subtraction).
func sleepUntil(p *sim.Proc, t sim.Time) {
	if now := p.Now(); t > now {
		p.Sleep(t - now)
	}
}

// churnStorm runs the storm on one machine: n open-loop client arrivals
// obtaining slot capabilities, churnRevokes scheduled expiries racing them.
// Failed operations are data, not errors — the degradation under the crash
// is exactly what the scenario measures.
func churnStorm(eng *sim.Engine, n, extra int, plan *fault.Plan, simWorkers int, simMode string) (*core.System, sim.Duration, churnAux) {
	sys, pes := churnSystem(eng, n, extra, plan, simWorkers, simMode)
	ready := sim.NewFuture[[]cap.Selector](sys.Eng)
	var t0, end sim.Time
	var okRevokes int
	// Per-client result slots: each client writes only its own entry, so the
	// storm is race-free when the rounds runtime executes kernel domains
	// concurrently (the domain-aware CompleteFrom/DoneFrom below carry the
	// cross-domain synchronization).
	okObtains := make([]bool, n)
	var wg sim.WaitGroup
	wg.Bind(sys.Eng)
	wg.Add(n)
	root, err := sys.SpawnOn(pes[0], "root", func(v *core.VPE, p *sim.Proc) {
		sels := make([]cap.Selector, churnSlots)
		for i := range sels {
			sel, err := v.AllocMem(p, 4096, dtu.PermRW)
			if err != nil {
				panic(err) // local to the root kernel; never faulted
			}
			sels[i] = sel
		}
		t0 = p.Now()
		ready.CompleteFrom(p, sels)
		// The expiry schedule: revoke the first churnRevokes slots on a
		// fixed timetable, racing the arrivals. Revocations into the
		// blackhole window orphan the crashed kernel's copies; the rejoin
		// replay must clean them up.
		for j := 0; j < churnRevokes; j++ {
			sleepUntil(p, churnRevokeAt+sim.Time(sim.Duration(j)*churnRevokeGap))
			if err := v.Revoke(p, sels[j]); err == nil {
				okRevokes++
			}
		}
		wg.Wait(p)
		end = p.Now()
	})
	if err != nil {
		panic(err)
	}
	for i := 0; i < n; i++ {
		i := i
		if _, err := sys.SpawnOn(pes[1+i], fmt.Sprintf("c%d", i), func(v *core.VPE, p *sim.Proc) {
			sels := ready.Wait(p)
			// Open-loop arrival: the schedule is fixed, not gated on other
			// sessions completing.
			sleepUntil(p, sim.Time(sim.Duration(i)*churnGap))
			if _, err := v.ObtainFrom(p, root.ID, sels[i%churnSlots]); err == nil {
				okObtains[i] = true
			}
			wg.DoneFrom(p)
		}); err != nil {
			panic(err)
		}
	}
	sys.Run()
	aux := churnAux{
		ObtainsAttempted: n,
		RevokesAttempted: churnRevokes,
		RevokesOK:        okRevokes,
	}
	for _, ok := range okObtains {
		if ok {
			aux.ObtainsOK++
		}
	}
	return sys, end - t0, aux
}

// kindChurn runs one churn scenario. Config encodes the machine, Arg the
// drop rate in basis points, Seed the injector seed and CrashKernel the
// kernel that crashes and recovers (-1 = none).
const kindChurn = "churn"

func init() { registerKind(kindChurn, runChurnSpec) }

func runChurnSpec(spec TaskSpec, eng *sim.Engine) (Metrics, any, error) {
	n, extra := spec.Config.Instances, spec.Config.Kernels-1
	seed := spec.Seed
	if seed == 0 {
		seed = 1
	}
	plan := faultsPlan(seed, spec.Arg)
	if spec.CrashKernel >= 0 {
		plan.Kernels = append(plan.Kernels, fault.KernelFault{
			Kernel: spec.CrashKernel, CrashAt: churnCrashAt, RecoverAt: churnRecoverAt,
		})
	}
	sys, mk, aux := churnStorm(eng, n, extra, plan, spec.SimWorkers, spec.SimMode)
	defer sys.Close()
	st := sys.TotalStats()
	fs := sys.FaultStats()
	var meanRejoin uint64
	if st.Rejoins > 0 {
		meanRejoin = uint64(st.RejoinCycles) / st.Rejoins
	}
	// Post-storm audit: the crashed kernel recovered, so no kernel is
	// excused — every capability, child link and DDL entry must have a live,
	// consistent owner.
	leaks := sys.CheckLeaks()
	aux.Retransmits = st.Retransmits
	aux.DupSuppressed = st.DupSuppressed
	aux.FailFast = st.FailFast
	aux.DeadPeers = st.DeadPeers
	aux.Rejoins = st.Rejoins
	aux.MeanRejoinCycles = meanRejoin
	aux.StaleIncarnation = st.StaleIncarnation
	aux.InjDropped = fs.Dropped
	aux.InjBlackholed = fs.Blackholed
	aux.LeakedEntries = len(leaks)
	aux.CapsCreated = st.CapsCreated
	attempted := aux.ObtainsAttempted + aux.RevokesAttempted
	ok := aux.ObtainsOK + aux.RevokesOK
	m := Metrics{
		Cycles:    uint64(mk),
		LostMsgs:  sys.Net.Stats().Lost,
		Retries:   st.Retransmits,
		DupDrops:  st.DupSuppressed,
		Completed: float64(ok) / float64(attempted),
	}
	return m, aux, nil
}

// churnSpecs plans the scenario rows: a no-crash control at the storm's
// drop rate, then the crash+recover storm on a lossless and on a lossy
// fabric.
func churnSpecs(n, extra, crashKernel int, seed uint64) []TaskSpec {
	cfg := ExpConfig{Kernels: extra + 1, Instances: n}
	return []TaskSpec{
		{Experiment: "churn/nocrash-100bp", Kind: kindChurn, Variant: "nocrash",
			Arg: 100, Seed: seed, CrashKernel: -1, Config: cfg},
		{Experiment: "churn/storm-0bp", Kind: kindChurn, Variant: "storm",
			Arg: 0, Seed: seed, CrashKernel: crashKernel, Config: cfg},
		{Experiment: "churn/storm-100bp", Kind: kindChurn, Variant: "storm",
			Arg: 100, Seed: seed, CrashKernel: crashKernel, Config: cfg},
	}
}

// ChurnRow is one report row of the churn scenario.
type ChurnRow struct {
	Scenario  string
	DropBp    int
	Makespan  sim.Duration
	Completed float64
	Retries   uint64
	LostMsgs  uint64
	Aux       churnAux
}

// ChurnResult holds the churn scenario sweep.
type ChurnResult struct {
	ExtraKernels int
	CrashKernel  int
	Seed         uint64
	Rows         []ChurnRow
}

// Churn runs the revocation-storm churn scenario: n open-loop sessions over
// 1+extra kernels with scheduled expiries, a 1% lossy fabric and a
// crash+recover of crashKernel (-1 = the last kernel) mid-storm. It returns
// an error — without running anything — if the scenario is invalid for the
// configured simulation mode (e.g. crashing kernel 0, the DRAM-refill home,
// under -simmode rounds).
func Churn(o Options, maxClients, extra, crashKernel int) (ChurnResult, error) {
	if maxClients <= 0 {
		maxClients = 64
	}
	if extra <= 0 {
		extra = 8
	}
	if crashKernel < 0 {
		crashKernel = extra // the last kernel, never the root's
	}
	if crashKernel > extra {
		return ChurnResult{}, fmt.Errorf("churn: crash kernel %d out of range [0, %d]", crashKernel, extra)
	}
	seed := o.FaultSeed
	if seed == 0 {
		seed = 1
	}
	// Pre-flight the exact machine the storm rows build, so mode conflicts
	// surface as a clean error here instead of a worker panic mid-sweep.
	specs := churnSpecs(maxClients, extra, crashKernel, seed)
	n := maxClients
	perGroup := (n+extra-1)/extra + 2
	plan := faultsPlan(seed, 100)
	plan.Kernels = append(plan.Kernels, fault.KernelFault{
		Kernel: crashKernel, CrashAt: churnCrashAt, RecoverAt: churnRecoverAt,
	})
	if err := (core.Config{
		Kernels: extra + 1,
		UserPEs: (extra + 1) * perGroup,
		Faults:  plan,
		SimMode: o.SimMode,
	}).Validate(); err != nil {
		return ChurnResult{}, fmt.Errorf("churn: %w", err)
	}
	rs := o.execute(specs)
	r := ChurnResult{ExtraKernels: extra, CrashKernel: crashKernel, Seed: seed}
	for i, spec := range specs {
		m := rs[i].Metrics
		r.Rows = append(r.Rows, ChurnRow{
			Scenario:  spec.Variant,
			DropBp:    spec.Arg,
			Makespan:  sim.Duration(m.Cycles),
			Completed: m.Completed,
			Retries:   m.Retries,
			LostMsgs:  m.LostMsgs,
			Aux:       auxOf[churnAux](rs[i]),
		})
	}
	o.record(rs)
	return r, nil
}

// Print writes the churn table.
func (r ChurnResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Churn: open-loop revocation storm over 1+%d kernels, crash kernel %d, seed %d\n",
		r.ExtraKernels, r.CrashKernel, r.Seed)
	fmt.Fprintln(w, "scenario  drop     makespan(µs)  obtains  revokes  completed  retries  lost  dead  rejoins  rejoin(µs)  stale  leaks")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-8s  %5.2f%%  %12.2f  %3d/%3d  %4d/%2d  %8.1f%%  %7d  %4d  %4d  %7d  %10.2f  %5d  %5d\n",
			row.Scenario,
			float64(row.DropBp)/100,
			float64(row.Makespan)/core.CyclesPerMicrosecond,
			row.Aux.ObtainsOK, row.Aux.ObtainsAttempted,
			row.Aux.RevokesOK, row.Aux.RevokesAttempted,
			row.Completed*100,
			row.Retries, row.LostMsgs, row.Aux.DeadPeers,
			row.Aux.Rejoins,
			float64(row.Aux.MeanRejoinCycles)/core.CyclesPerMicrosecond,
			row.Aux.StaleIncarnation,
			row.Aux.LeakedEntries)
	}
}
