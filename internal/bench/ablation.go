package bench

import (
	"fmt"
	"io"

	"repro/internal/cap"
	"repro/internal/core"
	"repro/internal/dtu"
	"repro/internal/sim"
)

// Ablation: revoke message batching. The paper's §5.2 closes its tree
// revocation discussion with "we believe that this can be further improved
// by the use of message batching. So far, the kernel managing the root
// capability sends out one message for each child capability." This
// experiment implements that proposal (core.Config.RevokeBatching) and
// measures its effect on Figure 5's workload.

// AblationRow compares plain and batched tree revocation at one breadth.
type AblationRow struct {
	Children      int
	PlainCycles   sim.Duration
	BatchedCycles sim.Duration
	PlainMsgs     uint64
	BatchedMsgs   uint64
}

// AblationResult is the batching ablation over tree breadths.
type AblationResult struct {
	ExtraKernels int
	Rows         []AblationRow
}

// ablationTreeRevoke builds a root with n children over 1+extra kernels and
// measures revoking it, returning the duration and total inter-kernel
// messages.
func ablationTreeRevoke(eng *sim.Engine, n, extra int, batching bool) (sim.Duration, uint64) {
	kernels := extra + 1
	perGroup := n + 1
	if extra > 0 {
		perGroup = (n+extra-1)/extra + 1
	}
	sys := core.MustNew(core.Config{
		Kernels:        kernels,
		UserPEs:        kernels * perGroup,
		RevokeBatching: batching,
		Engine:         eng,
	})
	defer sys.Close()
	byGroup := make(map[int][]int)
	for _, pe := range sys.UserPEs() {
		g := sys.KernelOfPE(pe).ID()
		byGroup[g] = append(byGroup[g], pe)
	}
	rootPE := byGroup[0][0]
	byGroup[0] = byGroup[0][1:]

	ready := sim.NewFuture[cap.Selector](sys.Eng)
	var wg sim.WaitGroup
	wg.Add(n)
	var revTime sim.Duration
	var msgsBefore uint64
	root, err := sys.SpawnOn(rootPE, "root", func(v *core.VPE, p *sim.Proc) {
		sel, err := v.AllocMem(p, 4096, dtu.PermRW)
		if err != nil {
			panic(err)
		}
		ready.Complete(sel)
		wg.Wait(p)
		for ki := 0; ki < sys.Kernels(); ki++ {
			msgsBefore += sys.Kernel(ki).Stats().IKCSent
		}
		t0 := p.Now()
		if err := v.Revoke(p, sel); err != nil {
			panic(err)
		}
		revTime = p.Now() - t0
	})
	if err != nil {
		panic(err)
	}
	for i := 0; i < n; i++ {
		g := 0
		if extra > 0 {
			g = 1 + i%extra
		}
		pe := byGroup[g][0]
		byGroup[g] = byGroup[g][1:]
		if _, err := sys.SpawnOn(pe, fmt.Sprintf("kid%d", i), func(v *core.VPE, p *sim.Proc) {
			sel := ready.Wait(p)
			if _, err := v.ObtainFrom(p, root.ID, sel); err != nil {
				panic(err)
			}
			wg.Done()
		}); err != nil {
			panic(err)
		}
	}
	sys.Run()
	var msgsAfter uint64
	for ki := 0; ki < sys.Kernels(); ki++ {
		msgsAfter += sys.Kernel(ki).Stats().IKCSent
	}
	return revTime, msgsAfter - msgsBefore
}

// AblationBatching measures tree revocation with and without message
// batching, spreading the children over 1+extra kernels. Every (breadth,
// variant) cell is an independent simulation run on the harness pool.
func AblationBatching(o Options, maxKids, extra int) AblationResult {
	if maxKids <= 0 {
		maxKids = 128
	}
	if extra <= 0 {
		extra = 12
	}
	var breadths []int
	for n := 16; n <= maxKids; n += 16 {
		breadths = append(breadths, n)
	}
	tasks := make([]Task, 0, 2*len(breadths))
	msgs := make([]uint64, 2*len(breadths))
	for i, n := range breadths {
		i, n := i, n
		for vi, batching := range []bool{false, true} {
			vi, batching := vi, batching
			name := "ablation/plain"
			if batching {
				name = "ablation/batched"
			}
			tasks = append(tasks, Task{
				Experiment: name,
				Config:     ExpConfig{Kernels: extra + 1, Instances: n},
				Run: func(eng *sim.Engine) (Metrics, error) {
					c, m := ablationTreeRevoke(eng, n, extra, batching)
					msgs[2*i+vi] = m
					return Metrics{Cycles: uint64(c)}, nil
				},
			})
		}
	}
	rs := RunTasks(o.Parallel, tasks)
	mustOK(rs)
	r := AblationResult{ExtraKernels: extra}
	for i, n := range breadths {
		r.Rows = append(r.Rows, AblationRow{
			Children:      n,
			PlainCycles:   sim.Duration(rs[2*i].Metrics.Cycles),
			BatchedCycles: sim.Duration(rs[2*i+1].Metrics.Cycles),
			PlainMsgs:     msgs[2*i],
			BatchedMsgs:   msgs[2*i+1],
		})
	}
	o.record(rs)
	return r
}

// Print writes the ablation table.
func (r AblationResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Ablation: revoke message batching (tree over 1+%d kernels)\n", r.ExtraKernels)
	fmt.Fprintln(w, "caps   plain(µs)  batched(µs)  speedup   plain-msgs  batched-msgs")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%4d   %9.2f  %11.2f  %6.2fx   %10d  %12d\n",
			row.Children,
			float64(row.PlainCycles)/core.CyclesPerMicrosecond,
			float64(row.BatchedCycles)/core.CyclesPerMicrosecond,
			float64(row.PlainCycles)/float64(row.BatchedCycles),
			row.PlainMsgs, row.BatchedMsgs)
	}
}
