package bench

import (
	"fmt"
	"io"

	"repro/internal/cap"
	"repro/internal/core"
	"repro/internal/dtu"
	"repro/internal/sim"
)

// Ablation: revoke message batching. The paper's §5.2 closes its tree
// revocation discussion with "we believe that this can be further improved
// by the use of message batching. So far, the kernel managing the root
// capability sends out one message for each child capability." This
// experiment implements that proposal (core.Config.RevokeBatching) and
// measures its effect on Figure 5's workload.

// AblationRow compares plain and batched tree revocation at one breadth.
type AblationRow struct {
	Children      int
	PlainCycles   sim.Duration
	BatchedCycles sim.Duration
	PlainMsgs     uint64
	BatchedMsgs   uint64
}

// AblationResult is the batching ablation over tree breadths.
type AblationResult struct {
	ExtraKernels int
	Rows         []AblationRow
}

// ablationTreeRevoke builds a root with n children over 1+extra kernels and
// measures revoking it, returning the duration and total inter-kernel
// messages.
func ablationTreeRevoke(eng *sim.Engine, n, extra int, batching bool, simWorkers int, simMode string) (sim.Duration, uint64) {
	kernels := extra + 1
	perGroup := n + 1
	if extra > 0 {
		perGroup = (n+extra-1)/extra + 1
	}
	sys := core.MustNew(core.Config{
		Kernels:        kernels,
		UserPEs:        kernels * perGroup,
		RevokeBatching: batching,
		Engine:         eng,
		SimWorkers:     simWorkers,
		SimMode:        simMode,
	})
	defer sys.Close()
	// Under isolated rounds the root must not read other kernels' counters
	// mid-run (cross-domain state): the run splits at the fan-out/revoke
	// boundary instead, and the driver snapshots the counters between the
	// two Run calls, when all domains are quiesced. Merged mode keeps the
	// single-run shape (and its byte-identical trace).
	rounds := simMode == core.SimModeRounds && kernels > 1
	byGroup := make(map[int][]int)
	for _, pe := range sys.UserPEs() {
		g := sys.KernelOfPE(pe).ID()
		byGroup[g] = append(byGroup[g], pe)
	}
	rootPE := byGroup[0][0]
	byGroup[0] = byGroup[0][1:]

	ready := sim.NewFuture[cap.Selector](sys.Eng)
	goRevoke := sim.NewFuture[struct{}](sys.Eng)
	var wg sim.WaitGroup
	wg.Bind(sys.Eng)
	wg.Add(n)
	var revTime sim.Duration
	var msgsBefore uint64
	root, err := sys.SpawnOn(rootPE, "root", func(v *core.VPE, p *sim.Proc) {
		sel, err := v.AllocMem(p, 4096, dtu.PermRW)
		if err != nil {
			panic(err)
		}
		ready.CompleteFrom(p, sel)
		wg.Wait(p)
		if rounds {
			goRevoke.Wait(p)
		} else {
			for ki := 0; ki < sys.Kernels(); ki++ {
				msgsBefore += sys.Kernel(ki).Stats().IKCSent
			}
		}
		t0 := p.Now()
		if err := v.Revoke(p, sel); err != nil {
			panic(err)
		}
		revTime = p.Now() - t0
	})
	if err != nil {
		panic(err)
	}
	for i := 0; i < n; i++ {
		g := 0
		if extra > 0 {
			g = 1 + i%extra
		}
		pe := byGroup[g][0]
		byGroup[g] = byGroup[g][1:]
		if _, err := sys.SpawnOn(pe, fmt.Sprintf("kid%d", i), func(v *core.VPE, p *sim.Proc) {
			sel := ready.Wait(p)
			if _, err := v.ObtainFrom(p, root.ID, sel); err != nil {
				panic(err)
			}
			wg.DoneFrom(p)
		}); err != nil {
			panic(err)
		}
	}
	if rounds {
		sys.Run() // fan-out drains; the root parks on goRevoke
		for ki := 0; ki < sys.Kernels(); ki++ {
			msgsBefore += sys.Kernel(ki).Stats().IKCSent
		}
		goRevoke.Complete(struct{}{})
	}
	sys.Run()
	var msgsAfter uint64
	for ki := 0; ki < sys.Kernels(); ki++ {
		msgsAfter += sys.Kernel(ki).Stats().IKCSent
	}
	return revTime, msgsAfter - msgsBefore
}

// kindAblationRevoke runs one tree-revocation cell of the batching
// ablation; Config encodes it (Kernels = 1+extra, Instances = children),
// Variant picks plain or batched.
const kindAblationRevoke = "ablation-revoke"

// ablationAux carries the run's inter-kernel message count for the
// post-process table (kept out of Metrics so the report layout is
// unchanged).
type ablationAux struct {
	Msgs uint64 `json:"msgs"`
}

func init() { registerKind(kindAblationRevoke, runAblationRevokeSpec) }

func runAblationRevokeSpec(spec TaskSpec, eng *sim.Engine) (Metrics, any, error) {
	n, extra := spec.Config.Instances, spec.Config.Kernels-1
	c, m := ablationTreeRevoke(eng, n, extra, spec.Variant == "batched", spec.SimWorkers, spec.SimMode)
	return Metrics{Cycles: uint64(c)}, ablationAux{Msgs: m}, nil
}

// ablationSpecs plans the (breadth, variant) grid.
func ablationSpecs(breadths []int, extra int) []TaskSpec {
	specs := make([]TaskSpec, 0, 2*len(breadths))
	for _, n := range breadths {
		for _, variant := range []string{"plain", "batched"} {
			specs = append(specs, TaskSpec{
				Experiment: "ablation/" + variant,
				Kind:       kindAblationRevoke,
				Variant:    variant,
				Config:     ExpConfig{Kernels: extra + 1, Instances: n},
			})
		}
	}
	return specs
}

// AblationBatching measures tree revocation with and without message
// batching, spreading the children over 1+extra kernels. Every (breadth,
// variant) cell is an independent simulation in one planned batch.
func AblationBatching(o Options, maxKids, extra int) AblationResult {
	if maxKids <= 0 {
		maxKids = 128
	}
	if extra <= 0 {
		extra = 12
	}
	var breadths []int
	for n := 16; n <= maxKids; n += 16 {
		breadths = append(breadths, n)
	}
	rs := o.execute(ablationSpecs(breadths, extra))
	r := AblationResult{ExtraKernels: extra}
	for i, n := range breadths {
		r.Rows = append(r.Rows, AblationRow{
			Children:      n,
			PlainCycles:   sim.Duration(rs[2*i].Metrics.Cycles),
			BatchedCycles: sim.Duration(rs[2*i+1].Metrics.Cycles),
			PlainMsgs:     auxOf[ablationAux](rs[2*i]).Msgs,
			BatchedMsgs:   auxOf[ablationAux](rs[2*i+1]).Msgs,
		})
	}
	o.record(rs)
	return r
}

// --- IKC transport ablation (exchange + service-query batching) ----------
//
// The unified transport (core/transport.go) extends the paper's batching
// proposal beyond revocation to the other two IKC-heavy operations:
// capability exchange (§4.3.2) and service queries (§4.3.3), and since the
// transport went symmetric it batches both directions: requests into
// per-(destination, kind) envelopes and replies into per-(destination,
// class) envelopes. These experiments measure both on spanning fan-outs: N
// clients spread over `extra` kernels all obtaining from one owner
// (exchange), or all opening a session plus performing one session-scoped
// obtain against one service (svcquery). Reported are the fan-out makespan
// and the inter-kernel wire messages split by direction (a coalesced
// envelope counts once), so the reply-direction saving is visible on its
// own.

// IKCRow compares plain and batched transport at one fan-out breadth.
// PlainMsgs/BatchedMsgs are request+reply totals; the *ReqMsgs/*RepMsgs
// fields split them by direction.
type IKCRow struct {
	Clients        int
	PlainCycles    sim.Duration
	BatchedCycles  sim.Duration
	PlainMsgs      uint64
	BatchedMsgs    uint64
	PlainReqMsgs   uint64
	BatchedReqMsgs uint64
	PlainRepMsgs   uint64
	BatchedRepMsgs uint64
}

// AblationIKCResult holds the transport ablation over fan-out breadths.
type AblationIKCResult struct {
	ExtraKernels int
	Exchange     []IKCRow
	SvcQuery     []IKCRow
}

// ikcWireMsgs sums the inter-kernel wire messages of a run by direction.
func ikcWireMsgs(sys *core.System) (req, rep uint64) {
	for ki := 0; ki < sys.Kernels(); ki++ {
		st := sys.Kernel(ki).Stats()
		req += st.IKCSent
		rep += st.IKCRepSent
	}
	return req, rep
}

// ablationIKCSystem builds the fan-out machine: the owner/service group
// plus `extra` client groups, n clients spread round-robin over them.
func ablationIKCSystem(eng *sim.Engine, n, extra int, pol core.IKCBatching, simWorkers int, simMode string) (*core.System, []int) {
	kernels := extra + 1
	perGroup := n + 2
	if extra > 0 {
		perGroup = (n+extra-1)/extra + 2
	}
	sys := core.MustNew(core.Config{
		Kernels:     kernels,
		UserPEs:     kernels * perGroup,
		IKCBatching: pol,
		Engine:      eng,
		SimWorkers:  simWorkers,
		SimMode:     simMode,
	})
	byGroup := make(map[int][]int)
	for _, pe := range sys.UserPEs() {
		g := sys.KernelOfPE(pe).ID()
		byGroup[g] = append(byGroup[g], pe)
	}
	clientPEs := make([]int, 0, n)
	for i := 0; i < n; i++ {
		g := 0
		if extra > 0 {
			g = 1 + i%extra
		}
		clientPEs = append(clientPEs, byGroup[g][1+i/max(extra, 1)])
	}
	return sys, append([]int{byGroup[0][0]}, clientPEs...)
}

// ablationExchange measures n spanning obtains of one root capability,
// returning the fan-out makespan and the inter-kernel wire messages by
// direction.
func ablationExchange(eng *sim.Engine, n, extra int, batched bool, simWorkers int, simMode string) (sim.Duration, uint64, uint64) {
	sys, pes := ablationIKCSystem(eng, n, extra, core.IKCBatching{Exchange: batched}, simWorkers, simMode)
	defer sys.Close()
	ready := sim.NewFuture[cap.Selector](sys.Eng)
	var t0 sim.Time
	var end sim.Time
	var wg sim.WaitGroup
	wg.Bind(sys.Eng)
	wg.Add(n)
	root, err := sys.SpawnOn(pes[0], "root", func(v *core.VPE, p *sim.Proc) {
		sel, err := v.AllocMem(p, 4096, dtu.PermRW)
		if err != nil {
			panic(err)
		}
		t0 = p.Now()
		ready.CompleteFrom(p, sel)
		wg.Wait(p)
		end = p.Now()
	})
	if err != nil {
		panic(err)
	}
	for i := 0; i < n; i++ {
		if _, err := sys.SpawnOn(pes[1+i], fmt.Sprintf("c%d", i), func(v *core.VPE, p *sim.Proc) {
			sel := ready.Wait(p)
			if _, err := v.ObtainFrom(p, root.ID, sel); err != nil {
				panic(err)
			}
			wg.DoneFrom(p)
		}); err != nil {
			panic(err)
		}
	}
	sys.Run()
	req, rep := ikcWireMsgs(sys)
	return end - t0, req, rep
}

// ablationSvcQuery measures n clients each opening a session to one
// service and performing one session-scoped obtain, returning the fan-out
// makespan and the inter-kernel wire messages by direction.
func ablationSvcQuery(eng *sim.Engine, n, extra int, batched bool, simWorkers int, simMode string) (sim.Duration, uint64, uint64) {
	sys, pes := ablationIKCSystem(eng, n, extra, core.IKCBatching{ServiceQuery: batched}, simWorkers, simMode)
	defer sys.Close()
	svcReady := sim.NewFuture[struct{}](sys.Eng)
	var t0 sim.Time
	// Per-client finish times: each slot has exactly one writer, so the
	// fan-out stays race-free under isolated rounds; the max reduction
	// happens after Run, when all domains are quiesced.
	ends := make([]sim.Time, n)
	var idents uint64
	if _, err := sys.SpawnOn(pes[0], "svc", func(v *core.VPE, p *sim.Proc) {
		sel, err := v.AllocMem(p, 4096, dtu.PermRW)
		if err != nil {
			panic(err)
		}
		err = v.RegisterService(p, "fan", core.ServiceHandlers{
			Open: func(p *sim.Proc, clientVPE int, args any) core.SvcResult {
				idents++
				return core.SvcResult{Ident: idents}
			},
			Obtain: func(p *sim.Proc, ident uint64, args any) core.SvcResult {
				return core.SvcResult{SrcSel: sel}
			},
		})
		if err != nil {
			panic(err)
		}
		t0 = p.Now()
		svcReady.CompleteFrom(p, struct{}{})
		v.ServeLoop(p)
	}); err != nil {
		panic(err)
	}
	for i := 0; i < n; i++ {
		i := i
		if _, err := sys.SpawnOn(pes[1+i], fmt.Sprintf("c%d", i), func(v *core.VPE, p *sim.Proc) {
			svcReady.Wait(p)
			sess, err := v.CreateSession(p, "fan", nil)
			if err != nil {
				panic(err)
			}
			if _, _, err := sess.Obtain(p, nil); err != nil {
				panic(err)
			}
			ends[i] = p.Now()
		}); err != nil {
			panic(err)
		}
	}
	sys.Run()
	var end sim.Time
	for _, e := range ends {
		end = max(end, e)
	}
	req, rep := ikcWireMsgs(sys)
	return end - t0, req, rep
}

// kindIKCExchange and kindIKCSvcQuery run one fan-out cell of the
// transport ablation; Config encodes it (Kernels = 1+extra, Instances =
// clients), Variant picks plain or batched. The wire-message split lives in
// Metrics (ReqMsgs/RepMsgs), so these kinds need no aux.
const (
	kindIKCExchange = "ikc-exchange"
	kindIKCSvcQuery = "ikc-svcquery"
)

func init() {
	registerKind(kindIKCExchange, runIKCSpec)
	registerKind(kindIKCSvcQuery, runIKCSpec)
}

func runIKCSpec(spec TaskSpec, eng *sim.Engine) (Metrics, any, error) {
	n, extra := spec.Config.Instances, spec.Config.Kernels-1
	batched := spec.Variant == "batched"
	var c sim.Duration
	var req, rep uint64
	switch spec.Kind {
	case kindIKCExchange:
		c, req, rep = ablationExchange(eng, n, extra, batched, spec.SimWorkers, spec.SimMode)
	case kindIKCSvcQuery:
		c, req, rep = ablationSvcQuery(eng, n, extra, batched, spec.SimWorkers, spec.SimMode)
	default:
		return Metrics{}, nil, fmt.Errorf("ikc ablation: unknown kind %q", spec.Kind)
	}
	return Metrics{Cycles: uint64(c), ReqMsgs: req, RepMsgs: rep}, nil, nil
}

// ikcOps is the operation axis of the transport ablation; the planner and
// the post-process both iterate it so the grid cannot fall out of step.
var ikcOps = []struct{ name, kind string }{
	{"exchange", kindIKCExchange},
	{"svcquery", kindIKCSvcQuery},
}

// ablationIKCSpecs plans the (operation, breadth, variant) grid.
func ablationIKCSpecs(breadths []int, extra int) []TaskSpec {
	var specs []TaskSpec
	for _, op := range ikcOps {
		for _, n := range breadths {
			for _, variant := range []string{"plain", "batched"} {
				specs = append(specs, TaskSpec{
					Experiment: "ablation/" + op.name + "-" + variant,
					Kind:       op.kind,
					Variant:    variant,
					Config:     ExpConfig{Kernels: extra + 1, Instances: n},
				})
			}
		}
	}
	return specs
}

// AblationIKC measures the unified-transport batching of capability
// exchange and service queries against the plain per-request transport,
// spreading the clients over 1+extra kernels. Every (breadth, operation,
// variant) cell is an independent simulation in one planned batch.
func AblationIKC(o Options, maxClients, extra int) AblationIKCResult {
	if maxClients <= 0 {
		maxClients = 96
	}
	if extra <= 0 {
		extra = 12
	}
	var breadths []int
	for n := 16; n <= maxClients; n += 16 {
		breadths = append(breadths, n)
	}
	const nvariants = 2 // plain, batched
	idx := func(k, b, v int) int { return (k*len(breadths)+b)*nvariants + v }
	rs := o.execute(ablationIKCSpecs(breadths, extra))
	r := AblationIKCResult{ExtraKernels: extra}
	for ki := range ikcOps {
		rows := make([]IKCRow, 0, len(breadths))
		for bi, n := range breadths {
			plain := rs[idx(ki, bi, 0)].Metrics
			batched := rs[idx(ki, bi, 1)].Metrics
			rows = append(rows, IKCRow{
				Clients:        n,
				PlainCycles:    sim.Duration(plain.Cycles),
				BatchedCycles:  sim.Duration(batched.Cycles),
				PlainMsgs:      plain.ReqMsgs + plain.RepMsgs,
				BatchedMsgs:    batched.ReqMsgs + batched.RepMsgs,
				PlainReqMsgs:   plain.ReqMsgs,
				BatchedReqMsgs: batched.ReqMsgs,
				PlainRepMsgs:   plain.RepMsgs,
				BatchedRepMsgs: batched.RepMsgs,
			})
		}
		if ki == 0 {
			r.Exchange = rows
		} else {
			r.SvcQuery = rows
		}
	}
	o.record(rs)
	return r
}

// Print writes the transport ablation tables, splitting wire messages into
// request and reply direction (total = req + rep).
func (r AblationIKCResult) Print(w io.Writer) {
	section := func(name string, rows []IKCRow) {
		fmt.Fprintf(w, "Ablation: %s batching (fan-out over 1+%d kernels)\n", name, r.ExtraKernels)
		fmt.Fprintln(w, "clients  plain(µs)  batched(µs)  speedup   plain req+rep      batched req+rep    msg-cut")
		for _, row := range rows {
			fmt.Fprintf(w, "%6d   %9.2f  %11.2f  %6.2fx   %6d+%-6d      %6d+%-6d     %5.2fx\n",
				row.Clients,
				float64(row.PlainCycles)/core.CyclesPerMicrosecond,
				float64(row.BatchedCycles)/core.CyclesPerMicrosecond,
				float64(row.PlainCycles)/float64(row.BatchedCycles),
				row.PlainReqMsgs, row.PlainRepMsgs,
				row.BatchedReqMsgs, row.BatchedRepMsgs,
				float64(row.PlainMsgs)/float64(row.BatchedMsgs))
		}
	}
	section("capability exchange", r.Exchange)
	section("service query", r.SvcQuery)
}

// Print writes the ablation table.
func (r AblationResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Ablation: revoke message batching (tree over 1+%d kernels)\n", r.ExtraKernels)
	fmt.Fprintln(w, "caps   plain(µs)  batched(µs)  speedup   plain-msgs  batched-msgs")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%4d   %9.2f  %11.2f  %6.2fx   %10d  %12d\n",
			row.Children,
			float64(row.PlainCycles)/core.CyclesPerMicrosecond,
			float64(row.BatchedCycles)/core.CyclesPerMicrosecond,
			float64(row.PlainCycles)/float64(row.BatchedCycles),
			row.PlainMsgs, row.BatchedMsgs)
	}
}
