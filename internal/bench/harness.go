package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// The parallel experiment harness. Every experiment configuration of the
// evaluation (one cell of Table 4, one point of Figures 6-9, one breadth of
// the ablation, ...) is an independent simulation with its own sim.Engine,
// so the sweeps are embarrassingly parallel: experiments plan their runs as
// serializable TaskSpecs (spec.go), an executor — the in-process worker
// pool here, or the multi-process ShardExecutor (shard.go) — fans them out,
// and result ordering — and thus every simulated-cycle metric — stays
// identical to a serial run. Task and RunTasks remain as the closure-based
// escape hatch for callers outside the planned experiments.

// ExpConfig identifies the machine configuration of one experiment. For
// non-workload experiments the fields map to the closest notion (e.g. the
// ablation reports children as Instances); unused fields are zero.
type ExpConfig struct {
	Kernels   int `json:"kernels"`
	Services  int `json:"services"`
	Instances int `json:"instances"`
}

// Metrics holds the simulated measurements of one experiment. Cycles is the
// experiment's headline simulated-time metric: mean instance runtime for the
// efficiency sweeps, makespan for Table 4, revocation latency for the
// microbenchmarks and the ablation, the measurement window for Figure 10.
// Efficiency and CapOps are filled where the experiment defines them. All
// three are simulated quantities and therefore deterministic; only
// wallclock varies between runs.
type Metrics struct {
	Cycles     uint64  `json:"cycles"`
	Efficiency float64 `json:"efficiency"`
	CapOps     uint64  `json:"capops"`
	// ReqMsgs/RepMsgs split the inter-kernel wire messages of a run by
	// direction (an envelope counts once). Only the transport ablation
	// fills them; they are omitted elsewhere, so adding them kept every
	// existing report comparable (schema unchanged: optional additions).
	ReqMsgs uint64 `json:"reqmsgs,omitempty"`
	RepMsgs uint64 `json:"repmsgs,omitempty"`
	// LostMsgs counts NoC messages dropped at a receiving DTU for want of
	// a free slot plus fault-injected losses (noc.Stats.Lost). On the
	// lossless baseline the in-flight accounting keeps it at zero, so
	// surfacing it makes bench-compare catch slot-exhaustion regressions.
	LostMsgs uint64 `json:"lostmsgs,omitempty"`
	// Retries/DupDrops/Completed are filled by the fault-injection
	// experiment: retransmitted wire transmissions, receiver-side
	// duplicate suppressions, and the fraction of client operations that
	// completed successfully. Omitted (zero) everywhere else.
	Retries   uint64  `json:"retries,omitempty"`
	DupDrops  uint64  `json:"dupdrops,omitempty"`
	Completed float64 `json:"completed,omitempty"`
}

// Task is one independent experiment: Run builds its own simulation on the
// engine handed to it and returns the measured metrics. Tasks must not share
// mutable state with each other.
//
// The engine comes from the harness's pool: it is in fresh state (new or
// Reset) when Run starts, and the harness Resets and recycles it after Run
// returns — unwinding any procs the experiment left parked. Run wires it
// into its simulation via core.Config.Engine / workload.Config.Engine (or
// ignores it and builds its own engine; that only forfeits the reuse).
type Task struct {
	Experiment string
	Config     ExpConfig
	Run        func(eng *sim.Engine) (Metrics, error)
}

// enginePool recycles sim.Engines (and their grown event-slab backing
// arrays) across all harness tasks in the process, so per-experiment engine
// setup stops dominating short runs.
var enginePool = sim.NewPool()

// Result is the outcome of one Task. It is the unit of the machine-readable
// report (see report.go for the serialization layer).
type Result struct {
	Experiment  string    `json:"experiment"`
	Config      ExpConfig `json:"config"`
	Metrics     Metrics   `json:"metrics"`
	WallclockNS int64     `json:"wallclock_ns"`
	// CapsMinted is the number of capabilities the run's kernels created,
	// lifted from the aux payload of kinds that report one (see capsMinter
	// in spec.go); zero for kinds that do not. HeapPeakBytes is the process
	// heap in use (runtime.MemStats.HeapAlloc) when the task finished — an
	// approximation of the run's footprint that is process-global and, like
	// WallclockNS, varies run to run; determinism comparisons must ignore
	// both. Together they back the wallclock summary's capsalloc/capsbytes
	// line.
	CapsMinted    uint64 `json:"capsminted,omitempty"`
	HeapPeakBytes uint64 `json:"heappeak_bytes,omitempty"`
	Error         string `json:"error,omitempty"`
	// Aux carries experiment-specific side data (a workload's makespan, an
	// ablation's message count, ...) from the run function to the
	// post-process step, across the worker protocol when the sweep is
	// sharded. It is stripped before a Result enters the report, so the
	// report layout is unchanged.
	Aux json.RawMessage `json:"aux,omitempty"`
	// Domains is the per-domain busy/idle attribution of a partitioned run
	// (TaskSpec.SimWorkers > 1 on a multi-kernel machine); omitted on the
	// sequential fast path. Like WallclockNS it varies run to run, so
	// determinism comparisons must ignore it.
	Domains []DomainWallclock `json:"domains,omitempty"`
}

// DomainWallclock is one event domain's share of a partitioned run: how long
// the run loop spent executing this domain's events (busy), the remainder of
// the run's wallclock (idle), and the deterministic event count.
type DomainWallclock struct {
	BusyNS int64  `json:"busy_ns"`
	IdleNS int64  `json:"idle_ns"`
	Events uint64 `json:"events"`
}

// RunTasks executes the tasks on a pool of `parallel` workers (<= 0 means
// GOMAXPROCS) and returns one Result per task, in task order regardless of
// completion order. A task that panics is captured as an error Result
// instead of tearing down the whole sweep.
func RunTasks(parallel int, tasks []Task) []Result {
	return runTasksOrdered(parallel, tasks, nil)
}

// runTasksOrdered is the worker pool shared by both execution paths
// (closure Tasks here, planned specs via RunSpecs). Dispatch follows order
// (nil = task order; RunSpecs passes the cost model's longest-first order);
// results always come back in task order regardless of dispatch or
// completion order.
func runTasksOrdered(parallel int, tasks []Task, order []int) []Result {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	parallel = min(parallel, len(tasks))
	results := make([]Result, len(tasks))
	if len(tasks) == 0 {
		return results
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = runTask(tasks[i])
			}
		}()
	}
	if order == nil {
		for i := range tasks {
			idx <- i
		}
	} else {
		for _, i := range order {
			idx <- i
		}
	}
	close(idx)
	wg.Wait()
	return results
}

// runTask executes one task on a pooled engine, capturing wallclock and
// panics. The engine goes back to the pool (Reset, procs unwound) whatever
// way the task ends.
func runTask(t Task) (res Result) {
	eng := enginePool.Get()
	defer enginePool.Put(eng)
	res = Result{Experiment: t.Experiment, Config: t.Config}
	start := time.Now()
	defer func() {
		res.WallclockNS = time.Since(start).Nanoseconds()
		if r := recover(); r != nil {
			res.Error = fmt.Sprintf("panic: %v", r)
		}
	}()
	m, err := t.Run(eng)
	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)
	res.HeapPeakBytes = mem.HeapAlloc
	if ds := eng.DomainStats(); len(ds) > 1 {
		res.Domains = make([]DomainWallclock, len(ds))
		for i, d := range ds {
			res.Domains[i] = DomainWallclock{
				BusyNS: d.Busy.Nanoseconds(),
				IdleNS: d.Idle.Nanoseconds(),
				Events: d.Events,
			}
		}
	}
	if err != nil {
		res.Error = err.Error()
		return res
	}
	res.Metrics = m
	return res
}

// mustOK panics on the first failed result, preserving the historical
// fail-fast behavior of the sweeps (a broken experiment is a bug, not data).
func mustOK(rs []Result) {
	for _, r := range rs {
		if r.Error != "" {
			panic(fmt.Sprintf("bench: experiment %s %+v failed: %s", r.Experiment, r.Config, r.Error))
		}
	}
}

// kindWorkload runs one application workload (trace replay against m3fs
// services); it backs Table 4 and Figures 6-9.
const kindWorkload = "workload"

// workloadAux is the side data of a workload run: the makespan, which
// Table 4 needs (its headline cycle metric and the denominator of the
// ops/s rate) while the efficiency sweeps do not, and the total
// capabilities minted, which feeds Result.CapsMinted.
type workloadAux struct {
	Makespan    uint64 `json:"makespan"`
	CapsCreated uint64 `json:"capscreated"`
}

func (a workloadAux) capsMinted() uint64 { return a.CapsCreated }

func init() { registerKind(kindWorkload, runWorkloadSpec) }

func runWorkloadSpec(spec TaskSpec, eng *sim.Engine) (Metrics, any, error) {
	tr := trace.ByName(spec.Trace)
	if tr == nil {
		return Metrics{}, nil, fmt.Errorf("workload: unknown trace %q", spec.Trace)
	}
	r, err := workload.Run(workload.Config{
		Kernels:    spec.Config.Kernels,
		Services:   spec.Config.Services,
		Instances:  spec.Config.Instances,
		Trace:      tr,
		Engine:     eng,
		SimWorkers: spec.SimWorkers,
		SimMode:    spec.SimMode,
	})
	if err != nil {
		return Metrics{}, nil, err
	}
	m := Metrics{Cycles: uint64(r.MeanRuntime()), CapOps: r.TotalCapOps, LostMsgs: r.LostMsgs}
	return m, workloadAux{Makespan: uint64(r.Makespan), CapsCreated: r.Kernel.CapsCreated}, nil
}

// workloadSpecs plans one kind-"workload" spec per config.
func workloadSpecs(experiment string, cfgs []workload.Config) []TaskSpec {
	specs := make([]TaskSpec, len(cfgs))
	for i, cfg := range cfgs {
		spec := TaskSpec{
			Experiment: experiment,
			Kind:       kindWorkload,
			Config:     ExpConfig{Kernels: cfg.Kernels, Services: cfg.Services, Instances: cfg.Instances},
		}
		if cfg.Trace != nil {
			spec.Experiment = experiment + "/" + cfg.Trace.Name
			spec.Trace = cfg.Trace.Name
		}
		specs[i] = spec
	}
	return specs
}

// runWorkloads plans and executes one workload run per config, returning
// one Result per run in config order (Cycles = mean instance runtime,
// CapOps = total capability operations, Aux = workloadAux). Callers may
// patch the Results (e.g. fill Efficiency) before recording them. It panics
// on the first experiment error.
func (o Options) runWorkloads(experiment string, cfgs []workload.Config) []Result {
	return o.execute(workloadSpecs(experiment, cfgs))
}

// record appends results to the report, when one is attached, stripping the
// post-processing Aux payloads so the report layout stays unchanged.
func (o Options) record(rs []Result) {
	if o.Report == nil {
		return
	}
	clean := make([]Result, len(rs))
	for i, r := range rs {
		r.Aux = nil
		clean[i] = r
	}
	o.Report.Add(clean...)
}

// sweepSpec describes one efficiency sweep: a 1-instance baseline plus one
// run per instance step, all with the same kernel/service configuration.
type sweepSpec struct {
	tr       *trace.Trace
	kernels  int
	services int
	steps    []int
}

// runEffSweeps runs several efficiency sweeps as one parallel task batch:
// every baseline and every point across all sweeps is an independent
// simulation, so a whole figure saturates the pool at once. For each sweep
// it returns the (instances, alone/parallel) points in step order and
// records one Result per run with Efficiency filled on the sweep points.
func (o Options) runEffSweeps(experiment string, specs []sweepSpec) [][]EffPoint {
	var cfgs []workload.Config
	offsets := make([]int, len(specs))
	for si, sp := range specs {
		offsets[si] = len(cfgs)
		cfgs = append(cfgs, workload.Config{Kernels: sp.kernels, Services: sp.services, Instances: 1, Trace: sp.tr})
		for _, n := range sp.steps {
			cfgs = append(cfgs, workload.Config{Kernels: sp.kernels, Services: sp.services, Instances: n, Trace: sp.tr})
		}
	}
	rs := o.runWorkloads(experiment, cfgs)
	out := make([][]EffPoint, len(specs))
	for si, sp := range specs {
		base := offsets[si]
		alone := rs[base].Metrics.Cycles
		rs[base].Metrics.Efficiency = 1
		pts := make([]EffPoint, 0, len(sp.steps))
		for j, n := range sp.steps {
			r := &rs[base+1+j]
			eff := float64(alone) / float64(r.Metrics.Cycles)
			r.Metrics.Efficiency = eff
			pts = append(pts, EffPoint{Instances: n, Efficiency: eff})
		}
		out[si] = pts
	}
	o.record(rs)
	return out
}
