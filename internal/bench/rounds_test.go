package bench

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/core"
)

// TestRoundsDeterminism: the acceptance criterion of the isolated-rounds
// runtime — a quick-scale sweep in rounds mode produces simulated metrics
// byte-identical across -simworkers 1, 2 and 4 and across sharded execution.
// Rounds metrics legitimately differ from merged-mode metrics (cross-kernel
// rendezvous carry NoC latency), so the baseline here is the rounds run
// itself, not the merged sweep of TestSimWorkersDeterminism.
func TestRoundsDeterminism(t *testing.T) {
	base := miniSweepMode(nil, 1, core.SimModeRounds)
	baseJSON, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	diff := func(label string, got []Result) {
		t.Helper()
		gotJSON, err := json.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(baseJSON, gotJSON) {
			return
		}
		if len(got) != len(base) {
			t.Errorf("%s: %d rows, want %d", label, len(got), len(base))
			return
		}
		for i := range base {
			if base[i].Experiment != got[i].Experiment || base[i].Config != got[i].Config ||
				base[i].Metrics != got[i].Metrics || base[i].Error != got[i].Error {
				t.Errorf("%s row %d differs:\n  workers=1: %+v\n  got:       %+v",
					label, i, base[i], got[i])
			}
		}
	}
	for _, workers := range []int{2, 4} {
		diff("-simworkers "+string(rune('0'+workers)), miniSweepMode(nil, workers, core.SimModeRounds))
	}
	if !testing.Short() {
		ex := testShardExecutor(2)
		got := miniSweepMode(ex, 2, core.SimModeRounds)
		ex.Close()
		diff("-shards 2", got)
	}
}

// TestRoundsDiverges pins down that rounds mode is a different cost model,
// not an accidental replica of merged: at least one multi-kernel row of the
// mini sweep must change metrics when cross-kernel interactions start paying
// NoC latency, while every single-kernel row must stay byte-identical
// (a single kernel has one domain — nothing to isolate).
func TestRoundsDiverges(t *testing.T) {
	merged := miniSweep(nil, 0)
	rounds := miniSweepMode(nil, 1, core.SimModeRounds)
	if len(merged) != len(rounds) {
		t.Fatalf("row counts differ: %d merged, %d rounds", len(merged), len(rounds))
	}
	multiDiff := 0
	for i := range merged {
		if merged[i].Experiment != rounds[i].Experiment || merged[i].Config != rounds[i].Config {
			t.Fatalf("row %d identity differs: %s %+v vs %s %+v",
				i, merged[i].Experiment, merged[i].Config, rounds[i].Experiment, rounds[i].Config)
		}
		same := merged[i].Metrics == rounds[i].Metrics
		if merged[i].Config.Kernels <= 1 && !same {
			t.Errorf("single-kernel row %d (%s) changed under rounds:\n  merged: %+v\n  rounds: %+v",
				i, merged[i].Experiment, merged[i].Metrics, rounds[i].Metrics)
		}
		if merged[i].Config.Kernels > 1 && !same {
			multiDiff++
		}
	}
	if multiDiff == 0 {
		t.Error("no multi-kernel row changed metrics under rounds; NoC latency is not being charged")
	}
}
