package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"
)

// Cost-aware scheduling. Task runtimes span orders of magnitude (a Table 3
// microbenchmark is microseconds of host time, a 512-instance Table 4 cell
// is minutes), so FIFO dispatch regularly parks the most expensive task
// last and lets it serialize the whole sweep. The executors instead
// dispatch longest-first, estimating each task from the recorded
// wallclock_ns of a prior report when one is supplied (-costs) and falling
// back to an instance-count heuristic otherwise. Scheduling only reorders
// dispatch: results stay in spec order, so every simulated metric is
// independent of the cost model.

// costKey identifies a task across runs the same way bench-compare does:
// by its (experiment, config) pair.
type costKey struct {
	experiment string
	config     ExpConfig
}

// CostModel estimates per-task host cost for longest-first dispatch. The
// zero value (and a nil *CostModel) falls back to the heuristic for every
// task.
type CostModel struct {
	wall map[costKey]int64
}

// NewCostModel indexes the recorded wallclocks of a prior report. Keys that
// appear several times (a baseline shared between figures) keep their
// largest recording — an upper bound is the safe estimate for longest-first
// scheduling.
func NewCostModel(r *Report) *CostModel {
	m := &CostModel{wall: make(map[costKey]int64, len(r.Results))}
	for _, res := range r.Results {
		k := costKey{res.Experiment, res.Config}
		if res.WallclockNS > m.wall[k] {
			m.wall[k] = res.WallclockNS
		}
	}
	return m
}

// LoadCostModel reads a semperos-bench report file into a cost model.
func LoadCostModel(path string) (*CostModel, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != ReportSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, r.Schema, ReportSchema)
	}
	return NewCostModel(&r), nil
}

// heuristicCost is the fallback estimate: simulation cost grows with the
// machine size, so charge ~1ms of host time per simulated PE. The absolute
// scale only matters when known and unknown tasks mix in one batch; the
// prior keeps unknown large runs near their recorded peers instead of at
// the back of the queue.
func heuristicCost(spec TaskSpec) int64 {
	pes := spec.Config.Instances + spec.Config.Kernels + spec.Config.Services
	return int64(pes+1) * int64(time.Millisecond)
}

// Estimate returns the estimated host cost of one task in nanoseconds.
// Works on a nil receiver (pure heuristic).
func (c *CostModel) Estimate(spec TaskSpec) int64 {
	if c != nil {
		if ns, ok := c.wall[costKey{spec.Experiment, spec.Config}]; ok {
			return ns
		}
	}
	return heuristicCost(spec)
}

// Known reports how many of the specs have a recorded cost (for the
// end-of-sweep diagnostics). Works on a nil receiver.
func (c *CostModel) Known(specs []TaskSpec) int {
	if c == nil {
		return 0
	}
	n := 0
	for _, s := range specs {
		if _, ok := c.wall[costKey{s.Experiment, s.Config}]; ok {
			n++
		}
	}
	return n
}

// Order returns the longest-first dispatch order of the specs, stable on
// ties so scheduling is deterministic. Works on a nil receiver.
func (c *CostModel) Order(specs []TaskSpec) []int {
	order := make([]int, len(specs))
	cost := make([]int64, len(specs))
	for i, s := range specs {
		order[i] = i
		cost[i] = c.Estimate(s)
	}
	sort.SliceStable(order, func(a, b int) bool { return cost[order[a]] > cost[order[b]] })
	return order
}
