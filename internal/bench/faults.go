package bench

import (
	"fmt"
	"io"

	"repro/internal/cap"
	"repro/internal/core"
	"repro/internal/dtu"
	"repro/internal/fault"
	"repro/internal/sim"
)

// Fault-injection ablation (`-experiment faults`). The reliability layer
// (core/reliability.go) exists so the capability protocols survive a lossy
// fabric; this experiment measures *how well*: the spanning fan-out
// workloads of the transport ablation run under seeded fault plans
// (internal/fault) sweeping drop rates, plus a kernel-crash scenario, and
// report completion rate, retransmissions, duplicate suppressions and
// recovery latency. Everything is deterministic in (seed, plan): reruns at
// any -parallel/-shards/-simworkers produce byte-identical rows.

// faultsRates is the drop-rate axis in basis points (0.00%, 0.25%, 1%,
// 4%). The zero row runs reliable mode on a lossless fabric: losses are
// zero and completion 100%, so it isolates the cost of the reliability
// machinery itself — including the spurious RTO retransmits a fixed
// timeout fires under fan-out queueing delay, which the receiver-side
// dedup absorbs (that is the Retries floor the faulty rows build on).
var faultsRates = []int{0, 25, 100, 400}

// faultsCrashAt is the crash time of the crash scenario, chosen to land
// mid-fan-out (after the victims connected, before the fan-out drains).
const faultsCrashAt sim.Time = 100_000

// faultsRecoverAt ends the blackhole window of the crash+recover scenario:
// late enough that the victims' death verdicts and retransmission ladders
// are well underway, early enough that the rejoin resolves the run long
// before the permanent-crash row's full RTO ladder would.
const faultsRecoverAt sim.Time = 400_000

// faultsPlan builds the sweep's plan for one drop rate: duplication at
// half the drop rate and a fixed small delivery jitter ride along, so one
// knob exercises all three probabilistic fault types.
func faultsPlan(seed uint64, dropBp int) *fault.Plan {
	return &fault.Plan{
		Seed:   seed,
		Drop:   float64(dropBp) / 10_000,
		Dup:    float64(dropBp) / 20_000,
		Jitter: 200,
	}
}

// faultsAux is the side data of one faults run: the full reliability and
// injection picture behind the report row's headline columns.
type faultsAux struct {
	Attempted       int    `json:"attempted"`
	Succeeded       int    `json:"succeeded"`
	Retransmits     uint64 `json:"retransmits"`
	DupSuppressed   uint64 `json:"dupsuppressed"`
	ReplayedReplies uint64 `json:"replayedreplies"`
	LateReplies     uint64 `json:"latereplies"`
	FailFast        uint64 `json:"failfast"`
	DeadPeers       uint64 `json:"deadpeers"`
	Recovered       uint64 `json:"recovered"`
	// MeanRecoveryCycles is the average first-send→completion time of
	// transmissions that needed at least one retransmit.
	MeanRecoveryCycles uint64 `json:"meanrecovery"`
	InjDropped         uint64 `json:"injdropped"`
	InjDuplicated      uint64 `json:"injduplicated"`
	InjDelayed         uint64 `json:"injdelayed"`
	InjBlackholed      uint64 `json:"injblackholed"`
	CapsCreated        uint64 `json:"capscreated"`
	// Rejoins/MeanRejoinCycles/StaleIncarnation cover the crash+recover
	// scenario: completed rejoin handshakes, their mean duration, and
	// dead-incarnation traffic rejected by the incarnation gate. Zero on
	// rows without a recovery.
	Rejoins          uint64 `json:"rejoins,omitempty"`
	MeanRejoinCycles uint64 `json:"meanrejoin,omitempty"`
	StaleIncarnation uint64 `json:"staleincarnation,omitempty"`
	// LeakedEntries counts capability/DDL state left owned by a dead
	// incarnation after the run (core.System.CheckLeaks); permanently
	// crashed kernels are excused. Any nonzero value is a protocol bug.
	LeakedEntries int `json:"leakedentries"`
}

func (a faultsAux) capsMinted() uint64 { return a.CapsCreated }

// faultsSystem builds the fan-out machine of the transport ablation with a
// fault plan attached (both IKC batching families on, so envelopes and
// their retransmission path are exercised).
func faultsSystem(eng *sim.Engine, n, extra int, plan *fault.Plan, simWorkers int) (*core.System, []int) {
	kernels := extra + 1
	perGroup := n + 2
	if extra > 0 {
		perGroup = (n+extra-1)/extra + 2
	}
	sys := core.MustNew(core.Config{
		Kernels:     kernels,
		UserPEs:     kernels * perGroup,
		IKCBatching: core.IKCBatching{Exchange: true, ServiceQuery: true},
		Faults:      plan,
		Engine:      eng,
		SimWorkers:  simWorkers,
	})
	byGroup := make(map[int][]int)
	for _, pe := range sys.UserPEs() {
		g := sys.KernelOfPE(pe).ID()
		byGroup[g] = append(byGroup[g], pe)
	}
	clientPEs := make([]int, 0, n)
	for i := 0; i < n; i++ {
		g := 0
		if extra > 0 {
			g = 1 + i%extra
		}
		clientPEs = append(clientPEs, byGroup[g][1+i/max(extra, 1)])
	}
	return sys, append([]int{byGroup[0][0]}, clientPEs...)
}

// faultsExchange is the error-tolerant spanning-obtain fan-out: n clients
// obtain one root capability across a faulty fabric. Unlike the ablation's
// panic-on-error clients, a failed obtain (e.g. ErrPeerDead after the
// owner kernel is declared dead) counts as a failed operation — the run
// completes either way, which is exactly the degradation contract under
// test.
func faultsExchange(eng *sim.Engine, n, extra int, plan *fault.Plan, simWorkers int) (*core.System, sim.Duration, int, int) {
	sys, pes := faultsSystem(eng, n, extra, plan, simWorkers)
	ready := sim.NewFuture[cap.Selector](sys.Eng)
	var t0, end sim.Time
	var okOps int
	var wg sim.WaitGroup
	wg.Add(n)
	root, err := sys.SpawnOn(pes[0], "root", func(v *core.VPE, p *sim.Proc) {
		sel, err := v.AllocMem(p, 4096, dtu.PermRW)
		if err != nil {
			panic(err) // local to the owner kernel; never faulted
		}
		t0 = p.Now()
		ready.Complete(sel)
		wg.Wait(p)
		end = p.Now()
	})
	if err != nil {
		panic(err)
	}
	for i := 0; i < n; i++ {
		if _, err := sys.SpawnOn(pes[1+i], fmt.Sprintf("c%d", i), func(v *core.VPE, p *sim.Proc) {
			sel := ready.Wait(p)
			if _, err := v.ObtainFrom(p, root.ID, sel); err == nil {
				okOps++
			}
			wg.Done()
		}); err != nil {
			panic(err)
		}
	}
	sys.Run()
	return sys, end - t0, n, okOps
}

// faultsSvcQuery is the error-tolerant service fan-out: n clients open a
// session to one service and perform one session-scoped obtain. Failure at
// either step counts the whole operation failed.
func faultsSvcQuery(eng *sim.Engine, n, extra int, plan *fault.Plan, simWorkers int) (*core.System, sim.Duration, int, int) {
	sys, pes := faultsSystem(eng, n, extra, plan, simWorkers)
	svcReady := sim.NewFuture[struct{}](sys.Eng)
	var t0, end sim.Time
	var okOps int
	var idents uint64
	if _, err := sys.SpawnOn(pes[0], "svc", func(v *core.VPE, p *sim.Proc) {
		sel, err := v.AllocMem(p, 4096, dtu.PermRW)
		if err != nil {
			panic(err)
		}
		err = v.RegisterService(p, "fan", core.ServiceHandlers{
			Open: func(p *sim.Proc, clientVPE int, args any) core.SvcResult {
				idents++
				return core.SvcResult{Ident: idents}
			},
			Obtain: func(p *sim.Proc, ident uint64, args any) core.SvcResult {
				return core.SvcResult{SrcSel: sel}
			},
		})
		if err != nil {
			panic(err)
		}
		t0 = p.Now()
		svcReady.Complete(struct{}{})
		v.ServeLoop(p)
	}); err != nil {
		panic(err)
	}
	for i := 0; i < n; i++ {
		if _, err := sys.SpawnOn(pes[1+i], fmt.Sprintf("c%d", i), func(v *core.VPE, p *sim.Proc) {
			svcReady.Wait(p)
			if sess, err := v.CreateSession(p, "fan", nil); err == nil {
				if _, _, err := sess.Obtain(p, nil); err == nil {
					okOps++
				}
			}
			if end < p.Now() {
				end = p.Now()
			}
		}); err != nil {
			panic(err)
		}
	}
	sys.Run()
	return sys, end - t0, n, okOps
}

// kindFaults runs one cell of the fault sweep. Config encodes the machine
// (Kernels = 1+extra, Instances = clients), Variant the workload
// (exchange, svcquery, crash), Arg the drop rate in basis points and Seed
// the injector seed.
const kindFaults = "faults"

func init() { registerKind(kindFaults, runFaultsSpec) }

func runFaultsSpec(spec TaskSpec, eng *sim.Engine) (Metrics, any, error) {
	n, extra := spec.Config.Instances, spec.Config.Kernels-1
	seed := spec.Seed
	if seed == 0 {
		seed = 1
	}
	plan := faultsPlan(seed, spec.Arg)
	var sys *core.System
	var mk sim.Duration
	var attempted, ok int
	switch spec.Variant {
	case "exchange":
		sys, mk, attempted, ok = faultsExchange(eng, n, extra, plan, spec.SimWorkers)
	case "crash":
		// The crash scenario: the last client kernel dies mid-fan-out. Its
		// clients' pending operations must resolve to errors (the victims
		// declare the owner dead from their side too — its replies vanish),
		// while everyone else completes.
		plan.Kernels = append(plan.Kernels, fault.KernelFault{Kernel: extra, CrashAt: faultsCrashAt})
		sys, mk, attempted, ok = faultsExchange(eng, n, extra, plan, spec.SimWorkers)
	case "crashrecover":
		// The crash+recover scenario: the same kernel crashes but rejoins
		// mid-storm as a new incarnation. Operations in flight across the
		// window abort (the old incarnation's requests cannot be completed),
		// but the run resolves at the rejoin instead of grinding through the
		// full RTO ladder, and no capability state may leak.
		plan.Kernels = append(plan.Kernels, fault.KernelFault{
			Kernel: extra, CrashAt: faultsCrashAt, RecoverAt: faultsRecoverAt,
		})
		sys, mk, attempted, ok = faultsExchange(eng, n, extra, plan, spec.SimWorkers)
	case "svcquery":
		sys, mk, attempted, ok = faultsSvcQuery(eng, n, extra, plan, spec.SimWorkers)
	default:
		return Metrics{}, nil, fmt.Errorf("faults: unknown variant %q", spec.Variant)
	}
	defer sys.Close()
	st := sys.TotalStats()
	fs := sys.FaultStats()
	lost := sys.Net.Stats().Lost
	var meanRec uint64
	if st.Recovered > 0 {
		meanRec = uint64(st.RecoveryCycles) / st.Recovered
	}
	var meanRejoin uint64
	if st.Rejoins > 0 {
		meanRejoin = uint64(st.RejoinCycles) / st.Rejoins
	}
	// The permanent crash leaves state only the dead kernel could clean up;
	// every other scenario — recovery included — must leak nothing.
	var deadKernels []int
	if spec.Variant == "crash" {
		deadKernels = append(deadKernels, extra)
	}
	leaks := sys.CheckLeaks(deadKernels...)
	m := Metrics{
		Cycles:    uint64(mk),
		LostMsgs:  lost,
		Retries:   st.Retransmits,
		DupDrops:  st.DupSuppressed,
		Completed: float64(ok) / float64(attempted),
	}
	aux := faultsAux{
		Attempted:          attempted,
		Succeeded:          ok,
		Retransmits:        st.Retransmits,
		DupSuppressed:      st.DupSuppressed,
		ReplayedReplies:    st.ReplayedReplies,
		LateReplies:        st.LateReplies,
		FailFast:           st.FailFast,
		DeadPeers:          st.DeadPeers,
		Recovered:          st.Recovered,
		MeanRecoveryCycles: meanRec,
		InjDropped:         fs.Dropped,
		InjDuplicated:      fs.Duplicated,
		InjDelayed:         fs.Delayed,
		InjBlackholed:      fs.Blackholed,
		CapsCreated:        st.CapsCreated,
		Rejoins:            st.Rejoins,
		MeanRejoinCycles:   meanRejoin,
		StaleIncarnation:   st.StaleIncarnation,
		LeakedEntries:      len(leaks),
	}
	return m, aux, nil
}

// faultsOps is the workload axis of the sweep. The crash and crash+recover
// scenarios run at one fixed drop rate: their point is the dead-kernel
// degradation and the rejoin resolution, not the rate sweep.
var faultsOps = []string{"exchange", "svcquery"}

// faultsSpecs plans the (workload × drop rate) grid plus the crash cell.
func faultsSpecs(n, extra int, seed uint64) []TaskSpec {
	var specs []TaskSpec
	for _, op := range faultsOps {
		for _, bp := range faultsRates {
			specs = append(specs, TaskSpec{
				Experiment: fmt.Sprintf("faults/%s-%dbp", op, bp),
				Kind:       kindFaults,
				Variant:    op,
				Arg:        bp,
				Seed:       seed,
				Config:     ExpConfig{Kernels: extra + 1, Instances: n},
			})
		}
	}
	specs = append(specs, TaskSpec{
		Experiment: "faults/crash-100bp",
		Kind:       kindFaults,
		Variant:    "crash",
		Arg:        100,
		Seed:       seed,
		Config:     ExpConfig{Kernels: extra + 1, Instances: n},
	})
	specs = append(specs, TaskSpec{
		Experiment: "faults/crashrecover-100bp",
		Kind:       kindFaults,
		Variant:    "crashrecover",
		Arg:        100,
		Seed:       seed,
		Config:     ExpConfig{Kernels: extra + 1, Instances: n},
	})
	return specs
}

// FaultsRow is one report row of the sweep.
type FaultsRow struct {
	Workload  string
	DropBp    int
	Clients   int
	Makespan  sim.Duration
	Completed float64
	Retries   uint64
	DupDrops  uint64
	LostMsgs  uint64
	Aux       faultsAux
}

// FaultsResult holds the fault sweep.
type FaultsResult struct {
	ExtraKernels int
	Seed         uint64
	Rows         []FaultsRow
}

// Faults runs the fault-injection sweep: the fan-out workloads under
// rising drop rates plus the kernel-crash scenario, n clients over
// 1+extra kernels, all cells as one planned batch.
func Faults(o Options, maxClients, extra int) FaultsResult {
	if maxClients <= 0 {
		maxClients = 64
	}
	if extra <= 0 {
		extra = 8
	}
	seed := o.FaultSeed
	if seed == 0 {
		seed = 1
	}
	specs := faultsSpecs(maxClients, extra, seed)
	rs := o.execute(specs)
	r := FaultsResult{ExtraKernels: extra, Seed: seed}
	for i, spec := range specs {
		m := rs[i].Metrics
		r.Rows = append(r.Rows, FaultsRow{
			Workload:  spec.Variant,
			DropBp:    spec.Arg,
			Clients:   spec.Config.Instances,
			Makespan:  sim.Duration(m.Cycles),
			Completed: m.Completed,
			Retries:   m.Retries,
			DupDrops:  m.DupDrops,
			LostMsgs:  m.LostMsgs,
			Aux:       auxOf[faultsAux](rs[i]),
		})
	}
	o.record(rs)
	return r
}

// Print writes the fault-sweep table.
func (r FaultsResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Fault injection: fan-out over 1+%d kernels, seed %d\n", r.ExtraKernels, r.Seed)
	fmt.Fprintln(w, "workload      drop     makespan(µs)  completed  retries  dupdrops  lost  dead  recovery(µs)  rejoins  rejoin(µs)  leaks")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-12s  %5.2f%%  %12.2f  %8.1f%%  %7d  %8d  %4d  %4d  %12.2f  %7d  %10.2f  %5d\n",
			row.Workload,
			float64(row.DropBp)/100,
			float64(row.Makespan)/core.CyclesPerMicrosecond,
			row.Completed*100,
			row.Retries, row.DupDrops, row.LostMsgs, row.Aux.DeadPeers,
			float64(row.Aux.MeanRecoveryCycles)/core.CyclesPerMicrosecond,
			row.Aux.Rejoins,
			float64(row.Aux.MeanRejoinCycles)/core.CyclesPerMicrosecond,
			row.Aux.LeakedEntries)
	}
}
