package bench

import (
	"encoding/json"
	"fmt"

	"repro/internal/sim"
)

// The plan → execute → post-process architecture. Every experiment first
// enumerates its runs as serializable TaskSpecs (the plan), hands them to an
// executor — the in-process worker pool or the multi-process ShardExecutor
// (shard.go) — and derives its figure/table values from the ordered Results
// afterwards (the post-process). Because a TaskSpec carries everything a run
// needs (experiment name, machine configuration, trace and scalar
// parameters) and the kind registry maps it back to a run function, any
// process that links this package can execute any task: that is what lets
// the sweep shard across worker processes while keeping the report — and
// every simulated metric — byte-identical to an in-process run.

// TaskSpec is the serializable description of one experiment run. Kind
// selects the run function from the registry; Config, Trace, Variant and
// Arg parameterize it. Experiment is the report row name and travels with
// the spec so workers need no naming logic.
type TaskSpec struct {
	Experiment string    `json:"experiment"`
	Kind       string    `json:"kind"`
	Config     ExpConfig `json:"config"`
	// Trace names the workload trace (kind "workload" only).
	Trace string `json:"trace,omitempty"`
	// Variant distinguishes sub-cases of a kind (local/spanning/m3,
	// plain/batched, ...).
	Variant string `json:"variant,omitempty"`
	// Arg is a kind-specific scalar (fig4: the figure's max chain length,
	// which sizes the machine identically across all its cells).
	Arg int `json:"arg,omitempty"`
	// Seed keys the deterministic fault injector (kinds "faults" and
	// "churn"). It travels with the spec so sharded workers reproduce the
	// same faults.
	Seed uint64 `json:"seed,omitempty"`
	// CrashKernel is the kernel PE the churn scenario crashes and recovers
	// (kind "churn" only); -1 means no crash. The zero value round-trips
	// through omitempty unchanged (absent decodes back to 0).
	CrashKernel int `json:"crashkernel,omitempty"`
	// SimWorkers partitions each run's event queue per kernel block (see
	// core.Config.SimWorkers). It travels with the spec so sharded workers
	// apply the same partitioning; simulated metrics are byte-identical at
	// any setting.
	SimWorkers int `json:"simworkers,omitempty"`
	// SimMode selects merged (default) or isolated-rounds execution (see
	// core.Config.SimMode). It travels with the spec so sharded workers run
	// the same mode; rounds metrics are deterministic but differ from merged
	// by design (cross-domain latency is charged, not elided).
	SimMode string `json:"simmode,omitempty"`
}

// kindFunc executes one spec on a fresh-state engine. The second return is
// optional auxiliary data for the post-process step (serialized as JSON so
// it crosses the worker protocol); it never enters the report.
type kindFunc func(spec TaskSpec, eng *sim.Engine) (Metrics, any, error)

// kinds is the registry mapping TaskSpec.Kind back to run functions. Each
// experiment file registers its kinds from init, so every process linking
// this package — the coordinator and its re-exec'd workers alike — can
// execute every spec.
var kinds = map[string]kindFunc{}

func registerKind(name string, fn kindFunc) {
	if _, dup := kinds[name]; dup {
		panic("bench: duplicate task kind " + name)
	}
	kinds[name] = fn
}

// capsMinter is implemented by aux payloads that know how many capabilities
// their run minted. runSpecOn lifts the count into Result.CapsMinted (via
// the captured pointer in specTask) while the typed aux value is still in
// hand, so the wallclock summary's capsalloc line needs no aux decoding.
type capsMinter interface{ capsMinted() uint64 }

// runSpecOn resolves the spec's kind and executes it, marshaling the aux
// payload so the in-process path produces bit-identical Results to the
// worker protocol (which ships the same bytes). The third return is the
// minted-capability count of aux payloads that report one (else zero).
func runSpecOn(spec TaskSpec, eng *sim.Engine) (Metrics, json.RawMessage, uint64, error) {
	fn, ok := kinds[spec.Kind]
	if !ok {
		return Metrics{}, nil, 0, fmt.Errorf("bench: unknown task kind %q", spec.Kind)
	}
	m, aux, err := fn(spec, eng)
	if err != nil || aux == nil {
		return m, nil, 0, err
	}
	var minted uint64
	if cm, ok := aux.(capsMinter); ok {
		minted = cm.capsMinted()
	}
	raw, err := json.Marshal(aux)
	if err != nil {
		return m, nil, 0, fmt.Errorf("bench: marshaling %s aux: %w", spec.Kind, err)
	}
	return m, raw, minted, nil
}

// specTask adapts a spec to the Task machinery, capturing the aux payload
// into *aux and the minted-capability count into *minted (Task.Run only
// returns Metrics).
func specTask(spec TaskSpec, aux *json.RawMessage, minted *uint64) Task {
	return Task{
		Experiment: spec.Experiment,
		Config:     spec.Config,
		Run: func(eng *sim.Engine) (Metrics, error) {
			m, a, cm, err := runSpecOn(spec, eng)
			*aux = a
			*minted = cm
			return m, err
		},
	}
}

// RunSpec executes one spec on a pooled engine, capturing wallclock and
// panics — the worker's unit of work.
func RunSpec(spec TaskSpec) Result {
	var aux json.RawMessage
	var minted uint64
	res := runTask(specTask(spec, &aux, &minted))
	res.Aux = aux
	res.CapsMinted = minted
	return res
}

// RunSpecs executes the specs on a pool of `parallel` workers (<= 0 means
// GOMAXPROCS), dispatching longest-first per the cost model (nil = the
// instance-count heuristic) so a tail task cannot serialize the sweep.
// Results come back in spec order regardless of dispatch or completion
// order, so all simulated metrics are independent of both the parallelism
// and the schedule.
func RunSpecs(parallel int, specs []TaskSpec, costs *CostModel) []Result {
	tasks := make([]Task, len(specs))
	auxes := make([]json.RawMessage, len(specs))
	minted := make([]uint64, len(specs))
	for i, spec := range specs {
		tasks[i] = specTask(spec, &auxes[i], &minted[i])
	}
	results := runTasksOrdered(parallel, tasks, costs.Order(specs))
	for i := range results {
		results[i].Aux = auxes[i]
		results[i].CapsMinted = minted[i]
	}
	return results
}

// Executor runs a planned batch of specs and returns one Result per spec,
// in spec order. The zero configuration (Options.Executor == nil) executes
// in-process; ShardExecutor fans the batch out over worker processes.
type Executor interface {
	Execute(specs []TaskSpec) []Result
}

// execute runs the plan on the configured executor and fail-fasts on the
// first task error, preserving the historical behavior of the sweeps.
func (o Options) execute(specs []TaskSpec) []Result {
	if o.SimWorkers > 1 {
		for i := range specs {
			specs[i].SimWorkers = o.SimWorkers
		}
	}
	if o.SimMode != "" {
		for i := range specs {
			specs[i].SimMode = o.SimMode
		}
	}
	var rs []Result
	if o.Executor != nil {
		rs = o.Executor.Execute(specs)
	} else {
		rs = RunSpecs(o.Parallel, specs, o.Costs)
	}
	mustOK(rs)
	return rs
}

// auxOf decodes a Result's auxiliary payload into T. The post-process steps
// call it only on results whose kind produced that aux type; a mismatch is
// a programming error and panics like any other broken experiment.
func auxOf[T any](r Result) T {
	var v T
	if err := json.Unmarshal(r.Aux, &v); err != nil {
		panic(fmt.Sprintf("bench: decoding aux of %s %+v: %v", r.Experiment, r.Config, err))
	}
	return v
}
