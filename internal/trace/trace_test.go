package trace

import "testing"

func TestAllTracesPresent(t *testing.T) {
	all := All()
	if len(all) != 6 {
		t.Fatalf("traces = %d, want 6", len(all))
	}
	names := map[string]uint64{
		"tar": 21, "untar": 11, "find": 3, "sqlite": 24, "leveldb": 22, "postmark": 38,
	}
	for _, tr := range all {
		want, ok := names[tr.Name]
		if !ok {
			t.Errorf("unexpected trace %q", tr.Name)
			continue
		}
		if tr.WantCapOps != want {
			t.Errorf("%s WantCapOps = %d, want %d (Table 4)", tr.Name, tr.WantCapOps, want)
		}
		if len(tr.Ops) == 0 {
			t.Errorf("%s has no ops", tr.Name)
		}
		if tr.TargetRuntime == 0 {
			t.Errorf("%s has no target runtime", tr.Name)
		}
	}
}

func TestByName(t *testing.T) {
	if ByName("tar") == nil || ByName("postmark") == nil {
		t.Fatal("ByName failed for known traces")
	}
	if ByName("nope") != nil {
		t.Fatal("ByName returned a trace for an unknown name")
	}
}

func TestTarArchiveSums(t *testing.T) {
	// §5.3.1: 4 MiB archive, five files between 128 and 2048 KiB.
	var total uint64
	for _, s := range tarInputSizes {
		total += s
	}
	if total != 3968*KiB {
		t.Fatalf("input sizes sum to %d KiB, want 3968", total/KiB)
	}
	if len(tarInputSizes) != 5 {
		t.Fatalf("input files = %d, want 5", len(tarInputSizes))
	}
	for _, s := range tarInputSizes {
		if s < 128*KiB || s > 2048*KiB {
			t.Fatalf("input size %d outside 128..2048 KiB", s/KiB)
		}
	}
}

func TestFindScans80Entries(t *testing.T) {
	tr := Find()
	stats, readdirs := 0, 0
	for _, op := range tr.Ops {
		switch op.Kind {
		case OpStat:
			stats++
		case OpReaddir:
			readdirs++
		}
	}
	// §5.3.1: a directory tree with 80 entries.
	if stats+readdirs != 80 {
		t.Fatalf("find touches %d entries, want 80", stats+readdirs)
	}
}

func TestSlotDiscipline(t *testing.T) {
	// Every read/write/close targets a slot that was opened before and not
	// closed since.
	for _, tr := range All() {
		open := map[int]bool{}
		for i, op := range tr.Ops {
			switch op.Kind {
			case OpOpen:
				open[op.Slot] = true
			case OpRead, OpWrite, OpSeek:
				if !open[op.Slot] {
					t.Errorf("%s op %d uses closed slot %d", tr.Name, i, op.Slot)
				}
			case OpClose:
				if !open[op.Slot] {
					t.Errorf("%s op %d closes closed slot %d", tr.Name, i, op.Slot)
				}
				delete(open, op.Slot)
			}
		}
	}
}

func TestReadsCoveredByPreloadsOrWrites(t *testing.T) {
	// A read may only touch bytes that were preloaded or written earlier.
	for _, tr := range All() {
		size := map[string]uint64{}
		for _, f := range tr.Files {
			size[f.Path] = f.Size
		}
		slotPath := map[int]string{}
		slotPos := map[int]uint64{}
		for i, op := range tr.Ops {
			switch op.Kind {
			case OpOpen:
				slotPath[op.Slot] = op.Path
				if op.Trunc {
					size[op.Path] = 0
				}
				slotPos[op.Slot] = 0
			case OpSeek:
				slotPos[op.Slot] = op.Bytes
			case OpWrite:
				pos := slotPos[op.Slot] + op.Bytes
				slotPos[op.Slot] = pos
				if pos > size[slotPath[op.Slot]] {
					size[slotPath[op.Slot]] = pos
				}
			case OpRead:
				pos := slotPos[op.Slot]
				if pos+op.Bytes > size[slotPath[op.Slot]] {
					t.Errorf("%s op %d reads past EOF of %s", tr.Name, i, slotPath[op.Slot])
				}
				slotPos[op.Slot] += op.Bytes
			case OpUnlink:
				delete(size, op.Path)
			}
		}
	}
}

func TestFootprintCoversWrites(t *testing.T) {
	for _, tr := range All() {
		fp := tr.Footprint(1 << 20)
		if fp == 0 {
			t.Errorf("%s footprint = 0", tr.Name)
		}
		// PostMark creates 9 separate 1-extent mail files: the footprint
		// must account for every created path, not just the byte sum.
		if tr.Name == "postmark" && fp < 10<<20 {
			t.Errorf("postmark footprint %d too small for 9 mail extents", fp)
		}
	}
}

func TestItoa(t *testing.T) {
	cases := map[int]string{0: "0", 7: "7", 42: "42", 511: "511"}
	for n, want := range cases {
		if got := Itoa(n); got != want {
			t.Errorf("Itoa(%d) = %q, want %q", n, got, want)
		}
	}
}
