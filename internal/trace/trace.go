// Package trace provides the application workloads of the paper's
// evaluation (§5.3.1): tar, untar, find, SQLite, LevelDB and PostMark.
//
// The paper records Linux syscall traces of the real applications and
// replays them against SemperOS. Those traces are not available, so this
// package generates synthetic traces that reproduce the paper's workload
// descriptions (Table 4 and §5.3.1):
//
//   - tar/untar pack or unpack a 4 MiB archive of five files between 128
//     and 2048 KiB — memory-bound, regular read/write patterns;
//   - find scans a directory tree with 80 entries for a non-existent file —
//     stat-heavy metadata load;
//   - SQLite creates a table, inserts 8 entries and selects them —
//     compute-heavy with bursts of capability activity around the database
//     and journal open/close;
//   - LevelDB does the same key-value work with higher-frequency data file
//     access;
//   - PostMark exercises a loaded mail server with heavy file churn — the
//     highest capability-operation rate.
//
// Each generator is tuned so that replaying the trace issues exactly the
// capability-operation count of the paper's Table 4 (tar 21, untar 11,
// find 3, SQLite 24, LevelDB 22, PostMark 38 per instance), and so that the
// single-instance runtime approximates the paper's measured rates. The
// tests assert the counts.
package trace

import "repro/internal/sim"

// OpKind enumerates trace operations.
type OpKind uint8

// Trace operations. File-addressed ops use Slot to name the handle.
const (
	// OpCompute models local computation for Cycles.
	OpCompute OpKind = iota
	// OpOpen opens Path into Slot (Create/Trunc per flags).
	OpOpen
	// OpRead reads Bytes sequentially from Slot.
	OpRead
	// OpWrite writes Bytes sequentially to Slot.
	OpWrite
	// OpSeek sets Slot's position to Bytes.
	OpSeek
	// OpClose closes Slot; if Revoke, the client revokes the range
	// capabilities it obtained for the file.
	OpClose
	// OpStat stats Path.
	OpStat
	// OpMkdir creates directory Path.
	OpMkdir
	// OpUnlink removes Path (the service revokes its extent caps).
	OpUnlink
	// OpReaddir lists directory Path.
	OpReaddir
)

// Op is one trace operation.
type Op struct {
	Kind   OpKind
	Path   string
	Slot   int
	Bytes  uint64
	Cycles sim.Duration
	Create bool
	Trunc  bool
	Revoke bool
}

// PreFile is a file the filesystem image must contain before replay.
type PreFile struct {
	Path string
	Size uint64
}

// Trace is a generated application workload.
type Trace struct {
	// Name identifies the application.
	Name string
	// Ops is the operation sequence.
	Ops []Op
	// Files are preloaded input files (paths relative to the instance
	// prefix).
	Dirs  []string
	Files []PreFile
	// WantCapOps is the capability-operation count replaying the trace must
	// produce (the paper's Table 4 value), asserted by tests and the
	// harness.
	WantCapOps uint64
	// TargetRuntime is the approximate single-instance runtime in cycles,
	// derived from the paper's Table 4 single-instance rates.
	TargetRuntime sim.Duration
}

// Footprint returns the bytes of image space an instance needs: preloaded
// files plus the high-water size of every path the trace writes, each
// rounded up to whole extents. The filesystem's bump allocator never
// reclaims extents, so unlinked files still count.
func (t *Trace) Footprint(extentBytes uint64) uint64 {
	roundUp := func(n uint64) uint64 {
		if n == 0 {
			return extentBytes
		}
		return (n + extentBytes - 1) / extentBytes * extentBytes
	}
	high := make(map[string]uint64) // path -> high-water size
	for _, f := range t.Files {
		high[f.Path] = f.Size
	}
	slotPath := make(map[int]string)
	slotPos := make(map[int]uint64)
	var graveyard uint64
	for _, op := range t.Ops {
		switch op.Kind {
		case OpOpen:
			slotPath[op.Slot] = op.Path
			slotPos[op.Slot] = 0
			if _, ok := high[op.Path]; !ok {
				high[op.Path] = 0
			}
		case OpSeek:
			slotPos[op.Slot] = op.Bytes
		case OpWrite:
			pos := slotPos[op.Slot] + op.Bytes
			slotPos[op.Slot] = pos
			if path := slotPath[op.Slot]; pos > high[path] {
				high[path] = pos
			}
		case OpRead:
			slotPos[op.Slot] += op.Bytes
		case OpUnlink:
			// The extents of an unlinked file are never reclaimed by the
			// bump allocator; a re-created file gets fresh ones.
			graveyard += roundUp(high[op.Path])
			high[op.Path] = 0
		}
	}
	total := graveyard
	for _, size := range high {
		total += roundUp(size)
	}
	return total + extentBytes
}

// KiB and MiB sizes for readability.
const (
	KiB = 1 << 10
	MiB = 1 << 20
)

// All returns every application trace, in the paper's Table 4 order.
func All() []*Trace {
	return []*Trace{Tar(), Untar(), Find(), SQLite(), LevelDB(), PostMark()}
}

// ByName returns the trace with the given name, or nil.
func ByName(name string) *Trace {
	for _, t := range All() {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// tarInputSizes are the five archive members (128..2048 KiB, 3968 KiB
// total, §5.3.1: "an archive of 4 MiB containing five files of sizes
// between 128 and 2048 KiB").
var tarInputSizes = []uint64{128 * KiB, 256 * KiB, 512 * KiB, 1024 * KiB, 2048 * KiB}

// Tar packs five input files into an archive.
//
// Cap ops (extent = 1 MiB): 1 session + 6 read obtains + 6 read revokes +
// 4 write obtains + 4 write revokes = 21 (Table 4).
func Tar() *Trace {
	t := &Trace{Name: "tar", WantCapOps: 21, TargetRuntime: 5_758_000}
	for i, size := range tarInputSizes {
		t.Files = append(t.Files, PreFile{Path: file('f', i), Size: size})
	}
	t.op(Op{Kind: OpOpen, Path: "archive.tar", Slot: 9, Create: true})
	for i, size := range tarInputSizes {
		t.op(Op{Kind: OpStat, Path: file('f', i)}) // lstat before open
		t.op(Op{Kind: OpOpen, Path: file('f', i), Slot: i})
		t.op(Op{Kind: OpCompute, Cycles: 120_000}) // header generation
		t.op(Op{Kind: OpRead, Slot: i, Bytes: size})
		t.op(Op{Kind: OpWrite, Slot: 9, Bytes: size})
		t.op(Op{Kind: OpClose, Slot: i, Revoke: true})
		t.op(Op{Kind: OpStat, Path: file('f', i)}) // mtime check after read
		t.op(Op{Kind: OpCompute, Cycles: 330_000}) // checksumming, padding
	}
	t.op(Op{Kind: OpStat, Path: "archive.tar"})
	t.op(Op{Kind: OpClose, Slot: 9, Revoke: true})
	t.op(Op{Kind: OpCompute, Cycles: 2_148_000}) // checksum/compression tail
	return t
}

// Untar unpacks the archive into five files. The process exits right after
// unpacking, so range capabilities are cleaned up in bulk at exit rather
// than revoked one by one: 1 session + 4 archive obtains + 6 write obtains
// = 11 cap ops (Table 4).
func Untar() *Trace {
	t := &Trace{Name: "untar", WantCapOps: 11, TargetRuntime: 5_482_000}
	var total uint64
	for _, s := range tarInputSizes {
		total += s
	}
	t.Files = []PreFile{{Path: "archive.tar", Size: total}}
	t.op(Op{Kind: OpStat, Path: "archive.tar"})
	t.op(Op{Kind: OpOpen, Path: "archive.tar", Slot: 9})
	for i, size := range tarInputSizes {
		t.op(Op{Kind: OpCompute, Cycles: 150_000}) // header parse
		t.op(Op{Kind: OpRead, Slot: 9, Bytes: size})
		t.op(Op{Kind: OpOpen, Path: file('o', i), Slot: i, Create: true})
		t.op(Op{Kind: OpWrite, Slot: i, Bytes: size})
		t.op(Op{Kind: OpClose, Slot: i})           // no revoke: exit cleans up
		t.op(Op{Kind: OpStat, Path: file('o', i)}) // chmod/utimensat walk
		t.op(Op{Kind: OpCompute, Cycles: 396_000})
	}
	t.op(Op{Kind: OpClose, Slot: 9})
	t.op(Op{Kind: OpCompute, Cycles: 1_490_000})
	return t
}

// Find scans a directory tree with 80 entries for a non-existent file
// (§5.3.1): almost pure metadata load on the filesystem service, with the
// directory index read through memory capabilities. 1 session + 2 index
// obtains = 3 cap ops (Table 4).
func Find() *Trace {
	t := &Trace{Name: "find", WantCapOps: 3, TargetRuntime: 4_580_000}
	const dirs = 8
	const filesPerDir = 9 // 8 dirs + 8*9 files = 80 entries
	t.Files = append(t.Files, PreFile{Path: "dirindex", Size: 2 * MiB})
	for d := 0; d < dirs; d++ {
		dir := file('d', d)
		t.Dirs = append(t.Dirs, dir)
		for f := 0; f < filesPerDir; f++ {
			t.Files = append(t.Files, PreFile{Path: dir + "/" + file('f', f), Size: 0})
		}
	}
	// Read the directory index (2 extents), then walk.
	t.op(Op{Kind: OpOpen, Path: "dirindex", Slot: 0})
	t.op(Op{Kind: OpRead, Slot: 0, Bytes: 2 * MiB})
	for d := 0; d < dirs; d++ {
		dir := file('d', d)
		t.op(Op{Kind: OpReaddir, Path: dir})
		for f := 0; f < filesPerDir; f++ {
			t.op(Op{Kind: OpStat, Path: dir + "/" + file('f', f)})
			t.op(Op{Kind: OpCompute, Cycles: 36_000}) // name comparison, getdents decode
		}
	}
	t.op(Op{Kind: OpClose, Slot: 0})
	t.op(Op{Kind: OpCompute, Cycles: 1_510_000})
	return t
}

// SQLite creates a table, inserts 8 entries and selects them (§5.3.1):
// compute-intensive with bursts of capability operations around the
// database and journal open/close. 1 session + db(3 obtains + 3 revokes) +
// 4 journal cycles (2 obtains + 2 revokes each) + 1 select obtain = 24 cap
// ops (Table 4).
func SQLite() *Trace {
	t := &Trace{Name: "sqlite", WantCapOps: 24, TargetRuntime: 8_009_000}
	t.op(Op{Kind: OpCompute, Cycles: 900_000}) // library init, parsing
	t.op(Op{Kind: OpOpen, Path: "test.db", Slot: 0, Create: true})
	// Four transactions: CREATE TABLE, two insert batches, COMMIT of the
	// final batch. Each cycles the rollback journal.
	dbWrites := []uint64{1 * MiB, 1 * MiB, 1 * MiB, 0}
	for i, w := range dbWrites {
		// Locking protocol: SQLite probes journal and db state repeatedly
		// (fcntl/fstat/access storms) before and after every transaction.
		for j := 0; j < 11; j++ {
			t.op(Op{Kind: OpStat, Path: "test.db-journal"})
			t.op(Op{Kind: OpStat, Path: "test.db"})
		}
		t.op(Op{Kind: OpOpen, Path: "test.db-journal", Slot: 1, Create: true, Trunc: true})
		t.op(Op{Kind: OpWrite, Slot: 1, Bytes: 2 * MiB}) // journal: 2 obtains
		t.op(Op{Kind: OpCompute, Cycles: 880_000})       // SQL execution
		if w > 0 {
			t.op(Op{Kind: OpWrite, Slot: 0, Bytes: w}) // db page writes
		}
		t.op(Op{Kind: OpClose, Slot: 1, Revoke: true})
		// Journal deletion: SQLite stats the journal and unlinks it after
		// every transaction, revoking its extent capabilities service-side.
		t.op(Op{Kind: OpStat, Path: "test.db-journal"})
		t.op(Op{Kind: OpUnlink, Path: "test.db-journal"})
		_ = i
	}
	// SELECT: re-open the database read-only; the obtained range cap is
	// dropped at exit (not individually revoked).
	t.op(Op{Kind: OpOpen, Path: "test.db", Slot: 2})
	t.op(Op{Kind: OpSeek, Slot: 2, Bytes: 0})
	t.op(Op{Kind: OpRead, Slot: 2, Bytes: 512 * KiB})
	t.op(Op{Kind: OpCompute, Cycles: 1_200_000}) // row decoding
	t.op(Op{Kind: OpClose, Slot: 2})
	t.op(Op{Kind: OpClose, Slot: 0, Revoke: true})
	return t
}

// LevelDB creates a table (via its log-structured machinery), inserts 8
// entries and selects them (§5.3.1): like SQLite but with higher-frequency
// access to its data files. 1 session + WAL write(3+3) + WAL recovery
// read(1+1) + SST write(2+2) + SST read(2+2) + CURRENT/MANIFEST(2+2) +
// 1 unrevoked manifest read = 22 cap ops (Table 4).
func LevelDB() *Trace {
	t := &Trace{Name: "leveldb", WantCapOps: 22, TargetRuntime: 5_029_000}
	t.op(Op{Kind: OpCompute, Cycles: 350_000})
	// Write-ahead log: three append bursts, each preceded by the version
	// probing LevelDB does (GetFileSize/FileExists on its data files).
	t.op(Op{Kind: OpOpen, Path: "000001.log", Slot: 0, Create: true})
	for i := 0; i < 3; i++ {
		for j := 0; j < 10; j++ {
			t.op(Op{Kind: OpStat, Path: "000001.log"})
		}
		t.op(Op{Kind: OpWrite, Slot: 0, Bytes: 1 * MiB})
		t.op(Op{Kind: OpCompute, Cycles: 516_000}) // memtable updates
	}
	t.op(Op{Kind: OpClose, Slot: 0, Revoke: true})
	// Log recovery check: re-read the head of the WAL.
	t.op(Op{Kind: OpOpen, Path: "000001.log", Slot: 5})
	t.op(Op{Kind: OpRead, Slot: 5, Bytes: 1 * MiB})
	t.op(Op{Kind: OpClose, Slot: 5, Revoke: true})
	// Memtable flush to an SSTable.
	t.op(Op{Kind: OpOpen, Path: "000002.ldb", Slot: 1, Create: true})
	t.op(Op{Kind: OpWrite, Slot: 1, Bytes: 2 * MiB})
	t.op(Op{Kind: OpClose, Slot: 1, Revoke: true})
	// Manifest churn.
	t.op(Op{Kind: OpOpen, Path: "MANIFEST-000003", Slot: 2, Create: true})
	t.op(Op{Kind: OpWrite, Slot: 2, Bytes: 256 * KiB})
	t.op(Op{Kind: OpClose, Slot: 2, Revoke: true})
	t.op(Op{Kind: OpOpen, Path: "CURRENT", Slot: 2, Create: true})
	t.op(Op{Kind: OpWrite, Slot: 2, Bytes: 4 * KiB})
	t.op(Op{Kind: OpClose, Slot: 2, Revoke: true})
	// Reads: manifest (dropped at exit) + SSTable scan.
	t.op(Op{Kind: OpOpen, Path: "MANIFEST-000003", Slot: 3})
	t.op(Op{Kind: OpRead, Slot: 3, Bytes: 64 * KiB})
	t.op(Op{Kind: OpClose, Slot: 3})
	t.op(Op{Kind: OpOpen, Path: "000002.ldb", Slot: 4})
	t.op(Op{Kind: OpSeek, Slot: 4, Bytes: 0})
	t.op(Op{Kind: OpRead, Slot: 4, Bytes: 2 * MiB})
	t.op(Op{Kind: OpCompute, Cycles: 910_000}) // key comparisons
	t.op(Op{Kind: OpClose, Slot: 4, Revoke: true})
	t.op(Op{Kind: OpCompute, Cycles: 600_000})
	return t
}

// PostMark resembles a heavily loaded mail server (§5.3.1): little
// computation, many operations on mail files — the highest load on the
// capability system. 1 session + 1 mailbox index obtain + 9 mail cycles
// (create-write-close-revoke, open-read-close-revoke) = 38 cap ops
// (Table 4).
func PostMark() *Trace {
	t := &Trace{Name: "postmark", WantCapOps: 38, TargetRuntime: 1_795_000}
	t.Dirs = []string{"mail"}
	t.Files = []PreFile{{Path: "mailbox.idx", Size: 256 * KiB}}
	t.op(Op{Kind: OpOpen, Path: "mailbox.idx", Slot: 9})
	t.op(Op{Kind: OpRead, Slot: 9, Bytes: 256 * KiB}) // index: 1 obtain
	const mails = 9
	for i := 0; i < mails; i++ {
		path := "mail/" + file('m', i)
		t.op(Op{Kind: OpOpen, Path: path, Slot: 0, Create: true})
		t.op(Op{Kind: OpWrite, Slot: 0, Bytes: 32 * KiB})
		t.op(Op{Kind: OpClose, Slot: 0, Revoke: true})
		t.op(Op{Kind: OpCompute, Cycles: 170_000})
		t.op(Op{Kind: OpOpen, Path: path, Slot: 0})
		t.op(Op{Kind: OpRead, Slot: 0, Bytes: 32 * KiB})
		t.op(Op{Kind: OpClose, Slot: 0, Revoke: true})
		t.op(Op{Kind: OpStat, Path: path})
		t.op(Op{Kind: OpUnlink, Path: path})
		t.op(Op{Kind: OpCompute, Cycles: 165_000})
	}
	t.op(Op{Kind: OpClose, Slot: 9})
	return t
}

func (t *Trace) op(o Op) { t.Ops = append(t.Ops, o) }

// file builds a short deterministic file name like "f3".
func file(prefix byte, i int) string {
	return string(prefix) + itoa(i)
}

// Itoa formats a small non-negative integer without importing strconv into
// hot paths; exported for workload naming.
func Itoa(i int) string { return itoa(i) }

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [8]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}
