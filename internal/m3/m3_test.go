package m3

import (
	"testing"

	"repro/internal/cap"
	"repro/internal/core"
	"repro/internal/dtu"
	"repro/internal/sim"
)

func TestSingleKernelOnly(t *testing.T) {
	if _, err := New(Config{UserPEs: 0}); err == nil {
		t.Error("zero user PEs accepted")
	}
	if _, err := New(Config{UserPEs: core.MaxPEsPerKernel + 1}); err == nil {
		t.Error("over-limit user PEs accepted")
	}
	s := MustNew(Config{UserPEs: 4})
	defer s.Close()
	if s.Kernels() != 1 {
		t.Fatalf("kernels = %d, want 1", s.Kernels())
	}
}

func TestCostModelDropsDDL(t *testing.T) {
	c := CostModel()
	if c.DDLDecode != 0 {
		t.Fatalf("M3 DDLDecode = %d, want 0", c.DDLDecode)
	}
	d := core.DefaultCostModel()
	if c.RevokeMark >= d.RevokeMark || c.RevokeDelete >= d.RevokeDelete {
		t.Fatal("M3 revoke costs not cheaper than SemperOS")
	}
}

func TestExchangeAndRevokeWork(t *testing.T) {
	s := MustNew(Config{UserPEs: 2})
	defer s.Close()
	ready := sim.NewFuture[cap.Selector](s.Eng)
	owner, _ := s.Spawn("owner", func(v *core.VPE, p *sim.Proc) {
		sel, _ := v.AllocMem(p, 4096, dtu.PermRW)
		ready.Complete(sel)
	})
	var obtained cap.Selector
	var errObt, errRev error
	s.Spawn("req", func(v *core.VPE, p *sim.Proc) {
		sel := ready.Wait(p)
		obtained, errObt = v.ObtainFrom(p, owner.ID, sel)
		if errObt == nil {
			errRev = v.Revoke(p, obtained)
		}
	})
	s.Run()
	if errObt != nil || errRev != nil {
		t.Fatalf("obtain=%v revoke=%v", errObt, errRev)
	}
	st := s.Kernel().Stats()
	if st.Obtains != 1 || st.Revokes != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.IKCSent != 0 {
		t.Fatal("single-kernel M3 sent inter-kernel calls")
	}
}

// TestM3FasterThanSemperOSLocal verifies the Table 3 relationship: the same
// local exchange+revoke sequence takes less time on M3 than on SemperOS
// (which pays the DDL indirection).
func TestM3FasterThanSemperOSLocal(t *testing.T) {
	run := func(sys *core.System) sim.Time {
		ready := sim.NewFuture[cap.Selector](sys.Eng)
		owner, _ := sys.Spawn("owner", func(v *core.VPE, p *sim.Proc) {
			sel, _ := v.AllocMem(p, 4096, dtu.PermRW)
			ready.Complete(sel)
		})
		var start, end sim.Time
		sys.Spawn("req", func(v *core.VPE, p *sim.Proc) {
			sel := ready.Wait(p)
			start = p.Now()
			csel, err := v.ObtainFrom(p, owner.ID, sel)
			if err != nil {
				t.Fatalf("obtain: %v", err)
			}
			if err := v.Revoke(p, csel); err != nil {
				t.Fatalf("revoke: %v", err)
			}
			end = p.Now()
		})
		sys.Run()
		return end - start
	}
	m3sys := MustNew(Config{UserPEs: 2})
	defer m3sys.Close()
	m3Time := run(m3sys.System)

	sos := core.MustNew(core.Config{Kernels: 1, UserPEs: 2})
	defer sos.Close()
	sosTime := run(sos)

	if m3Time >= sosTime {
		t.Fatalf("M3 (%d cycles) not faster than SemperOS (%d cycles)", m3Time, sosTime)
	}
	// The paper reports ~10-40% overhead; allow a generous envelope but
	// insist the overhead is in a sane band (not 10x).
	if sosTime > m3Time*2 {
		t.Fatalf("SemperOS overhead too large: %d vs %d cycles", sosTime, m3Time)
	}
}
