// Package m3 provides the M3 baseline system used for comparison in the
// paper's Table 3 and Figure 4: the single-kernel HW/SW co-designed
// capability system that SemperOS extends (Asmussen et al., ASPLOS'16).
//
// Architecturally, M3 is SemperOS with exactly one kernel and with a
// pointer-linked mapping database: capabilities reference their parents and
// children via plain pointers instead of globally valid DDL keys, so
// capability operations skip the DDL-decoding step. The paper quantifies
// that difference as a 10.7% (exchange) / 40.3% (revoke) overhead of
// SemperOS over M3 in the group-local case.
//
// This package reuses the core machinery with a single kernel and an M3
// cost model (no DDL decode, slightly cheaper tree edits). It refuses
// multi-kernel configurations: M3 has exactly one kernel PE, which is its
// scalability limitation and the paper's motivation.
package m3

import (
	"errors"

	"repro/internal/core"
	"repro/internal/noc"
	"repro/internal/sim"
)

// Config describes an M3 machine.
type Config struct {
	// UserPEs is the number of user PEs controlled by the single kernel.
	UserPEs int
	// MemPEs is the number of DRAM PEs (default 1).
	MemPEs int
	// MemBytes is the DRAM capacity per memory PE.
	MemBytes int
	// Noc overrides the NoC configuration.
	Noc *noc.Config
	// Engine, when non-nil, is a fresh (or Reset) simulation engine to build
	// on instead of a new one; see core.Config.Engine.
	Engine *sim.Engine
}

// CostModel returns the M3 kernel cost model: identical to SemperOS except
// that capability references are plain pointers — no DDL decoding — and
// tree edits are marginally cheaper (no key materialization).
func CostModel() core.CostModel {
	c := core.DefaultCostModel()
	c.DDLDecode = 0
	c.RevokeMark = c.RevokeMark * 3 / 4
	c.RevokeDelete = c.RevokeDelete * 4 / 5
	return c
}

// System is an M3 machine: a thin wrapper around a single-kernel core
// system with the M3 cost model.
type System struct {
	*core.System
}

// New builds an M3 machine.
func New(cfg Config) (*System, error) {
	if cfg.UserPEs <= 0 {
		return nil, errors.New("m3: at least one user PE is required")
	}
	if cfg.UserPEs > core.MaxPEsPerKernel {
		return nil, errors.New("m3: user PE count exceeds the single kernel's limit")
	}
	cost := CostModel()
	s, err := core.NewSystem(core.Config{
		Kernels:  1,
		UserPEs:  cfg.UserPEs,
		MemPEs:   cfg.MemPEs,
		MemBytes: cfg.MemBytes,
		Noc:      cfg.Noc,
		Cost:     &cost,
		Engine:   cfg.Engine,
	})
	if err != nil {
		return nil, err
	}
	return &System{System: s}, nil
}

// MustNew is New for constant configurations.
func MustNew(cfg Config) *System {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Kernel returns the single M3 kernel.
func (s *System) Kernel() *core.Kernel { return s.System.Kernel(0) }
