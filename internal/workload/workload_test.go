package workload

import (
	"testing"

	"repro/internal/trace"
)

// TestReplayCapOpsMatchTable4 replays every application trace once on a
// small machine and asserts that the capability-operation count equals the
// paper's Table 4 value exactly.
func TestReplayCapOpsMatchTable4(t *testing.T) {
	for _, tr := range trace.All() {
		tr := tr
		t.Run(tr.Name, func(t *testing.T) {
			res, err := Run(Config{Kernels: 1, Services: 1, Instances: 1, Trace: tr})
			if err != nil {
				t.Fatal(err)
			}
			got := res.Instances[0].CapOps
			if got != tr.WantCapOps {
				t.Fatalf("%s cap ops = %d, want %d (Table 4)", tr.Name, got, tr.WantCapOps)
			}
		})
	}
}

// TestReplaySpanning runs instances across two kernels with one service,
// forcing group-spanning sessions and exchanges.
func TestReplaySpanning(t *testing.T) {
	res, err := Run(Config{Kernels: 2, Services: 1, Instances: 2, Trace: trace.Tar()})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCapOps != 2*21 {
		t.Fatalf("total cap ops = %d, want 42", res.TotalCapOps)
	}
	if res.Kernel.IKCSent == 0 {
		t.Fatal("no inter-kernel traffic despite spanning placement")
	}
}

func TestPlacementPrefersLocalService(t *testing.T) {
	cfg := Config{Kernels: 4, Services: 2, Instances: 4, Trace: trace.Find()}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCapOps != 4*3 {
		t.Fatalf("cap ops = %d", res.TotalCapOps)
	}
}

func TestParallelEfficiencyDegrades(t *testing.T) {
	// More instances per kernel/service must not *increase* efficiency;
	// with heavy sharing it must drop below 1.
	cfg := Config{Kernels: 2, Services: 2, Instances: 16, Trace: trace.PostMark()}
	eff, alone, parallel, err := ParallelEfficiency(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if alone == 0 || parallel == 0 {
		t.Fatal("zero runtimes")
	}
	if eff > 1.001 {
		t.Fatalf("efficiency %.3f > 1", eff)
	}
	if eff < 0.05 {
		t.Fatalf("efficiency %.3f implausibly low", eff)
	}
	if parallel < alone {
		t.Fatalf("parallel runtime %d < alone %d", parallel, alone)
	}
}

func TestMoreKernelsHelp(t *testing.T) {
	// The paper's kernel-dependence result (Fig. 8): with a fixed instance
	// count, more kernels must not hurt parallel efficiency.
	base := Config{Kernels: 1, Services: 1, Instances: 12, Trace: trace.PostMark()}
	eff1, _, _, err := ParallelEfficiency(base)
	if err != nil {
		t.Fatal(err)
	}
	base.Kernels = 4
	base.Services = 4
	eff4, _, _, err := ParallelEfficiency(base)
	if err != nil {
		t.Fatal(err)
	}
	if eff4 < eff1 {
		t.Fatalf("efficiency fell from %.3f (1K/1S) to %.3f (4K/4S)", eff1, eff4)
	}
}

func TestSystemEfficiency(t *testing.T) {
	// Weighted by application PEs over total PEs.
	if got := SystemEfficiency(1.0, 2, 2, 12); got != 12.0/16.0 {
		t.Fatalf("system efficiency = %v", got)
	}
	if got := SystemEfficiency(0.5, 8, 8, 16); got != 0.5*16.0/32.0 {
		t.Fatalf("system efficiency = %v", got)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := Run(Config{Kernels: 1, Services: 0, Instances: 1, Trace: trace.Tar()}); err == nil {
		t.Error("zero services accepted")
	}
}

func TestNginxRuns(t *testing.T) {
	res, err := RunNginx(NginxConfig{Kernels: 2, Services: 2, Servers: 2, Duration: 4_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 {
		t.Fatal("no requests completed")
	}
	if res.RequestsPerSecond() <= 0 {
		t.Fatal("zero request rate")
	}
}

func TestNginxScalesWithServers(t *testing.T) {
	small, err := RunNginx(NginxConfig{Kernels: 2, Services: 2, Servers: 2, Duration: 4_000_000})
	if err != nil {
		t.Fatal(err)
	}
	big, err := RunNginx(NginxConfig{Kernels: 2, Services: 2, Servers: 6, Duration: 4_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if big.Requests <= small.Requests {
		t.Fatalf("6 servers (%d reqs) not faster than 2 (%d reqs)", big.Requests, small.Requests)
	}
}

// TestDeterminism: identical configurations produce identical results.
func TestDeterminism(t *testing.T) {
	run := func() (uint64, uint64) {
		res, err := Run(Config{Kernels: 2, Services: 2, Instances: 4, Trace: trace.SQLite()})
		if err != nil {
			t.Fatal(err)
		}
		return uint64(res.Makespan), res.TotalCapOps
	}
	m1, c1 := run()
	m2, c2 := run()
	if m1 != m2 || c1 != c2 {
		t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", m1, c1, m2, c2)
	}
}
