package workload

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/m3fs"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Config describes one application-level experiment: N instances of one
// application running against S m3fs instances on a K-kernel machine —
// the paper's §5.3 setup ("we distribute them equally between kernels and
// filesystem services").
type Config struct {
	Kernels   int
	Services  int
	Instances int
	Trace     *trace.Trace
	// ExtentBytes overrides the filesystem extent size (default 1 MiB).
	ExtentBytes uint64
	// Engine, when non-nil, is a fresh (or Reset) simulation engine to build
	// the experiment on; see core.Config.Engine. One Run consumes it (Run
	// kills the engine on return), so it must not be shared across Runs
	// without a Reset in between.
	Engine *sim.Engine
	// SimWorkers partitions the engine's event queue per kernel block; see
	// core.Config.SimWorkers. Metrics are byte-identical at any setting.
	SimWorkers int
	// SimMode selects merged (default, byte-identical) or rounds execution;
	// see core.Config.SimMode.
	SimMode string
}

// Result aggregates one experiment run.
type Result struct {
	Config    Config
	Instances []InstanceResult
	// Makespan is the time from simulation start (including VPE creation
	// and session setup, which serialize at the kernels) until the last
	// instance finished.
	Makespan sim.Duration
	// TotalCapOps sums the capability operations of all instances.
	TotalCapOps uint64
	// Kernel aggregates all kernel statistics.
	Kernel core.KernelStats
	// LostMsgs counts NoC messages dropped at a receiving DTU (no free
	// slot). The in-flight accounting keeps it at zero on a healthy run;
	// the bench report surfaces it so regressions are caught mechanically.
	LostMsgs uint64
}

// MeanRuntime returns the average per-instance replay runtime.
func (r *Result) MeanRuntime() sim.Duration {
	if len(r.Instances) == 0 {
		return 0
	}
	var sum sim.Duration
	for _, in := range r.Instances {
		sum += in.Runtime()
	}
	return sum / sim.Duration(len(r.Instances))
}

// CapOpsPerSecond returns the average rate of capability operations over
// the whole run (the paper's Table 4 metric).
func (r *Result) CapOpsPerSecond() float64 {
	if r.Makespan == 0 {
		return 0
	}
	return float64(r.TotalCapOps) / (float64(r.Makespan) / core.CyclesPerSecond)
}

// Err returns the first instance error, if any.
func (r *Result) Err() error {
	for _, in := range r.Instances {
		if in.Err != nil {
			return fmt.Errorf("instance %d: %w", in.VPE, in.Err)
		}
	}
	return nil
}

// placement computes which group each service and instance lands in.
type placement struct {
	svcGroup     []int   // service -> group
	instGroup    []int   // instance -> group
	svcOfGroup   []int   // group -> preferred service
	instOfSvc    [][]int // service -> instances using it
	groupFreePEs [][]int // group -> unassigned user PEs
}

// place assigns services round-robin over groups and instances evenly,
// preferring the service hosted in the instance's own group (paper §5.3.2:
// "Kernels which host a service in their PE group prefer to connect their
// applications to the service in their PE group").
func place(s *core.System, services, instances int) (*placement, error) {
	k := s.Kernels()
	pl := &placement{
		svcGroup:     make([]int, services),
		instGroup:    make([]int, instances),
		svcOfGroup:   make([]int, k),
		instOfSvc:    make([][]int, services),
		groupFreePEs: make([][]int, k),
	}
	for _, pe := range s.UserPEs() {
		g := s.KernelOfPE(pe).ID()
		pl.groupFreePEs[g] = append(pl.groupFreePEs[g], pe)
	}
	for j := 0; j < services; j++ {
		pl.svcGroup[j] = j * k / services
	}
	// Preferred service per group: the nearest hosting group (ties toward
	// the lower service id).
	for g := 0; g < k; g++ {
		best, bestDist := 0, 1<<30
		for j := 0; j < services; j++ {
			d := pl.svcGroup[j] - g
			if d < 0 {
				d = -d
			}
			if d < bestDist {
				best, bestDist = j, d
			}
		}
		pl.svcOfGroup[g] = best
	}
	for i := 0; i < instances; i++ {
		g := i % k
		pl.instGroup[i] = g
		svc := pl.svcOfGroup[g]
		pl.instOfSvc[svc] = append(pl.instOfSvc[svc], i)
	}
	return pl, nil
}

// takePE pops the next free user PE in a group, falling back to any group.
func (pl *placement) takePE(g int) (int, error) {
	for off := 0; off < len(pl.groupFreePEs); off++ {
		gg := (g + off) % len(pl.groupFreePEs)
		if n := len(pl.groupFreePEs[gg]); n > 0 {
			pe := pl.groupFreePEs[gg][0]
			pl.groupFreePEs[gg] = pl.groupFreePEs[gg][1:]
			return pe, nil
		}
	}
	return 0, errors.New("workload: out of user PEs")
}

func svcName(j int) string { return "m3fs" + trace.Itoa(j) }

func instPrefix(i int) string { return "inst" + trace.Itoa(i) }

// Run executes the experiment and returns its result.
func Run(cfg Config) (*Result, error) {
	if cfg.Trace == nil {
		return nil, errors.New("workload: no trace")
	}
	if cfg.Kernels <= 0 || cfg.Services <= 0 || cfg.Instances <= 0 {
		return nil, errors.New("workload: kernels, services, instances must be positive")
	}
	extent := cfg.ExtentBytes
	if extent == 0 {
		extent = 1 << 20
	}
	userPEs := cfg.Services + cfg.Instances
	sys, err := core.NewSystem(core.Config{
		Kernels:    cfg.Kernels,
		UserPEs:    userPEs,
		MemPEs:     1 + cfg.Services/8,
		MemBytes:   1 << 40, // accounting only; backing is lazily allocated
		Engine:     cfg.Engine,
		SimWorkers: cfg.SimWorkers,
		SimMode:    cfg.SimMode,
	})
	if err != nil {
		return nil, err
	}
	defer sys.Close()

	pl, err := place(sys, cfg.Services, cfg.Instances)
	if err != nil {
		return nil, err
	}
	// Image sizing: footprint per instance times the largest per-service
	// assignment, plus slack.
	perInst := cfg.Trace.Footprint(extent)
	maxPerSvc := 1
	for _, insts := range pl.instOfSvc {
		maxPerSvc = max(maxPerSvc, len(insts))
	}
	imageBytes := perInst*uint64(maxPerSvc) + 8<<20

	// Services: spawn each with the preloads of its assigned instances.
	ready := make([]*sim.Future[*m3fs.FS], cfg.Services)
	var allReady sim.WaitGroup
	allReady.Bind(sys.Eng) // home the waitgroup for cross-domain waiters
	allReady.Add(cfg.Services)
	for j := 0; j < cfg.Services; j++ {
		j := j
		ready[j] = sim.NewFuture[*m3fs.FS](sys.Eng)
		ready[j].OnComplete(func(*m3fs.FS) { allReady.Done() })
		pe, err := pl.takePE(pl.svcGroup[j])
		if err != nil {
			return nil, err
		}
		prefixes := make([]string, 0, len(pl.instOfSvc[j]))
		for _, i := range pl.instOfSvc[j] {
			prefixes = append(prefixes, instPrefix(i))
		}
		fscfg := m3fs.Config{ServiceName: svcName(j), ExtentBytes: extent, ImageBytes: imageBytes}
		if _, err := sys.SpawnOn(pe, svcName(j), m3fs.Program(fscfg, Preload(cfg.Trace, prefixes), ready[j])); err != nil {
			return nil, err
		}
	}

	// Instances: wait for all services, then replay.
	results := make([]InstanceResult, cfg.Instances)
	for i := 0; i < cfg.Instances; i++ {
		i := i
		pe, err := pl.takePE(pl.instGroup[i])
		if err != nil {
			return nil, err
		}
		svc := svcName(pl.svcOfGroup[pl.instGroup[i]])
		inner := ReplayProgram(cfg.Trace, svc, instPrefix(i), &results[i])
		prog := func(v *core.VPE, p *sim.Proc) {
			allReady.Wait(p)
			inner(v, p)
		}
		if _, err := sys.SpawnOn(pe, cfg.Trace.Name+"-"+trace.Itoa(i), prog); err != nil {
			return nil, err
		}
	}

	sys.Run()

	res := &Result{Config: cfg, Instances: results}
	for _, in := range results {
		res.TotalCapOps += in.CapOps
		if in.End > sim.Time(res.Makespan) {
			res.Makespan = in.End
		}
		if in.End == 0 {
			return nil, fmt.Errorf("workload: instance %d never finished (err=%v)", in.VPE, in.Err)
		}
	}
	res.Kernel = sys.TotalStats()
	res.LostMsgs = sys.Net.Stats().Lost
	if err := res.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

// ParallelEfficiency runs the experiment twice — once with a single
// instance, once with cfg.Instances — and returns the parallel efficiency
// t_alone / t_parallel (paper §5.3.1: "In a perfectly scaling system, a
// benchmark instance will have the same execution time when running alone
// as when running with other instances in parallel").
func ParallelEfficiency(cfg Config) (eff float64, alone, parallel sim.Duration, err error) {
	// Two Runs: a caller-provided engine could serve at most one of them, so
	// both build their own.
	cfg.Engine = nil
	one := cfg
	one.Instances = 1
	r1, err := Run(one)
	if err != nil {
		return 0, 0, 0, err
	}
	rn, err := Run(cfg)
	if err != nil {
		return 0, 0, 0, err
	}
	alone = r1.MeanRuntime()
	parallel = rn.MeanRuntime()
	if parallel == 0 {
		return 0, alone, parallel, errors.New("workload: zero parallel runtime")
	}
	return float64(alone) / float64(parallel), alone, parallel, nil
}

// SystemEfficiency weights parallel efficiency by the fraction of PEs doing
// application work: OS PEs (kernels and services) count as zero-efficiency
// (paper §5.3.2, Figure 9).
func SystemEfficiency(eff float64, kernels, services, instances int) float64 {
	total := kernels + services + instances
	return eff * float64(instances) / float64(total)
}
