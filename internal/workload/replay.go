// Package workload runs the paper's application-level experiments: it
// places N instances of a traced application plus a set of m3fs service
// instances onto a SemperOS machine, replays the traces, and computes the
// paper's metrics (parallel efficiency §5.3.1, system efficiency §5.3.2,
// and the Nginx requests-per-second server benchmark §5.3.3).
package workload

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/m3fs"
	"repro/internal/sim"
	"repro/internal/trace"
)

// InstanceResult is the outcome of replaying one application instance.
type InstanceResult struct {
	VPE    int
	Start  sim.Time // trace replay begin (after spawn and dial setup)
	End    sim.Time
	CapOps uint64
	Err    error
}

// Runtime returns the instance's replay duration.
func (r InstanceResult) Runtime() sim.Duration { return r.End - r.Start }

// ReplayProgram returns a core.Program that replays tr against the given
// m3fs service, prefixing all paths with prefix (the per-instance
// namespace). The result is reported through res.
func ReplayProgram(tr *trace.Trace, service, prefix string, res *InstanceResult) core.Program {
	return func(v *core.VPE, p *sim.Proc) {
		res.VPE = v.ID
		res.Start = p.Now()
		err := Replay(v, p, tr, service, prefix)
		res.End = p.Now()
		res.CapOps = v.CapOps()
		res.Err = err
	}
}

// Replay executes the trace on a VPE against the named service.
func Replay(v *core.VPE, p *sim.Proc, tr *trace.Trace, service, prefix string) error {
	client, err := m3fs.Dial(p, v, service)
	if err != nil {
		return fmt.Errorf("replay %s: %w", tr.Name, err)
	}
	files := make(map[int]*m3fs.File)
	for i, op := range tr.Ops {
		if err := replayOp(client, p, files, prefix, op); err != nil {
			return fmt.Errorf("replay %s op %d (%d): %w", tr.Name, i, op.Kind, err)
		}
	}
	return nil
}

func replayOp(c *m3fs.Client, p *sim.Proc, files map[int]*m3fs.File, prefix string, op trace.Op) error {
	path := prefix + "/" + op.Path
	switch op.Kind {
	case trace.OpCompute:
		p.Sleep(op.Cycles)
	case trace.OpOpen:
		f, err := c.Open(p, path, op.Create, op.Trunc)
		if err != nil {
			return err
		}
		files[op.Slot] = f
	case trace.OpRead:
		f := files[op.Slot]
		if f == nil {
			return core.ErrBadArgs
		}
		if _, err := f.Read(p, op.Bytes); err != nil {
			return err
		}
	case trace.OpWrite:
		f := files[op.Slot]
		if f == nil {
			return core.ErrBadArgs
		}
		if err := f.Write(p, op.Bytes); err != nil {
			return err
		}
	case trace.OpSeek:
		f := files[op.Slot]
		if f == nil {
			return core.ErrBadArgs
		}
		f.Seek(op.Bytes)
	case trace.OpClose:
		f := files[op.Slot]
		if f == nil {
			return core.ErrBadArgs
		}
		delete(files, op.Slot)
		return f.Close(p, op.Revoke)
	case trace.OpStat:
		if _, err := c.Stat(p, path); err != nil && err != core.ErrNoSuchCap {
			return err
		}
	case trace.OpMkdir:
		return c.Mkdir(p, path)
	case trace.OpUnlink:
		return c.Unlink(p, path)
	case trace.OpReaddir:
		_, err := c.Readdir(p, path)
		return err
	default:
		return core.ErrBadArgs
	}
	return nil
}

// Preload populates one filesystem instance with the input files for a set
// of instance prefixes.
func Preload(tr *trace.Trace, prefixes []string) func(*m3fs.FS) {
	return func(fs *m3fs.FS) {
		for _, prefix := range prefixes {
			fs.MustMkdirAll(prefix)
			for _, d := range tr.Dirs {
				fs.MustMkdirAll(prefix + "/" + d)
			}
			for _, f := range tr.Files {
				fs.MustCreate(prefix+"/"+f.Path, f.Size)
			}
		}
	}
}
