package workload

import (
	"errors"

	"repro/internal/cap"
	"repro/internal/core"
	"repro/internal/m3fs"
	"repro/internal/sim"
	"repro/internal/trace"
)

// The Nginx server benchmark (paper §5.3.3): webserver processes replay a
// recorded per-request trace (stat, open, read, close on the served file)
// whenever a request arrives. Load-generator PEs — standing in for network
// interfaces, like the paper's ab-style setup — fire requests at the
// servers in a closed loop. The metric is aggregate requests per second.

// NginxConfig describes one server-benchmark run.
type NginxConfig struct {
	Kernels  int
	Services int
	Servers  int
	// Duration is the measurement window in cycles (default 10 ms).
	Duration sim.Duration
	// DocBytes is the static file size served per request (default 8 KiB).
	DocBytes uint64
	// RequestCompute is the per-request HTTP processing time in cycles
	// (default 60k ≈ 30 µs, from the shape of the paper's Figure 10).
	RequestCompute sim.Duration
	// Engine, when non-nil, is a fresh (or Reset) simulation engine to build
	// the experiment on; see core.Config.Engine.
	Engine *sim.Engine
}

func (c NginxConfig) withDefaults() NginxConfig {
	if c.Duration == 0 {
		c.Duration = 20_000_000 // 10 ms at 2 GHz
	}
	if c.DocBytes == 0 {
		c.DocBytes = 8 << 10
	}
	if c.RequestCompute == 0 {
		c.RequestCompute = 60_000
	}
	return c
}

// NginxResult is the outcome of one server-benchmark run.
type NginxResult struct {
	Config   NginxConfig
	Requests uint64
	Duration sim.Duration
	// TotalCapOps sums the capability operations of all VPEs over the whole
	// run (setup, warmup and measurement window).
	TotalCapOps uint64
}

// RequestsPerSecond returns the aggregate request rate.
func (r *NginxResult) RequestsPerSecond() float64 {
	if r.Duration == 0 {
		return 0
	}
	return float64(r.Requests) / (float64(r.Duration) / core.CyclesPerSecond)
}

// serverRgateEP is the server-side receive endpoint for HTTP requests.
const serverRgateEP = 11

// RunNginx executes the server benchmark.
func RunNginx(cfg NginxConfig) (*NginxResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Kernels <= 0 || cfg.Services <= 0 || cfg.Servers <= 0 {
		return nil, errors.New("workload: kernels, services, servers must be positive")
	}
	userPEs := cfg.Services + 2*cfg.Servers // servers + load generators
	imageBytes := uint64(cfg.Servers)*(cfg.DocBytes+1<<20) + 16<<20

	sys, err := core.NewSystem(core.Config{
		Kernels:  cfg.Kernels,
		UserPEs:  userPEs,
		MemPEs:   1 + cfg.Services/8,
		MemBytes: int(imageBytes)*cfg.Services + (64 << 20),
		Engine:   cfg.Engine,
	})
	if err != nil {
		return nil, err
	}
	defer sys.Close()

	pl, err := place(sys, cfg.Services, 2*cfg.Servers)
	if err != nil {
		return nil, err
	}

	// Services, each preloaded with the doc roots of every server (servers
	// may be served by any instance depending on placement; preloading all
	// roots in each image keeps placement flexible).
	var allReady sim.WaitGroup
	allReady.Add(cfg.Services)
	preload := func(fs *m3fs.FS) {
		for i := 0; i < cfg.Servers; i++ {
			fs.MustMkdirAll("srv" + trace.Itoa(i))
			fs.MustCreate("srv"+trace.Itoa(i)+"/index.html", cfg.DocBytes)
		}
	}
	for j := 0; j < cfg.Services; j++ {
		ready := sim.NewFuture[*m3fs.FS](sys.Eng)
		ready.OnComplete(func(*m3fs.FS) { allReady.Done() })
		pe, err := pl.takePE(pl.svcGroup[j])
		if err != nil {
			return nil, err
		}
		fscfg := m3fs.Config{ServiceName: svcName(j), ImageBytes: imageBytes}
		if _, err := sys.SpawnOn(pe, svcName(j), m3fs.Program(fscfg, preload, ready)); err != nil {
			return nil, err
		}
	}

	// Servers: set up an rgate, publish its selector, then serve requests.
	type serverInfo struct {
		vpe  *VPEHandle
		gate cap.Selector
	}
	gates := make([]*sim.Future[serverInfo], cfg.Servers)
	requests := make([]uint64, cfg.Servers)
	for i := 0; i < cfg.Servers; i++ {
		i := i
		gates[i] = sim.NewFuture[serverInfo](sys.Eng)
		g := i % cfg.Kernels
		pe, err := pl.takePE(g)
		if err != nil {
			return nil, err
		}
		svc := svcName(pl.svcOfGroup[g])
		doc := "srv" + trace.Itoa(i) + "/index.html"
		prog := func(v *core.VPE, p *sim.Proc) {
			allReady.Wait(p)
			client, err := m3fs.Dial(p, v, svc)
			if err != nil {
				panic(err)
			}
			gateSel, err := v.CreateRgate(p, serverRgateEP, 0)
			if err != nil {
				panic(err)
			}
			gates[i].Complete(serverInfo{vpe: &VPEHandle{v}, gate: gateSel})
			for {
				m := v.DTU().Wait(p, serverRgateEP)
				p.Sleep(cfg.RequestCompute)
				// Per-request file activity, as in the recorded trace:
				// stat, open, read the document, close (revoking).
				if _, err := client.Stat(p, doc); err != nil {
					panic(err)
				}
				f, err := client.Open(p, doc, false, false)
				if err != nil {
					panic(err)
				}
				if _, err := f.Read(p, cfg.DocBytes); err != nil {
					panic(err)
				}
				if err := f.Close(p, true); err != nil {
					panic(err)
				}
				requests[i]++
				v.DTU().Reply(m, "200 OK", 128)
			}
		}
		if _, err := sys.SpawnOn(pe, "nginx-"+trace.Itoa(i), prog); err != nil {
			return nil, err
		}
	}

	// Load generators: one per server, closed loop.
	const loadgenSendEP = 12
	for i := 0; i < cfg.Servers; i++ {
		i := i
		g := i % cfg.Kernels
		pe, err := pl.takePE(g)
		if err != nil {
			return nil, err
		}
		prog := func(v *core.VPE, p *sim.Proc) {
			info := gates[i].Wait(p)
			sendSel, err := v.ObtainFrom(p, info.vpe.V.ID, info.gate)
			if err != nil {
				panic(err)
			}
			if err := v.Activate(p, sendSel, loadgenSendEP); err != nil {
				panic(err)
			}
			for {
				if err := v.DTU().Send(loadgenSendEP, "GET /index.html", 256, vpeServiceReplyEPForLoadgen, 0); err != nil {
					panic(err)
				}
				m := v.DTU().Wait(p, vpeServiceReplyEPForLoadgen)
				v.DTU().Ack(m)
			}
		}
		if _, err := sys.SpawnOn(pe, "loadgen-"+trace.Itoa(i), prog); err != nil {
			return nil, err
		}
	}

	// Warm up (setup + first requests), then measure a fixed window.
	sys.RunFor(cfg.Duration / 2)
	var before uint64
	for _, n := range requests {
		before += n
	}
	start := sys.Now()
	sys.RunFor(cfg.Duration)
	var after uint64
	for _, n := range requests {
		after += n
	}
	var capOps uint64
	for _, v := range sys.VPEs() {
		capOps += v.CapOps()
	}
	return &NginxResult{Config: cfg, Requests: after - before, Duration: sys.Now() - start, TotalCapOps: capOps}, nil
}

// VPEHandle wraps a VPE pointer for futures.
type VPEHandle struct{ V *core.VPE }

// vpeServiceReplyEPForLoadgen is the load generator's reply endpoint (the
// standard service-reply endpoint is unused by load generators).
const vpeServiceReplyEPForLoadgen = 3
