// Package dtu models the data transfer unit (DTU), the hardware component
// that M3 and SemperOS place next to every processing element (PE).
//
// The DTU is the PE's only gateway to the rest of the machine: it exchanges
// messages with other DTUs and performs remote memory accesses, both over
// the NoC. Controlling a PE's DTU therefore suffices to isolate the PE
// (NoC-level isolation). Following the paper's evaluation platform, each DTU
// provides 16 endpoints; receive endpoints hold up to 32 message slots; a
// message arriving at a full endpoint is lost, which is why the kernels
// bound their in-flight messages.
//
// Endpoints are configured only by privileged DTUs. At boot all DTUs are
// privileged; the kernel downgrades every user DTU and remains the only
// privileged one, mirroring the M3 boot protocol.
package dtu

import (
	"errors"
	"fmt"

	"repro/internal/noc"
	"repro/internal/sim"
)

// Architectural constants of the evaluation platform (paper §5.1).
const (
	// NumEndpoints is the number of endpoints per DTU.
	NumEndpoints = 16
	// DefaultSlots is the number of message slots per receive endpoint.
	DefaultSlots = 32
	// headerBytes is the wire overhead charged per message.
	headerBytes = 32
)

// Errors returned by DTU operations.
var (
	ErrNoCredits     = errors.New("dtu: no credits on send endpoint")
	ErrBadEndpoint   = errors.New("dtu: endpoint not configured for this operation")
	ErrNotPrivileged = errors.New("dtu: operation requires a privileged DTU")
	ErrOutOfBounds   = errors.New("dtu: memory access out of bounds")
	ErrNoPerm        = errors.New("dtu: missing permission on memory endpoint")
)

// Perm is a permission bit set for memory endpoints and capabilities.
type Perm uint8

// Permission bits.
const (
	PermR Perm = 1 << iota
	PermW
	PermX
	// PermRW is the common read-write combination.
	PermRW = PermR | PermW
)

func (p Perm) String() string {
	buf := []byte("---")
	if p&PermR != 0 {
		buf[0] = 'r'
	}
	if p&PermW != 0 {
		buf[1] = 'w'
	}
	if p&PermX != 0 {
		buf[2] = 'x'
	}
	return string(buf)
}

// EpKind is the configured role of an endpoint.
type EpKind uint8

// Endpoint kinds.
const (
	EpInvalid EpKind = iota
	EpSend
	EpRecv
	EpMem
)

func (k EpKind) String() string {
	switch k {
	case EpSend:
		return "send"
	case EpRecv:
		return "recv"
	case EpMem:
		return "mem"
	default:
		return "invalid"
	}
}

// Message is a message delivered to a receive endpoint. It occupies a slot
// until the receiver calls Reply, Ack or Free. Messages that arrived inside
// a coalesced vector (SendVecTo) share one slot: it is freed when the last
// sibling is freed.
type Message struct {
	SrcPE   int
	SrcEP   int
	ReplyEP int // endpoint at the sender that accepts the reply, -1 if none
	Label   uint64
	Payload any
	Size    int

	dstDTU *DTU
	dstEP  int
	freed  bool
	vec    *vecMeta // non-nil for messages of a coalesced vector
}

// vecMeta is the shared bookkeeping of one coalesced vector: the siblings
// occupy a single receive slot (the vector is one wire message), released
// when the last of them is freed.
type vecMeta struct {
	remaining int
}

// Handler consumes messages arriving at a receive endpoint.
type Handler func(*Message)

// VecHandler consumes a whole coalesced vector in one call — one delivery
// event and (typically) one consumer-thread handoff per batch instead of
// per message. Endpoints configured with ConfigureRecvVec use it.
type VecHandler func([]*Message)

// VecItem is one element of a coalesced vectored send.
type VecItem struct {
	Payload any
	Size    int
	Label   uint64
}

type endpoint struct {
	kind EpKind

	// send
	dstPE, dstEP int
	credits      int
	maxCredits   int
	label        uint64

	// recv
	slots      int
	used       int
	queue      []*Message
	handler    Handler
	vecHandler VecHandler
	waiters    []*sim.Proc

	// mem
	memPE   int
	memOff  uint64
	memSize uint64
	perm    Perm
}

// Stats counts per-DTU activity. Sent/Received count logical messages;
// VecDeliveries counts coalesced vectors delivered (each carrying several
// logical messages in one delivery event and one receive slot) and
// VecItems the logical messages that arrived inside them, so
// VecItems/VecDeliveries is the average coalescing factor this DTU
// observed.
type Stats struct {
	Sent          uint64
	Received      uint64
	Lost          uint64
	MemReads      uint64
	MemWrites     uint64
	VecDeliveries uint64
	VecItems      uint64
	// EPLost breaks Lost down by receive endpoint, so a slot-exhaustion
	// bug names the channel it starved (syscall EPs vs envelope EPs).
	EPLost [NumEndpoints]uint64
}

// DTU is one data transfer unit, attached to PE `pe`.
type DTU struct {
	fabric     *Fabric
	pe         int
	privileged bool
	eps        [NumEndpoints]endpoint
	mem        []byte
	memCap     int // declared local memory size; backing allocated lazily
	stats      Stats
}

// Fabric owns all DTUs of a machine and the NoC connecting them.
type Fabric struct {
	eng  *sim.Engine
	net  *noc.Network
	dtus []*DTU
}

// NewFabric creates a fabric over the given network. One DTU per PE must be
// added with Add before use.
func NewFabric(eng *sim.Engine, net *noc.Network) *Fabric {
	return &Fabric{
		eng:  eng,
		net:  net,
		dtus: make([]*DTU, net.Nodes()),
	}
}

// Add attaches a new DTU (initially privileged) to PE pe with memBytes of
// local memory exposed to remote memory endpoints.
func (f *Fabric) Add(pe int, memBytes int) *DTU {
	if f.dtus[pe] != nil {
		panic(fmt.Sprintf("dtu: PE %d already has a DTU", pe))
	}
	d := &DTU{fabric: f, pe: pe, privileged: true, memCap: memBytes}
	for i := range d.eps {
		d.eps[i].kind = EpInvalid
	}
	f.dtus[pe] = d
	return d
}

// DTU returns the DTU attached to PE pe.
func (f *Fabric) DTU(pe int) *DTU { return f.dtus[pe] }

// Engine returns the fabric's simulation engine.
func (f *Fabric) Engine() *sim.Engine { return f.eng }

// Network returns the fabric's NoC.
func (f *Fabric) Network() *noc.Network { return f.net }

// PE returns the PE this DTU is attached to.
func (d *DTU) PE() int { return d.pe }

// Stats returns a snapshot of the DTU's counters.
func (d *DTU) Stats() Stats { return d.stats }

// Privileged reports whether this DTU may configure endpoints.
func (d *DTU) Privileged() bool { return d.privileged }

// Downgrade removes the privileged status. The kernel downgrades all user
// DTUs during boot; only kernel DTUs stay privileged.
func (d *DTU) Downgrade() { d.privileged = false }

// Memory returns the DTU's local memory (nil if none declared). The backing
// storage is allocated on first use: simulations that model data movement as
// time (the paper's methodology) never pay for it.
func (d *DTU) Memory() []byte {
	if d.mem == nil && d.memCap > 0 {
		d.mem = make([]byte, d.memCap)
	}
	return d.mem
}

// MemorySize returns the declared local memory size.
func (d *DTU) MemorySize() int { return d.memCap }

// configuring endpoints ------------------------------------------------

// checkEP panics on out-of-range endpoint indices: that is a programming
// error in the simulation, not a modeled fault.
func checkEP(ep int) {
	if ep < 0 || ep >= NumEndpoints {
		panic(fmt.Sprintf("dtu: endpoint %d out of range", ep))
	}
}

// ConfigureSend sets up a send endpoint targeting (dstPE, dstEP) with the
// given credits. by must be privileged (pass the DTU itself if it is).
func (d *DTU) ConfigureSend(by *DTU, ep, dstPE, dstEP, credits int, label uint64) error {
	checkEP(ep)
	if !by.privileged {
		return ErrNotPrivileged
	}
	d.eps[ep] = endpoint{kind: EpSend, dstPE: dstPE, dstEP: dstEP, credits: credits, maxCredits: credits, label: label}
	return nil
}

// ConfigureRecv sets up a receive endpoint with the given number of message
// slots (0 means DefaultSlots) and an optional handler. With a handler,
// arriving messages are passed to it; without, they queue for Fetch/Wait.
func (d *DTU) ConfigureRecv(by *DTU, ep, slots int, h Handler) error {
	checkEP(ep)
	if !by.privileged {
		return ErrNotPrivileged
	}
	if slots <= 0 {
		slots = DefaultSlots
	}
	d.eps[ep] = endpoint{kind: EpRecv, slots: slots, handler: h}
	return nil
}

// ConfigureRecvVec sets up a receive endpoint whose handler consumes whole
// coalesced vectors (see SendVecTo): one handler call per arriving vector
// instead of one per message. Single messages arriving at the endpoint are
// passed as one-element vectors.
func (d *DTU) ConfigureRecvVec(by *DTU, ep, slots int, h VecHandler) error {
	checkEP(ep)
	if !by.privileged {
		return ErrNotPrivileged
	}
	if slots <= 0 {
		slots = DefaultSlots
	}
	d.eps[ep] = endpoint{kind: EpRecv, slots: slots, vecHandler: h}
	return nil
}

// ConfigureMem sets up a memory endpoint granting perm access to
// [off, off+size) in PE memPE's local memory.
func (d *DTU) ConfigureMem(by *DTU, ep, memPE int, off, size uint64, perm Perm) error {
	checkEP(ep)
	if !by.privileged {
		return ErrNotPrivileged
	}
	d.eps[ep] = endpoint{kind: EpMem, memPE: memPE, memOff: off, memSize: size, perm: perm}
	return nil
}

// Invalidate resets an endpoint. Used when capabilities are revoked: the
// kernel invalidates any endpoint configured from a revoked capability.
func (d *DTU) Invalidate(by *DTU, ep int) error {
	checkEP(ep)
	if !by.privileged {
		return ErrNotPrivileged
	}
	d.eps[ep] = endpoint{kind: EpInvalid}
	return nil
}

// EpKindOf returns the configured kind of an endpoint.
func (d *DTU) EpKindOf(ep int) EpKind {
	checkEP(ep)
	return d.eps[ep].kind
}

// Credits returns the available credits of a send endpoint.
func (d *DTU) Credits(ep int) int {
	checkEP(ep)
	return d.eps[ep].credits
}

// messaging --------------------------------------------------------------

// Send transmits payload over send endpoint ep. replyEP names the local
// receive endpoint for the reply (-1 if no reply is expected). One credit is
// consumed; it returns when the peer replies or acks.
func (d *DTU) Send(ep int, payload any, size int, replyEP int, label uint64) error {
	checkEP(ep)
	e := &d.eps[ep]
	if e.kind != EpSend {
		return ErrBadEndpoint
	}
	if e.credits <= 0 {
		return ErrNoCredits
	}
	e.credits--
	d.stats.Sent++
	// Endpoint state is captured now; the Message object is built inside
	// the delivery closure so an injected duplicate delivery (see
	// noc.Verdict.Dup) materializes as a distinct message, exactly as a
	// duplicated wire transfer would.
	msgLabel := e.label
	if label != 0 {
		msgLabel = label
	}
	srcEP := ep
	dstPE, dstEP := e.dstPE, e.dstEP
	d.fabric.net.Send(d.pe, dstPE, size+headerBytes, func() {
		d.fabric.dtus[dstPE].deliver(dstEP, &Message{
			SrcPE:   d.pe,
			SrcEP:   srcEP,
			ReplyEP: replyEP,
			Label:   msgLabel,
			Payload: payload,
			Size:    size,
		})
	})
	return nil
}

// deliver places msg into receive endpoint ep, or drops it if no slot is
// free (the architectural behavior the kernels must avoid by bounding their
// in-flight messages).
func (d *DTU) deliver(ep int, msg *Message) {
	e := &d.eps[ep]
	if e.kind != EpRecv || e.used >= e.slots {
		d.stats.Lost++
		d.stats.EPLost[ep]++
		d.fabric.net.CountLost(d.pe)
		return
	}
	e.used++
	d.stats.Received++
	msg.dstDTU = d
	msg.dstEP = ep
	if e.vecHandler != nil {
		e.vecHandler([]*Message{msg})
		return
	}
	if e.handler != nil {
		e.handler(msg)
		return
	}
	e.queue = append(e.queue, msg)
	if len(e.waiters) > 0 {
		w := e.waiters[0]
		e.waiters = e.waiters[1:]
		w.Wake()
	}
}

// SendVecTo transmits items as one coalesced transfer into (dstPE, dstEP),
// without a send endpoint: the whole vector is one wire message (one NoC
// event, one receive slot at the destination, one delivery event) that the
// receiver sees as len(items) logical messages. Only privileged DTUs (the
// kernels) may use it — their flow control lives above the DTU, in the
// in-flight message accounting of the inter-kernel protocol, so no send
// credits are consumed. This is the batched-delivery primitive the unified
// IKC transport rides in both directions: request envelopes land on a
// kernel-thread consumer (one handoff per batch), and reply envelopes land
// on an event-context demux whose handler frees each message as it
// completes the matching future, so the shared slot is released within the
// delivery event itself. It cuts the per-message NoC events and consumer
// handoffs that dominate wide fan-outs.
func (d *DTU) SendVecTo(dstPE, dstEP int, items []VecItem) error {
	if !d.privileged {
		return ErrNotPrivileged
	}
	checkEP(dstEP)
	if len(items) == 0 {
		return ErrBadEndpoint
	}
	total := headerBytes
	for _, it := range items {
		total += it.Size
	}
	d.stats.Sent += uint64(len(items))
	// Message objects are built per delivery (not per send) so an injected
	// duplicate delivery allocates its own copies; the caller must not
	// mutate items after the call.
	d.fabric.net.Send(d.pe, dstPE, total, func() {
		msgs := make([]*Message, len(items))
		for i, it := range items {
			msgs[i] = &Message{
				SrcPE:   d.pe,
				SrcEP:   -1,
				ReplyEP: -1,
				Label:   it.Label,
				Payload: it.Payload,
				Size:    it.Size,
			}
		}
		d.fabric.dtus[dstPE].deliverVec(dstEP, msgs)
	})
	return nil
}

// deliverVec places a coalesced vector into receive endpoint ep. The vector
// occupies a single slot (it is one wire message); if none is free the
// whole vector is lost. Vec-handler endpoints get one call with all
// messages; plain handlers are invoked per message but still within the
// single delivery event; queue endpoints enqueue everything and wake at
// most one waiter per delivered message.
func (d *DTU) deliverVec(ep int, msgs []*Message) {
	e := &d.eps[ep]
	if e.kind != EpRecv || e.used >= e.slots {
		d.stats.Lost++
		d.stats.EPLost[ep]++
		d.fabric.net.CountLost(d.pe)
		return
	}
	e.used++
	d.stats.Received += uint64(len(msgs))
	d.stats.VecDeliveries++
	d.stats.VecItems += uint64(len(msgs))
	meta := &vecMeta{remaining: len(msgs)}
	for _, m := range msgs {
		m.dstDTU = d
		m.dstEP = ep
		m.vec = meta
	}
	if e.vecHandler != nil {
		e.vecHandler(msgs)
		return
	}
	if e.handler != nil {
		for _, m := range msgs {
			e.handler(m)
		}
		return
	}
	e.queue = append(e.queue, msgs...)
	wake := min(len(msgs), len(e.waiters))
	for i := 0; i < wake; i++ {
		w := e.waiters[0]
		e.waiters = e.waiters[1:]
		w.Wake()
	}
}

// Fetch removes and returns the oldest queued message on receive endpoint
// ep, or nil. The slot stays occupied until Reply or Ack.
func (d *DTU) Fetch(ep int) *Message {
	checkEP(ep)
	e := &d.eps[ep]
	if e.kind != EpRecv || len(e.queue) == 0 {
		return nil
	}
	m := e.queue[0]
	e.queue = e.queue[1:]
	return m
}

// Wait blocks the proc until a message is queued at receive endpoint ep and
// returns it.
func (d *DTU) Wait(p *sim.Proc, ep int) *Message {
	checkEP(ep)
	e := &d.eps[ep]
	if e.kind != EpRecv {
		panic("dtu: Wait on non-recv endpoint")
	}
	for len(e.queue) == 0 {
		e.waiters = append(e.waiters, p)
		p.Park()
	}
	m := e.queue[0]
	e.queue = e.queue[1:]
	return m
}

// WaitVec blocks the proc until at least one message is queued at receive
// endpoint ep and drains the whole queue — one park/wake cycle (one
// goroutine handoff) for however many messages have accumulated, the
// consumer-side half of coalesced delivery.
func (d *DTU) WaitVec(p *sim.Proc, ep int) []*Message {
	checkEP(ep)
	e := &d.eps[ep]
	if e.kind != EpRecv {
		panic("dtu: WaitVec on non-recv endpoint")
	}
	for len(e.queue) == 0 {
		e.waiters = append(e.waiters, p)
		p.Park()
	}
	out := e.queue
	e.queue = nil
	return out
}

// Reply frees msg's slot and sends a reply back to the sender's reply
// endpoint, returning the sender's credit along with it.
func (d *DTU) Reply(msg *Message, payload any, size int) {
	if msg.dstDTU != d {
		panic("dtu: Reply on foreign message")
	}
	d.free(msg)
	if msg.SrcEP < 0 && msg.ReplyEP < 0 {
		// EP-less sender (SendVecTo) and nowhere to deliver the payload:
		// there is no credit to return, so sending anything would be pure
		// wire noise.
		return
	}
	restore := msg.vec == nil || msg.vec.remaining == 0
	reply := &Message{
		SrcPE:   d.pe,
		SrcEP:   msg.dstEP,
		ReplyEP: -1,
		Payload: payload,
		Size:    size,
	}
	srcPE, srcEP, replyEP := msg.SrcPE, msg.SrcEP, msg.ReplyEP
	d.fabric.net.Send(d.pe, srcPE, size+headerBytes, func() {
		src := d.fabric.dtus[srcPE]
		if restore {
			src.restoreCredit(srcEP)
		}
		if replyEP >= 0 {
			src.deliver(replyEP, reply)
		}
	})
}

// Ack frees msg's slot without a payload reply; the sender's credit is
// returned by a (zero-byte) credit message. Messages from an EP-less
// coalesced vector (SendVecTo) consumed no send credit, so acking them
// sends nothing — the ack degenerates to Free.
func (d *DTU) Ack(msg *Message) {
	if msg.dstDTU != d {
		panic("dtu: Ack on foreign message")
	}
	d.free(msg)
	if msg.SrcEP < 0 {
		return
	}
	restore := msg.vec == nil || msg.vec.remaining == 0
	srcPE, srcEP := msg.SrcPE, msg.SrcEP
	d.fabric.net.Send(d.pe, srcPE, headerBytes, func() {
		if restore {
			d.fabric.dtus[srcPE].restoreCredit(srcEP)
		}
	})
}

// Free releases msg's slot without any message back to the sender. It is
// for privileged consumers (the kernels) whose flow control lives above the
// DTU: returning a credit for an EP-less SendVecTo transfer would be
// meaningless traffic.
func (d *DTU) Free(msg *Message) {
	if msg.dstDTU != d {
		panic("dtu: Free on foreign message")
	}
	d.free(msg)
}

func (d *DTU) free(msg *Message) {
	if msg.freed {
		panic("dtu: message freed twice")
	}
	msg.freed = true
	if msg.vec != nil {
		msg.vec.remaining--
		if msg.vec.remaining > 0 {
			return // siblings still hold the shared slot
		}
	}
	e := &d.eps[msg.dstEP]
	if e.used > 0 {
		e.used--
	}
}

func (d *DTU) restoreCredit(ep int) {
	if ep < 0 || ep >= NumEndpoints {
		return // EP-less sender (SendVecTo): no credit to restore
	}
	e := &d.eps[ep]
	if e.kind == EpSend && e.credits < e.maxCredits {
		e.credits++
	}
}

// remote memory ----------------------------------------------------------

// memAccess validates a request against endpoint ep and returns the target.
func (d *DTU) memAccess(ep int, off, size uint64, need Perm) (*DTU, uint64, error) {
	checkEP(ep)
	e := &d.eps[ep]
	if e.kind != EpMem {
		return nil, 0, ErrBadEndpoint
	}
	if e.perm&need != need {
		return nil, 0, ErrNoPerm
	}
	if off+size > e.memSize || off+size < off {
		return nil, 0, ErrOutOfBounds
	}
	target := d.fabric.dtus[e.memPE]
	abs := e.memOff + off
	if abs+size > uint64(target.memCap) {
		return nil, 0, ErrOutOfBounds
	}
	return target, abs, nil
}

// ReadMem reads size bytes at offset off through memory endpoint ep,
// blocking the proc for the NoC round trip plus data transfer time.
func (d *DTU) ReadMem(p *sim.Proc, ep int, off, size uint64) ([]byte, error) {
	target, abs, err := d.memAccess(ep, off, size, PermR)
	if err != nil {
		return nil, err
	}
	d.stats.MemReads++
	// Request travels to the memory, data travels back.
	lat := d.fabric.net.Latency(d.pe, target.pe, headerBytes) +
		d.fabric.net.Latency(target.pe, d.pe, int(size))
	p.Sleep(lat)
	buf := make([]byte, size)
	copy(buf, target.Memory()[abs:abs+size])
	return buf, nil
}

// WriteMem writes data at offset off through memory endpoint ep, blocking
// the proc for the transfer plus acknowledgement.
func (d *DTU) WriteMem(p *sim.Proc, ep int, off uint64, data []byte) error {
	size := uint64(len(data))
	target, abs, err := d.memAccess(ep, off, size, PermW)
	if err != nil {
		return err
	}
	d.stats.MemWrites++
	lat := d.fabric.net.Latency(d.pe, target.pe, int(size)) +
		d.fabric.net.Latency(target.pe, d.pe, headerBytes)
	p.Sleep(lat)
	copy(target.Memory()[abs:abs+size], data)
	return nil
}
