package dtu

import (
	"testing"
	"testing/quick"

	"repro/internal/noc"
	"repro/internal/sim"
)

func newFabric(t *testing.T, nodes int) (*sim.Engine, *Fabric) {
	t.Helper()
	e := sim.NewEngine()
	n := noc.New(e, noc.DefaultConfig(nodes))
	f := NewFabric(e, n)
	for i := 0; i < nodes; i++ {
		f.Add(i, 1<<16)
	}
	return e, f
}

func TestSendReceive(t *testing.T) {
	e, f := newFabric(t, 4)
	a, b := f.DTU(0), f.DTU(1)
	if err := b.ConfigureRecv(b, 2, 4, nil); err != nil {
		t.Fatal(err)
	}
	if err := a.ConfigureSend(a, 1, 1, 2, 4, 7); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(1, "hello", 16, -1, 0); err != nil {
		t.Fatal(err)
	}
	e.Run()
	m := b.Fetch(2)
	if m == nil {
		t.Fatal("no message delivered")
	}
	if m.Payload.(string) != "hello" || m.SrcPE != 0 || m.Label != 7 {
		t.Fatalf("bad message: %+v", m)
	}
}

func TestCreditsConsumedAndRestoredOnReply(t *testing.T) {
	e, f := newFabric(t, 4)
	a, b := f.DTU(0), f.DTU(1)
	b.ConfigureRecv(b, 2, 4, nil)
	a.ConfigureRecv(a, 3, 4, nil) // reply EP
	a.ConfigureSend(a, 1, 1, 2, 2, 0)

	a.Send(1, "req", 16, 3, 0)
	if a.Credits(1) != 1 {
		t.Fatalf("credits after send = %d, want 1", a.Credits(1))
	}
	e.Run()
	m := b.Fetch(2)
	b.Reply(m, "resp", 16)
	e.Run()
	if a.Credits(1) != 2 {
		t.Fatalf("credits after reply = %d, want 2", a.Credits(1))
	}
	r := a.Fetch(3)
	if r == nil || r.Payload.(string) != "resp" {
		t.Fatalf("bad reply: %+v", r)
	}
}

func TestCreditsExhausted(t *testing.T) {
	_, f := newFabric(t, 4)
	a, b := f.DTU(0), f.DTU(1)
	b.ConfigureRecv(b, 2, 4, nil)
	a.ConfigureSend(a, 1, 1, 2, 1, 0)
	if err := a.Send(1, 1, 8, -1, 0); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(1, 2, 8, -1, 0); err != ErrNoCredits {
		t.Fatalf("err = %v, want ErrNoCredits", err)
	}
}

func TestAckRestoresCredit(t *testing.T) {
	e, f := newFabric(t, 4)
	a, b := f.DTU(0), f.DTU(1)
	b.ConfigureRecv(b, 2, 4, nil)
	a.ConfigureSend(a, 1, 1, 2, 1, 0)
	a.Send(1, "x", 8, -1, 0)
	e.Run()
	b.Ack(b.Fetch(2))
	e.Run()
	if a.Credits(1) != 1 {
		t.Fatalf("credits = %d, want 1", a.Credits(1))
	}
}

func TestMessageLossOnFullEndpoint(t *testing.T) {
	e, f := newFabric(t, 4)
	a, b := f.DTU(0), f.DTU(1)
	b.ConfigureRecv(b, 2, 2, nil) // only 2 slots
	a.ConfigureSend(a, 1, 1, 2, 8, 0)
	for i := 0; i < 4; i++ {
		a.Send(1, i, 8, -1, 0)
	}
	e.Run()
	if got := b.Stats().Lost; got != 2 {
		t.Fatalf("lost = %d, want 2", got)
	}
	if got := b.Stats().Received; got != 2 {
		t.Fatalf("received = %d, want 2", got)
	}
}

func TestHandlerDelivery(t *testing.T) {
	e, f := newFabric(t, 4)
	a, b := f.DTU(0), f.DTU(1)
	var got []*Message
	b.ConfigureRecv(b, 2, 4, func(m *Message) { got = append(got, m) })
	a.ConfigureSend(a, 1, 1, 2, 4, 0)
	a.Send(1, "via-handler", 8, -1, 0)
	e.Run()
	if len(got) != 1 || got[0].Payload.(string) != "via-handler" {
		t.Fatalf("handler got %v", got)
	}
	if b.Fetch(2) != nil {
		t.Fatal("handled message also queued")
	}
}

func TestWaitBlocksProc(t *testing.T) {
	e, f := newFabric(t, 4)
	a, b := f.DTU(0), f.DTU(1)
	b.ConfigureRecv(b, 2, 4, nil)
	a.ConfigureSend(a, 1, 1, 2, 4, 0)
	var at sim.Time
	e.Spawn("recv", func(p *sim.Proc) {
		m := b.Wait(p, 2)
		at = p.Now()
		b.Ack(m)
	})
	e.Schedule(100, func() { a.Send(1, "late", 8, -1, 0) })
	e.Run()
	if at <= 100 {
		t.Fatalf("received at %d, want after 100", at)
	}
}

func TestPrivilegeEnforcement(t *testing.T) {
	_, f := newFabric(t, 4)
	a, b := f.DTU(0), f.DTU(1)
	a.Downgrade()
	if err := b.ConfigureRecv(a, 2, 4, nil); err != ErrNotPrivileged {
		t.Fatalf("err = %v, want ErrNotPrivileged", err)
	}
	// A privileged DTU may configure another DTU's endpoints.
	if err := a.ConfigureRecv(b, 2, 4, nil); err != nil {
		t.Fatalf("privileged remote configure failed: %v", err)
	}
}

func TestInvalidate(t *testing.T) {
	_, f := newFabric(t, 4)
	a := f.DTU(0)
	a.ConfigureSend(a, 1, 1, 2, 4, 0)
	if a.EpKindOf(1) != EpSend {
		t.Fatal("endpoint not configured")
	}
	a.Invalidate(a, 1)
	if a.EpKindOf(1) != EpInvalid {
		t.Fatal("endpoint not invalidated")
	}
	if err := a.Send(1, "x", 8, -1, 0); err != ErrBadEndpoint {
		t.Fatalf("err = %v, want ErrBadEndpoint", err)
	}
}

func TestMemReadWrite(t *testing.T) {
	e, f := newFabric(t, 4)
	a, m := f.DTU(0), f.DTU(3)
	copy(m.Memory()[100:], []byte("persistent"))
	a.ConfigureMem(a, 5, 3, 100, 64, PermRW)
	var got []byte
	e.Spawn("reader", func(p *sim.Proc) {
		var err error
		got, err = a.ReadMem(p, 5, 0, 10)
		if err != nil {
			t.Errorf("ReadMem: %v", err)
		}
		if err := a.WriteMem(p, 5, 10, []byte("XY")); err != nil {
			t.Errorf("WriteMem: %v", err)
		}
	})
	e.Run()
	if string(got) != "persistent" {
		t.Fatalf("read %q", got)
	}
	if string(m.Memory()[110:112]) != "XY" {
		t.Fatalf("write not visible: %q", m.Memory()[110:112])
	}
	if e.Now() == 0 {
		t.Fatal("memory access took no simulated time")
	}
}

func TestMemPermissionDenied(t *testing.T) {
	e, f := newFabric(t, 4)
	a := f.DTU(0)
	a.ConfigureMem(a, 5, 3, 0, 64, PermR)
	e.Spawn("w", func(p *sim.Proc) {
		if err := a.WriteMem(p, 5, 0, []byte("no")); err != ErrNoPerm {
			t.Errorf("err = %v, want ErrNoPerm", err)
		}
	})
	e.Run()
}

func TestMemOutOfBounds(t *testing.T) {
	e, f := newFabric(t, 4)
	a := f.DTU(0)
	a.ConfigureMem(a, 5, 3, 0, 64, PermRW)
	e.Spawn("r", func(p *sim.Proc) {
		if _, err := a.ReadMem(p, 5, 60, 10); err != ErrOutOfBounds {
			t.Errorf("err = %v, want ErrOutOfBounds", err)
		}
	})
	e.Run()
}

func TestPermString(t *testing.T) {
	if s := PermRW.String(); s != "rw-" {
		t.Fatalf("PermRW = %q", s)
	}
	if s := (PermR | PermX).String(); s != "r-x" {
		t.Fatalf("R|X = %q", s)
	}
}

// Property: for any sequence of sends within credit limits, every message is
// delivered exactly once and in order per sender.
func TestNoLossWithinCredits(t *testing.T) {
	f := func(nMsgs uint8) bool {
		n := int(nMsgs%DefaultSlots) + 1
		e := sim.NewEngine()
		net := noc.New(e, noc.DefaultConfig(2))
		fab := NewFabric(e, net)
		a := fab.Add(0, 0)
		b := fab.Add(1, 0)
		b.ConfigureRecv(b, 0, DefaultSlots, nil)
		a.ConfigureSend(a, 0, 1, 0, DefaultSlots, 0)
		for i := 0; i < n; i++ {
			if err := a.Send(0, i, 8, -1, 0); err != nil {
				return false
			}
		}
		e.Run()
		for i := 0; i < n; i++ {
			m := b.Fetch(0)
			if m == nil || m.Payload.(int) != i {
				return false
			}
		}
		return b.Stats().Lost == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
