package dtu

import (
	"testing"
	"testing/quick"

	"repro/internal/noc"
	"repro/internal/sim"
)

func newFabric(t *testing.T, nodes int) (*sim.Engine, *Fabric) {
	t.Helper()
	e := sim.NewEngine()
	n := noc.New(e, noc.DefaultConfig(nodes))
	f := NewFabric(e, n)
	for i := 0; i < nodes; i++ {
		f.Add(i, 1<<16)
	}
	return e, f
}

func TestSendReceive(t *testing.T) {
	e, f := newFabric(t, 4)
	a, b := f.DTU(0), f.DTU(1)
	if err := b.ConfigureRecv(b, 2, 4, nil); err != nil {
		t.Fatal(err)
	}
	if err := a.ConfigureSend(a, 1, 1, 2, 4, 7); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(1, "hello", 16, -1, 0); err != nil {
		t.Fatal(err)
	}
	e.Run()
	m := b.Fetch(2)
	if m == nil {
		t.Fatal("no message delivered")
	}
	if m.Payload.(string) != "hello" || m.SrcPE != 0 || m.Label != 7 {
		t.Fatalf("bad message: %+v", m)
	}
}

func TestCreditsConsumedAndRestoredOnReply(t *testing.T) {
	e, f := newFabric(t, 4)
	a, b := f.DTU(0), f.DTU(1)
	b.ConfigureRecv(b, 2, 4, nil)
	a.ConfigureRecv(a, 3, 4, nil) // reply EP
	a.ConfigureSend(a, 1, 1, 2, 2, 0)

	a.Send(1, "req", 16, 3, 0)
	if a.Credits(1) != 1 {
		t.Fatalf("credits after send = %d, want 1", a.Credits(1))
	}
	e.Run()
	m := b.Fetch(2)
	b.Reply(m, "resp", 16)
	e.Run()
	if a.Credits(1) != 2 {
		t.Fatalf("credits after reply = %d, want 2", a.Credits(1))
	}
	r := a.Fetch(3)
	if r == nil || r.Payload.(string) != "resp" {
		t.Fatalf("bad reply: %+v", r)
	}
}

func TestCreditsExhausted(t *testing.T) {
	_, f := newFabric(t, 4)
	a, b := f.DTU(0), f.DTU(1)
	b.ConfigureRecv(b, 2, 4, nil)
	a.ConfigureSend(a, 1, 1, 2, 1, 0)
	if err := a.Send(1, 1, 8, -1, 0); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(1, 2, 8, -1, 0); err != ErrNoCredits {
		t.Fatalf("err = %v, want ErrNoCredits", err)
	}
}

func TestAckRestoresCredit(t *testing.T) {
	e, f := newFabric(t, 4)
	a, b := f.DTU(0), f.DTU(1)
	b.ConfigureRecv(b, 2, 4, nil)
	a.ConfigureSend(a, 1, 1, 2, 1, 0)
	a.Send(1, "x", 8, -1, 0)
	e.Run()
	b.Ack(b.Fetch(2))
	e.Run()
	if a.Credits(1) != 1 {
		t.Fatalf("credits = %d, want 1", a.Credits(1))
	}
}

func TestMessageLossOnFullEndpoint(t *testing.T) {
	e, f := newFabric(t, 4)
	a, b := f.DTU(0), f.DTU(1)
	b.ConfigureRecv(b, 2, 2, nil) // only 2 slots
	a.ConfigureSend(a, 1, 1, 2, 8, 0)
	for i := 0; i < 4; i++ {
		a.Send(1, i, 8, -1, 0)
	}
	e.Run()
	if got := b.Stats().Lost; got != 2 {
		t.Fatalf("lost = %d, want 2", got)
	}
	if got := b.Stats().Received; got != 2 {
		t.Fatalf("received = %d, want 2", got)
	}
}

func TestHandlerDelivery(t *testing.T) {
	e, f := newFabric(t, 4)
	a, b := f.DTU(0), f.DTU(1)
	var got []*Message
	b.ConfigureRecv(b, 2, 4, func(m *Message) { got = append(got, m) })
	a.ConfigureSend(a, 1, 1, 2, 4, 0)
	a.Send(1, "via-handler", 8, -1, 0)
	e.Run()
	if len(got) != 1 || got[0].Payload.(string) != "via-handler" {
		t.Fatalf("handler got %v", got)
	}
	if b.Fetch(2) != nil {
		t.Fatal("handled message also queued")
	}
}

func TestWaitBlocksProc(t *testing.T) {
	e, f := newFabric(t, 4)
	a, b := f.DTU(0), f.DTU(1)
	b.ConfigureRecv(b, 2, 4, nil)
	a.ConfigureSend(a, 1, 1, 2, 4, 0)
	var at sim.Time
	e.Spawn("recv", func(p *sim.Proc) {
		m := b.Wait(p, 2)
		at = p.Now()
		b.Ack(m)
	})
	e.Schedule(100, func() { a.Send(1, "late", 8, -1, 0) })
	e.Run()
	if at <= 100 {
		t.Fatalf("received at %d, want after 100", at)
	}
}

func TestPrivilegeEnforcement(t *testing.T) {
	_, f := newFabric(t, 4)
	a, b := f.DTU(0), f.DTU(1)
	a.Downgrade()
	if err := b.ConfigureRecv(a, 2, 4, nil); err != ErrNotPrivileged {
		t.Fatalf("err = %v, want ErrNotPrivileged", err)
	}
	// A privileged DTU may configure another DTU's endpoints.
	if err := a.ConfigureRecv(b, 2, 4, nil); err != nil {
		t.Fatalf("privileged remote configure failed: %v", err)
	}
}

func TestInvalidate(t *testing.T) {
	_, f := newFabric(t, 4)
	a := f.DTU(0)
	a.ConfigureSend(a, 1, 1, 2, 4, 0)
	if a.EpKindOf(1) != EpSend {
		t.Fatal("endpoint not configured")
	}
	a.Invalidate(a, 1)
	if a.EpKindOf(1) != EpInvalid {
		t.Fatal("endpoint not invalidated")
	}
	if err := a.Send(1, "x", 8, -1, 0); err != ErrBadEndpoint {
		t.Fatalf("err = %v, want ErrBadEndpoint", err)
	}
}

func TestMemReadWrite(t *testing.T) {
	e, f := newFabric(t, 4)
	a, m := f.DTU(0), f.DTU(3)
	copy(m.Memory()[100:], []byte("persistent"))
	a.ConfigureMem(a, 5, 3, 100, 64, PermRW)
	var got []byte
	e.Spawn("reader", func(p *sim.Proc) {
		var err error
		got, err = a.ReadMem(p, 5, 0, 10)
		if err != nil {
			t.Errorf("ReadMem: %v", err)
		}
		if err := a.WriteMem(p, 5, 10, []byte("XY")); err != nil {
			t.Errorf("WriteMem: %v", err)
		}
	})
	e.Run()
	if string(got) != "persistent" {
		t.Fatalf("read %q", got)
	}
	if string(m.Memory()[110:112]) != "XY" {
		t.Fatalf("write not visible: %q", m.Memory()[110:112])
	}
	if e.Now() == 0 {
		t.Fatal("memory access took no simulated time")
	}
}

func TestMemPermissionDenied(t *testing.T) {
	e, f := newFabric(t, 4)
	a := f.DTU(0)
	a.ConfigureMem(a, 5, 3, 0, 64, PermR)
	e.Spawn("w", func(p *sim.Proc) {
		if err := a.WriteMem(p, 5, 0, []byte("no")); err != ErrNoPerm {
			t.Errorf("err = %v, want ErrNoPerm", err)
		}
	})
	e.Run()
}

func TestMemOutOfBounds(t *testing.T) {
	e, f := newFabric(t, 4)
	a := f.DTU(0)
	a.ConfigureMem(a, 5, 3, 0, 64, PermRW)
	e.Spawn("r", func(p *sim.Proc) {
		if _, err := a.ReadMem(p, 5, 60, 10); err != ErrOutOfBounds {
			t.Errorf("err = %v, want ErrOutOfBounds", err)
		}
	})
	e.Run()
}

func TestPermString(t *testing.T) {
	if s := PermRW.String(); s != "rw-" {
		t.Fatalf("PermRW = %q", s)
	}
	if s := (PermR | PermX).String(); s != "r-x" {
		t.Fatalf("R|X = %q", s)
	}
}

// Property: for any sequence of sends within credit limits, every message is
// delivered exactly once and in order per sender.
func TestNoLossWithinCredits(t *testing.T) {
	f := func(nMsgs uint8) bool {
		n := int(nMsgs%DefaultSlots) + 1
		e := sim.NewEngine()
		net := noc.New(e, noc.DefaultConfig(2))
		fab := NewFabric(e, net)
		a := fab.Add(0, 0)
		b := fab.Add(1, 0)
		b.ConfigureRecv(b, 0, DefaultSlots, nil)
		a.ConfigureSend(a, 0, 1, 0, DefaultSlots, 0)
		for i := 0; i < n; i++ {
			if err := a.Send(0, i, 8, -1, 0); err != nil {
				return false
			}
		}
		e.Run()
		for i := 0; i < n; i++ {
			m := b.Fetch(0)
			if m == nil || m.Payload.(int) != i {
				return false
			}
		}
		return b.Stats().Lost == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// --- coalesced (vectored) delivery ---------------------------------------

func vecOf(n int) []VecItem {
	items := make([]VecItem, n)
	for i := range items {
		items[i] = VecItem{Payload: i, Size: 16}
	}
	return items
}

// TestSendVecToOneDeliveryEvent: a coalesced vector reaches a vec-handler
// endpoint as one NoC delivery event with one handler call carrying all
// messages, and occupies a single receive slot.
func TestSendVecToOneDeliveryEvent(t *testing.T) {
	e, f := newFabric(t, 4)
	a, b := f.DTU(0), f.DTU(1)
	var batches int
	var got []*Message
	if err := b.ConfigureRecvVec(b, 2, 4, func(msgs []*Message) {
		batches++
		got = msgs
	}); err != nil {
		t.Fatal(err)
	}
	before := e.Executed()
	if err := a.SendVecTo(1, 2, vecOf(5)); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if ran := e.Executed() - before; ran != 1 {
		t.Fatalf("vector delivery took %d events, want 1", ran)
	}
	if batches != 1 || len(got) != 5 {
		t.Fatalf("handler calls = %d with %d messages, want 1 call with 5", batches, len(got))
	}
	for i, m := range got {
		if m.Payload.(int) != i || m.SrcPE != 0 {
			t.Fatalf("message %d corrupted: %+v", i, m)
		}
	}
	if b.Stats().VecDeliveries != 1 || b.Stats().Received != 5 {
		t.Fatalf("stats: %+v", b.Stats())
	}
	// The whole vector holds one slot; freeing all siblings releases it.
	for i, m := range got {
		if i < len(got)-1 {
			b.Free(m)
		}
	}
	if err := a.SendVecTo(1, 2, vecOf(3)); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if batches != 2 {
		t.Fatal("second vector not delivered while slots were free")
	}
}

// TestSendVecSharedSlot: a 4-slot endpoint accepts 4 whole vectors (each is
// one wire message) and drops the 5th.
func TestSendVecSharedSlot(t *testing.T) {
	e, f := newFabric(t, 4)
	a, b := f.DTU(0), f.DTU(1)
	delivered := 0
	b.ConfigureRecvVec(b, 2, 4, func(msgs []*Message) { delivered += len(msgs) })
	for i := 0; i < 5; i++ {
		a.SendVecTo(1, 2, vecOf(8))
	}
	e.Run()
	if delivered != 4*8 {
		t.Fatalf("delivered %d messages, want %d", delivered, 4*8)
	}
	if b.Stats().Lost != 1 {
		t.Fatalf("lost = %d, want 1 (one whole vector)", b.Stats().Lost)
	}
}

// TestWaitVecSingleWake: a consumer draining with WaitVec is woken once per
// vector, not once per message — one goroutine handoff per batch.
func TestWaitVecSingleWake(t *testing.T) {
	e, f := newFabric(t, 4)
	a, b := f.DTU(0), f.DTU(1)
	b.ConfigureRecv(b, 2, 8, nil) // queue endpoint, no handler
	wakes := 0
	var sizes []int
	e.Spawn("drain", func(p *sim.Proc) {
		msgs := b.WaitVec(p, 2)
		wakes++
		sizes = append(sizes, len(msgs))
		for _, m := range msgs {
			b.Free(m)
		}
	})
	a.SendVecTo(1, 2, vecOf(6))
	e.Run()
	if wakes != 1 || len(sizes) != 1 || sizes[0] != 6 {
		t.Fatalf("wakes=%d sizes=%v, want one wake draining 6", wakes, sizes)
	}
}

// TestSendVecToRequiresPrivilege: user DTUs cannot inject EP-less vectors.
func TestSendVecToRequiresPrivilege(t *testing.T) {
	_, f := newFabric(t, 4)
	a, b := f.DTU(0), f.DTU(1)
	b.ConfigureRecvVec(b, 2, 4, func([]*Message) {})
	a.Downgrade()
	if err := a.SendVecTo(1, 2, vecOf(2)); err != ErrNotPrivileged {
		t.Fatalf("err = %v, want ErrNotPrivileged", err)
	}
	if err := f.DTU(2).SendVecTo(1, 2, nil); err == nil {
		t.Fatal("empty vector accepted")
	}
}

// TestVecQueueDeliveryAndSlotRelease: a vector delivered to a queue
// endpoint is fetchable message by message, but occupies its shared slot
// until the last sibling is freed.
func TestVecQueueDeliveryAndSlotRelease(t *testing.T) {
	e, f := newFabric(t, 4)
	a, b := f.DTU(0), f.DTU(1)
	b.ConfigureRecv(b, 2, 1, nil) // a single slot
	a.SendVecTo(1, 2, vecOf(4))
	e.Run()
	var msgs []*Message
	for {
		m := b.Fetch(2)
		if m == nil {
			break
		}
		msgs = append(msgs, m)
	}
	if len(msgs) != 4 {
		t.Fatalf("fetched %d messages, want 4", len(msgs))
	}
	// The slot is still held until the last sibling is freed.
	a.SendVecTo(1, 2, vecOf(1))
	e.Run()
	if b.Stats().Lost != 1 {
		t.Fatalf("lost = %d, want 1 while the slot is shared", b.Stats().Lost)
	}
	for _, m := range msgs {
		b.Free(m)
	}
	a.SendVecTo(1, 2, vecOf(1))
	e.Run()
	if b.Stats().Lost != 1 {
		t.Fatalf("lost = %d after slot release, want still 1", b.Stats().Lost)
	}
}

// TestPerEndpointLossBreakdown: receiver-side drops are attributed to the
// endpoint whose slots ran out, the per-EP counters sum to the DTU's Lost
// total, and each drop also reaches the fabric-wide NoC counter.
func TestPerEndpointLossBreakdown(t *testing.T) {
	e, f := newFabric(t, 4)
	a, b := f.DTU(0), f.DTU(1)
	b.ConfigureRecv(b, 2, 2, nil) // 2 slots on EP 2
	b.ConfigureRecv(b, 3, 1, nil) // 1 slot on EP 3
	a.ConfigureSend(a, 1, 1, 2, 16, 0)
	a.ConfigureSend(a, 4, 1, 3, 16, 0)
	for i := 0; i < 4; i++ {
		a.Send(1, i, 8, -1, 0) // 2 land, 2 drop on EP 2
	}
	for i := 0; i < 3; i++ {
		a.Send(4, i, 8, -1, 0) // 1 lands, 2 drop on EP 3
	}
	e.Run()
	st := b.Stats()
	if st.EPLost[2] != 2 || st.EPLost[3] != 2 {
		t.Fatalf("EPLost = [ep2:%d ep3:%d], want [2 2]", st.EPLost[2], st.EPLost[3])
	}
	var sum uint64
	for _, v := range st.EPLost {
		sum += v
	}
	if sum != st.Lost {
		t.Fatalf("sum(EPLost) = %d, Lost = %d; breakdown must account for every drop", sum, st.Lost)
	}
	if got := f.Network().Stats().Lost; got != st.Lost {
		t.Fatalf("NoC Lost = %d, want %d (receiver drops aggregate fabric-wide)", got, st.Lost)
	}
	if st.EPLost[0] != 0 || st.EPLost[1] != 0 {
		t.Fatalf("untouched endpoints accumulated losses: %v", st.EPLost[:4])
	}
}
