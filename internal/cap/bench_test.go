package cap

import (
	"testing"

	"repro/internal/ddl"
	"repro/internal/dtu"
)

// Benchmarks comparing the slab-backed Store against a replica of the
// store it replaced: individually heap-allocated capabilities indexed by
// three layers of Go maps, children in a per-capability slice with an
// always-on duplicate scan. The workload is the kernel's hot loop — mint
// a derive tree, look every capability up by key and by selector, revoke
// the tree — and the headline numbers are bytes and allocations per
// capability (B/op and allocs/op divided by the caps minted per op).
// TestSlabStoreBeatsMapStore enforces the >= 2x bar on both.

// mapCap is the old capability node: one heap object per capability.
type mapCap struct {
	Key         ddl.Key
	Owner       int
	Sel         Selector
	Object      Object
	Perm        dtu.Perm
	Parent      ddl.Key
	Marked      bool
	Outstanding int
	Children    []ddl.Key
}

func (c *mapCap) AddChild(k ddl.Key) {
	for _, ch := range c.Children {
		if ch == k {
			panic("duplicate child")
		}
	}
	c.Children = append(c.Children, k)
}

func (c *mapCap) RemoveChild(k ddl.Key) {
	for i, ch := range c.Children {
		if ch == k {
			c.Children = append(c.Children[:i], c.Children[i+1:]...)
			return
		}
	}
}

// mapStore is the old mapping database: key map, per-VPE selector maps,
// per-VPE selector counters.
type mapStore struct {
	caps    map[ddl.Key]*mapCap
	byVPE   map[int]map[Selector]*mapCap
	nextSel map[int]Selector
}

func newMapStore() *mapStore {
	return &mapStore{
		caps:    make(map[ddl.Key]*mapCap),
		byVPE:   make(map[int]map[Selector]*mapCap),
		nextSel: make(map[int]Selector),
	}
}

func (s *mapStore) AllocSel(vpe int) Selector {
	s.nextSel[vpe]++
	return s.nextSel[vpe]
}

func (s *mapStore) Insert(c *mapCap) *mapCap {
	s.caps[c.Key] = c
	if c.Sel != NoSel {
		m := s.byVPE[c.Owner]
		if m == nil {
			m = make(map[Selector]*mapCap)
			s.byVPE[c.Owner] = m
		}
		m[c.Sel] = c
	}
	return c
}

func (s *mapStore) Lookup(k ddl.Key) *mapCap { return s.caps[k] }

func (s *mapStore) LookupSel(vpe int, sel Selector) *mapCap { return s.byVPE[vpe][sel] }

func (s *mapStore) Remove(k ddl.Key) {
	c := s.caps[k]
	if c == nil {
		return
	}
	delete(s.caps, k)
	if c.Sel != NoSel {
		delete(s.byVPE[c.Owner], c.Sel)
	}
}

// benchVPEs/benchChildren shape one iteration's forest: benchVPEs roots
// with benchChildren derives each — deep enough to exercise child spill
// in the slab store and slice growth in the map store.
const (
	benchVPEs      = 8
	benchChildren  = 128
	benchCapsPerOp = benchVPEs * (benchChildren + 1)
)

func benchKey(vpe int, i int) ddl.Key {
	return ddl.NewKey(1, vpe+1, ddl.TypeMem, uint64(i)+1)
}

// benchSlabOp is one iteration of the workload on the slab store.
func benchSlabOp(s *Store, obj Object) {
	var roots [benchVPEs]*Capability
	for v := 0; v < benchVPEs; v++ {
		roots[v] = s.Insert(&Capability{
			Key: benchKey(v, 0), Owner: v, Sel: s.AllocSel(v),
			Object: obj, Perm: dtu.PermRW,
		})
	}
	for v := 0; v < benchVPEs; v++ {
		root := roots[v]
		for i := 0; i < benchChildren; i++ {
			child := s.Insert(&Capability{
				Key: benchKey(v, i+1), Owner: v, Sel: s.AllocSel(v),
				Object: obj, Perm: dtu.PermR, Parent: root.Key,
			})
			root.AddChild(child.Key)
		}
	}
	for v := 0; v < benchVPEs; v++ {
		for i := 0; i <= benchChildren; i++ {
			if s.Lookup(benchKey(v, i)) == nil {
				panic("lookup miss")
			}
		}
	}
	for v := 0; v < benchVPEs; v++ {
		root := roots[v]
		root.ForEachChild(func(k ddl.Key) { s.Remove(k) })
		root.resetChildren()
		s.Remove(root.Key)
	}
}

// benchMapOp is the identical workload on the map-based store.
func benchMapOp(s *mapStore, obj Object) {
	var roots [benchVPEs]*mapCap
	for v := 0; v < benchVPEs; v++ {
		roots[v] = s.Insert(&mapCap{
			Key: benchKey(v, 0), Owner: v, Sel: s.AllocSel(v),
			Object: obj, Perm: dtu.PermRW,
		})
	}
	for v := 0; v < benchVPEs; v++ {
		root := roots[v]
		for i := 0; i < benchChildren; i++ {
			child := s.Insert(&mapCap{
				Key: benchKey(v, i+1), Owner: v, Sel: s.AllocSel(v),
				Object: obj, Perm: dtu.PermR, Parent: root.Key,
			})
			root.AddChild(child.Key)
		}
	}
	for v := 0; v < benchVPEs; v++ {
		for i := 0; i <= benchChildren; i++ {
			if s.Lookup(benchKey(v, i)) == nil {
				panic("lookup miss")
			}
		}
	}
	for v := 0; v < benchVPEs; v++ {
		root := roots[v]
		for _, k := range root.Children {
			s.Remove(k)
		}
		root.Children = nil
		s.Remove(root.Key)
	}
}

// BenchmarkStoreSlab measures the slab store on insert+lookup+revoke.
// The store persists across iterations (selectors stay monotonic, slots
// recycle), matching a kernel's steady state.
func BenchmarkStoreSlab(b *testing.B) {
	s := NewStore()
	obj := &MemObject{PE: 1, Size: 4096, Perm: dtu.PermRW}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchSlabOp(s, obj)
	}
}

// BenchmarkStoreMap measures the replaced map-based store on the same
// workload.
func BenchmarkStoreMap(b *testing.B) {
	s := newMapStore()
	obj := &MemObject{PE: 1, Size: 4096, Perm: dtu.PermRW}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchMapOp(s, obj)
	}
}

// TestSlabStoreBeatsMapStore enforces the slab store's efficiency bar:
// at least 2x fewer heap bytes and 2x fewer allocations per capability
// than the map-based store on the insert+lookup+revoke workload.
func TestSlabStoreBeatsMapStore(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation-ratio measurement skipped in -short mode")
	}
	slab := testing.Benchmark(BenchmarkStoreSlab)
	mp := testing.Benchmark(BenchmarkStoreMap)
	slabBytes := float64(slab.AllocedBytesPerOp()) / benchCapsPerOp
	mapBytes := float64(mp.AllocedBytesPerOp()) / benchCapsPerOp
	slabAllocs := float64(slab.AllocsPerOp()) / benchCapsPerOp
	mapAllocs := float64(mp.AllocsPerOp()) / benchCapsPerOp
	t.Logf("slab: %.1f B/cap %.3f allocs/cap; map: %.1f B/cap %.3f allocs/cap",
		slabBytes, slabAllocs, mapBytes, mapAllocs)
	if slabBytes*2 > mapBytes {
		t.Errorf("bytes/cap: slab %.1f vs map %.1f — less than 2x reduction", slabBytes, mapBytes)
	}
	if slabAllocs*2 > mapAllocs {
		t.Errorf("allocs/cap: slab %.3f vs map %.3f — less than 2x reduction", slabAllocs, mapAllocs)
	}
}
