// Package cap provides the kernel-local capability structures of SemperOS:
// typed capabilities and the per-kernel mapping database that tracks
// capability exchanges in a tree (paper §3.4, §4.3).
//
// A capability references a kernel object (the resource), the VPE holding
// the access rights, and — through globally valid DDL keys — its parent and
// children in the system-wide capability tree. Parent/child links may cross
// kernels; this package only stores and manipulates the local part, while
// package core runs the distributed protocols on top.
package cap

import (
	"fmt"
	"sort"

	"repro/internal/ddl"
	"repro/internal/dtu"
)

// Selector names a capability within one VPE's capability space, like a file
// descriptor names an open file.
type Selector uint32

// NoSel is the invalid selector.
const NoSel Selector = 0

// Object is the kernel object a capability grants access to. Implementations
// are the *Object types below.
type Object interface {
	// ObjType returns the DDL type tag for this object.
	ObjType() ddl.Type
}

// VPEObject represents control over a VPE.
type VPEObject struct {
	VPE int // global VPE id
	PE  int // PE the VPE runs on
}

// MemObject represents byte-granular access to a memory region.
type MemObject struct {
	PE   int // PE whose local memory backs the region
	Off  uint64
	Size uint64
	Perm dtu.Perm
}

// SendObject represents the right to send messages to a receive endpoint.
type SendObject struct {
	DstPE   int
	DstEP   int
	Credits int
	Label   uint64
}

// RecvObject represents a receive endpoint.
type RecvObject struct {
	PE    int
	EP    int
	Slots int
}

// ServiceObject represents a registered service.
type ServiceObject struct {
	Name string
	PE   int // PE the service VPE runs on
	VPE  int
}

// SessionObject represents an established session between a client and a
// service.
type SessionObject struct {
	Service string
	Ident   uint64 // service-private session identifier
}

// ObjType implementations.
func (*VPEObject) ObjType() ddl.Type     { return ddl.TypeVPE }
func (*MemObject) ObjType() ddl.Type     { return ddl.TypeMem }
func (*SendObject) ObjType() ddl.Type    { return ddl.TypeSend }
func (*RecvObject) ObjType() ddl.Type    { return ddl.TypeRecv }
func (*ServiceObject) ObjType() ddl.Type { return ddl.TypeService }
func (*SessionObject) ObjType() ddl.Type { return ddl.TypeSession }

// Capability is one node of the capability tree.
type Capability struct {
	// Key is the capability's globally valid DDL key.
	Key ddl.Key
	// Owner is the global id of the VPE holding the rights.
	Owner int
	// Sel is the capability's selector in the owner's capability space.
	Sel Selector
	// Object is the referenced kernel object. Child capabilities share the
	// object of their parent (possibly with restricted permissions).
	Object Object
	// Perm restricts the rights of this capability relative to the object.
	Perm dtu.Perm
	// Parent is the DDL key of the parent capability (0 for roots).
	Parent ddl.Key
	// Children are the DDL keys of capabilities derived from this one, in
	// creation order. They may live at other kernels.
	Children []ddl.Key

	// Marked is set during phase one of the two-phase revocation
	// (mark-and-sweep, paper §4.3.3). A marked capability is logically dead:
	// exchanges involving it are denied.
	Marked bool
	// Outstanding counts revoke inter-kernel calls sent for this
	// capability's children that have not been answered yet.
	Outstanding int
}

// Type returns the capability's object type.
func (c *Capability) Type() ddl.Type {
	if c.Object == nil {
		return ddl.TypeInvalid
	}
	return c.Object.ObjType()
}

func (c *Capability) String() string {
	return fmt.Sprintf("cap<%v owner=v%d sel=%d kids=%d marked=%v>",
		c.Key, c.Owner, c.Sel, len(c.Children), c.Marked)
}

// AddChild appends a child key. Duplicate insertion is a protocol bug and
// panics.
func (c *Capability) AddChild(k ddl.Key) {
	for _, ch := range c.Children {
		if ch == k {
			panic(fmt.Sprintf("cap: duplicate child %v on %v", k, c.Key))
		}
	}
	c.Children = append(c.Children, k)
}

// RemoveChild deletes a child key; removing an absent child is a no-op
// (revocation may race with orphan cleanup).
func (c *Capability) RemoveChild(k ddl.Key) {
	for i, ch := range c.Children {
		if ch == k {
			c.Children = append(c.Children[:i], c.Children[i+1:]...)
			return
		}
	}
}

// HasChild reports whether k is a child of c.
func (c *Capability) HasChild(k ddl.Key) bool {
	for _, ch := range c.Children {
		if ch == k {
			return true
		}
	}
	return false
}

// Store is one kernel's mapping database: all capabilities it owns, indexed
// by DDL key and by (VPE, selector).
type Store struct {
	caps    map[ddl.Key]*Capability
	byVPE   map[int]map[Selector]*Capability
	nextSel map[int]Selector
}

// NewStore returns an empty mapping database.
func NewStore() *Store {
	return &Store{
		caps:    make(map[ddl.Key]*Capability),
		byVPE:   make(map[int]map[Selector]*Capability),
		nextSel: make(map[int]Selector),
	}
}

// Len returns the number of stored capabilities.
func (s *Store) Len() int { return len(s.caps) }

// AllocSel returns a fresh selector for the VPE's capability space.
func (s *Store) AllocSel(vpe int) Selector {
	s.nextSel[vpe]++
	return s.nextSel[vpe]
}

// Insert adds a capability to the database. Inserting a duplicate key or a
// (vpe, selector) collision panics: keys are minted uniquely and selectors
// allocated by AllocSel, so either indicates kernel corruption.
func (s *Store) Insert(c *Capability) {
	if !c.Key.Valid() {
		panic("cap: inserting capability with invalid key")
	}
	if _, dup := s.caps[c.Key]; dup {
		panic(fmt.Sprintf("cap: duplicate key %v", c.Key))
	}
	vm := s.byVPE[c.Owner]
	if vm == nil {
		vm = make(map[Selector]*Capability)
		s.byVPE[c.Owner] = vm
	}
	if c.Sel != NoSel {
		if _, dup := vm[c.Sel]; dup {
			panic(fmt.Sprintf("cap: duplicate selector %d for vpe %d", c.Sel, c.Owner))
		}
		vm[c.Sel] = c
	}
	s.caps[c.Key] = c
}

// Lookup returns the capability with the given key, or nil.
func (s *Store) Lookup(k ddl.Key) *Capability { return s.caps[k] }

// LookupSel returns the VPE's capability at sel, or nil.
func (s *Store) LookupSel(vpe int, sel Selector) *Capability {
	return s.byVPE[vpe][sel]
}

// Remove deletes a capability from the database. It does not touch tree
// links; callers unlink first. Removing an absent key is a no-op.
func (s *Store) Remove(k ddl.Key) {
	c := s.caps[k]
	if c == nil {
		return
	}
	delete(s.caps, k)
	if vm := s.byVPE[c.Owner]; vm != nil && c.Sel != NoSel {
		delete(vm, c.Sel)
	}
}

// VPECaps returns all capabilities of a VPE ordered by selector; the order
// is deterministic so that bulk revocation (VPE exit) is reproducible.
func (s *Store) VPECaps(vpe int) []*Capability {
	vm := s.byVPE[vpe]
	if len(vm) == 0 {
		return nil
	}
	caps := make([]*Capability, 0, len(vm))
	for _, c := range vm {
		caps = append(caps, c)
	}
	sort.Slice(caps, func(i, j int) bool { return caps[i].Sel < caps[j].Sel })
	return caps
}

// Keys returns all stored keys in ascending order (for tests/diagnostics).
func (s *Store) Keys() []ddl.Key {
	keys := make([]ddl.Key, 0, len(s.caps))
	for k := range s.caps {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// CheckLocalInvariants validates the locally checkable tree invariants:
//   - every child link whose target is local resolves, and the target's
//     Parent points back;
//   - every local capability with a local parent is in that parent's child
//     list;
//   - selector index and key index agree.
//
// It returns the first violation found, or nil. Links to other kernels
// cannot be validated locally and are skipped.
func (s *Store) CheckLocalInvariants() error {
	for k, c := range s.caps {
		if c.Key != k {
			return fmt.Errorf("cap %v stored under wrong key %v", c.Key, k)
		}
		for _, ch := range c.Children {
			if child := s.caps[ch]; child != nil && child.Parent != c.Key {
				return fmt.Errorf("child %v of %v has parent %v", ch, c.Key, child.Parent)
			}
		}
		if c.Parent != 0 {
			if parent := s.caps[c.Parent]; parent != nil && !parent.HasChild(c.Key) {
				return fmt.Errorf("cap %v not in parent %v child list", c.Key, c.Parent)
			}
		}
		if c.Sel != NoSel {
			if s.byVPE[c.Owner][c.Sel] != c {
				return fmt.Errorf("cap %v selector index mismatch", c.Key)
			}
		}
	}
	for vpe, vm := range s.byVPE {
		for sel, c := range vm {
			if c.Owner != vpe || c.Sel != sel {
				return fmt.Errorf("selector index corrupt for vpe %d sel %d", vpe, sel)
			}
			if s.caps[c.Key] != c {
				return fmt.Errorf("selector index holds unmapped cap %v", c.Key)
			}
		}
	}
	return nil
}
