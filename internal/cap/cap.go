// Package cap provides the kernel-local capability structures of SemperOS:
// typed capabilities and the per-kernel mapping database that tracks
// capability exchanges in a tree (paper §3.4, §4.3).
//
// A capability references a kernel object (the resource), the VPE holding
// the access rights, and — through globally valid DDL keys — its parent and
// children in the system-wide capability tree. Parent/child links may cross
// kernels; this package only stores and manipulates the local part, while
// package core runs the distributed protocols on top.
//
// Storage layout (beyond-paper scale work): capabilities live in
// generation-versioned slabs owned by the Store — fixed-size arrays of
// Capability values addressed by a dense slot number — instead of being
// individually heap-allocated and map-indexed. The key index is an
// open-addressing hash over the uint64 DDL key (ddl.KeyMap), per-VPE
// selector spaces are dense slices, and child links are stored inline in
// the Capability with spill to a shared chunk arena. At millions of
// capabilities this removes the per-capability allocations and the three
// layers of Go map overhead that previously dominated RSS and GC time.
package cap

import (
	"fmt"

	"repro/internal/ddl"
	"repro/internal/dtu"
)

// Debug enables expensive correctness asserts that are not part of the
// protocol logic, e.g. AddChild's O(children) duplicate scan. Tests turn it
// on; the benchmarks and the scale sweep leave it off.
var Debug = false

// Selector names a capability within one VPE's capability space, like a file
// descriptor names an open file.
type Selector uint32

// NoSel is the invalid selector.
const NoSel Selector = 0

// Object is the kernel object a capability grants access to. Implementations
// are the *Object types below.
type Object interface {
	// ObjType returns the DDL type tag for this object.
	ObjType() ddl.Type
}

// VPEObject represents control over a VPE.
type VPEObject struct {
	VPE int // global VPE id
	PE  int // PE the VPE runs on
}

// MemObject represents byte-granular access to a memory region.
type MemObject struct {
	PE   int // PE whose local memory backs the region
	Off  uint64
	Size uint64
	Perm dtu.Perm
}

// SendObject represents the right to send messages to a receive endpoint.
type SendObject struct {
	DstPE   int
	DstEP   int
	Credits int
	Label   uint64
}

// RecvObject represents a receive endpoint.
type RecvObject struct {
	PE    int
	EP    int
	Slots int
}

// ServiceObject represents a registered service.
type ServiceObject struct {
	Name string
	PE   int // PE the service VPE runs on
	VPE  int
}

// SessionObject represents an established session between a client and a
// service.
type SessionObject struct {
	Service string
	Ident   uint64 // service-private session identifier
}

// ObjType implementations.
func (*VPEObject) ObjType() ddl.Type     { return ddl.TypeVPE }
func (*MemObject) ObjType() ddl.Type     { return ddl.TypeMem }
func (*SendObject) ObjType() ddl.Type    { return ddl.TypeSend }
func (*RecvObject) ObjType() ddl.Type    { return ddl.TypeRecv }
func (*ServiceObject) ObjType() ddl.Type { return ddl.TypeService }
func (*SessionObject) ObjType() ddl.Type { return ddl.TypeSession }

// Child-link storage parameters. Most capabilities have at most a handful of
// children (a derive chain, a session), so the first few keys live inline in
// the Capability; wide fan-outs (a service capability with thousands of
// sessions) spill to chunks of a shared arena owned by the Store.
const (
	inlineChildren = 3
	chunkKeys      = 7
)

// childChunk is one spill block of the shared child arena. The next field is
// the arena index of the following chunk plus one (0 = end of chain), so the
// zero chunk is a valid empty chunk.
type childChunk struct {
	keys [chunkKeys]ddl.Key
	next int32
}

// Capability is one node of the capability tree.
//
// A Capability is created free-standing (a composite literal) and handed to
// Store.Insert, which copies it into a slab and returns the slab pointer —
// the live instance all further reads and mutations must go through.
type Capability struct {
	// Key is the capability's globally valid DDL key.
	Key ddl.Key
	// Owner is the global id of the VPE holding the rights.
	Owner int
	// Sel is the capability's selector in the owner's capability space.
	Sel Selector
	// Object is the referenced kernel object. Child capabilities share the
	// object of their parent (possibly with restricted permissions).
	Object Object
	// Perm restricts the rights of this capability relative to the object.
	Perm dtu.Perm
	// Parent is the DDL key of the parent capability (0 for roots).
	Parent ddl.Key

	// Marked is set during phase one of the two-phase revocation
	// (mark-and-sweep, paper §4.3.3). A marked capability is logically dead:
	// exchanges involving it are denied.
	Marked bool
	// Outstanding counts revoke inter-kernel calls sent for this
	// capability's children that have not been answered yet.
	Outstanding int

	// Child links, in creation order. nChildren counts live children;
	// childSlots is the append cursor including tombstones (removed children
	// leave a zero key so the creation order of the survivors is preserved).
	// Slots [0, inlineChildren) are inline; further slots live in arena
	// chunks (spillHead/spillTail, chunk index+1, 0 = none) once the
	// capability is stored, or in the private spill slice while it is still
	// free-standing.
	nChildren  int32
	childSlots int32
	spillHead  int32
	spillTail  int32
	inline     [inlineChildren]ddl.Key
	spill      []ddl.Key

	// store and slot locate the capability inside its Store's slabs; both
	// are zero while free-standing.
	store *Store
	slot  uint32
}

// Type returns the capability's object type.
func (c *Capability) Type() ddl.Type {
	if c.Object == nil {
		return ddl.TypeInvalid
	}
	return c.Object.ObjType()
}

func (c *Capability) String() string {
	return fmt.Sprintf("cap<%v owner=v%d sel=%d kids=%d marked=%v>",
		c.Key, c.Owner, c.Sel, c.NumChildren(), c.Marked)
}

// NumChildren returns the number of live child links.
func (c *Capability) NumChildren() int { return int(c.nChildren) }

// forEachChildSlot visits every child slot (including tombstones, which are
// zero keys) in creation order until fn returns false.
func (c *Capability) forEachChildSlot(fn func(k ddl.Key) bool) {
	n := int(c.childSlots)
	for i := 0; i < n && i < inlineChildren; i++ {
		if !fn(c.inline[i]) {
			return
		}
	}
	spillN := n - inlineChildren
	if spillN <= 0 {
		return
	}
	if c.store == nil {
		for i := 0; i < spillN; i++ {
			if !fn(c.spill[i]) {
				return
			}
		}
		return
	}
	ci := c.spillHead
	for i := 0; i < spillN; i++ {
		off := i % chunkKeys
		if !fn(c.store.chunks[ci-1].keys[off]) {
			return
		}
		if off == chunkKeys-1 {
			ci = c.store.chunks[ci-1].next
		}
	}
}

// ForEachChild calls fn for every live child key in creation order. The
// capability's child set must not be mutated during the walk.
func (c *Capability) ForEachChild(fn func(k ddl.Key)) {
	c.forEachChildSlot(func(k ddl.Key) bool {
		if k != 0 {
			fn(k)
		}
		return true
	})
}

// AppendChildren appends the live child keys in creation order to dst and
// returns the result — the snapshot form of ForEachChild, for walks that
// mutate the tree.
func (c *Capability) AppendChildren(dst []ddl.Key) []ddl.Key {
	if cap(dst)-len(dst) < int(c.nChildren) {
		grown := make([]ddl.Key, len(dst), len(dst)+int(c.nChildren))
		copy(grown, dst)
		dst = grown
	}
	c.ForEachChild(func(k ddl.Key) { dst = append(dst, k) })
	return dst
}

// AddChild appends a child key. Duplicate insertion is a protocol bug; the
// O(children) scan that asserts it only runs with Debug set — wide fan-outs
// must not pay it per link.
func (c *Capability) AddChild(k ddl.Key) {
	if Debug && c.HasChild(k) {
		panic(fmt.Sprintf("cap: duplicate child %v on %v", k, c.Key))
	}
	slot := int(c.childSlots)
	c.childSlots++
	c.nChildren++
	if slot < inlineChildren {
		c.inline[slot] = k
		return
	}
	off := (slot - inlineChildren) % chunkKeys
	if c.store == nil {
		c.spill = append(c.spill, k)
		return
	}
	if off == 0 {
		ci := c.store.allocChunk()
		if c.spillTail != 0 {
			c.store.chunks[c.spillTail-1].next = ci + 1
		} else {
			c.spillHead = ci + 1
		}
		c.spillTail = ci + 1
	}
	c.store.chunks[c.spillTail-1].keys[off] = k
}

// RemoveChild deletes a child key; removing an absent child is a no-op
// (revocation may race with orphan cleanup). The slot is tombstoned so the
// surviving children keep their creation order; when the last child goes,
// the whole spill chain is released.
func (c *Capability) RemoveChild(k ddl.Key) {
	if k == 0 {
		return
	}
	n := int(c.childSlots)
	for i := 0; i < n && i < inlineChildren; i++ {
		if c.inline[i] == k {
			c.inline[i] = 0
			c.childRemoved()
			return
		}
	}
	spillN := n - inlineChildren
	if spillN <= 0 {
		return
	}
	if c.store == nil {
		for i := 0; i < spillN; i++ {
			if c.spill[i] == k {
				c.spill[i] = 0
				c.childRemoved()
				return
			}
		}
		return
	}
	ci := c.spillHead
	for i := 0; i < spillN; i++ {
		off := i % chunkKeys
		if c.store.chunks[ci-1].keys[off] == k {
			c.store.chunks[ci-1].keys[off] = 0
			c.childRemoved()
			return
		}
		if off == chunkKeys-1 {
			ci = c.store.chunks[ci-1].next
		}
	}
}

func (c *Capability) childRemoved() {
	c.nChildren--
	if c.nChildren == 0 {
		c.resetChildren()
	}
}

// resetChildren releases all child storage (the tombstone-compaction point:
// a capability whose children are all gone starts over empty).
func (c *Capability) resetChildren() {
	c.inline = [inlineChildren]ddl.Key{}
	if c.store != nil {
		c.store.freeChunkChain(c.spillHead)
	}
	c.spillHead, c.spillTail = 0, 0
	c.spill = nil
	c.childSlots = 0
	c.nChildren = 0
}

// HasChild reports whether k is a child of c.
func (c *Capability) HasChild(k ddl.Key) bool {
	if k == 0 {
		return false
	}
	found := false
	c.forEachChildSlot(func(ch ddl.Key) bool {
		if ch == k {
			found = true
			return false
		}
		return true
	})
	return found
}

// Slab geometry: 512 capabilities per slab. Slabs are allocated as whole
// arrays and never move, so *Capability pointers into them stay valid until
// the slot is freed by Remove.
const (
	slabShift = 9
	slabSize  = 1 << slabShift
)

type slab [slabSize]Capability

// Handle is a dense, generation-versioned reference to a stored capability:
// the slot's generation counter in the upper 32 bits, the slot number plus
// one in the lower 32 (so the zero Handle is invalid). A Handle outlives the
// *Capability pointer safely — once the slot is freed and reused, Resolve
// returns nil instead of the impostor.
type Handle uint64

// NoHandle is the invalid handle.
const NoHandle Handle = 0

// vpeSpace is one VPE's capability space: a dense selector-indexed table of
// slab slot references (slot+1, 0 = empty) plus the allocation cursor.
type vpeSpace struct {
	sel  []uint32
	free []Selector // freed selectors, reused only with Store.ReuseSelectors
	next Selector   // highest selector handed out
	live int
}

func (sp *vpeSpace) ensure(sel Selector) {
	for int(sel) >= len(sp.sel) {
		sp.sel = append(sp.sel, make([]uint32, int(sel)+1-len(sp.sel))...)
	}
}

// Store is one kernel's mapping database: all capabilities it owns, indexed
// by DDL key and by (VPE, selector). Capabilities live in slabs owned by the
// Store; see the package comment for the layout.
type Store struct {
	// ReuseSelectors makes AllocSel reuse selectors freed by Remove instead
	// of allocating monotonically. The kernels leave it off: monotonic
	// selectors keep (vpe, selector) pairs unique for the lifetime of a run,
	// which the exchange protocols' re-validation checks rely on, and keep
	// bulk revocation order (VPECaps) independent of deletion history.
	ReuseSelectors bool

	slabs     []*slab
	gens      []uint32 // per-slot generation, bumped on free
	freeSlots []uint32 // LIFO free list
	used      uint32   // high-water slot count
	n         int      // live capabilities

	byKey ddl.KeyMap[uint32] // DDL key -> slot

	vpes map[int]*vpeSpace // one entry per VPE, not per capability

	chunks     []childChunk // shared child-spill arena
	freeChunks []int32
}

// NewStore returns an empty mapping database.
func NewStore() *Store {
	return &Store{}
}

// Len returns the number of stored capabilities.
func (s *Store) Len() int { return s.n }

func (s *Store) capAt(slot uint32) *Capability {
	return &s.slabs[slot>>slabShift][slot&(slabSize-1)]
}

func (s *Store) allocSlot() uint32 {
	if n := len(s.freeSlots); n > 0 {
		slot := s.freeSlots[n-1]
		s.freeSlots = s.freeSlots[:n-1]
		return slot
	}
	slot := s.used
	if int(slot>>slabShift) == len(s.slabs) {
		s.slabs = append(s.slabs, new(slab))
		s.gens = append(s.gens, make([]uint32, slabSize)...)
	}
	s.used++
	return slot
}

func (s *Store) allocChunk() int32 {
	if n := len(s.freeChunks); n > 0 {
		ci := s.freeChunks[n-1]
		s.freeChunks = s.freeChunks[:n-1]
		return ci
	}
	s.chunks = append(s.chunks, childChunk{})
	return int32(len(s.chunks) - 1)
}

// freeChunkChain returns a chunk chain (head is index+1) to the free list.
func (s *Store) freeChunkChain(head int32) {
	for head != 0 {
		ci := head - 1
		next := s.chunks[ci].next
		s.chunks[ci] = childChunk{}
		s.freeChunks = append(s.freeChunks, ci)
		head = next
	}
}

// migrateSpill moves a freshly inserted capability's private spill slice
// into the shared chunk arena.
func (s *Store) migrateSpill(c *Capability) {
	priv := c.spill
	c.spill = nil
	c.spillHead, c.spillTail = 0, 0
	for i, k := range priv {
		off := i % chunkKeys
		if off == 0 {
			ci := s.allocChunk()
			if c.spillTail != 0 {
				s.chunks[c.spillTail-1].next = ci + 1
			} else {
				c.spillHead = ci + 1
			}
			c.spillTail = ci + 1
		}
		s.chunks[c.spillTail-1].keys[off] = k
	}
}

func (s *Store) space(vpe int) *vpeSpace {
	sp := s.vpes[vpe]
	if sp == nil {
		if s.vpes == nil {
			s.vpes = make(map[int]*vpeSpace)
		}
		sp = &vpeSpace{}
		s.vpes[vpe] = sp
	}
	return sp
}

// AllocSel returns a fresh selector for the VPE's capability space:
// monotonically increasing, or a recycled one with ReuseSelectors set.
func (s *Store) AllocSel(vpe int) Selector {
	sp := s.space(vpe)
	if s.ReuseSelectors {
		if n := len(sp.free); n > 0 {
			sel := sp.free[n-1]
			sp.free = sp.free[:n-1]
			return sel
		}
	}
	sp.next++
	return sp.next
}

// Insert copies the capability into a slab slot, indexes it, and returns the
// slab instance — the pointer all further accesses must use; the argument
// stays a dead free-standing value. Inserting a duplicate key or a
// (vpe, selector) collision panics: keys are minted uniquely and selectors
// allocated by AllocSel, so either indicates kernel corruption.
func (s *Store) Insert(c *Capability) *Capability {
	if !c.Key.Valid() {
		panic("cap: inserting capability with invalid key")
	}
	if _, dup := s.byKey.Get(c.Key); dup {
		panic(fmt.Sprintf("cap: duplicate key %v", c.Key))
	}
	var sp *vpeSpace
	if c.Sel != NoSel {
		sp = s.space(c.Owner)
		sp.ensure(c.Sel)
		if sp.sel[c.Sel] != 0 {
			panic(fmt.Sprintf("cap: duplicate selector %d for vpe %d", c.Sel, c.Owner))
		}
	}
	slot := s.allocSlot()
	sc := s.capAt(slot)
	*sc = *c
	sc.store = s
	sc.slot = slot
	if int(sc.childSlots) > inlineChildren {
		s.migrateSpill(sc)
	} else {
		sc.spill = nil
	}
	s.byKey.Put(c.Key, slot)
	if sp != nil {
		sp.sel[c.Sel] = slot + 1
		sp.live++
		if c.Sel > sp.next {
			// Directly chosen selector (tests): keep AllocSel ahead of it.
			sp.next = c.Sel
		}
	}
	s.n++
	return sc
}

// Lookup returns the capability with the given key, or nil.
func (s *Store) Lookup(k ddl.Key) *Capability {
	slot, ok := s.byKey.Get(k)
	if !ok {
		return nil
	}
	return s.capAt(slot)
}

// LookupSel returns the VPE's capability at sel, or nil.
func (s *Store) LookupSel(vpe int, sel Selector) *Capability {
	sp := s.vpes[vpe]
	if sp == nil || int(sel) >= len(sp.sel) {
		return nil
	}
	ref := sp.sel[sel]
	if ref == 0 {
		return nil
	}
	return s.capAt(ref - 1)
}

// HandleOf returns the generation-versioned handle of a stored capability,
// or NoHandle for nil or free-standing capabilities.
func (s *Store) HandleOf(c *Capability) Handle {
	if c == nil || c.store != s {
		return NoHandle
	}
	return Handle(uint64(s.gens[c.slot])<<32 | uint64(c.slot) + 1)
}

// Resolve returns the capability a handle refers to, or nil if it has been
// removed since (the slot's generation moved on).
func (s *Store) Resolve(h Handle) *Capability {
	if h == NoHandle {
		return nil
	}
	slot := uint32(h) - 1
	if slot >= s.used || s.gens[slot] != uint32(h>>32) {
		return nil
	}
	c := s.capAt(slot)
	if c.Key == 0 {
		return nil
	}
	return c
}

// Remove deletes a capability from the database. It does not touch tree
// links; callers unlink first. Removing an absent key is a no-op. The slab
// slot is zeroed (so the GC drops the object reference), its generation is
// bumped, and slot and spill chunks return to the free lists.
func (s *Store) Remove(k ddl.Key) {
	slot, ok := s.byKey.Get(k)
	if !ok {
		return
	}
	c := s.capAt(slot)
	if c.spillHead != 0 {
		s.freeChunkChain(c.spillHead)
	}
	if c.Sel != NoSel {
		if sp := s.vpes[c.Owner]; sp != nil && int(c.Sel) < len(sp.sel) && sp.sel[c.Sel] == slot+1 {
			sp.sel[c.Sel] = 0
			sp.live--
			if s.ReuseSelectors {
				sp.free = append(sp.free, c.Sel)
			}
		}
	}
	s.byKey.Delete(k)
	*c = Capability{}
	s.gens[slot]++
	s.freeSlots = append(s.freeSlots, slot)
	s.n--
}

// VPECaps returns all capabilities of a VPE ordered by ascending selector —
// the selector table's natural order, no sort needed. The order is
// deterministic so that bulk revocation (VPE exit) is reproducible: with
// monotonic selectors it equals creation order regardless of deletion
// history.
func (s *Store) VPECaps(vpe int) []*Capability {
	sp := s.vpes[vpe]
	if sp == nil || sp.live == 0 {
		return nil
	}
	caps := make([]*Capability, 0, sp.live)
	for _, ref := range sp.sel {
		if ref != 0 {
			caps = append(caps, s.capAt(ref-1))
		}
	}
	return caps
}

// Keys returns all stored keys in slot order (for tests/diagnostics) — the
// slab table's natural order, no sort or map iteration. The order is a
// deterministic function of the store's operation history (slots allocate
// densely, frees recycle LIFO), but not of the key values; callers that
// need a value order must sort.
func (s *Store) Keys() []ddl.Key {
	keys := make([]ddl.Key, 0, s.n)
	for slot := uint32(0); slot < s.used; slot++ {
		if c := s.capAt(slot); c.Key != 0 {
			keys = append(keys, c.Key)
		}
	}
	return keys
}

// CheckLocalInvariants validates the locally checkable invariants:
//   - every child link whose target is local resolves, and the target's
//     Parent points back;
//   - every local capability with a local parent is in that parent's child
//     list;
//   - selector index, key index and slab agree;
//   - slab free lists are consistent: every slot is either live and indexed
//     or zeroed and on the free list, exactly once;
//   - child spill chains are well-formed: acyclic, owned by exactly one
//     capability, sized to the child-slot count, and disjoint from the
//     chunk free list.
//
// It returns the first violation found, or nil. Links to other kernels
// cannot be validated locally and are skipped.
func (s *Store) CheckLocalInvariants() error {
	if len(s.freeSlots)+s.n != int(s.used) {
		return fmt.Errorf("slot accounting: %d free + %d live != %d used",
			len(s.freeSlots), s.n, s.used)
	}
	freeSlot := make(map[uint32]bool, len(s.freeSlots))
	for _, slot := range s.freeSlots {
		if slot >= s.used {
			return fmt.Errorf("free slot %d beyond high water %d", slot, s.used)
		}
		if freeSlot[slot] {
			return fmt.Errorf("slot %d on the free list twice", slot)
		}
		freeSlot[slot] = true
	}
	freeChunk := make(map[int32]bool, len(s.freeChunks))
	for _, ci := range s.freeChunks {
		if ci < 0 || int(ci) >= len(s.chunks) {
			return fmt.Errorf("free chunk %d out of range", ci)
		}
		if freeChunk[ci] {
			return fmt.Errorf("chunk %d on the free list twice", ci)
		}
		if s.chunks[ci] != (childChunk{}) {
			return fmt.Errorf("free chunk %d not zeroed", ci)
		}
		freeChunk[ci] = true
	}
	chunkOwner := make(map[int32]uint32)
	ownedChunks := 0
	for slot := uint32(0); slot < s.used; slot++ {
		c := s.capAt(slot)
		if c.Key == 0 {
			if !freeSlot[slot] {
				return fmt.Errorf("slot %d is empty but not on the free list", slot)
			}
			if c.Object != nil || c.store != nil || c.childSlots != 0 || c.spillHead != 0 || c.spill != nil {
				return fmt.Errorf("free slot %d not zeroed", slot)
			}
			continue
		}
		if freeSlot[slot] {
			return fmt.Errorf("slot %d holds %v but is on the free list", slot, c.Key)
		}
		if c.store != s || c.slot != slot {
			return fmt.Errorf("cap %v has wrong slab back-reference", c.Key)
		}
		if got, ok := s.byKey.Get(c.Key); !ok || got != slot {
			return fmt.Errorf("cap %v missing from the key index", c.Key)
		}
		if c.spill != nil {
			return fmt.Errorf("stored cap %v still has a private spill slice", c.Key)
		}
		// Child links and spill-chain shape.
		spillSlots := int(c.childSlots) - inlineChildren
		wantChunks := 0
		if spillSlots > 0 {
			wantChunks = (spillSlots + chunkKeys - 1) / chunkKeys
		}
		ci := c.spillHead
		for i := 0; i < wantChunks; i++ {
			if ci == 0 {
				return fmt.Errorf("cap %v spill chain too short: %d chunks, want %d", c.Key, i, wantChunks)
			}
			idx := ci - 1
			if int(idx) >= len(s.chunks) {
				return fmt.Errorf("cap %v spill chunk %d out of range", c.Key, idx)
			}
			if freeChunk[idx] {
				return fmt.Errorf("cap %v references free chunk %d", c.Key, idx)
			}
			if owner, shared := chunkOwner[idx]; shared {
				return fmt.Errorf("chunk %d shared by slots %d and %d", idx, owner, slot)
			}
			chunkOwner[idx] = slot
			ownedChunks++
			if i == wantChunks-1 {
				if ci != c.spillTail {
					return fmt.Errorf("cap %v spill tail mismatch", c.Key)
				}
				if s.chunks[idx].next != 0 {
					return fmt.Errorf("cap %v spill chain overlong", c.Key)
				}
			}
			ci = s.chunks[idx].next
		}
		if wantChunks == 0 && (c.spillHead != 0 || c.spillTail != 0) {
			return fmt.Errorf("cap %v has a spill chain but no spill slots", c.Key)
		}
		liveChildren := 0
		var childErr error
		c.forEachChildSlot(func(ch ddl.Key) bool {
			if ch == 0 {
				return true
			}
			liveChildren++
			if child := s.Lookup(ch); child != nil && child.Parent != c.Key {
				childErr = fmt.Errorf("child %v of %v has parent %v", ch, c.Key, child.Parent)
				return false
			}
			return true
		})
		if childErr != nil {
			return childErr
		}
		if liveChildren != int(c.nChildren) {
			return fmt.Errorf("cap %v counts %d children, slots hold %d", c.Key, c.nChildren, liveChildren)
		}
		if c.Parent != 0 {
			if parent := s.Lookup(c.Parent); parent != nil && !parent.HasChild(c.Key) {
				return fmt.Errorf("cap %v not in parent %v child list", c.Key, c.Parent)
			}
		}
		if c.Sel != NoSel {
			if s.LookupSel(c.Owner, c.Sel) != c {
				return fmt.Errorf("cap %v selector index mismatch", c.Key)
			}
		}
	}
	if ownedChunks+len(s.freeChunks) != len(s.chunks) {
		return fmt.Errorf("chunk accounting: %d owned + %d free != %d allocated",
			ownedChunks, len(s.freeChunks), len(s.chunks))
	}
	if s.byKey.Len() != s.n {
		return fmt.Errorf("key index holds %d entries, store %d", s.byKey.Len(), s.n)
	}
	for vpe, sp := range s.vpes {
		live := 0
		for sel, ref := range sp.sel {
			if ref == 0 {
				continue
			}
			live++
			if ref-1 >= s.used {
				return fmt.Errorf("selector index for vpe %d sel %d points beyond the slabs", vpe, sel)
			}
			c := s.capAt(ref - 1)
			if c.Key == 0 || c.Owner != vpe || c.Sel != Selector(sel) {
				return fmt.Errorf("selector index corrupt for vpe %d sel %d", vpe, sel)
			}
		}
		if live != sp.live {
			return fmt.Errorf("vpe %d selector space counts %d live, table holds %d", vpe, sp.live, live)
		}
	}
	return nil
}
