package cap

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/ddl"
	"repro/internal/dtu"
)

func memCap(g *ddl.Generator, vpe int, sel Selector) *Capability {
	return &Capability{
		Key:    g.Next(0, vpe, ddl.TypeMem),
		Owner:  vpe,
		Sel:    sel,
		Object: &MemObject{PE: 1, Off: 0, Size: 4096, Perm: dtu.PermRW},
		Perm:   dtu.PermRW,
	}
}

func TestStoreInsertLookup(t *testing.T) {
	s := NewStore()
	g := ddl.NewGenerator()
	c := s.Insert(memCap(g, 1, s.AllocSel(1)))
	if s.Lookup(c.Key) != c {
		t.Fatal("Lookup by key failed")
	}
	if s.LookupSel(1, c.Sel) != c {
		t.Fatal("Lookup by selector failed")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	if err := s.CheckLocalInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreRemove(t *testing.T) {
	s := NewStore()
	g := ddl.NewGenerator()
	c := s.Insert(memCap(g, 1, s.AllocSel(1)))
	key, sel := c.Key, c.Sel
	s.Remove(key)
	if s.Lookup(key) != nil || s.LookupSel(1, sel) != nil {
		t.Fatal("capability still visible after Remove")
	}
	s.Remove(key) // removing absent key is a no-op
	if err := s.CheckLocalInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreDuplicateKeyPanics(t *testing.T) {
	s := NewStore()
	g := ddl.NewGenerator()
	c := memCap(g, 1, s.AllocSel(1))
	s.Insert(c)
	dup := *c
	dup.Sel = s.AllocSel(1)
	defer func() {
		if recover() == nil {
			t.Error("duplicate key insert did not panic")
		}
	}()
	s.Insert(&dup)
}

func TestStoreSelectorCollisionPanics(t *testing.T) {
	s := NewStore()
	g := ddl.NewGenerator()
	a := memCap(g, 1, 5)
	b := memCap(g, 1, 5)
	s.Insert(a)
	defer func() {
		if recover() == nil {
			t.Error("selector collision did not panic")
		}
	}()
	s.Insert(b)
}

func TestChildLinks(t *testing.T) {
	g := ddl.NewGenerator()
	parent := memCap(g, 1, 1)
	child := memCap(g, 2, 1)
	child.Parent = parent.Key
	parent.AddChild(child.Key)
	if !parent.HasChild(child.Key) {
		t.Fatal("child not linked")
	}
	if parent.NumChildren() != 1 {
		t.Fatalf("NumChildren = %d", parent.NumChildren())
	}
	parent.RemoveChild(child.Key)
	if parent.HasChild(child.Key) {
		t.Fatal("child not removed")
	}
	parent.RemoveChild(child.Key) // absent removal is a no-op
}

func TestDuplicateChildPanics(t *testing.T) {
	defer func(old bool) { Debug = old }(Debug)
	Debug = true // the duplicate scan is a debug-gated assert
	g := ddl.NewGenerator()
	parent := memCap(g, 1, 1)
	child := memCap(g, 2, 1)
	parent.AddChild(child.Key)
	defer func() {
		if recover() == nil {
			t.Error("duplicate child did not panic")
		}
	}()
	parent.AddChild(child.Key)
}

// Children must survive the inline→spill transition and keep creation order
// under interleaved removals, both free-standing and store-backed.
func TestChildSpill(t *testing.T) {
	for _, stored := range []bool{false, true} {
		s := NewStore()
		g := ddl.NewGenerator()
		parent := memCap(g, 1, 1)
		if stored {
			parent = s.Insert(parent)
		}
		var want []ddl.Key
		for i := 0; i < 4*chunkKeys+inlineChildren+2; i++ {
			k := g.Next(0, 2, ddl.TypeMem)
			parent.AddChild(k)
			want = append(want, k)
		}
		got := parent.AppendChildren(nil)
		if len(got) != len(want) {
			t.Fatalf("stored=%v: %d children, want %d", stored, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("stored=%v: child %d = %v, want %v", stored, i, got[i], want[i])
			}
		}
		// Remove every other child: survivors keep creation order.
		for i := 0; i < len(want); i += 2 {
			parent.RemoveChild(want[i])
		}
		var still []ddl.Key
		for i := 1; i < len(want); i += 2 {
			still = append(still, want[i])
		}
		got = parent.AppendChildren(nil)
		if len(got) != len(still) {
			t.Fatalf("stored=%v: %d children after removal, want %d", stored, len(got), len(still))
		}
		for i := range still {
			if got[i] != still[i] {
				t.Fatalf("stored=%v: child %d = %v, want %v after removal", stored, i, got[i], still[i])
			}
		}
		// Removing the rest releases all spill storage.
		for _, k := range still {
			parent.RemoveChild(k)
		}
		if parent.NumChildren() != 0 {
			t.Fatalf("stored=%v: %d children left", stored, parent.NumChildren())
		}
		if stored {
			if err := s.CheckLocalInvariants(); err != nil {
				t.Fatalf("stored=%v: %v", stored, err)
			}
			if len(s.freeChunks) != len(s.chunks) {
				t.Fatalf("stored=%v: %d of %d chunks still owned", stored, len(s.chunks)-len(s.freeChunks), len(s.chunks))
			}
		}
	}
}

// A free-standing capability built with spilled children must migrate them
// into the arena on Insert.
func TestSpillMigratesOnInsert(t *testing.T) {
	s := NewStore()
	g := ddl.NewGenerator()
	parent := memCap(g, 1, s.AllocSel(1))
	var want []ddl.Key
	for i := 0; i < 3*chunkKeys; i++ {
		k := g.Next(0, 2, ddl.TypeMem)
		parent.AddChild(k)
		want = append(want, k)
	}
	parent = s.Insert(parent)
	got := parent.AppendChildren(nil)
	if len(got) != len(want) {
		t.Fatalf("%d children after insert, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("child %d = %v, want %v", i, got[i], want[i])
		}
	}
	if err := s.CheckLocalInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHandles(t *testing.T) {
	s := NewStore()
	g := ddl.NewGenerator()
	c := s.Insert(memCap(g, 1, s.AllocSel(1)))
	h := s.HandleOf(c)
	if h == NoHandle {
		t.Fatal("stored cap has no handle")
	}
	if s.Resolve(h) != c {
		t.Fatal("Resolve did not return the stored cap")
	}
	key := c.Key
	s.Remove(key)
	if s.Resolve(h) != nil {
		t.Fatal("stale handle resolved after Remove")
	}
	// Slot reuse must not resurrect the old handle.
	d := s.Insert(memCap(g, 1, s.AllocSel(1)))
	if s.Resolve(h) != nil {
		t.Fatal("stale handle resolved into a reused slot")
	}
	if s.Resolve(s.HandleOf(d)) != d {
		t.Fatal("fresh handle failed")
	}
	if s.HandleOf(nil) != NoHandle {
		t.Fatal("nil cap must have NoHandle")
	}
}

func TestVPECapsSorted(t *testing.T) {
	s := NewStore()
	g := ddl.NewGenerator()
	sels := []Selector{5, 1, 9, 3}
	for _, sel := range sels {
		s.Insert(memCap(g, 7, sel))
	}
	caps := s.VPECaps(7)
	if len(caps) != 4 {
		t.Fatalf("len = %d", len(caps))
	}
	for i := 1; i < len(caps); i++ {
		if caps[i-1].Sel >= caps[i].Sel {
			t.Fatal("VPECaps not sorted by selector")
		}
	}
	if s.VPECaps(99) != nil {
		t.Fatal("unknown VPE returned caps")
	}
	// AllocSel must not collide with the directly chosen selectors.
	if sel := s.AllocSel(7); sel <= 9 {
		t.Fatalf("AllocSel returned colliding selector %d", sel)
	}
}

func TestInvariantViolationDetected(t *testing.T) {
	s := NewStore()
	g := ddl.NewGenerator()
	parent := memCap(g, 1, 1)
	child := memCap(g, 2, 1)
	child.Parent = parent.Key
	// Corrupt: child claims parent, but parent does not list it.
	parent = s.Insert(parent)
	s.Insert(child)
	if err := s.CheckLocalInvariants(); err == nil {
		t.Fatal("invariant violation not detected")
	}
	parent.AddChild(child.Key)
	if err := s.CheckLocalInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestObjectTypes(t *testing.T) {
	objs := map[ddl.Type]Object{
		ddl.TypeVPE:     &VPEObject{},
		ddl.TypeMem:     &MemObject{},
		ddl.TypeSend:    &SendObject{},
		ddl.TypeRecv:    &RecvObject{},
		ddl.TypeService: &ServiceObject{},
		ddl.TypeSession: &SessionObject{},
	}
	for want, obj := range objs {
		if obj.ObjType() != want {
			t.Errorf("%T.ObjType() = %v, want %v", obj, obj.ObjType(), want)
		}
	}
	c := &Capability{}
	if c.Type() != ddl.TypeInvalid {
		t.Error("nil object should give TypeInvalid")
	}
}

// refCap / refModel are a deliberately naive map-based reference model of
// the Store (the pre-slab implementation's shape) for the property test.
type refCap struct {
	key      ddl.Key
	owner    int
	sel      Selector
	parent   ddl.Key
	children []ddl.Key
}

type refModel struct {
	caps  map[ddl.Key]*refCap
	byVPE map[int]map[Selector]*refCap
}

func newRefModel() *refModel {
	return &refModel{caps: make(map[ddl.Key]*refCap), byVPE: make(map[int]map[Selector]*refCap)}
}

func (m *refModel) insert(c *refCap) {
	m.caps[c.key] = c
	vm := m.byVPE[c.owner]
	if vm == nil {
		vm = make(map[Selector]*refCap)
		m.byVPE[c.owner] = vm
	}
	vm[c.sel] = c
}

func (m *refModel) remove(k ddl.Key) {
	c := m.caps[k]
	if c == nil {
		return
	}
	delete(m.caps, k)
	delete(m.byVPE[c.owner], c.sel)
}

func (m *refModel) vpeCaps(vpe int) []*refCap {
	var caps []*refCap
	for _, c := range m.byVPE[vpe] {
		caps = append(caps, c)
	}
	sort.Slice(caps, func(i, j int) bool { return caps[i].sel < caps[j].sel })
	return caps
}

// Property: after any sequence of inserts, child links, revoke-unlinks and
// removes — with and without selector reuse — the slab store agrees with
// the map-based reference model and its local invariants hold.
func TestStoreRandomOpsProperty(t *testing.T) {
	for _, reuse := range []bool{false, true} {
		f := func(seed int64, n uint16) bool {
			rng := rand.New(rand.NewSource(seed))
			s := NewStore()
			s.ReuseSelectors = reuse
			g := ddl.NewGenerator()
			ref := newRefModel()
			var keys []ddl.Key
			ops := int(n)%300 + 20
			for i := 0; i < ops; i++ {
				switch op := rng.Intn(10); {
				case op < 6 || len(keys) == 0: // insert, maybe linked under a parent
					vpe := rng.Intn(4)
					sel := s.AllocSel(vpe)
					c := memCap(g, vpe, sel)
					rc := &refCap{key: c.Key, owner: vpe, sel: sel}
					if len(keys) > 0 && rng.Intn(2) == 0 {
						pk := keys[rng.Intn(len(keys))]
						parent := s.Lookup(pk)
						rp := ref.caps[pk]
						c.Parent = pk
						rc.parent = pk
						parent.AddChild(c.Key)
						rp.children = append(rp.children, c.Key)
					}
					s.Insert(c)
					ref.insert(rc)
					keys = append(keys, c.Key)
				default: // remove with revoke-style unlink from the parent
					i := rng.Intn(len(keys))
					k := keys[i]
					rc := ref.caps[k]
					if rc.parent != 0 {
						if p := s.Lookup(rc.parent); p != nil {
							p.RemoveChild(k)
						}
						if rp := ref.caps[rc.parent]; rp != nil {
							for j, ch := range rp.children {
								if ch == k {
									rp.children = append(rp.children[:j], rp.children[j+1:]...)
									break
								}
							}
						}
					}
					// Orphan the children (their parent link dangles, which
					// the store tolerates: remote parents look the same).
					s.Remove(k)
					ref.remove(k)
					keys = append(keys[:i], keys[i+1:]...)
				}
			}
			if s.Len() != len(ref.caps) {
				return false
			}
			for k, rc := range ref.caps {
				c := s.Lookup(k)
				if c == nil || c.Owner != rc.owner || c.Sel != rc.sel {
					return false
				}
				if s.LookupSel(rc.owner, rc.sel) != c {
					return false
				}
				got := c.AppendChildren(nil)
				if len(got) != len(rc.children) {
					return false
				}
				for i := range got {
					if got[i] != rc.children[i] {
						return false
					}
				}
			}
			for vpe := 0; vpe < 4; vpe++ {
				want := ref.vpeCaps(vpe)
				got := s.VPECaps(vpe)
				if len(got) != len(want) {
					return false
				}
				for i := range want {
					if got[i].Key != want[i].key || got[i].Sel != want[i].sel {
						return false
					}
				}
			}
			return s.CheckLocalInvariants() == nil
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Fatalf("reuse=%v: %v", reuse, err)
		}
	}
}

// Selector reuse after free is opt-in and must hand back freed selectors.
func TestSelectorReuse(t *testing.T) {
	s := NewStore()
	s.ReuseSelectors = true
	g := ddl.NewGenerator()
	a := s.Insert(memCap(g, 1, s.AllocSel(1)))
	b := s.Insert(memCap(g, 1, s.AllocSel(1)))
	if a.Sel != 1 || b.Sel != 2 {
		t.Fatalf("sels = %d, %d", a.Sel, b.Sel)
	}
	s.Remove(a.Key)
	if sel := s.AllocSel(1); sel != 1 {
		t.Fatalf("freed selector not reused: got %d", sel)
	}
	c := memCap(g, 1, 1)
	c = s.Insert(c)
	if s.LookupSel(1, 1) != c {
		t.Fatal("reused selector does not resolve")
	}
	if err := s.CheckLocalInvariants(); err != nil {
		t.Fatal(err)
	}
}
