package cap

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ddl"
	"repro/internal/dtu"
)

func memCap(g *ddl.Generator, vpe int, sel Selector) *Capability {
	return &Capability{
		Key:    g.Next(0, vpe, ddl.TypeMem),
		Owner:  vpe,
		Sel:    sel,
		Object: &MemObject{PE: 1, Off: 0, Size: 4096, Perm: dtu.PermRW},
		Perm:   dtu.PermRW,
	}
}

func TestStoreInsertLookup(t *testing.T) {
	s := NewStore()
	g := ddl.NewGenerator()
	c := memCap(g, 1, s.AllocSel(1))
	s.Insert(c)
	if s.Lookup(c.Key) != c {
		t.Fatal("Lookup by key failed")
	}
	if s.LookupSel(1, c.Sel) != c {
		t.Fatal("Lookup by selector failed")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	if err := s.CheckLocalInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreRemove(t *testing.T) {
	s := NewStore()
	g := ddl.NewGenerator()
	c := memCap(g, 1, s.AllocSel(1))
	s.Insert(c)
	s.Remove(c.Key)
	if s.Lookup(c.Key) != nil || s.LookupSel(1, c.Sel) != nil {
		t.Fatal("capability still visible after Remove")
	}
	s.Remove(c.Key) // removing absent key is a no-op
}

func TestStoreDuplicateKeyPanics(t *testing.T) {
	s := NewStore()
	g := ddl.NewGenerator()
	c := memCap(g, 1, s.AllocSel(1))
	s.Insert(c)
	dup := *c
	dup.Sel = s.AllocSel(1)
	defer func() {
		if recover() == nil {
			t.Error("duplicate key insert did not panic")
		}
	}()
	s.Insert(&dup)
}

func TestStoreSelectorCollisionPanics(t *testing.T) {
	s := NewStore()
	g := ddl.NewGenerator()
	a := memCap(g, 1, 5)
	b := memCap(g, 1, 5)
	s.Insert(a)
	defer func() {
		if recover() == nil {
			t.Error("selector collision did not panic")
		}
	}()
	s.Insert(b)
}

func TestChildLinks(t *testing.T) {
	g := ddl.NewGenerator()
	parent := memCap(g, 1, 1)
	child := memCap(g, 2, 1)
	child.Parent = parent.Key
	parent.AddChild(child.Key)
	if !parent.HasChild(child.Key) {
		t.Fatal("child not linked")
	}
	parent.RemoveChild(child.Key)
	if parent.HasChild(child.Key) {
		t.Fatal("child not removed")
	}
	parent.RemoveChild(child.Key) // absent removal is a no-op
}

func TestDuplicateChildPanics(t *testing.T) {
	g := ddl.NewGenerator()
	parent := memCap(g, 1, 1)
	child := memCap(g, 2, 1)
	parent.AddChild(child.Key)
	defer func() {
		if recover() == nil {
			t.Error("duplicate child did not panic")
		}
	}()
	parent.AddChild(child.Key)
}

func TestVPECapsSorted(t *testing.T) {
	s := NewStore()
	g := ddl.NewGenerator()
	sels := []Selector{5, 1, 9, 3}
	for _, sel := range sels {
		s.Insert(memCap(g, 7, sel))
	}
	caps := s.VPECaps(7)
	if len(caps) != 4 {
		t.Fatalf("len = %d", len(caps))
	}
	for i := 1; i < len(caps); i++ {
		if caps[i-1].Sel >= caps[i].Sel {
			t.Fatal("VPECaps not sorted by selector")
		}
	}
	if s.VPECaps(99) != nil {
		t.Fatal("unknown VPE returned caps")
	}
}

func TestInvariantViolationDetected(t *testing.T) {
	s := NewStore()
	g := ddl.NewGenerator()
	parent := memCap(g, 1, 1)
	child := memCap(g, 2, 1)
	child.Parent = parent.Key
	// Corrupt: child claims parent, but parent does not list it.
	s.Insert(parent)
	s.Insert(child)
	if err := s.CheckLocalInvariants(); err == nil {
		t.Fatal("invariant violation not detected")
	}
	parent.AddChild(child.Key)
	if err := s.CheckLocalInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestObjectTypes(t *testing.T) {
	objs := map[ddl.Type]Object{
		ddl.TypeVPE:     &VPEObject{},
		ddl.TypeMem:     &MemObject{},
		ddl.TypeSend:    &SendObject{},
		ddl.TypeRecv:    &RecvObject{},
		ddl.TypeService: &ServiceObject{},
		ddl.TypeSession: &SessionObject{},
	}
	for want, obj := range objs {
		if obj.ObjType() != want {
			t.Errorf("%T.ObjType() = %v, want %v", obj, obj.ObjType(), want)
		}
	}
	c := &Capability{}
	if c.Type() != ddl.TypeInvalid {
		t.Error("nil object should give TypeInvalid")
	}
}

// Property: after any sequence of inserts and removes, the local invariants
// hold and lookups agree with a reference map.
func TestStoreRandomOpsProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewStore()
		g := ddl.NewGenerator()
		ref := make(map[ddl.Key]*Capability)
		var keys []ddl.Key
		for i := 0; i < int(n); i++ {
			if len(keys) == 0 || rng.Intn(3) > 0 {
				vpe := rng.Intn(4)
				c := memCap(g, vpe, s.AllocSel(vpe))
				s.Insert(c)
				ref[c.Key] = c
				keys = append(keys, c.Key)
			} else {
				i := rng.Intn(len(keys))
				k := keys[i]
				s.Remove(k)
				delete(ref, k)
				keys = append(keys[:i], keys[i+1:]...)
			}
		}
		if s.Len() != len(ref) {
			return false
		}
		for k, c := range ref {
			if s.Lookup(k) != c {
				return false
			}
		}
		return s.CheckLocalInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
