package sim

import (
	"fmt"
	"sync/atomic"
)

// Proc is a cooperative simulation process: a goroutine that runs under
// strict handoff with the engine. At any instant at most one goroutine (the
// engine or exactly one proc) executes, so simulations remain deterministic
// while protocol code can block naturally via Sleep, Park, or Future.Wait.
//
// Procs must only interact with the engine (Schedule, Wake, ...) from within
// their own body or from event handlers; the package is not safe for use
// from foreign OS threads.
type Proc struct {
	eng    *Engine
	name   string
	resume chan struct{}
	parked chan struct{}
	// dead is atomic: it is set on the proc goroutine while unwinding, which
	// on Engine.Kill happens concurrently across all parked procs.
	dead atomic.Bool
}

// killed is the panic value used to unwind a proc when its engine is killed.
type killed struct{}

// Spawn creates a proc running fn, starting at the current virtual time
// (after already-queued events at this timestamp). The name is used in
// diagnostics only.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		eng:    e,
		name:   name,
		resume: make(chan struct{}),
		parked: make(chan struct{}),
	}
	e.procs.Add(1)
	e.unwound.Add(1)
	// The goroutine starts immediately but blocks in waitResume until the
	// scheduled handoff below (or unwinds on Kill, even if that handoff never
	// runs because the engine was killed first).
	go p.top(fn)
	e.Schedule(0, p.step)
	return p
}

// top is the proc goroutine body: wait for the first handoff, run fn,
// then hand control back for the last time.
func (p *Proc) top(fn func(p *Proc)) {
	defer func() {
		p.dead.Store(true)
		p.eng.procs.Add(-1)
		defer p.eng.unwound.Done()
		if r := recover(); r != nil {
			if _, ok := r.(killed); ok {
				// Engine was killed: exit silently. Nobody is waiting in
				// step() anymore, so do not hand back.
				return
			}
			// Real panic in simulation code: hand it to the engine side,
			// which re-raises it on the goroutine driving the simulation —
			// recoverable by callers (e.g. the bench harness captures it as
			// a failed experiment) — instead of crashing the process from
			// this goroutine.
			p.eng.fault = fmt.Errorf("sim: proc %q panicked: %v", p.name, r)
			select {
			case p.parked <- struct{}{}:
			case <-p.eng.shutdown:
			}
			return
		}
		p.parked <- struct{}{}
	}()
	p.waitResume()
	fn(p)
}

// step transfers control to the proc and blocks until it parks or exits.
// It must be called from the engine side (an event handler).
func (p *Proc) step() {
	if p.dead.Load() {
		return
	}
	select {
	case p.resume <- struct{}{}:
	case <-p.eng.shutdown:
		return
	}
	select {
	case <-p.parked:
		if f := p.eng.fault; f != nil {
			p.eng.fault = nil
			panic(f)
		}
	case <-p.eng.shutdown:
	}
}

// waitResume blocks the proc goroutine until the engine hands control over.
func (p *Proc) waitResume() {
	select {
	case <-p.resume:
	case <-p.eng.shutdown:
		panic(killed{})
	}
}

// park hands control back to the engine and blocks until resumed.
func (p *Proc) park() {
	select {
	case p.parked <- struct{}{}:
	case <-p.eng.shutdown:
		panic(killed{})
	}
	p.waitResume()
}

// Name returns the proc's diagnostic name.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this proc runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.Now() }

// Sleep blocks the proc for d cycles of virtual time.
func (p *Proc) Sleep(d Duration) {
	p.eng.Schedule(d, p.step)
	p.park()
}

// Yield parks the proc and schedules it to resume at the same timestamp,
// after other events already queued for this instant. This is a preemption
// point in the sense of the SemperOS kernel design.
func (p *Proc) Yield() { p.Sleep(0) }

// Park blocks the proc until some event handler calls Wake. A proc parked
// this way and never woken leaks until Engine.Kill.
func (p *Proc) Park() { p.park() }

// Wake schedules the proc to resume at the current virtual time. It must be
// called from the engine side or from another proc; waking an unparked or
// dead proc is a bug and will desynchronize the handoff protocol, so callers
// must track parked state (Future and Semaphore do this for you).
func (p *Proc) Wake() {
	p.eng.Schedule(0, p.step)
}

// WakeAfter schedules the proc to resume after d cycles.
func (p *Proc) WakeAfter(d Duration) {
	p.eng.Schedule(d, p.step)
}
