package sim

import (
	"fmt"
	"sync/atomic"
)

// Proc is a cooperative simulation process: a goroutine that runs under
// strict handoff with the engine. At any instant at most one goroutine (the
// engine or exactly one proc) executes — per domain: during isolated rounds
// each domain's worker drives its own procs, which is safe because isolated
// domains share no state — so simulations remain deterministic while
// protocol code can block naturally via Sleep, Park, or Future.Wait.
//
// Procs must only interact with the engine (Schedule, Wake, ...) from within
// their own body or from event handlers; the package is not safe for use
// from foreign OS threads.
//
// The handoff uses plain sends on capacity-1 channels, not selects: because
// of the strict alternation (the engine only resumes a proc that is parked,
// and a proc only parks while the engine waits for it), every send has a
// waiting receiver or a free buffer slot, so no shutdown case is needed in
// the hot path — this keeps the per-event cost to two channel operations.
// Kill-time unwinding is driven from the engine side instead: Kill wakes
// every live proc via its resume channel, and waitResume checks the killed
// flag after every wakeup.
type Proc struct {
	eng  *Engine
	dom  *Domain
	name string
	// fault carries a panic out of the proc goroutine to the engine side,
	// where step re-raises it on the goroutine driving the proc's domain
	// (and therefore recoverable by callers such as the bench harness). It
	// is per-proc, not per-engine, so domains faulting concurrently during
	// isolated rounds never share it.
	fault  error
	resume chan struct{} // capacity 1: engine -> proc "go"
	parked chan struct{} // capacity 1: proc -> engine "back to you"
	// stepFn is p.step bound once at Spawn. Taking the method value inline
	// (e.Schedule(d, p.step)) would allocate a fresh closure on every
	// Sleep/Wake/Yield; binding it once makes the handoff allocation-free.
	stepFn func()
	// dead is atomic: it is set on the proc goroutine while unwinding, which
	// on Engine.Kill happens concurrently across all parked procs.
	dead atomic.Bool
}

// killed is the panic value used to unwind a proc when its engine is killed.
type killed struct{}

// Spawn creates a proc running fn on the currently executing domain (the
// root domain when only one exists), starting at the current virtual time
// (after already-queued events at this timestamp). The name is used in
// diagnostics only. Spawning on a killed engine returns an already-dead proc
// whose body never runs. During isolated rounds use Domain.Spawn.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	if e.cur == nil {
		panic("sim: Engine.Spawn during isolated rounds (use Domain.Spawn)")
	}
	return e.cur.Spawn(name, fn)
}

// Spawn creates a proc running fn on this domain: its handoff events ride
// the domain's lane, and Sleep/Wake/Yield route back to it. During isolated
// rounds it must only be called by the domain's own worker.
func (dm *Domain) Spawn(name string, fn func(p *Proc)) *Proc {
	e := dm.eng
	p := &Proc{
		eng:    e,
		dom:    dm,
		name:   name,
		resume: make(chan struct{}, 1),
		parked: make(chan struct{}, 1),
	}
	p.stepFn = p.step
	if e.killed {
		p.dead.Store(true)
		return p
	}
	dm.procs = append(dm.procs, p)
	e.procs.Add(1)
	e.unwound.Add(1)
	// The goroutine starts immediately but blocks in waitResume until the
	// scheduled handoff below (or until Kill wakes it to unwind, even if
	// that handoff never runs because the engine was killed first).
	go p.top(fn)
	dm.Schedule(0, p.stepFn)
	return p
}

// top is the proc goroutine body: wait for the first handoff, run fn,
// then hand control back for the last time.
func (p *Proc) top(fn func(p *Proc)) {
	defer func() {
		p.dead.Store(true)
		p.eng.procs.Add(-1)
		defer p.eng.unwound.Done()
		if r := recover(); r != nil {
			if _, ok := r.(killed); ok {
				// Engine was killed: exit silently. Nobody is waiting in
				// step() anymore, so do not hand back.
				return
			}
			// Real panic in simulation code: hand it to the engine side,
			// which re-raises it on the goroutine driving the proc's domain
			// — recoverable by callers (e.g. the bench harness captures it
			// as a failed experiment) — instead of crashing the process from
			// this goroutine. A real panic implies the proc was running,
			// so an engine-side step() is blocked on parked.
			p.fault = fmt.Errorf("sim: proc %q panicked: %v", p.name, r)
		}
		p.parked <- struct{}{}
	}()
	p.waitResume()
	fn(p)
}

// step transfers control to the proc and blocks until it parks or exits.
// It must be called from the engine side (an event handler). Events cannot
// run after Kill (the queues are drained and Schedule is a no-op), so the
// proc on the other end is always parked-or-dead, never unwinding.
func (p *Proc) step() {
	if p.dead.Load() {
		return
	}
	p.resume <- struct{}{}
	<-p.parked
	if f := p.fault; f != nil {
		p.fault = nil
		panic(f)
	}
}

// waitResume blocks the proc goroutine until the engine hands control over,
// unwinding instead if the wakeup came from Kill.
func (p *Proc) waitResume() {
	<-p.resume
	if p.eng.killed {
		panic(killed{})
	}
}

// park hands control back to the engine and blocks until resumed. On a
// killed engine it unwinds instead: nobody is in step() to receive the
// parked token, so blocking would deadlock Kill. This path is reachable
// when a proc defer parks again (e.g. a cleanup Sleep) while the proc is
// already unwinding.
func (p *Proc) park() {
	if p.eng.killed {
		panic(killed{})
	}
	p.parked <- struct{}{}
	p.waitResume()
}

// Name returns the proc's diagnostic name.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this proc runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Domain returns the domain this proc runs on.
func (p *Proc) Domain() *Domain { return p.dom }

// Now returns the current virtual time (the proc's domain clock, so it is
// correct during isolated rounds too).
func (p *Proc) Now() Time { return p.dom.Now() }

// Sleep blocks the proc for d cycles of virtual time.
func (p *Proc) Sleep(d Duration) {
	p.dom.Schedule(d, p.stepFn)
	p.park()
}

// Yield parks the proc and schedules it to resume at the same timestamp,
// after other events already queued for this instant. This is a preemption
// point in the sense of the SemperOS kernel design.
func (p *Proc) Yield() { p.Sleep(0) }

// Park blocks the proc until some event handler calls Wake. A proc parked
// this way and never woken leaks until Engine.Kill.
func (p *Proc) Park() { p.park() }

// Wake schedules the proc to resume at the current virtual time, on the
// proc's own domain lane. It must be called from the engine side or from
// another proc; waking an unparked or dead proc is a bug and will
// desynchronize the handoff protocol, so callers must track parked state
// (Future and Semaphore do this for you). During isolated rounds only the
// proc's own domain may wake it.
func (p *Proc) Wake() {
	p.dom.Schedule(0, p.stepFn)
}

// WakeAfter schedules the proc to resume after d cycles.
func (p *Proc) WakeAfter(d Duration) {
	p.dom.Schedule(d, p.stepFn)
}
