package sim

import "context"

// Context-style cancellation for long Runs. Run/RunUntil drain the queue
// unconditionally — fine for experiments that terminate, but a server-loop
// simulation (or a runaway one) runs forever. RunCtx/RunUntilCtx are the
// cancellable variants: they execute events exactly like RunUntil but poll
// the context between events, returning its error once it is done. The
// plain Run/RunUntil loops are untouched, so simulations that do not need
// cancellation pay nothing.
//
// Cancellation composes with Kill: RunUntilCtx only returns between events,
// i.e. on the engine side of the proc handoff, where Kill is legal — so
//
//	if err := eng.RunCtx(ctx); err != nil {
//		eng.Kill() // unwind parked procs, LiveProcs settles to 0
//	}
//
// is the standard teardown for a cancelled simulation. The engine state
// stays valid after a cancelled run; calling RunCtx again (with a live
// context) resumes exactly where it stopped, preserving determinism — the
// executed event sequence is independent of where cancellation struck.

// ctxPollEvents is how many events run between context polls: frequent
// enough that cancellation lands within microseconds of wall time, rare
// enough that the select stays invisible next to event execution.
const ctxPollEvents = 256

// RunCtx executes events until the queue is empty or ctx is done,
// returning nil in the former case and the context's error in the latter.
func (e *Engine) RunCtx(ctx context.Context) error {
	return e.RunUntilCtx(ctx, ^Time(0))
}

// RunUntilCtx executes events with timestamps <= t, advancing virtual
// time, until the queue is empty, the next event is beyond t (both return
// nil), or ctx is done (returns ctx.Err()). The context is checked before
// the first event, so an already-cancelled context executes nothing.
func (e *Engine) RunUntilCtx(ctx context.Context, t Time) error {
	budget := 0
	for {
		if budget == 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			default:
			}
			budget = ctxPollEvents
		}
		budget--
		ev, ok := e.peek()
		if !ok || ev.at > t {
			return nil
		}
		e.runEvent(e.pop())
	}
}
