package sim

import "testing"

func TestProcSleep(t *testing.T) {
	e := NewEngine()
	var wake Time
	e.Spawn("sleeper", func(p *Proc) {
		p.Sleep(100)
		wake = p.Now()
	})
	e.Run()
	if wake != 100 {
		t.Fatalf("woke at %d, want 100", wake)
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("live procs = %d, want 0", e.LiveProcs())
	}
}

func TestProcInterleaving(t *testing.T) {
	e := NewEngine()
	var got []string
	e.Spawn("a", func(p *Proc) {
		got = append(got, "a1")
		p.Sleep(10)
		got = append(got, "a2")
		p.Sleep(20)
		got = append(got, "a3")
	})
	e.Spawn("b", func(p *Proc) {
		got = append(got, "b1")
		p.Sleep(15)
		got = append(got, "b2")
	})
	e.Run()
	want := []string{"a1", "b1", "a2", "b2", "a3"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestProcParkWake(t *testing.T) {
	e := NewEngine()
	var done Time
	p := e.Spawn("parker", func(p *Proc) {
		p.Park()
		done = p.Now()
	})
	e.Schedule(50, func() { p.Wake() })
	e.Run()
	if done != 50 {
		t.Fatalf("resumed at %d, want 50", done)
	}
}

func TestProcYieldRunsAfterQueuedEvents(t *testing.T) {
	e := NewEngine()
	var got []string
	e.Spawn("y", func(p *Proc) {
		e.Schedule(0, func() { got = append(got, "event") })
		p.Yield()
		got = append(got, "proc")
	})
	e.Run()
	if len(got) != 2 || got[0] != "event" || got[1] != "proc" {
		t.Fatalf("got %v, want [event proc]", got)
	}
}

func TestProcKillUnwindsParked(t *testing.T) {
	e := NewEngine()
	e.Spawn("stuck", func(p *Proc) {
		p.Park() // never woken
		t.Error("parked proc resumed unexpectedly")
	})
	e.Run()
	if e.LiveProcs() != 1 {
		t.Fatalf("live procs = %d, want 1 before Kill", e.LiveProcs())
	}
	e.Kill()
	// Kill joins the unwinding goroutine, so the counter is exact afterwards
	// and further runs are no-ops.
	if e.LiveProcs() != 0 {
		t.Fatalf("live procs = %d, want 0 after Kill", e.LiveProcs())
	}
	e.Run()
}

func TestProcDeterministicWithManyProcs(t *testing.T) {
	run := func() []int {
		e := NewEngine()
		var got []int
		for i := 0; i < 50; i++ {
			i := i
			e.Spawn("p", func(p *Proc) {
				p.Sleep(Duration(i % 7))
				got = append(got, i)
				p.Sleep(Duration(13 - i%13))
				got = append(got, 100+i)
			})
		}
		e.Run()
		return got
	}
	a, b := run(), run()
	if len(a) != 100 {
		t.Fatalf("len = %d, want 100", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at index %d", i)
		}
	}
}
