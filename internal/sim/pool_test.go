package sim

import "testing"

// TestEngineResetFreshState: a used engine (events executed, procs spawned
// and left parked, event limit set) comes back from Reset indistinguishable
// from NewEngine.
func TestEngineResetFreshState(t *testing.T) {
	e := NewEngine()
	e.SetEventLimit(1000)
	e.Schedule(10, func() {})
	e.Spawn("parked", func(p *Proc) { p.Park() })
	e.Run()
	if e.LiveProcs() != 1 {
		t.Fatalf("LiveProcs = %d before Reset, want 1", e.LiveProcs())
	}
	e.Schedule(99, func() { t.Error("stale event survived Reset") })

	e.Reset()
	if e.Now() != 0 || e.Executed() != 0 || e.Pending() != 0 || e.LiveProcs() != 0 {
		t.Fatalf("Reset left state: now=%d executed=%d pending=%d procs=%d",
			e.Now(), e.Executed(), e.Pending(), e.LiveProcs())
	}
	// The limit must be cleared: more than 1000 events run fine now.
	ran := 0
	for i := 0; i < 1500; i++ {
		e.Schedule(Duration(i), func() { ran++ })
	}
	e.Run()
	if ran != 1500 {
		t.Fatalf("ran %d events after Reset, want 1500", ran)
	}
	if e.Now() != 1499 {
		t.Fatalf("Now() = %d after Reset+Run, want 1499", e.Now())
	}
}

// TestEngineResetAfterKill: Reset revives an engine that was already
// Killed (the normal harness sequence: task Closes the system, pool Resets
// the engine).
func TestEngineResetAfterKill(t *testing.T) {
	e := NewEngine()
	e.Spawn("server", func(p *Proc) {
		for {
			p.Sleep(5)
		}
	})
	e.RunUntil(50)
	e.Kill()
	e.Reset()
	ran := false
	e.Schedule(1, func() { ran = true })
	e.Run()
	if !ran {
		t.Fatal("engine dead after Kill+Reset")
	}
	done := false
	e.Spawn("again", func(p *Proc) { p.Sleep(3); done = true })
	e.Run()
	if !done || e.LiveProcs() != 0 {
		t.Fatalf("proc after Kill+Reset: done=%v live=%d", done, e.LiveProcs())
	}
}

// TestPoolRecyclesEngines: Put shelves the engine, Get hands it back in
// fresh state; the backing arrays are reused (same engine pointer).
func TestPoolRecyclesEngines(t *testing.T) {
	p := NewPool()
	e1 := p.Get()
	e1.Schedule(1, func() {})
	e1.Run()
	p.Put(e1)
	if p.Idle() != 1 {
		t.Fatalf("Idle = %d after Put, want 1", p.Idle())
	}
	e2 := p.Get()
	if e2 != e1 {
		t.Fatal("pool handed out a different engine than it shelved")
	}
	if e2.Now() != 0 || e2.Pending() != 0 || e2.Executed() != 0 {
		t.Fatalf("recycled engine not fresh: now=%d pending=%d executed=%d",
			e2.Now(), e2.Pending(), e2.Executed())
	}
	if p.Idle() != 0 {
		t.Fatalf("Idle = %d after Get, want 0", p.Idle())
	}
	p.Put(nil) // no-op
	if p.Idle() != 0 {
		t.Fatal("Put(nil) shelved something")
	}
}

// TestPoolPutUnwindsParkedProcs: an experiment that leaks parked procs
// (e.g. server loops) is cleaned up by Put; nothing crosses into the next
// user of the engine.
func TestPoolPutUnwindsParkedProcs(t *testing.T) {
	p := NewPool()
	e := p.Get()
	for i := 0; i < 4; i++ {
		e.Spawn("leak", func(pr *Proc) { pr.Park() })
	}
	e.Run()
	if e.LiveProcs() != 4 {
		t.Fatalf("LiveProcs = %d, want 4", e.LiveProcs())
	}
	p.Put(e)
	if got := p.Get(); got.LiveProcs() != 0 {
		t.Fatalf("recycled engine has %d live procs", got.LiveProcs())
	}
}

// TestPoolReuseDeterminism: the same seeded scenario produces a
// bit-identical execution trace on a fresh engine and on a pooled engine
// that already ran a different workload — recycling must not leak state
// that shifts the (time, seq) order.
func TestPoolReuseDeterminism(t *testing.T) {
	want := driveQueue(NewEngine(), 7)

	p := NewPool()
	dirty := p.Get()
	driveQueue(dirty, 1234) // different workload to dirty the slabs
	dirty.Spawn("noise", func(pr *Proc) { pr.Park() })
	dirty.Run()
	p.Put(dirty)

	got := driveQueue(p.Get(), 7)
	if len(got) != len(want) {
		t.Fatalf("trace lengths differ: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pooled trace diverges at %d: %v vs %v", i, got[i], want[i])
		}
	}
}
