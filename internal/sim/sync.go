package sim

// Future is a single-assignment cell that procs can wait on. It is the
// building block for call/reply protocols: the caller parks on Wait and the
// reply handler fulfills the future via Complete, waking the caller.
//
// A future has a home domain, captured from the engine's executing domain at
// creation (nil while isolated rounds are in flight, which leaves the future
// domain-local). All of its state lives on the home domain: during isolated
// rounds, procs on other domains must use CompleteFrom, and Wait transparently
// relays both its registration and the delivered value through cross-domain
// posts. Each relayed leg costs at least the engine lookahead — one NoC
// latency under the kernel model — which is exactly the cost a cross-kernel
// rendezvous has on real hardware. Outside isolated rounds every operation
// short-circuits to the direct path, so merged-mode execution is unchanged.
type Future[T any] struct {
	eng       *Engine
	dom       *Domain
	done      bool
	val       T
	waiters   []*Proc
	callbacks []func(T)
}

// NewFuture returns an unfulfilled future bound to the engine. Its home
// domain is the engine's currently executing domain (the root between runs).
func NewFuture[T any](e *Engine) *Future[T] {
	return &Future[T]{eng: e, dom: e.cur}
}

// Complete fulfills the future with val and wakes all waiters. Completing a
// future twice panics: replies must be unique. During isolated rounds it must
// run on the future's home domain; procs elsewhere use CompleteFrom.
func (f *Future[T]) Complete(val T) {
	if f.done {
		panic("sim: future completed twice")
	}
	f.done = true
	f.val = val
	for _, w := range f.waiters {
		w.Wake()
	}
	f.waiters = nil
	for _, cb := range f.callbacks {
		cb(val)
	}
	f.callbacks = nil
}

// CompleteFrom fulfills the future from proc p's domain. On the home domain
// (or outside isolated rounds) it is Complete; from another domain during a
// round it relays the completion to the home domain as a cross-domain post,
// one lookahead later.
func (f *Future[T]) CompleteFrom(p *Proc, val T) {
	if f.dom == nil || p.dom == f.dom || !p.dom.inRound {
		f.Complete(val)
		return
	}
	p.dom.Post(f.dom, f.eng.lookahead, func() { f.Complete(val) })
}

// OnComplete registers fn to run when the future is fulfilled (immediately
// if it already is). Callbacks run in the completer's context, so they must
// not block; use Wait from procs instead.
func (f *Future[T]) OnComplete(fn func(T)) {
	if f.done {
		fn(f.val)
		return
	}
	f.callbacks = append(f.callbacks, fn)
}

// Done reports whether the future has been fulfilled.
func (f *Future[T]) Done() bool { return f.done }

// Wait parks the proc until the future is fulfilled and returns the value.
// If the future is already fulfilled it returns immediately. During isolated
// rounds a waiter on a foreign domain registers with the home domain through
// a cross-domain post and receives the value the same way, so each leg of the
// rendezvous costs at least the engine lookahead.
func (f *Future[T]) Wait(p *Proc) T {
	if p == nil {
		// Wait(nil) is the post-run accessor for a future known complete.
		if !f.done {
			panic("sim: Wait(nil) on unfulfilled future")
		}
		return f.val
	}
	if f.dom == nil || p.dom == f.dom || !p.dom.inRound {
		for !f.done {
			f.waiters = append(f.waiters, p)
			p.park()
			// A spurious wake is impossible under the handoff discipline, but a
			// proc can appear in the waiters list only once per park, so loop.
		}
		return f.val
	}
	la := f.eng.lookahead
	home, self := f.dom, p.dom
	var got T
	have := false
	self.Post(home, la, func() {
		f.OnComplete(func(v T) {
			home.Post(self, la, func() {
				got, have = v, true
				p.Wake()
			})
		})
	})
	for !have {
		p.park()
	}
	return got
}

// Semaphore is a counting semaphore with FIFO wakeup, used to model bounded
// resources such as in-flight message slots or DTU credits.
type Semaphore struct {
	eng     *Engine
	count   int
	waiters []*Proc
}

// NewSemaphore returns a semaphore with the given initial count.
func NewSemaphore(e *Engine, count int) *Semaphore {
	return &Semaphore{eng: e, count: count}
}

// Count returns the currently available units.
func (s *Semaphore) Count() int { return s.count }

// Waiting returns the number of procs parked in Acquire.
func (s *Semaphore) Waiting() int { return len(s.waiters) }

// TryAcquire takes one unit if available and reports success.
func (s *Semaphore) TryAcquire() bool {
	if s.count > 0 {
		s.count--
		return true
	}
	return false
}

// Acquire takes one unit, parking the proc until one is available.
// Wakeup order is FIFO.
func (s *Semaphore) Acquire(p *Proc) {
	for s.count == 0 {
		s.waiters = append(s.waiters, p)
		p.park()
	}
	s.count--
}

// Release returns one unit and wakes the longest-waiting proc, if any.
func (s *Semaphore) Release() {
	s.count++
	if len(s.waiters) > 0 {
		w := s.waiters[0]
		s.waiters = s.waiters[1:]
		w.Wake()
	}
}

// Queue is an unbounded FIFO that procs can block on. It is the simulation
// analogue of a Go channel: Push never blocks, Pop parks until an element is
// available.
type Queue[T any] struct {
	eng     *Engine
	items   []T
	waiters []*Proc
}

// NewQueue returns an empty queue bound to the engine.
func NewQueue[T any](e *Engine) *Queue[T] {
	return &Queue[T]{eng: e}
}

// Len returns the number of queued elements.
func (q *Queue[T]) Len() int { return len(q.items) }

// Waiters returns the number of procs parked in Pop (idle consumers).
func (q *Queue[T]) Waiters() int { return len(q.waiters) }

// Push appends an element and wakes the longest-waiting consumer, if any.
// It may be called from event handlers or procs.
func (q *Queue[T]) Push(v T) {
	q.items = append(q.items, v)
	if len(q.waiters) > 0 {
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		w.Wake()
	}
}

// TryPop removes and returns the head element if present.
func (q *Queue[T]) TryPop() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v, true
}

// Pop removes and returns the head element, parking the proc until one is
// available.
func (q *Queue[T]) Pop(p *Proc) T {
	for len(q.items) == 0 {
		q.waiters = append(q.waiters, p)
		p.park()
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v
}

// WaitGroup tracks a set of outstanding operations; procs can park until the
// count drops to zero. It mirrors sync.WaitGroup for simulated time.
//
// The zero value is domain-local: all procs touching it must share a domain.
// A WaitGroup shared across isolated domains must be bound to a home domain
// first (Bind); DoneFrom and Wait then relay cross-domain operations through
// posts, each leg costing at least the engine lookahead, exactly like Future.
type WaitGroup struct {
	eng     *Engine
	dom     *Domain
	count   int
	waiters []*Proc
	remote  []*wgRemote
}

// wgRemote is one waiter parked on a foreign domain: the wake is posted back
// to its domain, which sets fired and resumes the proc.
type wgRemote struct {
	p     *Proc
	fired bool
}

// Bind sets the waitgroup's home domain to the engine's currently executing
// domain (the root between runs), enabling cross-domain DoneFrom/Wait during
// isolated rounds. Call it before the simulation runs; an unbound WaitGroup
// keeps the plain domain-local behavior.
func (wg *WaitGroup) Bind(e *Engine) {
	wg.eng = e
	wg.dom = e.cur
}

// Add increments the outstanding count by n (n may be negative; Done is
// Add(-1)). When the count reaches zero all waiters are woken. During
// isolated rounds it must run on the home domain; procs elsewhere use
// DoneFrom.
func (wg *WaitGroup) Add(n int) {
	wg.count += n
	if wg.count < 0 {
		panic("sim: negative WaitGroup count")
	}
	if wg.count == 0 {
		for _, w := range wg.waiters {
			w.Wake()
		}
		wg.waiters = nil
		for _, rw := range wg.remote {
			rw := rw
			wg.dom.Post(rw.p.dom, wg.eng.lookahead, func() {
				rw.fired = true
				rw.p.Wake()
			})
		}
		wg.remote = nil
	}
}

// Done decrements the outstanding count.
func (wg *WaitGroup) Done() { wg.Add(-1) }

// DoneFrom decrements the count from proc p's domain. On the home domain (or
// outside isolated rounds) it is Done; from another domain during a round it
// relays the decrement to the home domain as a cross-domain post.
func (wg *WaitGroup) DoneFrom(p *Proc) {
	if wg.dom == nil || p.dom == wg.dom || !p.dom.inRound {
		wg.Add(-1)
		return
	}
	p.dom.Post(wg.dom, wg.eng.lookahead, func() { wg.Add(-1) })
}

// Count returns the current outstanding count.
func (wg *WaitGroup) Count() int { return wg.count }

// Wait parks the proc until the count is zero. During isolated rounds a
// waiter on a foreign domain registers with the home domain through a
// cross-domain post and is woken the same way.
func (wg *WaitGroup) Wait(p *Proc) {
	if wg.dom == nil || p.dom == wg.dom || !p.dom.inRound {
		for wg.count > 0 {
			wg.waiters = append(wg.waiters, p)
			p.park()
		}
		return
	}
	la := wg.eng.lookahead
	home, self := wg.dom, p.dom
	rw := &wgRemote{p: p}
	self.Post(home, la, func() {
		if wg.count == 0 {
			home.Post(self, la, func() {
				rw.fired = true
				p.Wake()
			})
			return
		}
		wg.remote = append(wg.remote, rw)
	})
	for !rw.fired {
		p.park()
	}
}
