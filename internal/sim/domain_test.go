package sim

import (
	"strings"
	"testing"
)

// buildIsolated wires a D-domain engine for isolated rounds with the given
// lookahead and worker bound.
func buildIsolated(domains int, lookahead Duration, workers int) (*Engine, []*Domain) {
	e := NewEngine()
	doms := make([]*Domain, domains)
	for i := 1; i < domains; i++ {
		doms[i] = e.NewDomain()
	}
	doms[0] = e.Domain(0)
	e.SetIsolated(true)
	e.SetLookahead(lookahead)
	e.SetWorkers(workers)
	return e, doms
}

// ringTrace runs a deterministic multi-domain workload — every domain runs a
// local event cascade and posts tokens around the ring — and returns the
// per-domain execution traces as (local time, token) pairs. Per-domain
// traces are single-writer during rounds, so collecting them is race-free.
func ringTrace(domains, workers int, hops int) [][][2]uint64 {
	const L = Duration(7)
	e, doms := buildIsolated(domains, L, workers)
	traces := make([][][2]uint64, domains)
	var hop func(dst int, token uint64)
	hop = func(dst int, token uint64) {
		dm := doms[dst]
		traces[dst] = append(traces[dst], [2]uint64{uint64(dm.Now()), token})
		// Local cascade: a same-instant lane event plus a short heap event,
		// exercising both lanes against the domain-local clock.
		dm.Schedule(0, func() {
			traces[dst] = append(traces[dst], [2]uint64{uint64(dm.Now()), token | 1<<32})
		})
		dm.Schedule(2, func() {
			traces[dst] = append(traces[dst], [2]uint64{uint64(dm.Now()), token | 2<<32})
		})
		if int(token) < hops {
			dm.Post(doms[(dst+1)%domains], L, func() { hop((dst+1)%domains, token+1) })
		}
	}
	for d := range doms {
		d := d
		doms[d].Schedule(Duration(d+1), func() { hop(d, 0) })
	}
	e.Run()
	return traces
}

// TestIsolatedRoundsDeterminism: the isolated-rounds acceptance criterion —
// the execution traces are identical at every worker count (1, 2, 4),
// including the domain-local timestamps.
func TestIsolatedRoundsDeterminism(t *testing.T) {
	for _, domains := range []int{2, 4} {
		base := ringTrace(domains, 1, 40)
		for _, workers := range []int{2, 4} {
			got := ringTrace(domains, workers, 40)
			for d := range base {
				if len(got[d]) != len(base[d]) {
					t.Fatalf("domains %d workers %d: domain %d trace length %d, want %d",
						domains, workers, d, len(got[d]), len(base[d]))
				}
				for i := range base[d] {
					if got[d][i] != base[d][i] {
						t.Fatalf("domains %d workers %d: domain %d diverges at %d: %v vs %v",
							domains, workers, d, i, got[d][i], base[d][i])
					}
				}
			}
		}
	}
}

// TestIsolatedMatchesMerged: the same ring workload executed merged (isolated
// unset — the order-preserving loop) produces the same per-domain event
// counts, and Pending drains to zero either way.
func TestIsolatedMatchesMerged(t *testing.T) {
	const L = Duration(7)
	run := func(isolated bool) []uint64 {
		e, doms := buildIsolated(3, L, 2)
		e.SetIsolated(isolated)
		var hop func(dst int, token int)
		hop = func(dst int, token int) {
			if token < 30 {
				doms[dst].Post(doms[(dst+1)%3], L, func() { hop((dst+1)%3, token+1) })
			}
		}
		doms[0].Schedule(1, func() { hop(0, 0) })
		e.Run()
		if e.Pending() != 0 {
			t.Fatalf("isolated=%v: %d events left pending", isolated, e.Pending())
		}
		counts := make([]uint64, 3)
		for i, st := range e.DomainStats() {
			counts[i] = st.Events
		}
		return counts
	}
	iso, merged := run(true), run(false)
	for d := range iso {
		if iso[d] != merged[d] {
			t.Fatalf("domain %d executed %d events isolated, %d merged", d, iso[d], merged[d])
		}
	}
}

// TestIsolatedProcs: procs spawned on isolated domains (Domain.Spawn) sleep
// and finish under concurrent rounds, with the domain-local clock visible
// through Proc.Now.
func TestIsolatedProcs(t *testing.T) {
	e, doms := buildIsolated(4, 5, 4)
	ends := make([]Time, 4)
	for d := range doms {
		d := d
		doms[d].Spawn("p", func(p *Proc) {
			for i := 0; i < 10; i++ {
				p.Sleep(3)
			}
			ends[d] = p.Now()
		})
	}
	e.Run()
	for d, end := range ends {
		if end != 30 {
			t.Fatalf("domain %d proc finished at %d, want 30", d, end)
		}
	}
	if e.Now() < 30 {
		t.Fatalf("global clock %d did not advance past the rounds", e.Now())
	}
}

// TestPostBelowLookaheadPanics: a cross-domain post with a delay below the
// lookahead would break the horizon-safety argument, so it must panic (the
// fault surfaces from Run on the driving goroutine).
func TestPostBelowLookaheadPanics(t *testing.T) {
	e, doms := buildIsolated(2, 10, 2)
	doms[0].Schedule(1, func() {
		doms[0].Post(doms[1], 9, func() {})
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("post below the lookahead did not panic")
		}
		if msg, ok := r.(error); !ok || !strings.Contains(msg.Error(), "below the lookahead") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	e.Run()
}

// TestEngineScheduleDuringRoundsPanics: context-free Engine.Schedule has no
// defined lane while domains run concurrently; it must fail loudly instead
// of corrupting a lane.
func TestEngineScheduleDuringRoundsPanics(t *testing.T) {
	e, doms := buildIsolated(2, 5, 2)
	doms[1].Schedule(1, func() {
		e.Schedule(1, func() {})
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Engine.Schedule during isolated rounds did not panic")
		}
		if err, ok := r.(error); !ok || !strings.Contains(err.Error(), "isolated rounds") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	e.Run()
}

// TestDomainStats: event counts are exact and deterministic; busy/idle cover
// the run loop's wallclock without going negative.
func TestDomainStats(t *testing.T) {
	e, doms := buildIsolated(2, 5, 2)
	for i := 0; i < 8; i++ {
		doms[i%2].Schedule(Duration(i+1), func() {})
	}
	e.Run()
	st := e.DomainStats()
	if len(st) != 2 {
		t.Fatalf("DomainStats has %d entries, want 2", len(st))
	}
	if st[0].Events != 4 || st[1].Events != 4 {
		t.Fatalf("event counts = %d/%d, want 4/4", st[0].Events, st[1].Events)
	}
	for d, s := range st {
		if s.Busy < 0 || s.Idle < 0 {
			t.Fatalf("domain %d has negative wallclock: %+v", d, s)
		}
	}
	if NewEngine().DomainStats() != nil {
		t.Fatal("sequential engine reports DomainStats")
	}
}

// TestResetDropsDomains: a recycled engine starts sequential again — extra
// domains gone, the root lane usable, Schedule back on the fast path.
func TestResetDropsDomains(t *testing.T) {
	e, doms := buildIsolated(3, 5, 2)
	doms[2].Post(doms[0], 5, func() {})
	doms[1].Schedule(3, func() {})
	e.Reset()
	if e.Domains() != 1 {
		t.Fatalf("Domains() = %d after Reset, want 1", e.Domains())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d after Reset", e.Pending())
	}
	ran := false
	e.Schedule(2, func() { ran = true })
	e.Run()
	if !ran || e.Now() != 2 {
		t.Fatalf("recycled engine broken: ran=%v now=%d", ran, e.Now())
	}
}
