package sim

import (
	"fmt"
	"time"
)

// Conservative parallel discrete-event simulation (PDES).
//
// The engine's pending-event store is partitioned into Domains, each with its
// own heap + same-instant FIFO lane (the two-lane layout documented in
// engine.go). A fresh engine has exactly one domain — the root — and all the
// sequential entry points run on it unchanged. NewDomain adds partitions;
// from then on the engine runs in one of two modes:
//
//   - Merged (the default, and the only mode RunUntil/Step/RunCtx use): the
//     run loop pops the globally minimal (time, seq) event across all domain
//     lanes. Sequence numbers stay engine-global, so the execution order —
//     and every simulated metric — is byte-identical to the single-lane
//     engine no matter how events are distributed over domains. What the
//     partitioning buys here is attribution: per-domain busy/idle wallclock
//     and event counts (DomainStats), i.e. the load-balance picture a truly
//     concurrent run would see.
//
//   - Isolated rounds (Run, when SetIsolated(true) and a positive lookahead
//     are configured): the classic conservative-PDES execution. Domains must
//     be mutually isolated — a domain's events may only touch that domain's
//     state and procs — except for Post, which crosses domains through
//     single-writer mailboxes. Run proceeds in barrier-synchronous rounds on
//     a bounded worker pool: each round computes the horizon
//
//	horizon = min(next pending timestamp over all domains) + lookahead
//
//     dispatches every domain with events below the horizon to a worker,
//     waits for all of them (the barrier), then delivers the posts buffered
//     during the round into the destination lanes.
//
// Why isolated rounds are deterministic at any worker count: within a round
// a domain executes only its own lane, in (time, domain-local seq) order —
// no other goroutine touches it. Cross-domain posts are appended to
// inbox[src] by the source domain's worker (single writer per slot) and
// drained at the barrier in (source id, append position) order, receiving
// fresh destination sequence numbers — an order independent of which worker
// ran what when. Worker count therefore changes wallclock only.
//
// Why the lookahead makes the horizon safe: a post created at source time
// τ carries delay d >= lookahead, so it lands at τ + d >= gmin + lookahead =
// horizon (every event executed this round has τ >= gmin), strictly after
// any timestamp a destination can reach within the round. Delivering posts
// at the barrier can therefore never schedule into a domain's past. Posts
// with d < lookahead panic.

// Domain is one partition of the engine's event store: a heap + FIFO lane
// pair, the procs spawned into it, and — during isolated rounds — a local
// clock and per-source mailboxes. Domain 0 (the root) always exists; see
// Engine.NewDomain.
type Domain struct {
	eng      *Engine
	id       int
	heap     []event
	fifo     []event
	fifoHead int
	// procs registers this domain's spawned procs so Kill can wake them to
	// unwind. Single-writer during isolated rounds: only the domain's own
	// worker spawns here.
	procs []*Proc
	// Isolated-rounds state: the domain-local clock and sequence counter.
	// Merged-mode execution uses the engine-global now/seq instead.
	rnow    Time
	rseq    uint64
	inRound bool
	// inbox[src] buffers cross-domain posts from domain src during a round;
	// src's worker is the only writer until the barrier drains it.
	inbox [][]post
	// postedOut counts cross-domain posts this domain made in the current
	// round (single writer: the domain's own worker). The barrier sums the
	// counters to skip the inbox drain on post-free rounds — the common case.
	postedOut int
	// Wallclock accounting, filled by the multi-domain run loops.
	busy   time.Duration
	events uint64
}

// post is one cross-domain event in a mailbox: the absolute delivery time
// and the callback. The destination sequence number is assigned at the
// barrier, when the mailbox is drained.
type post struct {
	at Time
	fn func()
}

// DomainStat is one domain's share of a multi-domain run: wallclock spent
// executing its events (Busy), wallclock the run spent elsewhere (Idle — in
// merged mode the serialization cost a concurrent run would reclaim, in
// isolated mode barrier wait), and the events executed. Wallclock quantities
// vary run to run; Events is deterministic.
type DomainStat struct {
	Busy   time.Duration
	Idle   time.Duration
	Events uint64
}

// NewDomain adds a partition and returns its handle. The root domain (id 0)
// exists from the start; the first NewDomain call flips the engine from the
// sequential fast path to the merged multi-domain run loop. Must be called
// from the engine side, not during a run.
func (e *Engine) NewDomain() *Domain {
	if e.doms == nil {
		e.doms = append(e.doms, &e.root)
	}
	dm := &Domain{eng: e, id: len(e.doms)}
	e.doms = append(e.doms, dm)
	return dm
}

// Domains returns the number of domains (1 for a fresh engine).
func (e *Engine) Domains() int {
	if e.doms == nil {
		return 1
	}
	return len(e.doms)
}

// Domain returns domain i; Domain(0) is the root and always exists.
func (e *Engine) Domain(i int) *Domain {
	if e.doms == nil {
		if i != 0 {
			panic(fmt.Sprintf("sim: domain %d does not exist", i))
		}
		return &e.root
	}
	return e.doms[i]
}

// SetWorkers bounds the worker pool of isolated-rounds runs (clamped to the
// domain count at Run; values below 1 mean 1). Merged-mode execution is
// inherently serial, so workers do not affect it.
func (e *Engine) SetWorkers(n int) { e.workers = n }

// SetLookahead sets the minimum virtual-time distance of cross-domain posts
// and the horizon slack of isolated rounds. A NoC-backed model uses the
// network's minimum cross-PE latency (noc.Network.MinLatency).
func (e *Engine) SetLookahead(d Duration) { e.lookahead = d }

// Lookahead returns the configured lookahead bound.
func (e *Engine) Lookahead() Duration { return e.lookahead }

// SetIsolated declares that domains are mutually isolated (no shared state,
// no cross-domain access except Post), which lets Run advance them
// concurrently in barrier-synchronous rounds. With isolated unset — or with
// one domain, or zero lookahead — Run uses the order-preserving merged loop.
func (e *Engine) SetIsolated(iso bool) { e.isolated = iso }

// DomainStats returns per-domain busy/idle wallclock and event counts of the
// multi-domain run loops, indexed by domain id. It returns nil while the
// engine is on the sequential fast path (no partitioning, nothing measured).
func (e *Engine) DomainStats() []DomainStat {
	if e.doms == nil {
		return nil
	}
	out := make([]DomainStat, len(e.doms))
	for i, dm := range e.doms {
		idle := e.runWall - dm.busy
		if idle < 0 {
			idle = 0
		}
		out[i] = DomainStat{Busy: dm.busy, Idle: idle, Events: dm.events}
	}
	return out
}

// ID returns the domain's id (its index in the engine).
func (dm *Domain) ID() int { return dm.id }

// Now returns the domain's current virtual time: the domain-local clock
// while executing an isolated round, the engine-global clock otherwise.
func (dm *Domain) Now() Time {
	if dm.inRound {
		return dm.rnow
	}
	return dm.eng.now
}

// Schedule runs fn after d cycles on this domain's lane. Outside isolated
// rounds it uses the engine-global clock and sequence counter, so merged
// execution keeps the exact (time, seq) total order; inside a round it uses
// the domain-local clocks and must only be called by the domain's own
// worker (its executing events and procs).
func (dm *Domain) Schedule(d Duration, fn func()) {
	e := dm.eng
	if e.killed {
		return
	}
	if dm.inRound {
		dm.rseq++
		if d == 0 {
			dm.fifo = append(dm.fifo, event{at: dm.rnow, seq: dm.rseq, fn: fn})
			return
		}
		dm.heapPush(event{at: dm.rnow + d, seq: dm.rseq, fn: fn})
		return
	}
	e.seq++
	if d == 0 {
		dm.fifo = append(dm.fifo, event{at: e.now, seq: e.seq, fn: fn})
		return
	}
	dm.heapPush(event{at: e.now + d, seq: e.seq, fn: fn})
}

// At runs fn at absolute time t on this domain's lane. Scheduling in the
// past panics, like Engine.At.
func (dm *Domain) At(t Time, fn func()) {
	now := dm.Now()
	if t < now {
		panic(fmt.Sprintf("sim: At(%d) is in the past (now=%d)", t, now))
	}
	dm.Schedule(t-now, fn)
}

// Post schedules fn on domain dst after d cycles. Outside isolated rounds it
// is a plain cross-lane Schedule (merged execution orders it exactly).
// During a round it appends to the single-writer mailbox inbox[dm.id] of
// dst, delivered at the barrier; d must be at least the lookahead, or the
// horizon could not have been safe — violating posts panic.
func (dm *Domain) Post(dst *Domain, d Duration, fn func()) {
	e := dm.eng
	if e.killed {
		return
	}
	if dst == dm || !dm.inRound {
		dst.Schedule(d, fn)
		return
	}
	if d < e.lookahead {
		panic(fmt.Sprintf("sim: cross-domain post with delay %d below the lookahead %d", d, e.lookahead))
	}
	dm.postedOut++
	dst.inbox[dm.id] = append(dst.inbox[dm.id], post{at: dm.rnow + d, fn: fn})
}

// heapPush inserts ev into the domain's 4-ary heap (sift-up with a hole, one
// final store instead of swaps).
func (dm *Domain) heapPush(ev event) {
	h := append(dm.heap, ev)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !eventLess(&ev, &h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = ev
	dm.heap = h
}

// heapPop removes and returns the heap minimum (sift-down with a hole).
func (dm *Domain) heapPop() event {
	h := dm.heap
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = event{} // release the closure
	h = h[:n]
	dm.heap = h
	if n > 0 {
		i := 0
		for {
			c := 4*i + 1
			if c >= n {
				break
			}
			end := c + 4
			if end > n {
				end = n
			}
			min := c
			for j := c + 1; j < end; j++ {
				if eventLess(&h[j], &h[min]) {
					min = j
				}
			}
			if !eventLess(&h[min], &last) {
				break
			}
			h[i] = h[min]
			i = min
		}
		h[i] = last
	}
	return top
}

// peek returns the domain's next event in (at, seq) order without removing
// it. now is the clock the lane runs against (engine-global in merged mode,
// domain-local in a round): lane events carry at == now, and a heap event at
// the same instant has a lower seq — it wins (see the Engine doc).
func (dm *Domain) peek(now Time) (event, bool) {
	if dm.fifoHead < len(dm.fifo) {
		if len(dm.heap) > 0 && dm.heap[0].at == now {
			return dm.heap[0], true
		}
		return dm.fifo[dm.fifoHead], true
	}
	if len(dm.heap) > 0 {
		return dm.heap[0], true
	}
	return event{}, false
}

// pop removes and returns the domain's next event in (at, seq) order.
func (dm *Domain) pop(now Time) event {
	if dm.fifoHead < len(dm.fifo) {
		if len(dm.heap) > 0 && dm.heap[0].at == now {
			return dm.heapPop()
		}
		ev := dm.fifo[dm.fifoHead]
		dm.fifo[dm.fifoHead].fn = nil // release the closure
		dm.fifoHead++
		if dm.fifoHead == len(dm.fifo) {
			// Lane drained: rewind so the backing array is reused.
			dm.fifo = dm.fifo[:0]
			dm.fifoHead = 0
		}
		return ev
	}
	return dm.heapPop()
}

// pending returns the number of queued events, mailboxes included.
func (dm *Domain) pending() int {
	n := len(dm.heap) + len(dm.fifo) - dm.fifoHead
	for _, box := range dm.inbox {
		n += len(box)
	}
	return n
}

// drain empties the lanes and mailboxes, releasing closures but keeping the
// backing arrays for pooled reuse.
func (dm *Domain) drain() {
	clear(dm.heap)
	dm.heap = dm.heap[:0]
	clear(dm.fifo)
	dm.fifo = dm.fifo[:0]
	dm.fifoHead = 0
	for i := range dm.inbox {
		clear(dm.inbox[i])
		dm.inbox[i] = dm.inbox[i][:0]
	}
}

// killProcs wakes this domain's live procs so they unwind (see Engine.Kill).
func (dm *Domain) killProcs() {
	for i, p := range dm.procs {
		if !p.dead.Load() {
			p.resume <- struct{}{}
		}
		dm.procs[i] = nil
	}
	dm.procs = dm.procs[:0]
}

// minDomain returns the domain holding the globally minimal (at, seq) event,
// or nil if every lane is empty — the merged run loop's selector.
func (e *Engine) minDomain() *Domain {
	var best *Domain
	var bev event
	for _, dm := range e.doms {
		ev, ok := dm.peek(e.now)
		if !ok {
			continue
		}
		if best == nil || eventLess(&ev, &bev) {
			best, bev = dm, ev
		}
	}
	return best
}

// runMerged is the multi-domain order-preserving run loop: pop the global
// (at, seq) minimum across lanes, execute it with e.cur set to its domain
// (so context-free Schedule calls land on the executing domain's lane), and
// attribute wallclock to domains at switch points.
func (e *Engine) runMerged(t Time) {
	start := time.Now()
	last := e.cur
	mark := start
	for {
		dm := e.minDomain()
		if dm == nil {
			break
		}
		ev, _ := dm.peek(e.now)
		if ev.at > t {
			break
		}
		if dm != last {
			now := time.Now()
			last.busy += now.Sub(mark)
			mark, last = now, dm
		}
		e.cur = dm
		dm.events++
		e.runEvent(dm.pop(e.now))
	}
	end := time.Now()
	last.busy += end.Sub(mark)
	e.runWall += end.Sub(start)
}

// roundResult is one worker's report for one dispatched round slice.
type roundResult struct {
	dom      *Domain
	executed uint64
	fault    error
}

// runIsolated executes the isolated domains to completion in
// barrier-synchronous rounds on a bounded worker pool. See the package
// comment at the top of this file for the horizon and determinism argument.
func (e *Engine) runIsolated() {
	D := len(e.doms)
	workers := min(e.workers, D)
	if workers < 1 {
		workers = 1
	}
	for _, dm := range e.doms {
		dm.rnow = e.now
		dm.rseq = e.seq
		for len(dm.inbox) < D {
			dm.inbox = append(dm.inbox, nil)
		}
	}
	var work chan *Domain
	var done chan roundResult
	if workers > 1 {
		work = make(chan *Domain, D)
		done = make(chan roundResult, D)
		for w := 0; w < workers; w++ {
			go e.domainWorker(work, done)
		}
		defer close(work)
	}
	// Engine-level scheduling has no defined lane while domains run
	// concurrently; a nil cur turns it into a contract-violation panic.
	e.cur = nil
	defer func() { e.cur = &e.root }()
	start := time.Now()
	defer func() { e.runWall += time.Since(start) }()
	// mark is the single-worker path's running clock: one time.Now per round
	// slice (the slice plus the preceding barrier bookkeeping all attribute
	// to the executing domain, like merged-mode switch-point accounting).
	mark := start
	// nextAt caches each domain's next pending timestamp for the round
	// (sentinel noEvent: empty), so the gmin scan and the dispatch scan
	// share one peek pass.
	const noEvent = ^Time(0)
	nextAt := make([]Time, D)
	for {
		// Deliver the previous round's posts: source-major, append order,
		// fresh destination seqs — deterministic regardless of workers. The
		// lookahead guarantees at > dst.rnow, so these are heap events. The
		// per-source counters let post-free rounds skip the D² drain.
		posted := 0
		for _, src := range e.doms {
			posted += src.postedOut
			src.postedOut = 0
		}
		if posted > 0 {
			for _, dst := range e.doms {
				for src := range dst.inbox {
					box := dst.inbox[src]
					for i := range box {
						dst.rseq++
						dst.heapPush(event{at: box[i].at, seq: dst.rseq, fn: box[i].fn})
						box[i].fn = nil
					}
					dst.inbox[src] = box[:0]
				}
			}
		}
		gmin, any := Time(0), false
		for i, dm := range e.doms {
			ev, ok := dm.peek(dm.rnow)
			if !ok {
				nextAt[i] = noEvent
				continue
			}
			nextAt[i] = ev.at
			if !any || ev.at < gmin {
				gmin, any = ev.at, true
			}
		}
		if !any {
			break
		}
		e.horizon = gmin + e.lookahead
		// Faults surface on the driving goroutine after the barrier, so they
		// are recoverable by callers and deterministic: when several domains
		// fault in one round, the lowest domain id wins. The single-worker
		// path runs the round slices inline — same domain order, same
		// whole-round-before-panic semantics — skipping the channel handoffs
		// (and, on few cores, their context switches) entirely.
		var fault error
		faultDom := -1
		if workers == 1 {
			for i, dm := range e.doms {
				if at := nextAt[i]; at < e.horizon {
					executed, f := dm.runRound(e.horizon)
					now := time.Now()
					dm.busy += now.Sub(mark)
					mark = now
					e.executed += executed
					if f != nil && faultDom < 0 {
						fault, faultDom = f, dm.id
					}
				}
			}
		} else {
			n := 0
			for i, dm := range e.doms {
				if at := nextAt[i]; at < e.horizon {
					n++
					work <- dm
				}
			}
			for i := 0; i < n; i++ {
				r := <-done
				e.executed += r.executed
				if r.fault != nil && (faultDom < 0 || r.dom.id < faultDom) {
					fault, faultDom = r.fault, r.dom.id
				}
			}
		}
		if fault != nil {
			panic(fault)
		}
		if e.limit != 0 && e.executed > e.limit {
			panic(fmt.Sprintf("sim: event limit %d exceeded (possible livelock)", e.limit))
		}
	}
	// Advance the global clocks past everything the rounds executed, so a
	// later merged run (or Kill-time diagnostics) sees consistent time.
	for _, dm := range e.doms {
		if dm.rnow > e.now {
			e.now = dm.rnow
		}
		if dm.rseq > e.seq {
			e.seq = dm.rseq
		}
	}
}

// domainWorker executes round slices handed to it until the work channel
// closes, measuring per-domain busy wallclock.
func (e *Engine) domainWorker(work chan *Domain, done chan roundResult) {
	for dm := range work {
		r := roundResult{dom: dm}
		start := time.Now()
		r.executed, r.fault = dm.runRound(e.horizon)
		dm.busy += time.Since(start)
		done <- r
	}
}

// runRound executes this domain's events with timestamps strictly below the
// horizon, advancing the domain-local clock. A panic (including a proc fault
// re-raised by step) is captured and reported to the driver.
func (dm *Domain) runRound(horizon Time) (n uint64, fault error) {
	defer func() {
		dm.inRound = false
		dm.events += n
		if r := recover(); r != nil {
			if err, ok := r.(error); ok {
				fault = fmt.Errorf("sim: domain %d: %w", dm.id, err)
			} else {
				fault = fmt.Errorf("sim: domain %d: %v", dm.id, r)
			}
		}
	}()
	dm.inRound = true
	for {
		ev, ok := dm.peek(dm.rnow)
		if !ok || ev.at >= horizon {
			return n, nil
		}
		if ev.at < dm.rnow {
			panic("sim: domain event queue went backwards")
		}
		ev = dm.pop(dm.rnow)
		dm.rnow = ev.at
		ev.fn()
		n++
	}
}
