package sim

import "sync"

// Reset returns a used engine to the state of a fresh NewEngine while keeping
// the event-queue backing arrays, so a recycled engine schedules into
// already-grown slabs instead of re-growing them from scratch.
//
// Reset first Kills the engine (idempotent), so any still-parked procs unwind
// and their goroutines are joined; afterwards the engine is live again: time,
// sequence and event counters are zero, the event limit is cleared, and
// Schedule/Spawn work as on a new engine.
//
// Like Kill, Reset must be called from the engine side, never from within a
// Proc body.
func (e *Engine) Reset() {
	e.Kill()
	e.drain() // queues are already empty; keeps the invariant explicit
	e.now = 0
	e.seq = 0
	e.executed = 0
	e.limit = 0
	e.killed = false
	// Drop the partitioning: a recycled engine starts sequential again (the
	// next experiment wires its own domains). Only the root's grown slabs
	// survive, which is where the reuse win lives anyway.
	e.doms = nil
	e.workers, e.lookahead, e.isolated, e.horizon = 0, 0, false, 0
	e.runWall = 0
	e.root.rnow, e.root.rseq, e.root.busy, e.root.events = 0, 0, 0, 0
	e.root.inbox = nil
	e.cur = &e.root
}

// Pool recycles Engines across simulation runs. Short simulations (one
// experiment of a harness sweep) otherwise pay engine setup and event-slab
// growth on every run; a pooled engine keeps its grown []event backing
// arrays across tasks.
//
// Get returns a ready-to-run engine (recycled or new); Put Resets the engine
// — unwinding any procs still parked in it — and shelves it for the next
// Get. A pooled engine must always go through Reset (Put does this) before
// reuse; handing out a non-Reset engine would leak virtual time and seq
// state between experiments and break determinism.
//
// Pool is safe for concurrent use by multiple goroutines (the harness
// workers); the Engines themselves remain single-threaded.
type Pool struct {
	mu   sync.Mutex
	free []*Engine
}

// NewPool returns an empty engine pool.
func NewPool() *Pool { return &Pool{} }

// Get returns a fresh-state engine, recycling a shelved one if available.
func (p *Pool) Get() *Engine {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		e := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return e
	}
	p.mu.Unlock()
	return NewEngine()
}

// Put Resets e and shelves it for reuse. A nil engine is ignored.
func (p *Pool) Put(e *Engine) {
	if e == nil {
		return
	}
	e.Reset()
	p.mu.Lock()
	p.free = append(p.free, e)
	p.mu.Unlock()
}

// Idle returns the number of engines currently shelved in the pool.
func (p *Pool) Idle() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}
