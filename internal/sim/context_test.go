package sim

import (
	"context"
	"testing"
	"time"
)

// TestRunCtxCompletes: with a live context, RunCtx behaves exactly like
// Run — the queue drains and nil is returned.
func TestRunCtxCompletes(t *testing.T) {
	e := NewEngine()
	ran := 0
	for i := 0; i < 10; i++ {
		d := Duration(i)
		e.Schedule(d, func() { ran++ })
	}
	if err := e.RunCtx(context.Background()); err != nil {
		t.Fatalf("RunCtx: %v", err)
	}
	if ran != 10 || e.Pending() != 0 {
		t.Fatalf("ran=%d pending=%d, want 10/0", ran, e.Pending())
	}
}

// TestRunCtxAlreadyCancelled: a cancelled context executes nothing.
func TestRunCtxAlreadyCancelled(t *testing.T) {
	e := NewEngine()
	e.Schedule(1, func() { t.Error("event ran under a cancelled context") })
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := e.RunCtx(ctx); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if e.Executed() != 0 || e.Pending() != 1 {
		t.Fatalf("executed=%d pending=%d, want 0/1", e.Executed(), e.Pending())
	}
}

// TestRunCtxStopsRunawaySim: an endlessly self-rescheduling simulation —
// the case Run would never return from — stops when the context is
// cancelled, and the engine remains usable: a later RunCtx resumes, and
// Kill composes (unwinding parked procs to an exact LiveProcs of zero).
func TestRunCtxStopsRunawaySim(t *testing.T) {
	e := NewEngine()
	var tick func()
	tick = func() { e.Schedule(1, tick) }
	e.Schedule(1, tick)
	e.Spawn("server", func(p *Proc) { p.Park() }) // parks forever

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if err := e.RunCtx(ctx); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	executed := e.Executed()
	if executed == 0 {
		t.Fatal("no events executed before cancellation")
	}

	// The engine is still consistent: a bounded resume makes progress.
	if err := e.RunUntilCtx(context.Background(), e.Now()+100); err != nil {
		t.Fatalf("resume: %v", err)
	}
	if e.Executed() <= executed {
		t.Fatal("resumed run made no progress")
	}

	// Cancellation returns on the engine side, so Kill is legal here.
	e.Kill()
	if n := e.LiveProcs(); n != 0 {
		t.Fatalf("LiveProcs = %d after Kill, want 0", n)
	}
}

// TestRunUntilCtxHorizon: the time horizon still bounds a cancellable run.
func TestRunUntilCtxHorizon(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.Schedule(5, func() { ran++ })
	e.Schedule(50, func() { ran++ })
	if err := e.RunUntilCtx(context.Background(), 10); err != nil {
		t.Fatalf("RunUntilCtx: %v", err)
	}
	if ran != 1 || e.Now() != 5 {
		t.Fatalf("ran=%d now=%d, want 1/5", ran, e.Now())
	}
}
