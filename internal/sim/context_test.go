package sim

import (
	"context"
	"testing"
	"time"
)

// TestRunCtxCompletes: with a live context, RunCtx behaves exactly like
// Run — the queue drains and nil is returned.
func TestRunCtxCompletes(t *testing.T) {
	e := NewEngine()
	ran := 0
	for i := 0; i < 10; i++ {
		d := Duration(i)
		e.Schedule(d, func() { ran++ })
	}
	if err := e.RunCtx(context.Background()); err != nil {
		t.Fatalf("RunCtx: %v", err)
	}
	if ran != 10 || e.Pending() != 0 {
		t.Fatalf("ran=%d pending=%d, want 10/0", ran, e.Pending())
	}
}

// TestRunCtxAlreadyCancelled: a cancelled context executes nothing.
func TestRunCtxAlreadyCancelled(t *testing.T) {
	e := NewEngine()
	e.Schedule(1, func() { t.Error("event ran under a cancelled context") })
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := e.RunCtx(ctx); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if e.Executed() != 0 || e.Pending() != 1 {
		t.Fatalf("executed=%d pending=%d, want 0/1", e.Executed(), e.Pending())
	}
}

// TestRunCtxStopsRunawaySim: an endlessly self-rescheduling simulation —
// the case Run would never return from — stops when the context is
// cancelled, and the engine remains usable: a later RunCtx resumes, and
// Kill composes (unwinding parked procs to an exact LiveProcs of zero).
func TestRunCtxStopsRunawaySim(t *testing.T) {
	e := NewEngine()
	var tick func()
	tick = func() { e.Schedule(1, tick) }
	e.Schedule(1, tick)
	e.Spawn("server", func(p *Proc) { p.Park() }) // parks forever

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if err := e.RunCtx(ctx); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	executed := e.Executed()
	if executed == 0 {
		t.Fatal("no events executed before cancellation")
	}

	// The engine is still consistent: a bounded resume makes progress.
	if err := e.RunUntilCtx(context.Background(), e.Now()+100); err != nil {
		t.Fatalf("resume: %v", err)
	}
	if e.Executed() <= executed {
		t.Fatal("resumed run made no progress")
	}

	// Cancellation returns on the engine side, so Kill is legal here.
	e.Kill()
	if n := e.LiveProcs(); n != 0 {
		t.Fatalf("LiveProcs = %d after Kill, want 0", n)
	}
}

// TestRunUntilCtxHorizon: the time horizon still bounds a cancellable run.
func TestRunUntilCtxHorizon(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.Schedule(5, func() { ran++ })
	e.Schedule(50, func() { ran++ })
	if err := e.RunUntilCtx(context.Background(), 10); err != nil {
		t.Fatalf("RunUntilCtx: %v", err)
	}
	if ran != 1 || e.Now() != 5 {
		t.Fatalf("ran=%d now=%d, want 1/5", ran, e.Now())
	}
}

// mergedChains wires a 4-domain merged-mode engine (the partitioning the
// kernel model uses for -simworkers) running one bounded event chain per
// domain, recording (domain, step) into log. onStep, when non-nil, observes
// the global step count — the hook the cancellation tests use to cancel
// from inside the simulation at a deterministic point.
func mergedChains(e *Engine, steps, workers int, log *[]uint64, onStep func(total int)) {
	const L = Duration(5)
	doms := make([]*Domain, 4)
	doms[0] = e.Domain(0)
	for i := 1; i < 4; i++ {
		doms[i] = e.NewDomain()
	}
	e.SetLookahead(L)
	e.SetWorkers(workers)
	total := 0
	var step func(d, i int)
	step = func(d, i int) {
		*log = append(*log, uint64(d)<<32|uint64(i))
		total++
		if onStep != nil {
			onStep(total)
		}
		if i+1 < steps {
			doms[d].Schedule(Duration(1+d%3), func() { step(d, i+1) })
		}
	}
	for d := 0; d < 4; d++ {
		d := d
		doms[d].Schedule(Duration(d+1), func() { step(d, 0) })
	}
}

func logsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRunCtxCancelDeterministicPartitioned: cancelling a partitioned
// (merged-mode) run from inside the simulation stops at a deterministic
// event boundary — identical executed count, virtual time and trace prefix
// at every worker count — and a resumed run completes to the uncancelled
// reference trace.
func TestRunCtxCancelDeterministicPartitioned(t *testing.T) {
	const steps = 600
	// The reference engine runs to completion without cancellation.
	var ref []uint64
	refEng := NewEngine()
	mergedChains(refEng, steps, 1, &ref, nil)
	refEng.Run()

	partial := func(workers int) (uint64, Time, []uint64, []uint64) {
		e := NewEngine()
		var log []uint64
		ctx, cancel := context.WithCancel(context.Background())
		mergedChains(e, steps, workers, &log, func(total int) {
			if total == 1000 {
				cancel()
			}
		})
		if err := e.RunCtx(ctx); err != context.Canceled {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		executed, now := e.Executed(), e.Now()
		prefix := append([]uint64(nil), log...)
		if err := e.RunCtx(context.Background()); err != nil {
			t.Fatalf("workers=%d resume: %v", workers, err)
		}
		return executed, now, prefix, log
	}

	exec1, now1, prefix1, full1 := partial(1)
	if exec1 == 0 || int(exec1) >= 4*steps {
		t.Fatalf("cancellation did not strike mid-run: executed=%d of %d", exec1, 4*steps)
	}
	if !logsEqual(full1, ref) {
		t.Fatalf("resumed run diverged from the uncancelled reference")
	}
	for _, w := range []int{2, 4} {
		execW, nowW, prefixW, fullW := partial(w)
		if execW != exec1 || nowW != now1 {
			t.Errorf("workers=%d: cancel point (executed=%d now=%d) differs from workers=1 (%d, %d)",
				w, execW, nowW, exec1, now1)
		}
		if !logsEqual(prefixW, prefix1) {
			t.Errorf("workers=%d: completed prefix differs from workers=1", w)
		}
		if !logsEqual(fullW, ref) {
			t.Errorf("workers=%d: resumed run diverged from the reference", w)
		}
	}
	// And the cancel point itself is reproducible.
	execR, nowR, prefixR, _ := partial(2)
	if execR != exec1 || nowR != now1 || !logsEqual(prefixR, prefix1) {
		t.Errorf("repeat run cancelled at a different point: executed=%d now=%d", execR, nowR)
	}
}

// TestRunCtxCancelPoolReuse: an engine whose run was cancelled mid-flight
// (with a proc still parked) goes through Pool.Put/Get and reruns the same
// workload to the same trace as a never-cancelled fresh engine.
func TestRunCtxCancelPoolReuse(t *testing.T) {
	const steps = 400
	runFull := func(e *Engine) []uint64 {
		var log []uint64
		mergedChains(e, steps, 2, &log, nil)
		e.Spawn("waiter", func(p *Proc) { p.Park() })
		e.Run()
		return log
	}
	refEng := NewEngine()
	ref := runFull(refEng)
	refEng.Kill()

	pool := NewPool()
	e := pool.Get()
	var log []uint64
	ctx, cancel := context.WithCancel(context.Background())
	mergedChains(e, steps, 2, &log, func(total int) {
		if total == 500 {
			cancel()
		}
	})
	e.Spawn("waiter", func(p *Proc) { p.Park() })
	if err := e.RunCtx(ctx); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	pool.Put(e) // Reset: unwinds the parked proc, drops the partitioning
	if n := e.LiveProcs(); n != 0 {
		t.Fatalf("LiveProcs = %d after Put, want 0", n)
	}

	e2 := pool.Get()
	if e2 != e {
		t.Fatalf("pool handed out a different engine")
	}
	if got := runFull(e2); !logsEqual(got, ref) {
		t.Fatalf("pool-reused engine diverged from a fresh engine's trace")
	}
	e2.Kill()
}
