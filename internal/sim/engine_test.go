package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(30, func() { got = append(got, 3) })
	e.Schedule(10, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("Now() = %d, want 30", e.Now())
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	e.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var got []Time
	e.Schedule(10, func() {
		got = append(got, e.Now())
		e.Schedule(5, func() { got = append(got, e.Now()) })
	})
	e.Run()
	if len(got) != 2 || got[0] != 10 || got[1] != 15 {
		t.Fatalf("got %v, want [10 15]", got)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.Schedule(10, func() { ran++ })
	e.Schedule(20, func() { ran++ })
	e.Schedule(30, func() { ran++ })
	e.RunUntil(20)
	if ran != 2 {
		t.Fatalf("ran = %d, want 2", ran)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	e.Run()
	if ran != 3 {
		t.Fatalf("ran = %d, want 3", ran)
	}
}

func TestEngineAtPastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("At in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestEngineStep(t *testing.T) {
	e := NewEngine()
	n := 0
	e.Schedule(1, func() { n++ })
	e.Schedule(2, func() { n++ })
	if !e.Step() || n != 1 {
		t.Fatalf("first Step: n=%d", n)
	}
	if !e.Step() || n != 2 {
		t.Fatalf("second Step: n=%d", n)
	}
	if e.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

// TestEngineEventLimitExact: SetEventLimit(n) means at most n events — the
// nth event runs, the (n+1)th panics.
func TestEngineEventLimitExact(t *testing.T) {
	e := NewEngine()
	e.SetEventLimit(3)
	ran := 0
	for i := 0; i < 3; i++ {
		e.Schedule(Duration(i+1), func() { ran++ })
	}
	e.Run() // exactly the limit: fine
	if ran != 3 {
		t.Fatalf("ran = %d, want 3", ran)
	}
	e.Schedule(1, func() { ran++ })
	defer func() {
		if recover() == nil {
			t.Error("event beyond the limit did not panic")
		}
		if ran != 3 {
			t.Errorf("event beyond the limit executed (ran = %d)", ran)
		}
	}()
	e.Run()
}

// TestEngineStepEventLimit: Step does the same limit accounting as Run.
func TestEngineStepEventLimit(t *testing.T) {
	e := NewEngine()
	e.SetEventLimit(1)
	e.Schedule(1, func() {})
	e.Schedule(2, func() {})
	if !e.Step() {
		t.Fatal("first Step did nothing")
	}
	defer func() {
		if recover() == nil {
			t.Error("Step beyond the event limit did not panic")
		}
	}()
	e.Step()
}

// TestEngineStepRespectsKilled: Step after Kill is a no-op.
func TestEngineStepRespectsKilled(t *testing.T) {
	e := NewEngine()
	e.Schedule(1, func() { t.Error("event ran after Kill") })
	e.Kill()
	if e.Step() {
		t.Fatal("Step executed an event after Kill")
	}
}

// TestEngineStepCausality: Step shares Run's queue-went-backwards check.
// The queue cannot be corrupted through the public API (Schedule delays are
// unsigned), so plant the bad event directly.
func TestEngineStepCausality(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {})
	e.Run() // now = 10
	e.root.heapPush(event{at: 5, seq: e.seq + 1, fn: func() {}})
	defer func() {
		if recover() == nil {
			t.Error("Step executed an event in the past")
		}
	}()
	e.Step()
}

func TestEngineEventLimit(t *testing.T) {
	e := NewEngine()
	e.SetEventLimit(100)
	var loop func()
	loop = func() { e.Schedule(1, loop) }
	e.Schedule(1, loop)
	defer func() {
		if recover() == nil {
			t.Error("event limit did not panic")
		}
	}()
	e.Run()
}

func TestEngineKillStopsScheduling(t *testing.T) {
	e := NewEngine()
	e.Schedule(1, func() {})
	e.Kill()
	e.Schedule(1, func() { t.Error("event ran after Kill") })
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("pending = %d after Kill", e.Pending())
	}
}

// TestEngineDeterminism checks that the same schedule, built in a random
// order, always executes in the same total order (time, then insertion seq).
func TestEngineDeterminism(t *testing.T) {
	run := func(seed int64) []int {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		var got []int
		// Insertion order is part of the schedule identity, so build the
		// same (time, id) pairs in a fixed order, but with random times.
		for id := 0; id < 200; id++ {
			id := id
			at := Duration(rng.Intn(50))
			e.Schedule(at, func() { got = append(got, id) })
		}
		e.Run()
		return got
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// Property: for any set of delays, events run in nondecreasing time order.
func TestEngineMonotonicProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var times []Time
		for _, d := range delays {
			d := Duration(d)
			e.Schedule(d, func() { times = append(times, e.Now()) })
		}
		e.Run()
		if !sort.SliceIsSorted(times, func(i, j int) bool { return times[i] < times[j] }) {
			return false
		}
		// Every scheduled event ran.
		return len(times) == len(delays)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
