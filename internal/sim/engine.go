// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine models virtual time in cycles. Events are ordered by
// (time, sequence number) so that runs are bit-reproducible. On top of the
// raw event queue the package offers cooperative processes (Proc): goroutines
// that run one at a time under strict handoff with the engine, which lets
// protocol code (e.g. a kernel thread performing an inter-kernel call) be
// written in a natural blocking style while the simulation stays
// deterministic.
package sim

import (
	"container/heap"
	"fmt"
	"sync"
	"sync/atomic"
)

// Time is a point in virtual time, measured in cycles.
type Time uint64

// Duration is a span of virtual time, measured in cycles.
type Duration = Time

type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulation engine. The zero value is not usable;
// use NewEngine.
type Engine struct {
	now      Time
	pq       eventHeap
	seq      uint64
	executed uint64
	limit    uint64 // safety valve: max events per Run, 0 = unlimited
	shutdown chan struct{}
	killed   bool
	// procs counts live procs for leak diagnostics. It is atomic because on
	// Kill all parked proc goroutines unwind concurrently, each decrementing
	// it from its own goroutine.
	procs atomic.Int64
	// unwound is joined by Kill so that every proc goroutine has fully
	// exited (and procs has settled) before Kill returns.
	unwound sync.WaitGroup
	// fault carries a panic out of a proc goroutine to the engine side,
	// where it is re-raised on the goroutine driving the simulation (and is
	// therefore recoverable by callers such as the bench harness).
	fault error
}

// NewEngine returns a ready-to-run engine with time at zero.
func NewEngine() *Engine {
	return &Engine{shutdown: make(chan struct{})}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Executed returns the number of events executed so far.
func (e *Engine) Executed() uint64 { return e.executed }

// SetEventLimit caps the number of events a single Run may execute.
// Zero (the default) means unlimited. Exceeding the limit makes Run panic,
// which catches runaway simulations in tests.
func (e *Engine) SetEventLimit(n uint64) { e.limit = n }

// Schedule runs fn after d cycles of virtual time. It may be called from
// event handlers and from Procs; calling it after Kill is a no-op.
func (e *Engine) Schedule(d Duration, fn func()) {
	if e.killed {
		return
	}
	e.seq++
	heap.Push(&e.pq, event{at: e.now + d, seq: e.seq, fn: fn})
}

// At runs fn at absolute time t. Scheduling in the past panics: it would
// silently corrupt causality.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: At(%d) is in the past (now=%d)", t, e.now))
	}
	e.Schedule(t-e.now, fn)
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	e.RunUntil(^Time(0))
}

// RunUntil executes events with timestamps <= t, advancing virtual time.
// It returns when the queue is empty or the next event is beyond t.
func (e *Engine) RunUntil(t Time) {
	n := uint64(0)
	for len(e.pq) > 0 {
		if e.pq[0].at > t {
			return
		}
		ev := heap.Pop(&e.pq).(event)
		if ev.at < e.now {
			panic("sim: event queue went backwards")
		}
		e.now = ev.at
		ev.fn()
		e.executed++
		n++
		if e.limit != 0 && n > e.limit {
			panic(fmt.Sprintf("sim: event limit %d exceeded (possible livelock)", e.limit))
		}
	}
}

// Step executes exactly one event if available and reports whether it did.
func (e *Engine) Step() bool {
	if len(e.pq) == 0 {
		return false
	}
	ev := heap.Pop(&e.pq).(event)
	e.now = ev.at
	ev.fn()
	e.executed++
	return true
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.pq) }

// Kill terminates the simulation: parked Procs unwind and exit, and further
// Schedule calls are ignored. Call it when a simulation is finished to avoid
// leaking goroutines for procs that are still parked (e.g. server loops).
//
// Kill blocks until every proc goroutine has exited, so LiveProcs is exact
// afterwards. It must be called from the engine side (between events or
// after Run), never from within a Proc body — a proc killing its own engine
// would wait for itself.
func (e *Engine) Kill() {
	if e.killed {
		return
	}
	e.killed = true
	close(e.shutdown)
	// Drain remaining events so parked procs that were about to be resumed
	// are not left half-woken.
	e.pq = nil
	e.unwound.Wait()
}

// LiveProcs returns the number of procs that have been spawned and have not
// yet exited. Useful to detect leaks in tests.
func (e *Engine) LiveProcs() int { return int(e.procs.Load()) }
