package sim

import (
	"testing"
	"testing/quick"
)

func TestFutureWait(t *testing.T) {
	e := NewEngine()
	f := NewFuture[int](e)
	var got int
	e.Spawn("waiter", func(p *Proc) {
		got = f.Wait(p)
	})
	e.Schedule(42, func() { f.Complete(7) })
	e.Run()
	if got != 7 {
		t.Fatalf("got %d, want 7", got)
	}
	if e.Now() != 42 {
		t.Fatalf("time = %d, want 42", e.Now())
	}
}

func TestFutureAlreadyDone(t *testing.T) {
	e := NewEngine()
	f := NewFuture[string](e)
	f.Complete("x")
	var got string
	e.Spawn("waiter", func(p *Proc) { got = f.Wait(p) })
	e.Run()
	if got != "x" {
		t.Fatalf("got %q, want x", got)
	}
}

func TestFutureMultipleWaiters(t *testing.T) {
	e := NewEngine()
	f := NewFuture[int](e)
	woke := 0
	for i := 0; i < 5; i++ {
		e.Spawn("w", func(p *Proc) {
			if f.Wait(p) == 9 {
				woke++
			}
		})
	}
	e.Schedule(10, func() { f.Complete(9) })
	e.Run()
	if woke != 5 {
		t.Fatalf("woke = %d, want 5", woke)
	}
}

func TestFutureDoubleCompletePanics(t *testing.T) {
	e := NewEngine()
	f := NewFuture[int](e)
	f.Complete(1)
	defer func() {
		if recover() == nil {
			t.Error("double Complete did not panic")
		}
	}()
	f.Complete(2)
}

func TestSemaphoreBoundsConcurrency(t *testing.T) {
	e := NewEngine()
	sem := NewSemaphore(e, 2)
	inside, maxInside := 0, 0
	for i := 0; i < 6; i++ {
		e.Spawn("worker", func(p *Proc) {
			sem.Acquire(p)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			p.Sleep(10)
			inside--
			sem.Release()
		})
	}
	e.Run()
	if maxInside != 2 {
		t.Fatalf("max concurrent = %d, want 2", maxInside)
	}
	if sem.Count() != 2 {
		t.Fatalf("final count = %d, want 2", sem.Count())
	}
}

func TestSemaphoreFIFO(t *testing.T) {
	e := NewEngine()
	sem := NewSemaphore(e, 0)
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		e.Spawn("w", func(p *Proc) {
			p.Sleep(Duration(i)) // stagger arrival: 0,1,2,3
			sem.Acquire(p)
			order = append(order, i)
		})
	}
	e.Schedule(100, func() {
		for i := 0; i < 4; i++ {
			sem.Release()
		}
	})
	e.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("wakeup order %v, want FIFO", order)
		}
	}
}

func TestSemaphoreTryAcquire(t *testing.T) {
	e := NewEngine()
	sem := NewSemaphore(e, 1)
	if !sem.TryAcquire() {
		t.Fatal("TryAcquire failed with count 1")
	}
	if sem.TryAcquire() {
		t.Fatal("TryAcquire succeeded with count 0")
	}
}

func TestQueueBlocksUntilPush(t *testing.T) {
	e := NewEngine()
	q := NewQueue[int](e)
	var got []int
	e.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, q.Pop(p))
		}
	})
	e.Schedule(10, func() { q.Push(1) })
	e.Schedule(20, func() { q.Push(2); q.Push(3) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestQueueTryPop(t *testing.T) {
	e := NewEngine()
	q := NewQueue[string](e)
	if _, ok := q.TryPop(); ok {
		t.Fatal("TryPop on empty queue succeeded")
	}
	q.Push("a")
	v, ok := q.TryPop()
	if !ok || v != "a" {
		t.Fatalf("TryPop = %q, %v", v, ok)
	}
}

func TestWaitGroup(t *testing.T) {
	e := NewEngine()
	var wg WaitGroup
	wg.Add(3)
	var done Time
	e.Spawn("waiter", func(p *Proc) {
		wg.Wait(p)
		done = p.Now()
	})
	e.Schedule(10, func() { wg.Done() })
	e.Schedule(20, func() { wg.Done() })
	e.Schedule(30, func() { wg.Done() })
	e.Run()
	if done != 30 {
		t.Fatalf("done at %d, want 30", done)
	}
}

func TestWaitGroupZeroImmediate(t *testing.T) {
	e := NewEngine()
	var wg WaitGroup
	ran := false
	e.Spawn("w", func(p *Proc) {
		wg.Wait(p)
		ran = true
	})
	e.Run()
	if !ran {
		t.Fatal("Wait on zero WaitGroup blocked")
	}
}

// Property: a queue delivers elements in push order regardless of the
// interleaving of pushes and pops.
func TestQueueFIFOProperty(t *testing.T) {
	f := func(vals []int, popDelays []uint8) bool {
		e := NewEngine()
		q := NewQueue[int](e)
		var got []int
		e.Spawn("consumer", func(p *Proc) {
			for i := range vals {
				if i < len(popDelays) {
					p.Sleep(Duration(popDelays[i]))
				}
				got = append(got, q.Pop(p))
			}
		})
		for i, v := range vals {
			v := v
			e.Schedule(Duration(i*3), func() { q.Push(v) })
		}
		e.Run()
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
