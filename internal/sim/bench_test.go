package sim

import "testing"

// Micro-benchmarks for the hot simulation paths. The acceptance bar of the
// event-queue rebuild: the Sleep/Wake handoff path allocates nothing per
// simulated event (it used to pay a method-value closure plus an
// interface-boxed heap push per Schedule), and schedule+run throughput is
// bounded by the inline 4-ary heap, not container/heap indirection.
//
// Run with:
//
//	go test -bench . -benchmem ./internal/sim

// BenchmarkScheduleRun measures raw event-queue throughput: schedule a
// batch with mixed delays (delay 0 exercises the same-instant lane), then
// drain it. One op = one event through the queue.
func BenchmarkScheduleRun(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	rng := uint64(0x9E3779B97F4A7C15)
	nop := func() {}
	const batch = 1024
	for done := 0; done < b.N; done += batch {
		for i := 0; i < batch; i++ {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			e.Schedule(Duration(rng%64), nop)
		}
		e.Run()
	}
}

// BenchmarkScheduleRunHeapOnly is the pure-heap variant (no delay-0
// events), isolating the 4-ary heap from the FIFO lane.
func BenchmarkScheduleRunHeapOnly(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	rng := uint64(0x9E3779B97F4A7C15)
	nop := func() {}
	const batch = 1024
	for done := 0; done < b.N; done += batch {
		for i := 0; i < batch; i++ {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			e.Schedule(1+Duration(rng%64), nop)
		}
		e.Run()
	}
}

// BenchmarkProcHandoff measures the Sleep/Wake path: one op is one full
// proc handoff (Schedule of the pre-bound step, park, resume). This is the
// path every simulated syscall, IKC and DTU transfer rides on.
func BenchmarkProcHandoff(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	n := b.N
	e.Spawn("bench", func(p *Proc) {
		for i := 0; i < n; i++ {
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	e.Run()
	b.StopTimer()
	e.Kill()
}

// BenchmarkWakeStorm measures the same-instant lane under the pattern that
// motivated it: many parked procs woken at one timestamp, FIFO.
func BenchmarkWakeStorm(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	const nProcs = 64
	n := b.N
	procs := make([]*Proc, nProcs)
	rounds := make([]int, nProcs)
	for i := 0; i < nProcs; i++ {
		i := i
		procs[i] = e.Spawn("storm", func(p *Proc) {
			for rounds[i] > 0 {
				rounds[i]--
				p.Park()
			}
		})
	}
	perProc := n/nProcs + 1
	for i := range rounds {
		rounds[i] = perProc
	}
	var tick func()
	left := perProc
	tick = func() {
		for _, p := range procs {
			p.Wake()
		}
		left--
		if left > 0 {
			e.Schedule(1, tick)
		}
	}
	b.ResetTimer()
	e.Schedule(1, tick)
	e.Run()
	b.StopTimer()
	e.Kill()
}

// BenchmarkPoolReuse measures the per-experiment engine cost the harness
// pays: one op is one short simulated task on a pool-recycled engine
// (Get, schedule/run a small workload with procs, Put).
func BenchmarkPoolReuse(b *testing.B) {
	b.ReportAllocs()
	pool := NewPool()
	nop := func() {}
	for i := 0; i < b.N; i++ {
		e := pool.Get()
		for j := 0; j < 32; j++ {
			e.Schedule(Duration(j%8), nop)
		}
		e.Spawn("task", func(p *Proc) {
			for k := 0; k < 8; k++ {
				p.Sleep(2)
			}
		})
		e.Run()
		pool.Put(e)
	}
}

// BenchmarkEngineFresh is BenchmarkPoolReuse without the pool: a brand-new
// engine per task, for comparison.
func BenchmarkEngineFresh(b *testing.B) {
	b.ReportAllocs()
	nop := func() {}
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 32; j++ {
			e.Schedule(Duration(j%8), nop)
		}
		e.Spawn("task", func(p *Proc) {
			for k := 0; k < 8; k++ {
				p.Sleep(2)
			}
		})
		e.Run()
		e.Kill()
	}
}

// BenchmarkDomainPingPong bounces a token between two isolated domains: each
// op is one cross-domain Post delivered through the mailbox-and-barrier
// machinery (one event, one round). The whole exchange must be allocation-
// free in steady state — mailboxes, lanes and round channels all recycle
// their backing storage.
func BenchmarkDomainPingPong(b *testing.B) {
	const lookahead = Duration(10)
	e := NewEngine()
	db := e.NewDomain()
	da := e.Domain(0)
	e.SetIsolated(true)
	e.SetLookahead(lookahead)
	e.SetWorkers(2)
	b.ReportAllocs()
	n := 0
	var ping, pong func()
	ping = func() { // runs on da
		if n++; n < b.N {
			da.Post(db, lookahead, pong)
		}
	}
	pong = func() { // runs on db
		if n++; n < b.N {
			db.Post(da, lookahead, ping)
		}
	}
	da.Schedule(1, ping)
	e.Run()
	if n < b.N {
		b.Fatalf("executed %d hops, want at least %d", n, b.N)
	}
}
