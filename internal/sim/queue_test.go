package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// The event queue was rebuilt from a boxed container/heap into an inline
// 4-ary heap plus a same-instant FIFO lane. These tests pin the contract
// that rebuild must preserve: the execution order is exactly the total
// order by (time, sequence number), bit-identical to the old
// implementation.

// refEngine is a reference event queue with the pre-optimization layout:
// one boxed container/heap ordered by (at, seq), no lanes. It is the
// oracle the production engine is checked against.
type refEngine struct {
	now Time
	pq  refHeap
	seq uint64
}

type refHeap []event

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

func (r *refEngine) Schedule(d Duration, fn func()) {
	r.seq++
	heap.Push(&r.pq, event{at: r.now + d, seq: r.seq, fn: fn})
}

func (r *refEngine) Now() Time { return r.now }

func (r *refEngine) Run() {
	for len(r.pq) > 0 {
		ev := heap.Pop(&r.pq).(event)
		r.now = ev.at
		ev.fn()
	}
}

// eventQueue is the surface the property test drives on both
// implementations.
type eventQueue interface {
	Schedule(d Duration, fn func())
	Now() Time
	Run()
}

// driveQueue feeds a seeded schedule into q: a batch of root events whose
// handlers recursively schedule children with random small delays. Delay 0
// is common, so the same-instant lane (and its interleaving with heap
// events landing on the same timestamp) is exercised heavily. It returns
// the execution trace as (event id, execution time) pairs.
func driveQueue(q eventQueue, seed int64) [][2]uint64 {
	rng := rand.New(rand.NewSource(seed))
	var trace [][2]uint64
	nextID := uint64(0)
	var schedule func(depth int)
	schedule = func(depth int) {
		id := nextID
		nextID++
		d := Duration(rng.Intn(6)) // 0..5; 0 lands in the same-instant lane
		q.Schedule(d, func() {
			trace = append(trace, [2]uint64{id, uint64(q.Now())})
			if depth < 3 {
				for k := rng.Intn(3); k > 0; k-- {
					schedule(depth + 1)
				}
			}
		})
	}
	for i := 0; i < 400; i++ {
		schedule(0)
	}
	q.Run()
	return trace
}

// TestQueueMatchesReferenceHeap: for many seeds, the production engine and
// the reference container/heap implementation execute identical (time, seq)
// streams in identical order.
func TestQueueMatchesReferenceHeap(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		got := driveQueue(NewEngine(), seed)
		want := driveQueue(&refEngine{}, seed)
		if len(got) != len(want) {
			t.Fatalf("seed %d: trace lengths differ: %d vs %d", seed, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d: traces diverge at %d: engine %v, reference %v",
					seed, i, got[i], want[i])
			}
		}
	}
}

// partEngine drives the same schedule through a partitioned engine: every
// Schedule call is routed round-robin onto one of D domains. Outside
// isolated rounds Domain.Schedule keeps the engine-global (time, seq)
// stamping, so the merged run loop must execute the exact reference order no
// matter how the events were scattered over lanes.
type partEngine struct {
	eng  *Engine
	doms []*Domain
	next int
}

func newPartEngine(domains int) *partEngine {
	e := NewEngine()
	doms := make([]*Domain, domains)
	for i := 1; i < domains; i++ {
		doms[i] = e.NewDomain()
	}
	doms[0] = e.Domain(0)
	return &partEngine{eng: e, doms: doms}
}

func (pe *partEngine) Schedule(d Duration, fn func()) {
	dm := pe.doms[pe.next%len(pe.doms)]
	pe.next++
	dm.Schedule(d, fn)
}

func (pe *partEngine) Now() Time { return pe.eng.Now() }
func (pe *partEngine) Run()      { pe.eng.Run() }

// TestPartitionedQueueMatchesReference: the PR 2 property test generalized to
// the partitioned engine — for many seeds and domain counts, the merged
// multi-domain run loop executes the identical (id, time) stream as the
// reference single heap, even though consecutive events (including
// same-instant lane entries and parent/child edges) land on different
// domains.
func TestPartitionedQueueMatchesReference(t *testing.T) {
	for _, domains := range []int{1, 2, 4} {
		for seed := int64(1); seed <= 25; seed++ {
			got := driveQueue(newPartEngine(domains), seed)
			want := driveQueue(&refEngine{}, seed)
			if len(got) != len(want) {
				t.Fatalf("domains %d seed %d: trace lengths differ: %d vs %d",
					domains, seed, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("domains %d seed %d: traces diverge at %d: partitioned %v, reference %v",
						domains, seed, i, got[i], want[i])
				}
			}
		}
	}
}

// TestQueueHeapBeatsLaneAtSameInstant: an event scheduled from an earlier
// instant for time T (living in the heap) runs before any event scheduled
// at time T for time T (living in the same-instant lane), because its
// sequence number is lower — the exact (time, seq) order of the old queue.
func TestQueueHeapBeatsLaneAtSameInstant(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(5, func() { got = append(got, 0) })
	e.Schedule(3, func() {
		// now = 3: schedule lane events for t = 5... after hopping through
		// t = 4, so they are lane entries when t = 5 arrives.
		e.Schedule(1, func() {
			e.Schedule(1, func() { got = append(got, 1) }) // heap, seq later than 0's
		})
	})
	e.Schedule(5, func() {
		got = append(got, 2)
		e.Schedule(0, func() { got = append(got, 3) }) // lane at t=5
	})
	e.Run()
	want := []int{0, 2, 1, 3}
	// Ordering at t=5 by seq: event 0 (seq 1), event 2 (seq 3), event 1
	// (scheduled at t=4, seq 5), event 3 (lane, scheduled at t=5, seq 6).
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

// TestWakeOrderFIFO: procs woken at one timestamp resume in exactly the
// order the Wake calls were made — the regression test for the same-instant
// lane.
func TestWakeOrderFIFO(t *testing.T) {
	e := NewEngine()
	defer e.Kill()
	const n = 6
	wakeOrder := []int{3, 1, 5, 0, 4, 2}
	var got []int
	procs := make([]*Proc, n)
	for i := 0; i < n; i++ {
		i := i
		procs[i] = e.Spawn("p", func(p *Proc) {
			p.Park()
			got = append(got, i)
		})
	}
	e.Run() // all procs are parked now
	e.Schedule(10, func() {
		for _, i := range wakeOrder {
			procs[i].Wake()
		}
	})
	e.Run()
	if len(got) != n {
		t.Fatalf("resumed %d procs, want %d", len(got), n)
	}
	for i := range wakeOrder {
		if got[i] != wakeOrder[i] {
			t.Fatalf("wake order not FIFO: got %v, want %v", got, wakeOrder)
		}
	}
}

// TestYieldInterleavesFIFO: procs that Yield in a loop round-robin in spawn
// order, every round, without time advancing.
func TestYieldInterleavesFIFO(t *testing.T) {
	e := NewEngine()
	defer e.Kill()
	var got []int
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn("y", func(p *Proc) {
			for r := 0; r < 3; r++ {
				got = append(got, i)
				p.Yield()
			}
		})
	}
	e.Run()
	want := []int{0, 1, 2, 0, 1, 2, 0, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("yield interleaving = %v, want %v", got, want)
		}
	}
	if e.Now() != 0 {
		t.Fatalf("Yield advanced time to %d", e.Now())
	}
}
