package sim

import (
	"strings"
	"sync"
	"testing"
)

// TestKillManyParkedProcs is the regression test for the Engine.Kill data
// race: hundreds of parked procs unwind concurrently on Kill, each
// decrementing the live-proc counter from its own goroutine. Run with -race.
func TestKillManyParkedProcs(t *testing.T) {
	const n = 500
	e := NewEngine()
	for i := 0; i < n; i++ {
		e.Spawn("parked", func(p *Proc) {
			p.Park() // never woken; unwinds on Kill
			t.Error("parked proc resumed unexpectedly")
		})
	}
	e.Run()
	if got := e.LiveProcs(); got != n {
		t.Fatalf("live procs = %d, want %d before Kill", got, n)
	}
	e.Kill()
	// Kill joins the unwinding goroutines, so the counter is exact here.
	if got := e.LiveProcs(); got != 0 {
		t.Fatalf("live procs = %d, want 0 after Kill", got)
	}
	// Idempotent, and further runs are no-ops.
	e.Kill()
	e.Run()
}

// TestKillBeforeRun kills an engine whose procs never got their first
// handoff: the spawn events are drained, but the goroutines must still
// unwind and the counter must settle.
func TestKillBeforeRun(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 64; i++ {
		e.Spawn("unstarted", func(p *Proc) {
			t.Error("proc body ran despite Kill before Run")
		})
	}
	e.Kill()
	if got := e.LiveProcs(); got != 0 {
		t.Fatalf("live procs = %d, want 0 after Kill", got)
	}
}

// TestKillWithReparkingDefer: a proc whose defer parks again (a cleanup
// Sleep during unwind) must not deadlock Kill — parking on a killed engine
// re-panics instead of waiting for a handoff that will never come.
func TestKillWithReparkingDefer(t *testing.T) {
	e := NewEngine()
	e.Spawn("cleanup", func(p *Proc) {
		defer p.Sleep(1) // runs during the killed{} unwind
		p.Park()
		t.Error("parked proc resumed unexpectedly")
	})
	e.Run()
	e.Kill() // must return, not hang on unwound.Wait
	if got := e.LiveProcs(); got != 0 {
		t.Fatalf("live procs = %d, want 0 after Kill", got)
	}
}

// TestManyEnginesConcurrently drives independent engines from independent
// goroutines — the usage pattern of the parallel bench harness — and checks
// determinism across them under -race.
func TestManyEnginesConcurrently(t *testing.T) {
	run := func() Time {
		e := NewEngine()
		for i := 0; i < 20; i++ {
			d := Duration(i * 3)
			e.Spawn("w", func(p *Proc) {
				p.Sleep(d)
				p.Sleep(7)
			})
		}
		e.Run()
		now := e.Now()
		e.Kill()
		return now
	}
	want := run()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 5; rep++ {
				if got := run(); got != want {
					t.Errorf("final time = %d, want %d", got, want)
				}
			}
		}()
	}
	wg.Wait()
}

// TestProcPanicPropagatesToEngineSide: a real panic inside a proc body is
// re-raised on the goroutine driving the simulation (recoverable, e.g. by
// the bench harness) instead of crashing the process from the proc
// goroutine.
func TestProcPanicPropagatesToEngineSide(t *testing.T) {
	e := NewEngine()
	e.Spawn("bad", func(p *Proc) {
		p.Sleep(5)
		panic("boom")
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected the proc panic to surface on the engine side")
		}
		err, ok := r.(error)
		if !ok || !strings.Contains(err.Error(), `proc "bad" panicked: boom`) {
			t.Fatalf("unexpected panic value: %v", r)
		}
		if got := e.LiveProcs(); got != 0 {
			t.Errorf("live procs = %d, want 0 after fault", got)
		}
		e.Kill()
	}()
	e.Run()
	t.Fatal("Run returned without panicking")
}
