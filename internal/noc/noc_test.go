package noc

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func newNet(t *testing.T, nodes int, contention bool) (*sim.Engine, *Network) {
	t.Helper()
	e := sim.NewEngine()
	cfg := DefaultConfig(nodes)
	cfg.Contention = contention
	return e, New(e, cfg)
}

func TestHops(t *testing.T) {
	_, n := newNet(t, 16, false) // 4x4 mesh
	cases := []struct{ src, dst, want int }{
		{0, 0, 0},
		{0, 1, 1},
		{0, 3, 3},
		{0, 4, 1},  // one row down
		{0, 5, 2},  // diagonal neighbor
		{0, 15, 6}, // opposite corner: 3+3
		{15, 0, 6},
	}
	for _, c := range cases {
		if got := n.Hops(c.src, c.dst); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.src, c.dst, got, c.want)
		}
	}
}

func TestLatencyGrowsWithDistance(t *testing.T) {
	_, n := newNet(t, 64, false)
	near := n.Latency(0, 1, 64)
	far := n.Latency(0, 63, 64)
	if near >= far {
		t.Fatalf("latency near=%d far=%d; want near < far", near, far)
	}
}

func TestLatencyGrowsWithSize(t *testing.T) {
	_, n := newNet(t, 16, false)
	small := n.Latency(0, 5, 16)
	big := n.Latency(0, 5, 4096)
	if small >= big {
		t.Fatalf("latency small=%d big=%d; want small < big", small, big)
	}
}

func TestDeliveryTime(t *testing.T) {
	e, n := newNet(t, 16, false)
	var arrived sim.Time
	n.Send(0, 15, 64, func() { arrived = e.Now() })
	e.Run()
	if want := n.Latency(0, 15, 64); arrived != want {
		t.Fatalf("arrived at %d, want %d", arrived, want)
	}
}

func TestPairFIFOWithMixedSizes(t *testing.T) {
	// A huge message sent first must not be overtaken by a tiny one sent
	// immediately after, even though the tiny one has lower model latency.
	e, n := newNet(t, 16, false)
	var order []int
	n.Send(0, 15, 1<<20, func() { order = append(order, 1) })
	n.Send(0, 15, 1, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("delivery order %v, want [1 2]", order)
	}
}

func TestDifferentPairsMayOvertake(t *testing.T) {
	// FIFO is per pair: a message on a different pair may overtake.
	e, n := newNet(t, 16, false)
	var order []int
	n.Send(0, 15, 1<<20, func() { order = append(order, 1) })
	n.Send(1, 2, 1, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 2 || order[0] != 2 {
		t.Fatalf("delivery order %v, want short message first", order)
	}
}

func TestContentionSerializesSharedLink(t *testing.T) {
	// Two messages from the same source over the same first link: the
	// second must arrive later than it would on an idle network.
	e, n := newNet(t, 16, true)
	var first, second sim.Time
	n.Send(0, 3, 4096, func() { first = e.Now() })
	n.Send(0, 3, 4096, func() { second = e.Now() })
	e.Run()
	if second <= first {
		t.Fatalf("second=%d first=%d; want serialization", second, first)
	}
	// Compare against an idle network.
	e2, n2 := newNet(t, 16, true)
	var alone sim.Time
	n2.Send(0, 3, 4096, func() { alone = e2.Now() })
	e2.Run()
	if second <= alone {
		t.Fatalf("second=%d alone=%d; contention had no effect", second, alone)
	}
}

func TestContentionDisjointPathsDoNotInterfere(t *testing.T) {
	e, n := newNet(t, 16, true)
	var a, b sim.Time
	n.Send(0, 1, 4096, func() { a = e.Now() })
	n.Send(14, 15, 4096, func() { b = e.Now() })
	e.Run()
	if a != b {
		t.Fatalf("disjoint paths a=%d b=%d; want equal", a, b)
	}
}

func TestStats(t *testing.T) {
	e, n := newNet(t, 16, false)
	n.Send(0, 15, 100, func() {})
	n.Send(3, 7, 50, func() {})
	e.Run()
	s := n.Stats()
	if s.Messages != 2 {
		t.Errorf("messages = %d, want 2", s.Messages)
	}
	if s.Bytes != 150 {
		t.Errorf("bytes = %d, want 150", s.Bytes)
	}
	if s.HopsSum == 0 {
		t.Error("hops sum = 0")
	}
}

func TestSelfSend(t *testing.T) {
	e, n := newNet(t, 4, false)
	done := false
	n.Send(2, 2, 32, func() { done = true })
	e.Run()
	if !done {
		t.Fatal("self-send not delivered")
	}
}

func TestInvalidNodePanics(t *testing.T) {
	e, n := newNet(t, 4, false)
	_ = e
	defer func() {
		if recover() == nil {
			t.Error("out-of-range node did not panic")
		}
	}()
	n.Send(0, 99, 1, func() {})
}

// Property: delivery never precedes the uncontended model latency and
// per-pair order is preserved, for random message sequences.
func TestDeliveryProperties(t *testing.T) {
	f := func(sizes []uint16, gap uint8) bool {
		if len(sizes) == 0 {
			return true
		}
		e := sim.NewEngine()
		n := New(e, DefaultConfig(9))
		type rec struct {
			idx  int
			sent sim.Time
			at   sim.Time
			min  sim.Duration
		}
		var recs []rec
		for i, sz := range sizes {
			i, sz := i, int(sz)
			e.Schedule(sim.Duration(i)*sim.Duration(gap), func() {
				sent := e.Now()
				min := n.Latency(0, 8, sz)
				n.Send(0, 8, sz, func() {
					recs = append(recs, rec{i, sent, e.Now(), min})
				})
			})
		}
		e.Run()
		if len(recs) != len(sizes) {
			return false
		}
		for i, r := range recs {
			if r.idx != i { // FIFO per pair
				return false
			}
			if r.at < r.sent+r.min { // causality + model floor
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// scriptedInjector returns a fixed verdict per Send, in call order.
type scriptedInjector struct {
	verdicts []Verdict
	calls    int
}

func (s *scriptedInjector) Inspect(now sim.Time, src, dst, size int) Verdict {
	v := Verdict{}
	if s.calls < len(s.verdicts) {
		v = s.verdicts[s.calls]
	}
	s.calls++
	return v
}

// TestInjectorDrop: a dropped message never delivers, counts as lost, and
// still advances the pair's FIFO horizon (the wire consumed it).
func TestInjectorDrop(t *testing.T) {
	e, n := newNet(t, 4, false)
	inj := &scriptedInjector{verdicts: []Verdict{{Drop: true}, {}}}
	n.SetInjector(inj)
	var got []int
	n.Send(0, 1, 64, func() { got = append(got, 1) })
	n.Send(0, 1, 64, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("deliveries = %v, want [2]", got)
	}
	if n.Stats().Lost != 1 {
		t.Fatalf("Lost = %d, want 1", n.Stats().Lost)
	}
	if inj.calls != 2 {
		t.Fatalf("injector consulted %d times, want 2", inj.calls)
	}
}

// TestInjectorDup: a duplicated message delivers exactly twice, the copy
// strictly after the original, and later sends on the pair stay FIFO
// behind the copy.
func TestInjectorDup(t *testing.T) {
	e, n := newNet(t, 4, false)
	n.SetInjector(&scriptedInjector{verdicts: []Verdict{{Dup: true}, {}}})
	var got []int
	var times []sim.Time
	n.Send(0, 1, 64, func() { got = append(got, 1); times = append(times, e.Now()) })
	n.Send(0, 1, 64, func() { got = append(got, 2); times = append(times, e.Now()) })
	e.Run()
	want := []int{1, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("deliveries = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("deliveries = %v, want %v", got, want)
		}
	}
	if !(times[0] < times[1] && times[1] <= times[2]) {
		t.Fatalf("delivery times %v violate original < copy <= next", times)
	}
}

// TestInjectorDelay: injected delay shifts arrival and pushes the FIFO
// horizon so an undelayed follower cannot overtake.
func TestInjectorDelay(t *testing.T) {
	e, n := newNet(t, 4, false)
	base := n.Latency(0, 1, 64)
	n.SetInjector(&scriptedInjector{verdicts: []Verdict{{Delay: 500}, {}}})
	var first, second sim.Time
	n.Send(0, 1, 64, func() { first = e.Now() })
	n.Send(0, 1, 64, func() { second = e.Now() })
	e.Run()
	if first != sim.Time(base)+500 {
		t.Fatalf("delayed arrival at %d, want %d", first, sim.Time(base)+500)
	}
	if second < first {
		t.Fatalf("follower overtook the delayed message: %d < %d", second, first)
	}
}

// TestInjectorNilRestoresLossless: clearing the injector restores plain
// delivery.
func TestInjectorNilRestoresLossless(t *testing.T) {
	e, n := newNet(t, 4, false)
	n.SetInjector(&scriptedInjector{verdicts: []Verdict{{Drop: true}}})
	n.SetInjector(nil)
	delivered := false
	n.Send(0, 1, 64, func() { delivered = true })
	e.Run()
	if !delivered {
		t.Fatal("message lost after the injector was cleared")
	}
	if n.Stats().Lost != 0 {
		t.Fatalf("Lost = %d, want 0", n.Stats().Lost)
	}
}
