// Package noc models the network-on-chip that connects all processing
// elements (PEs) of the simulated machine.
//
// The model is a 2D mesh with dimension-ordered (XY) routing. Message
// latency is base + hops*(router+hop) + serialization, where serialization
// grows with the message size. Two latency regimes are supported:
//
//   - uncontended (default): links have infinite bandwidth; latency depends
//     only on distance and size, matching the paper's assumption of a
//     non-contended interconnect for the capability experiments, and
//   - contended: each mesh link serializes flits, so concurrent messages
//     crossing the same link queue up.
//
// Regardless of the regime, the network guarantees per-(src,dst) FIFO
// ordering, a stated precondition of the SemperOS distributed capability
// protocols ("if kernel K1 first sends a message M1 to kernel K2, followed
// by a message M2, then K2 has to receive M1 before M2").
package noc

import (
	"fmt"

	"repro/internal/sim"
)

// Config describes the mesh and its timing parameters. All latencies are in
// cycles. The zero value of a latency field is legal (that cost is skipped).
type Config struct {
	// Nodes is the number of attached PEs. Required.
	Nodes int
	// Width is the mesh width; 0 derives a near-square mesh.
	Width int
	// BaseLatency is charged once per message (injection + ejection).
	BaseLatency sim.Duration
	// HopLatency is the wire latency per hop.
	HopLatency sim.Duration
	// RouterLatency is the router pipeline latency per hop.
	RouterLatency sim.Duration
	// FlitBytes is the payload carried per flit (default 16).
	FlitBytes int
	// FlitLatency is the serialization cost per flit (default 1).
	FlitLatency sim.Duration
	// Contention enables per-link serialization.
	Contention bool
}

// DefaultConfig returns the timing parameters used throughout the
// reproduction: a lightweight mesh calibrated against the paper's
// microbenchmark magnitudes (a few hundred cycles per kernel round trip).
func DefaultConfig(nodes int) Config {
	return Config{
		Nodes:         nodes,
		BaseLatency:   24,
		HopLatency:    2,
		RouterLatency: 3,
		FlitBytes:     16,
		FlitLatency:   1,
	}
}

// Stats aggregates network activity counters.
type Stats struct {
	Messages uint64
	Bytes    uint64
	HopsSum  uint64
	Lost     uint64 // messages dropped by a receiver (no free slot) or by fault injection
}

type pairKey struct{ src, dst int }

// Verdict is a fault injector's decision about one message: drop it,
// deliver it twice, and/or delay its arrival by Delay cycles. The zero
// Verdict delivers normally.
type Verdict struct {
	Drop  bool
	Dup   bool
	Delay sim.Duration
}

// Injector inspects every message at send time and returns its fate.
// Implementations (see internal/fault) must be deterministic functions of
// their own state and the arguments: the network calls Inspect exactly
// once per Send, in event order. Under isolated rounds, Inspect is called
// concurrently from different sender domains, so implementations must
// shard all mutable state by src.
type Injector interface {
	Inspect(now sim.Time, src, dst, size int) Verdict
}

// Network is the mesh instance. It is bound to a sim.Engine and delivers
// messages by scheduling events.
type Network struct {
	eng    *sim.Engine
	cfg    Config
	width  int
	height int
	// lastDeliver enforces per-pair FIFO ordering.
	lastDeliver map[pairKey]sim.Time
	// linkFree is the next-free time per directed link (contention mode).
	linkFree map[int]sim.Time
	stats    Stats
	// domains, when bound, routes each delivery onto the destination node's
	// event domain (conservative PDES partitioning, see internal/sim). Nil
	// means all deliveries use the engine's current lane, as before.
	domains []*sim.Domain
	// isolated switches the network to its isolated-rounds discipline: all
	// mutable send-path state is sharded per source node (each node's sends
	// execute only on its own domain, so every shard has a single writer),
	// the clock is the sending node's domain-local clock, and cross-domain
	// deliveries travel as posts. Requires bound domains; forbids contention,
	// whose link state is inherently cross-domain. Injectors are consulted
	// from the sender's path with the sender's clock, so implementations must
	// shard their mutable state by source node (internal/fault does).
	isolated bool
	// srcStats/srcLast shard the activity counters and the per-pair FIFO
	// horizon by source node; lostAt shards the receiver-side loss counter by
	// receiving node. Allocated by SetIsolated.
	srcStats []Stats
	srcLast  []map[int]sim.Time
	lostAt   []uint64
	// inj, when set, decides per message whether to drop, duplicate or
	// delay it (fault injection). Nil means the lossless fabric.
	inj Injector
}

// New creates a mesh network for cfg.Nodes PEs.
func New(eng *sim.Engine, cfg Config) *Network {
	if cfg.Nodes <= 0 {
		panic("noc: Config.Nodes must be positive")
	}
	if cfg.FlitBytes <= 0 {
		cfg.FlitBytes = 16
	}
	w := cfg.Width
	if w <= 0 {
		w = 1
		for w*w < cfg.Nodes {
			w++
		}
	}
	h := (cfg.Nodes + w - 1) / w
	return &Network{
		eng:         eng,
		cfg:         cfg,
		width:       w,
		height:      h,
		lastDeliver: make(map[pairKey]sim.Time),
		linkFree:    make(map[int]sim.Time),
	}
}

// Nodes returns the number of attached PEs.
func (n *Network) Nodes() int { return n.cfg.Nodes }

// Stats returns a snapshot of the activity counters. In isolated mode it
// sums the per-node shards; call it only while no round is in flight.
func (n *Network) Stats() Stats {
	if !n.isolated {
		return n.stats
	}
	out := n.stats
	for i := range n.srcStats {
		s := &n.srcStats[i]
		out.Messages += s.Messages
		out.Bytes += s.Bytes
		out.HopsSum += s.HopsSum
		out.Lost += s.Lost
	}
	for _, l := range n.lostAt {
		out.Lost += l
	}
	return out
}

// CountLost increments the lost-message counter; receivers (DTUs) call it
// from the delivery event when a message arrives at node and no slot is
// free. In isolated mode the count lands in the receiving node's shard —
// the delivery executes on that node's domain, its single writer.
func (n *Network) CountLost(node int) {
	if n.isolated {
		n.lostAt[node]++
		return
	}
	n.stats.Lost++
}

func (n *Network) coord(node int) (x, y int) {
	return node % n.width, node / n.width
}

// Hops returns the XY-routed hop count between two PEs.
func (n *Network) Hops(src, dst int) int {
	sx, sy := n.coord(src)
	dx, dy := n.coord(dst)
	return abs(sx-dx) + abs(sy-dy)
}

// MinLatency returns the minimum latency of any cross-PE message (src !=
// dst: at least one hop, at least one flit), regardless of size or
// contention — contention and the per-pair FIFO clamp only ever delay
// delivery further. This is the network's lookahead bound for conservative
// parallel simulation: an event on one PE cannot affect another PE sooner
// than MinLatency cycles, as all cross-PE interaction goes through Send.
func (n *Network) MinLatency() sim.Duration {
	return n.cfg.BaseLatency + n.cfg.HopLatency + n.cfg.RouterLatency + n.cfg.FlitLatency
}

// BindDomains attaches a per-node event-domain table (indexed by PE id):
// from then on every delivery is scheduled onto the destination node's
// domain lane, so a partitioned engine attributes and — for isolated
// domains — parallelizes it correctly. The table must cover all nodes.
func (n *Network) BindDomains(domains []*sim.Domain) {
	if len(domains) < n.cfg.Nodes {
		panic(fmt.Sprintf("noc: BindDomains table covers %d of %d nodes", len(domains), n.cfg.Nodes))
	}
	n.domains = domains
}

// SetInjector attaches a fault injector consulted once per Send. Passing
// nil restores the lossless fabric.
func (n *Network) SetInjector(inj Injector) { n.inj = inj }

// SetIsolated switches the network to the isolated-rounds send discipline
// (see the Network field docs). Domains must be bound first; contention is
// incompatible — its link state is shared across all senders. An injector
// may be attached, provided it shards its mutable state by source node.
func (n *Network) SetIsolated(iso bool) {
	if !iso {
		n.isolated = false
		return
	}
	if n.domains == nil {
		panic("noc: SetIsolated requires bound domains")
	}
	if n.cfg.Contention {
		panic("noc: contention is incompatible with isolated rounds (shared link state)")
	}
	n.isolated = true
	if n.srcStats == nil {
		n.srcStats = make([]Stats, n.cfg.Nodes)
		n.srcLast = make([]map[int]sim.Time, n.cfg.Nodes)
		for i := range n.srcLast {
			n.srcLast[i] = make(map[int]sim.Time)
		}
		n.lostAt = make([]uint64, n.cfg.Nodes)
	}
}

// MinLatencyAcross returns the minimum latency of any message between nodes
// in different domains under the given node→domain assignment — the tight
// lookahead bound for isolated rounds. Same-domain traffic does not
// constrain the horizon, so an assignment aligned with the mesh topology
// (groups on contiguous rows) yields a bound at least as large as
// MinLatency and lets each round cover more local work.
func (n *Network) MinLatencyAcross(domainOf func(node int) int) sim.Duration {
	minHops := -1
	for src := 0; src < n.cfg.Nodes && minHops != 1; src++ {
		d := domainOf(src)
		for dst := 0; dst < n.cfg.Nodes; dst++ {
			if domainOf(dst) == d {
				continue
			}
			if h := n.Hops(src, dst); minHops < 0 || h < minHops {
				minHops = h
				if minHops == 1 {
					break
				}
			}
		}
	}
	if minHops < 0 {
		// Single domain: no cross-domain traffic exists; fall back to the
		// plain bound so the caller still gets a positive lookahead.
		return n.MinLatency()
	}
	return n.cfg.BaseLatency + sim.Duration(minHops)*(n.cfg.HopLatency+n.cfg.RouterLatency) + n.cfg.FlitLatency
}

// Latency returns the uncontended latency for a message of the given size.
func (n *Network) Latency(src, dst, size int) sim.Duration {
	hops := sim.Duration(n.Hops(src, dst))
	flits := sim.Duration((size + n.cfg.FlitBytes - 1) / n.cfg.FlitBytes)
	if flits == 0 {
		flits = 1
	}
	return n.cfg.BaseLatency + hops*(n.cfg.HopLatency+n.cfg.RouterLatency) + flits*n.cfg.FlitLatency
}

// Send transmits a message of size bytes from src to dst and invokes deliver
// at the destination when it arrives. Delivery preserves per-(src,dst) FIFO
// order. Send may be called from event handlers and procs.
//
// With an injector attached, a message may be dropped (deliver is never
// invoked), duplicated (deliver is invoked twice, the copy strictly after
// the original) or delayed. All outcomes keep per-pair FIFO: a delayed or
// duplicated message pushes the pair's delivery horizon forward, and a
// dropped one still advances it to where it would have arrived — the wire
// consumed the message even though nobody receives it.
func (n *Network) Send(src, dst, size int, deliver func()) {
	n.checkNode(src)
	n.checkNode(dst)
	if n.isolated {
		n.sendIsolated(src, dst, size, deliver)
		return
	}
	n.stats.Messages++
	n.stats.Bytes += uint64(size)
	n.stats.HopsSum += uint64(n.Hops(src, dst))

	var v Verdict
	if n.inj != nil {
		v = n.inj.Inspect(n.eng.Now(), src, dst, size)
	}
	var arrival sim.Time
	if n.cfg.Contention {
		arrival = n.contendedArrival(src, dst, size)
	} else {
		arrival = n.eng.Now() + n.Latency(src, dst, size)
	}
	arrival += v.Delay
	key := pairKey{src, dst}
	if last, ok := n.lastDeliver[key]; ok && arrival < last {
		arrival = last
	}
	n.lastDeliver[key] = arrival
	if v.Drop {
		n.stats.Lost++
		return
	}
	n.scheduleDeliver(dst, arrival, deliver)
	if v.Dup {
		// The duplicate trails the original by at least one cycle so the
		// receiver observes two distinct delivery events in a fixed order.
		gap := n.cfg.FlitLatency
		if gap == 0 {
			gap = 1
		}
		dupAt := arrival + gap
		n.lastDeliver[key] = dupAt
		n.scheduleDeliver(dst, dupAt, deliver)
	}
}

func (n *Network) scheduleDeliver(dst int, at sim.Time, deliver func()) {
	if n.domains != nil {
		n.domains[dst].At(at, deliver)
		return
	}
	n.eng.At(at, deliver)
}

// sendIsolated is Send under the isolated-rounds discipline: all mutable
// state is the sending node's single-writer shard, the clock is the sending
// node's domain-local clock, and a cross-domain delivery travels as a post.
// Its delay is at least the engine lookahead by construction: the pair is
// cross-domain, so its latency is bounded below by MinLatencyAcross, and the
// FIFO clamp only pushes arrival further out.
func (n *Network) sendIsolated(src, dst, size int, deliver func()) {
	st := &n.srcStats[src]
	st.Messages++
	st.Bytes += uint64(size)
	st.HopsSum += uint64(n.Hops(src, dst))
	sd := n.domains[src]
	now := sd.Now()
	var v Verdict
	if n.inj != nil {
		// The verdict is drawn on the sender's path with the sender's clock;
		// the injector's state must be sharded by source (field docs above).
		v = n.inj.Inspect(now, src, dst, size)
	}
	arrival := now + n.Latency(src, dst, size) + v.Delay
	if last, ok := n.srcLast[src][dst]; ok && arrival < last {
		arrival = last
	}
	n.srcLast[src][dst] = arrival
	if v.Drop {
		st.Lost++
		return
	}
	// Extra delay and the duplicate's gap only push arrival further out, so
	// cross-domain posts still respect the lookahead bound.
	dd := n.domains[dst]
	send := func(at sim.Time) {
		if dd == sd {
			sd.At(at, deliver)
			return
		}
		sd.Post(dd, at-now, deliver)
	}
	send(arrival)
	if v.Dup {
		gap := n.cfg.FlitLatency
		if gap == 0 {
			gap = 1
		}
		dupAt := arrival + gap
		n.srcLast[src][dst] = dupAt
		send(dupAt)
	}
}

// directions for XY routing link identifiers.
const (
	dirEast = iota
	dirWest
	dirNorth
	dirSouth
)

func (n *Network) linkID(node, dir int) int { return node*4 + dir }

// contendedArrival walks the XY route, serializing the message on each link.
func (n *Network) contendedArrival(src, dst, size int) sim.Time {
	flits := sim.Duration((size + n.cfg.FlitBytes - 1) / n.cfg.FlitBytes)
	if flits == 0 {
		flits = 1
	}
	ser := flits * n.cfg.FlitLatency
	t := n.eng.Now() + n.cfg.BaseLatency
	cx, cy := n.coord(src)
	dx, dy := n.coord(dst)
	step := func(node, dir, nx, ny int) (int, int) {
		l := n.linkID(node, dir)
		start := t
		if free := n.linkFree[l]; free > start {
			start = free
		}
		n.linkFree[l] = start + ser
		t = start + ser + n.cfg.HopLatency + n.cfg.RouterLatency
		return nx, ny
	}
	node := src
	for cx != dx {
		if cx < dx {
			cx, cy = step(node, dirEast, cx+1, cy)
		} else {
			cx, cy = step(node, dirWest, cx-1, cy)
		}
		node = cy*n.width + cx
	}
	for cy != dy {
		if cy < dy {
			cx, cy = step(node, dirSouth, cx, cy+1)
		} else {
			cx, cy = step(node, dirNorth, cx, cy-1)
		}
		node = cy*n.width + cx
	}
	if node == src { // src == dst: still charge serialization
		t += ser
	}
	return t
}

func (n *Network) checkNode(id int) {
	if id < 0 || id >= n.cfg.Nodes {
		panic(fmt.Sprintf("noc: node %d out of range [0,%d)", id, n.cfg.Nodes))
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
