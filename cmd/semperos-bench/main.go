// Command semperos-bench regenerates the tables and figures of the
// SemperOS paper's evaluation (USENIX ATC'19, §5).
//
// Usage:
//
//	semperos-bench -experiment all              # everything, paper scale
//	semperos-bench -experiment table3,fig4      # selected experiments
//	semperos-bench -experiment fig6 -quick      # reduced scale
//	semperos-bench -quick -parallel 4 -json out.json
//	semperos-bench -quick -shards 4 -costs BENCH_quick.json
//	semperos-bench -quick -simworkers 2 -json out.json   # partitioned engine
//	semperos-bench -quick -simmode rounds -simworkers 4  # isolated rounds
//
// Experiments: table3, fig4, fig5, table4, fig6, fig7, fig8, fig9, fig10,
// ablation; opt-in extras (excluded from "all"): ablation-ikc, faults,
// scale, churn — the churn scenario races open-loop session churn and a
// revocation storm against a kernel crash+recovery (-crashkernel).
// Every experiment plans its runs as serializable task specs and
// executes them on a worker pool (-parallel, default GOMAXPROCS) or — with
// -shards N — on N re-exec'd worker processes speaking an NDJSON
// spec/result protocol on stdin/stdout, dispatched longest-first by the
// cost model (-costs seeds it with the wallclocks of a prior report). All
// simulated metrics are deterministic and independent of the parallelism,
// the sharding and the schedule. -json writes every experiment run as a
// machine-readable record (schema semperos-bench/v1, see
// internal/bench/report.go).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
)

// experimentNames are the valid -experiment tokens, in run order. The
// extras (run only when named, never under "all") keep the default report
// directly comparable across PRs.
var experimentNames = []string{
	"table3", "fig4", "fig5", "table4", "fig6", "fig7", "fig8", "fig9", "fig10", "ablation",
}

var extraExperimentNames = []string{"ablation-ikc", "faults", "scale", "churn"}

func main() {
	// realMain holds all the defers (profile flushing, worker shutdown, file
	// closing), so an error exit still stops the CPU profile — os.Exit in
	// main would skip them and truncate the profile.
	os.Exit(realMain())
}

func realMain() int {
	experiment := flag.String("experiment", "all", "comma-separated list: table3,fig4,fig5,table4,fig6,fig7,fig8,fig9,fig10,ablation,all; extras (opt-in, excluded from all): ablation-ikc, faults, scale, churn")
	quick := flag.Bool("quick", false, "run at reduced scale (64 instances, 8 kernels)")
	parallel := flag.Int("parallel", 0, "experiment worker-pool size (0 = GOMAXPROCS); ignored with -shards")
	shards := flag.Int("shards", 0, "execute the sweep on N worker processes (0 = in-process)")
	costs := flag.String("costs", "", "prior report JSON whose wallclocks seed longest-first dispatch (default: instance-count heuristic)")
	simworkers := flag.Int("simworkers", 0, "partition each simulation's event queue into min(N, kernels) per-kernel-block domains (0/1 = sequential engine); all simulated metrics stay byte-identical")
	simmode := flag.String("simmode", "", "simulation mode: merged (default; order-preserving, byte-identical) or rounds (isolated barrier-synchronous rounds, one domain per kernel; deterministic at any -simworkers/-shards but metrics differ from merged by design)")
	jsonPath := flag.String("json", "", "write machine-readable results to this file")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (taken after the sweep) to this file")
	faultseed := flag.Uint64("faultseed", 1, "seed of the deterministic fault injector (faults experiment); identical seeds reproduce runs byte-identically at any -parallel/-shards/-simworkers")
	scalekernels := flag.Int("scalekernels", 0, "cap the scale experiment's grid at this many kernels (0 = the full grid up to 1024)")
	scalebudget := flag.Duration("scalebudget", 10*time.Minute, "wall-clock budget of the scale experiment; grid points past it are skipped (0 = unlimited)")
	crashkernel := flag.Int("crashkernel", -1, "churn experiment: kernel to crash and recover mid-storm (-1 = the last kernel); crashing kernel 0 under -simmode rounds is rejected")
	worker := flag.Bool("worker", false, "internal: serve the shard worker protocol on stdin/stdout")
	flag.Parse()

	if *worker {
		// Shard worker mode: the coordinator owns stdout; serve the protocol
		// and exit. Task failures travel inside results — only a broken
		// stream is fatal here.
		if err := bench.RunWorker(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "semperos-bench -worker: %v\n", err)
			return 1
		}
		return 0
	}

	// Flag hygiene: sizes must be non-negative, and -parallel is meaningless
	// under -shards (the shard count sets the process-level parallelism).
	for _, f := range []struct {
		name  string
		value int
	}{{"-parallel", *parallel}, {"-shards", *shards}, {"-simworkers", *simworkers}} {
		if f.value < 0 {
			fmt.Fprintf(os.Stderr, "%s must be non-negative (got %d)\n", f.name, f.value)
			return 2
		}
	}
	if *parallel != 0 && *shards > 0 {
		fmt.Fprintf(os.Stderr, "warning: -parallel %d is ignored with -shards %d (each worker process runs its tasks serially)\n", *parallel, *shards)
	}
	switch *simmode {
	case "", core.SimModeMerged, core.SimModeRounds:
	default:
		fmt.Fprintf(os.Stderr, "unknown -simmode %q; valid modes: %s, %s\n",
			*simmode, core.SimModeMerged, core.SimModeRounds)
		return 2
	}

	valid := map[string]bool{"all": true}
	for _, n := range experimentNames {
		valid[n] = true
	}
	for _, n := range extraExperimentNames {
		valid[n] = true
	}
	want := map[string]bool{}
	var unknown []string
	for _, e := range strings.Split(*experiment, ",") {
		name := strings.TrimSpace(e)
		if name == "" {
			continue // tolerate stray commas (e.g. "table3,")
		}
		if !valid[name] {
			unknown = append(unknown, name)
			continue
		}
		want[name] = true
	}
	if len(want) == 0 && len(unknown) == 0 {
		unknown = append(unknown, *experiment)
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		fmt.Fprintf(os.Stderr, "unknown experiment(s) %q; valid names: all, %s (extras: %s)\n",
			strings.Join(unknown, ", "),
			strings.Join(experimentNames, ", "),
			strings.Join(extraExperimentNames, ", "))
		return 2
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "creating %s: %v\n", *cpuprofile, err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "starting CPU profile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	opts := bench.Full()
	if *quick {
		opts = bench.Quick()
	}
	opts.Parallel = *parallel
	opts.SimWorkers = *simworkers
	opts.SimMode = *simmode
	opts.FaultSeed = *faultseed
	if *simworkers > opts.Kernels64 {
		// Warn, don't clamp: the per-run construction caps the domain count
		// at the run's kernel count anyway, so the extra workers just idle.
		fmt.Fprintf(os.Stderr, "warning: -simworkers %d exceeds the sweep's largest kernel count (%d); extra workers will idle\n",
			*simworkers, opts.Kernels64)
	}
	if *costs != "" {
		model, err := bench.LoadCostModel(*costs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loading cost model: %v\n", err)
			return 1
		}
		opts.Costs = model
	}
	workers := *parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if *shards > 0 {
		exe, err := os.Executable()
		if err != nil {
			fmt.Fprintf(os.Stderr, "resolving own executable for -shards: %v\n", err)
			return 1
		}
		ex := &bench.ShardExecutor{
			Shards: *shards,
			Argv:   []string{exe, "-worker"},
			Costs:  opts.Costs,
		}
		defer ex.Close()
		opts.Executor = ex
		workers = *shards
	}
	report := bench.NewReport(*quick, workers)
	if *simworkers > 1 {
		report.SimWorkers = *simworkers
	}
	report.SimMode = *simmode
	opts.Report = report

	all := want["all"]
	ran := 0
	total := time.Duration(0)
	doRun := func(name string, fn func()) {
		ran++
		start := time.Now()
		fn()
		elapsed := time.Since(start)
		total += elapsed
		fmt.Printf("[%s took %v]\n\n", name, elapsed.Round(time.Millisecond))
	}
	run := func(name string, fn func()) {
		if !all && !want[name] {
			return
		}
		doRun(name, fn)
	}
	// runExtra experiments are opt-in only: they are excluded from
	// `-experiment all` so the default run (and its BENCH_*.json
	// trajectory) stays directly comparable across PRs; request them by
	// name (e.g. `-experiment all,ablation-ikc`).
	runExtra := func(name string, fn func()) {
		if !want[name] {
			return
		}
		doRun(name, fn)
	}

	run("table3", func() { bench.Table3(opts).Print(os.Stdout) })
	run("fig4", func() { bench.Fig4(opts, 100).Print(os.Stdout) })
	run("fig5", func() { bench.Fig5(opts, 128).Print(os.Stdout) })
	run("table4", func() { bench.Table4(opts).Print(os.Stdout) })
	run("fig6", func() { bench.Fig6(opts).Print(os.Stdout) })
	run("fig7", func() {
		for _, r := range bench.Fig7(opts) {
			r.Print(os.Stdout)
		}
	})
	run("fig8", func() {
		for _, r := range bench.Fig8(opts) {
			r.Print(os.Stdout)
		}
	})
	run("fig9", func() {
		for _, r := range bench.Fig9(opts) {
			r.Print(os.Stdout)
		}
	})
	run("fig10", func() { bench.Fig10(opts).Print(os.Stdout) })
	run("ablation", func() { bench.AblationBatching(opts, 128, 12).Print(os.Stdout) })
	runExtra("ablation-ikc", func() { bench.AblationIKC(opts, 96, 12).Print(os.Stdout) })
	runExtra("faults", func() { bench.Faults(opts, 64, 8).Print(os.Stdout) })
	runExtra("scale", func() { bench.Scale(opts, *scalekernels, *scalebudget).Print(os.Stdout) })
	var churnErr error
	runExtra("churn", func() {
		r, err := bench.Churn(opts, 64, 8, *crashkernel)
		if err != nil {
			churnErr = err
			return
		}
		r.Print(os.Stdout)
	})
	if churnErr != nil {
		// An invalid scenario (out-of-range kernel, kernel 0 under rounds) is
		// a usage error, rejected before any simulation ran.
		fmt.Fprintln(os.Stderr, churnErr)
		return 2
	}

	fmt.Printf("[%d experiments, %d workers, total %v]\n", ran, workers, total.Round(time.Millisecond))
	report.WallclockSummary(os.Stdout, 10)
	if *jsonPath != "" {
		if err := report.WriteFile(*jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonPath, err)
			return 1
		}
		fmt.Printf("[wrote %d results to %s]\n", report.Len(), *jsonPath)
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "creating %s: %v\n", *memprofile, err)
			return 1
		}
		defer f.Close()
		runtime.GC() // settle the heap so the profile shows retained memory
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "writing heap profile: %v\n", err)
			return 1
		}
		fmt.Printf("[wrote heap profile to %s]\n", *memprofile)
	}
	return 0
}
