// Command semperos-bench regenerates the tables and figures of the
// SemperOS paper's evaluation (USENIX ATC'19, §5).
//
// Usage:
//
//	semperos-bench -experiment all            # everything, paper scale
//	semperos-bench -experiment table3,fig4    # selected experiments
//	semperos-bench -experiment fig6 -quick    # reduced scale
//
// Experiments: table3, fig4, fig5, table4, fig6, fig7, fig8, fig9, fig10.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	experiment := flag.String("experiment", "all", "comma-separated list: table3,fig4,fig5,table4,fig6,fig7,fig8,fig9,fig10,ablation,all")
	quick := flag.Bool("quick", false, "run at reduced scale (64 instances, 8 kernels)")
	flag.Parse()

	opts := bench.Full()
	if *quick {
		opts = bench.Quick()
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*experiment, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	ran := 0
	run := func(name string, fn func()) {
		if !all && !want[name] {
			return
		}
		ran++
		start := time.Now()
		fn()
		fmt.Printf("[%s took %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("table3", func() { bench.Table3().Print(os.Stdout) })
	run("fig4", func() { bench.Fig4(100).Print(os.Stdout) })
	run("fig5", func() { bench.Fig5(128).Print(os.Stdout) })
	run("table4", func() { bench.Table4(opts).Print(os.Stdout) })
	run("fig6", func() { bench.Fig6(opts).Print(os.Stdout) })
	run("fig7", func() {
		for _, r := range bench.Fig7(opts) {
			r.Print(os.Stdout)
		}
	})
	run("fig8", func() {
		for _, r := range bench.Fig8(opts) {
			r.Print(os.Stdout)
		}
	})
	run("fig9", func() {
		for _, r := range bench.Fig9(opts) {
			r.Print(os.Stdout)
		}
	})
	run("fig10", func() { bench.Fig10(opts).Print(os.Stdout) })
	run("ablation", func() { bench.AblationBatching(128, 12).Print(os.Stdout) })

	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *experiment)
		flag.Usage()
		os.Exit(2)
	}
}
