// Command bench-compare diffs the simulated (experiment, config, metrics)
// triples of two semperos-bench JSON reports (schema semperos-bench/v1).
//
// Usage:
//
//	bench-compare [-allow-new] BASELINE.json FRESH.json
//	bench-compare -delta OLD.json NEW.json
//
// All metrics in a report are simulated and deterministic, so any
// difference between a fresh run and the committed baseline is a semantic
// change to the simulation — not noise — and must be intentional: either
// the baseline is regenerated in the same PR, or the run is fixed. CI runs
// this against BENCH_quick.json to enforce mechanically what used to be a
// convention ("regressions in cycles are semantic changes").
//
// The two arguments are arbitrary report files — nothing ties the first to
// the committed baseline. In the default mode any difference is drift and
// fails; with -delta the tool instead *describes* the differences between
// two runs (cycle deltas with percentages, message-count changes, rows
// unique to either side) and always exits 0 on readable input. That is the
// review mode: diff a PR's BENCH_<tag>.json against its predecessor, or an
// ablation rerun against the recorded one, and paste the deltas.
//
// Exit status: 0 when the reports agree (or -delta on readable input), 1
// on drift (changed metrics, baseline rows missing from the fresh run, or
// — unless -allow-new — rows the baseline does not know), 2 on usage or
// read errors. Wallclock and worker-pool fields are ignored: only
// simulated quantities are compared.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

// key identifies one experiment configuration. Sweeps may legitimately run
// one configuration several times (e.g. a baseline shared between figures),
// so rows are compared per key in report order.
type key struct {
	Experiment string
	Config     bench.ExpConfig
}

func load(path string) (*bench.Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r bench.Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != bench.ReportSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, r.Schema, bench.ReportSchema)
	}
	return &r, nil
}

func byKey(r *bench.Report) (map[key][]bench.Metrics, []key) {
	m := make(map[key][]bench.Metrics)
	var order []key
	for _, res := range r.Results {
		k := key{Experiment: res.Experiment, Config: res.Config}
		if _, seen := m[k]; !seen {
			order = append(order, k)
		}
		m[k] = append(m[k], res.Metrics)
	}
	return m, order
}

func main() {
	os.Exit(realMain())
}

func realMain() int {
	allowNew := flag.Bool("allow-new", false, "tolerate experiments present only in the fresh report")
	delta := flag.Bool("delta", false, "describe metric deltas between two arbitrary reports instead of failing on drift")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: bench-compare [-allow-new|-delta] BASELINE.json FRESH.json")
		return 2
	}
	base, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	fresh, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	baseBy, baseOrder := byKey(base)
	freshBy, freshOrder := byKey(fresh)

	if *delta {
		printDeltas(baseBy, baseOrder, freshBy, freshOrder)
		return 0
	}

	drift := 0
	report := func(format string, args ...any) {
		drift++
		fmt.Printf(format+"\n", args...)
	}
	for _, k := range baseOrder {
		want := baseBy[k]
		got, ok := freshBy[k]
		if !ok {
			report("MISSING  %s %+v: in baseline, absent from fresh run", k.Experiment, k.Config)
			continue
		}
		if len(got) != len(want) {
			report("COUNT    %s %+v: %d baseline runs vs %d fresh", k.Experiment, k.Config, len(want), len(got))
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				report("CHANGED  %s %+v: metrics %+v -> %+v", k.Experiment, k.Config, want[i], got[i])
			}
		}
	}
	for _, k := range freshOrder {
		if _, ok := baseBy[k]; ok {
			continue
		}
		if *allowNew {
			fmt.Printf("new      %s %+v (allowed)\n", k.Experiment, k.Config)
		} else {
			report("NEW      %s %+v: not in baseline (regenerate it or pass -allow-new)", k.Experiment, k.Config)
		}
	}
	if drift > 0 {
		fmt.Printf("bench-compare: %d drifting triple(s) between %s and %s\n", drift, flag.Arg(0), flag.Arg(1))
		return 1
	}
	fmt.Printf("bench-compare: %d triples identical between %s and %s\n", len(baseOrder), flag.Arg(0), flag.Arg(1))
	return 0
}

// printDeltas is the -delta mode: a human-readable diff of two arbitrary
// reports, for review rather than enforcement. Matching rows with changed
// metrics show cycle deltas (with percentage) and message-count changes;
// identical rows are only summarized; rows unique to either report are
// listed.
func printDeltas(baseBy map[key][]bench.Metrics, baseOrder []key, freshBy map[key][]bench.Metrics, freshOrder []key) {
	same, changed := 0, 0
	for _, k := range baseOrder {
		want := baseBy[k]
		got, ok := freshBy[k]
		if !ok {
			fmt.Printf("only-old %s %+v\n", k.Experiment, k.Config)
			continue
		}
		n := min(len(want), len(got))
		if len(want) != len(got) {
			fmt.Printf("count    %s %+v: %d runs vs %d\n", k.Experiment, k.Config, len(want), len(got))
		}
		for i := 0; i < n; i++ {
			if got[i] == want[i] {
				same++
				continue
			}
			changed++
			line := fmt.Sprintf("delta    %s %+v:", k.Experiment, k.Config)
			if got[i].Cycles != want[i].Cycles {
				line += fmt.Sprintf(" cycles %d -> %d", want[i].Cycles, got[i].Cycles)
				if want[i].Cycles != 0 {
					pct := 100 * (float64(got[i].Cycles) - float64(want[i].Cycles)) / float64(want[i].Cycles)
					line += fmt.Sprintf(" (%+.2f%%)", pct)
				}
			}
			if got[i].ReqMsgs != want[i].ReqMsgs || got[i].RepMsgs != want[i].RepMsgs {
				line += fmt.Sprintf(" msgs %d+%d -> %d+%d (req+rep)",
					want[i].ReqMsgs, want[i].RepMsgs, got[i].ReqMsgs, got[i].RepMsgs)
			}
			if got[i].Efficiency != want[i].Efficiency {
				line += fmt.Sprintf(" eff %.4f -> %.4f", want[i].Efficiency, got[i].Efficiency)
			}
			if got[i].CapOps != want[i].CapOps {
				line += fmt.Sprintf(" capops %d -> %d", want[i].CapOps, got[i].CapOps)
			}
			fmt.Println(line)
		}
	}
	for _, k := range freshOrder {
		if _, ok := baseBy[k]; !ok {
			fmt.Printf("only-new %s %+v\n", k.Experiment, k.Config)
		}
	}
	fmt.Printf("bench-compare: %d identical, %d changed between %s and %s\n",
		same, changed, flag.Arg(0), flag.Arg(1))
}
