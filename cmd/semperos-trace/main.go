// Command semperos-trace inspects the synthetic application traces used by
// the evaluation: the operation mix, capability-operation budget and image
// footprint of each.
//
// Usage:
//
//	semperos-trace           # summary of all traces
//	semperos-trace -app tar  # full op listing for one trace
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/trace"
)

func main() {
	app := flag.String("app", "", "print the full op list of one trace")
	flag.Parse()

	if *app != "" {
		tr := trace.ByName(*app)
		if tr == nil {
			fmt.Fprintf(os.Stderr, "unknown app %q\n", *app)
			os.Exit(2)
		}
		dump(tr)
		return
	}
	fmt.Println("trace      ops  capops  runtime(ms)  footprint(MiB)")
	for _, tr := range trace.All() {
		fmt.Printf("%-9s %5d  %6d  %11.3f  %14.1f\n",
			tr.Name, len(tr.Ops), tr.WantCapOps,
			float64(tr.TargetRuntime)/core.CyclesPerMicrosecond/1000,
			float64(tr.Footprint(1<<20))/(1<<20))
	}
}

var kindNames = map[trace.OpKind]string{
	trace.OpCompute: "compute",
	trace.OpOpen:    "open",
	trace.OpRead:    "read",
	trace.OpWrite:   "write",
	trace.OpSeek:    "seek",
	trace.OpClose:   "close",
	trace.OpStat:    "stat",
	trace.OpMkdir:   "mkdir",
	trace.OpUnlink:  "unlink",
	trace.OpReaddir: "readdir",
}

func dump(tr *trace.Trace) {
	fmt.Printf("# %s: %d ops, %d cap ops\n", tr.Name, len(tr.Ops), tr.WantCapOps)
	for _, f := range tr.Files {
		fmt.Printf("preload %-24s %d bytes\n", f.Path, f.Size)
	}
	for i, op := range tr.Ops {
		fmt.Printf("%4d  %-8s", i, kindNames[op.Kind])
		if op.Path != "" {
			fmt.Printf("  %-24s", op.Path)
		}
		if op.Kind == trace.OpOpen {
			fmt.Printf("  slot=%d create=%v trunc=%v", op.Slot, op.Create, op.Trunc)
		}
		if op.Kind == trace.OpRead || op.Kind == trace.OpWrite || op.Kind == trace.OpSeek {
			fmt.Printf("  slot=%d bytes=%d", op.Slot, op.Bytes)
		}
		if op.Kind == trace.OpClose {
			fmt.Printf("  slot=%d revoke=%v", op.Slot, op.Revoke)
		}
		if op.Kind == trace.OpCompute {
			fmt.Printf("  %d cycles", op.Cycles)
		}
		fmt.Println()
	}
}
