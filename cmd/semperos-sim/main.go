// Command semperos-sim runs one configurable SemperOS simulation — N
// instances of an application trace against a set of m3fs instances — and
// prints the measured statistics.
//
// Usage:
//
//	semperos-sim -kernels 32 -services 32 -instances 512 -app tar
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	kernels := flag.Int("kernels", 8, "number of kernels (PE groups)")
	services := flag.Int("services", 8, "number of m3fs instances")
	instances := flag.Int("instances", 64, "number of application instances")
	app := flag.String("app", "tar", "application trace: tar, untar, find, sqlite, leveldb, postmark")
	flag.Parse()

	tr := trace.ByName(*app)
	if tr == nil {
		fmt.Fprintf(os.Stderr, "unknown app %q\n", *app)
		os.Exit(2)
	}
	res, err := workload.Run(workload.Config{
		Kernels:   *kernels,
		Services:  *services,
		Instances: *instances,
		Trace:     tr,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("app:             %s\n", tr.Name)
	fmt.Printf("kernels:         %d\n", *kernels)
	fmt.Printf("services:        %d\n", *services)
	fmt.Printf("instances:       %d\n", *instances)
	fmt.Printf("makespan:        %.3f ms\n", float64(res.Makespan)/core.CyclesPerMicrosecond/1000)
	fmt.Printf("mean runtime:    %.3f ms\n", float64(res.MeanRuntime())/core.CyclesPerMicrosecond/1000)
	fmt.Printf("cap ops:         %d (%d per instance)\n", res.TotalCapOps, res.TotalCapOps/uint64(*instances))
	fmt.Printf("cap ops/s:       %.0f\n", res.CapOpsPerSecond())
	fmt.Printf("kernel syscalls: %d\n", res.Kernel.Syscalls)
	fmt.Printf("inter-kernel:    %d sent\n", res.Kernel.IKCSent)
	fmt.Printf("caps created:    %d, deleted: %d\n", res.Kernel.CapsCreated, res.Kernel.CapsDeleted)
}
